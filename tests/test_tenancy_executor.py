"""Tests for the live multi-tenant co-scheduler (repro.tenancy.executor).

The tier-1 anchor is single-tenant equivalence: one tenant under
``MultiPipelineExecutor(arbitration="none")`` must be metric-identical
(items in, outputs, misses) to the same plan run through a plain
:class:`~repro.runtime.executor.PipelineExecutor`.  The WRR tests then
check the shared-device ledger: every tenant is served, and summed busy
plus idle time equals elapsed wall time (conservation).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.dataflow.gains import DeterministicGain
from repro.errors import SimulationError, SpecError
from repro.runtime.executor import PipelineExecutor
from repro.runtime.kernels import RuntimeWorkload, SpinKernel, plan_runtime
from repro.tenancy.executor import MultiPipelineExecutor, TenantSpec


def _plan(name, *, n_nodes=2, service=0.002, tau0=0.05, deadline=10.0,
          vector_width=8):
    # The generous deadline is deliberate: these tests pin item
    # accounting and ledgers, not deadline compliance, and a loaded CI
    # box can stall a node thread long enough to fake a miss at 2s.
    """A fresh deterministic passthrough plan (fresh kernels each call:
    kernels hold RNG state and are owned by one executor's threads)."""
    kernels = [
        SpinKernel(f"{name}-k{i}", DeterministicGain(1),
                   nominal_service=service)
        for i in range(n_nodes)
    ]
    wl = RuntimeWorkload(
        name=name,
        kernels=kernels,
        sample_payload=lambda n, rng: rng.random(n),
    )
    return plan_runtime(
        wl,
        vector_width=vector_width,
        tau0=tau0,
        deadline=deadline,
        calibrate_b=False,
        n_gain_items=64,
        seed=0,
    )


def _feed(submit, n_items=32, batch=8, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(0, n_items, batch):
        submit(rng.random(batch))
        time.sleep(0.002)


class TestSingleTenantEquivalence:
    def test_metrics_match_plain_executor(self):
        # Same plan shape, same payload stream, deterministic gains:
        # the co-scheduler without arbitration must reproduce the plain
        # executor's item accounting exactly.
        solo = PipelineExecutor.from_plan(_plan("solo"))
        solo.start()
        _feed(solo.submit)
        solo.finish_ingest()
        solo_report = solo.join(timeout=30.0)

        multi = MultiPipelineExecutor(arbitration="none")
        decision = multi.add_tenant(TenantSpec(name="only", plan=_plan("only")))
        assert decision.admitted
        multi.start()
        _feed(lambda payload: multi.submit("only", payload))
        multi.finish_ingest()
        report = multi.join(timeout=30.0)

        mine = report.report("only").telemetry
        theirs = solo_report.telemetry
        assert mine.items_ingested == theirs.items_ingested == 32
        assert mine.outputs == theirs.outputs == 32
        assert mine.missed_items == theirs.missed_items == 0
        assert report.missed("only") == 0
        assert report.device is None
        assert report.conserves()  # trivially, without an arbiter

    def test_gold_single_tenant_unbounded_queues(self):
        multi = MultiPipelineExecutor()
        multi.add_tenant(
            TenantSpec(name="g", plan=_plan("g"), qos="gold")
        )
        # Gold's queues must be unbounded (no shed policy installed).
        for queue in multi.executor("g").queues:
            assert queue.capacity is None


class TestWrrArbitration:
    def test_ledger_conserves_and_serves_every_tenant(self):
        multi = MultiPipelineExecutor(arbitration="wrr")
        for name, qos in (("g", "gold"), ("b", "best-effort")):
            decision = multi.add_tenant(
                TenantSpec(name=name, plan=_plan(name), qos=qos)
            )
            assert decision.admitted, decision.reason
        multi.start()
        for _ in range(0, 32, 8):
            multi.submit("g", np.random.default_rng(1).random(8))
            multi.submit("b", np.random.default_rng(2).random(8))
            time.sleep(0.002)
        multi.finish_ingest()
        report = multi.join(timeout=30.0)

        assert report.report("g").telemetry.outputs == 32
        assert report.report("b").telemetry.outputs == 32
        assert report.device is not None
        busy = {t.name: t.busy_seconds for t in report.device.tenants}
        grants = {t.name: t.grants for t in report.device.tenants}
        assert busy["g"] > 0 and busy["b"] > 0
        assert grants["g"] > 0 and grants["b"] > 0
        # Satellite invariant: sum(busy) + idle == slots * elapsed.
        assert report.conserves(tol=1e-6)
        assert report.qos == {"g": "gold", "b": "best-effort"}

    def test_weights_follow_qos_classes(self):
        multi = MultiPipelineExecutor(arbitration="wrr")
        multi.add_tenant(TenantSpec(name="g", plan=_plan("g"), qos="gold"))
        multi.add_tenant(TenantSpec(name="b", plan=_plan("b"), qos="best-effort"))
        multi.start()
        multi.finish_ingest()
        report = multi.join(timeout=30.0)
        weights = {t.name: t.weight for t in report.device.tenants}
        assert weights == {"g": 4.0, "b": 1.0}


class TestTenantLifecycle:
    def test_evict_drains_and_frees_capacity(self):
        multi = MultiPipelineExecutor().start()
        # Gold at AF near 1 would block a second gold; passthrough plans
        # here are tiny (AF ~ 0.01) so use an explicit small capacity.
        multi.add_tenant(TenantSpec(name="a", plan=_plan("a"), qos="gold"))
        multi.submit("a", np.zeros(8))
        time.sleep(0.05)
        report = multi.evict_tenant("a")
        assert report is not None
        assert report.telemetry.items_ingested == 8
        assert report.telemetry.outputs == 8  # evict waits for the drain
        assert "a" not in multi.tenant_names
        assert multi.admission.record("a") is None
        # The name is reusable after eviction.
        decision = multi.add_tenant(TenantSpec(name="a", plan=_plan("a2")))
        assert decision.admitted

    def test_evict_unknown_returns_none(self):
        multi = MultiPipelineExecutor()
        assert multi.evict_tenant("ghost") is None

    def test_rejected_tenant_leaves_no_state(self):
        multi = MultiPipelineExecutor(capacity=0.005)
        # Plan demand exceeds the tiny capacity: guaranteed admission
        # must reject and leave nothing behind.
        decision = multi.add_tenant(
            TenantSpec(name="big", plan=_plan("big"), qos="gold")
        )
        assert not decision.admitted
        assert decision.reason.startswith("capacity")
        assert "big" not in multi.tenant_names
        assert multi.admission.stats()["active_tenants"] == 0

    def test_duplicate_tenant_raises(self):
        multi = MultiPipelineExecutor()
        multi.add_tenant(TenantSpec(name="a", plan=_plan("a")))
        with pytest.raises(SpecError, match="already present"):
            multi.add_tenant(TenantSpec(name="a", plan=_plan("a-dup")))

    def test_late_join_tenant_is_started(self):
        multi = MultiPipelineExecutor().start()
        multi.add_tenant(TenantSpec(name="late", plan=_plan("late")))
        multi.submit("late", np.zeros(8))
        assert multi.in_flight("late") >= 0
        multi.finish_ingest("late")
        report = multi.join(timeout=30.0)
        assert report.report("late").telemetry.outputs == 8

    def test_join_requires_start(self):
        multi = MultiPipelineExecutor()
        with pytest.raises(SimulationError, match="never started"):
            multi.join()

    def test_double_start_rejected(self):
        multi = MultiPipelineExecutor().start()
        with pytest.raises(SimulationError, match="already started"):
            multi.start()
        multi.finish_ingest()
        multi.join(timeout=10.0)

    def test_invalid_arbitration_rejected(self):
        with pytest.raises(SpecError, match="arbitration"):
            MultiPipelineExecutor(arbitration="lottery")
