"""Small consistency checks across the package surface."""

import numpy as np
import pytest

from repro.des.engine import Engine
from repro.solvers.result import SolverResult, SolverStatus


class TestSolverResult:
    def test_ok_only_when_optimal(self):
        x = np.zeros(1)
        assert SolverResult(x, 0.0, SolverStatus.OPTIMAL).ok
        for status in (
            SolverStatus.MAX_ITER,
            SolverStatus.INFEASIBLE,
            SolverStatus.FAILED,
        ):
            assert not SolverResult(x, 0.0, status).ok

    def test_repr_mentions_status_and_objective(self):
        r = SolverResult(np.zeros(1), 1.25, SolverStatus.OPTIMAL, iterations=3)
        text = repr(r)
        assert "optimal" in text and "1.25" in text and "3" in text


class TestRegistryConsistency:
    def test_every_experiment_is_runnable_metadata(self):
        from repro.experiments.registry import EXPERIMENTS

        for exp_id, exp in EXPERIMENTS.items():
            assert exp.id == exp_id
            assert exp.title
            assert exp.paper_artifact
            assert callable(exp.runner)

    def test_ids_are_kebab_case(self):
        from repro.experiments.registry import EXPERIMENTS

        for exp_id in EXPERIMENTS:
            assert exp_id == exp_id.lower()
            assert " " not in exp_id

    def test_cli_list_shows_every_experiment(self, capsys):
        from repro.cli import main
        from repro.experiments.registry import EXPERIMENTS

        main(["list"])
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_matches_pyproject(self):
        import pathlib
        import re

        import repro

        text = pathlib.Path("pyproject.toml").read_text()
        match = re.search(r'^version = "([^"]+)"', text, re.MULTILINE)
        assert match is not None
        assert repro.__version__ == match.group(1)


class TestEngineCalendarParity:
    def test_until_semantics_match(self):
        results = {}
        for kind in ("heap", "calendar"):
            eng = Engine(queue=kind)
            fired = []
            for t in (1.0, 4.0, 9.0):
                eng.schedule(t, lambda t=t: fired.append(t))
            eng.run(until=5.0)
            results[kind] = (list(fired), eng.now)
            eng.run()
            results[kind + "_final"] = list(fired)
        assert results["heap"] == results["calendar"] == ([1.0, 4.0], 5.0)
        assert results["heap_final"] == results["calendar_final"]

    def test_cancellation_matches(self):
        for kind in ("heap", "calendar"):
            eng = Engine(queue=kind)
            fired = []
            keep = eng.schedule(2.0, lambda: fired.append("keep"))
            drop = eng.schedule(1.0, lambda: fired.append("drop"))
            drop.cancel()
            eng.run()
            assert fired == ["keep"], kind
            assert keep.cancelled is False
