"""Tests for the live executor's thread-safe queues (repro.runtime.queues)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.resilience.shedding import make_shed_policy
from repro.runtime.queues import LiveQueue, OriginStore


class TestOriginStore:
    def test_append_returns_consecutive_ids(self):
        store = OriginStore()
        ids = store.append(1.5, 3)
        assert ids.tolist() == [0, 1, 2]
        more = store.append(2.5, 2)
        assert more.tolist() == [3, 4]

    def test_lookup_returns_origins(self):
        store = OriginStore()
        store.append(1.0, 2)
        store.append(5.0, 1)
        got = store.lookup(np.asarray([2, 0]))
        assert got.tolist() == [5.0, 1.0]

    def test_lookup_unknown_id_raises(self):
        store = OriginStore()
        store.append(0.0, 1)
        with pytest.raises(SimulationError):
            store.lookup(np.asarray([7]))


class TestLiveQueueFifo:
    def test_push_pop_preserves_order(self):
        q = LiveQueue("q")
        q.push(np.asarray([0, 1, 2]), None)
        q.push(np.asarray([3, 4]), None)
        ids, payload = q.pop_up_to(10)
        assert ids.tolist() == [0, 1, 2, 3, 4]
        assert payload is None

    def test_pop_splits_chunks(self):
        q = LiveQueue("q")
        q.push(np.asarray([0, 1, 2, 3]), np.asarray([10, 11, 12, 13]))
        ids, payload = q.pop_up_to(3)
        assert ids.tolist() == [0, 1, 2]
        assert payload.tolist() == [10, 11, 12]
        ids, payload = q.pop_up_to(3)
        assert ids.tolist() == [3]
        assert payload.tolist() == [13]

    def test_pop_empty_returns_empty(self):
        q = LiveQueue("q")
        ids, payload = q.pop_up_to(4)
        assert ids.size == 0
        assert payload is None

    def test_payload_rows_stay_aligned_with_ids(self):
        q = LiveQueue("q")
        rows = np.arange(8).reshape(4, 2)
        q.push(np.asarray([5, 6, 7, 8]), rows)
        ids, payload = q.pop_up_to(2)
        assert ids.tolist() == [5, 6]
        assert payload.tolist() == [[0, 1], [2, 3]]

    def test_depth_and_counters(self):
        q = LiveQueue("q")
        q.push(np.asarray([0, 1, 2]), None)
        assert q.depth == 3
        assert q.max_depth == 3
        q.pop_up_to(2)
        assert q.depth == 1
        assert q.total_pushed == 3
        assert q.total_popped == 2
        assert q.max_depth == 3


class TestLiveQueueCapacity:
    def test_overflow_without_policy_raises_and_rejects_whole_batch(self):
        q = LiveQueue("q", capacity=2)
        q.push(np.asarray([0]), None)
        with pytest.raises(SimulationError, match="overflow"):
            q.push(np.asarray([1, 2]), None)
        # Fail-fast must not partially enqueue.
        assert q.depth == 1

    def test_shed_policy_keeps_capacity_items(self):
        q = LiveQueue("q", capacity=3, shed_policy=make_shed_policy("drop-newest"))
        q.push(np.asarray([0, 1, 2]), None)
        dropped = q.push(np.asarray([3, 4]), None)
        assert q.depth == 3
        assert dropped.size == 2
        assert q.total_shed == 2
        ids, _ = q.pop_up_to(10)
        # drop-newest keeps the oldest three.
        assert ids.tolist() == [0, 1, 2]
        assert sorted(dropped.tolist()) == [3, 4]

    def test_drop_oldest_sheds_from_the_front(self):
        q = LiveQueue("q", capacity=2, shed_policy=make_shed_policy("drop-oldest"))
        q.push(np.asarray([0, 1]), np.asarray([10.0, 11.0]))
        dropped = q.push(np.asarray([2]), np.asarray([12.0]))
        assert sorted(dropped.tolist()) == [0]
        ids, payload = q.pop_up_to(10)
        assert ids.tolist() == [1, 2]
        # Payload rows shed in lockstep with their ids.
        assert payload.tolist() == [11.0, 12.0]

    def test_conservation_invariant(self):
        q = LiveQueue("q", capacity=4, shed_policy=make_shed_policy("drop-newest"))
        rng = np.random.default_rng(0)
        next_id = 0
        for _ in range(50):
            k = int(rng.integers(1, 4))
            q.push(np.arange(next_id, next_id + k), None)
            next_id += k
            if rng.random() < 0.5:
                q.pop_up_to(int(rng.integers(1, 5)))
        assert q.total_popped + q.total_shed + q.depth == q.total_pushed
