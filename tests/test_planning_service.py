"""Async planning service: single-flight dedup and bounded concurrency."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.apps.blast.pipeline import blast_pipeline, calibrated_b
from repro.core.model import RealTimeProblem
from repro.errors import SpecError
from repro.planning.cache import PlanCache
from repro.planning.service import PlanRequest, PlanResponse, PlanningService
from repro.planning.warmstart import PlanOutcome


def _request(tau0: float, deadline: float = 1.5e5, tag=None) -> PlanRequest:
    return PlanRequest(
        problem=RealTimeProblem(blast_pipeline(), tau0, deadline),
        b=calibrated_b(),
        tag=tag,
    )


class TestBatch:
    def test_64_requests_with_duplicates(self):
        """The acceptance-criterion scenario: >= 64 concurrent requests,
        duplicates coalesced via single-flight, order preserved."""
        distinct = [
            _request(tau0, tag=f"p{i}")
            for i, tau0 in enumerate(np.linspace(20.0, 26.0, 8))
        ]
        requests = [
            PlanRequest(d.problem, d.b, tag=f"r{i}")
            for i in range(64)
            for d in [distinct[i % len(distinct)]]
        ]
        cache = PlanCache()
        service = PlanningService(cache, max_concurrency=8)
        responses = service.plan_batch(requests)

        assert len(responses) == 64
        assert [r.tag for r in responses] == [f"r{i}" for i in range(64)]
        for r in responses:
            assert isinstance(r, PlanResponse)
            assert r.solution.feasible
            assert r.source in ("hit", "warm", "cold")
            assert r.seconds >= 0.0
        # 8 distinct keys -> 8 real solves; everything else was either
        # coalesced onto an in-flight solve or an exact cache hit.
        assert cache.stats.stores == 8
        coalesced = sum(r.coalesced for r in responses)
        assert coalesced == cache.stats.coalesced
        assert coalesced + cache.stats.hits == 64 - 8
        assert cache.stats.coalesced > 0  # observable in telemetry
        assert "coalesced" in cache.telemetry().render()

    def test_identical_burst_costs_one_solve(self):
        cache = PlanCache()
        service = PlanningService(cache, max_concurrency=4)
        responses = service.plan_batch([_request(20.0) for _ in range(16)])
        assert len(responses) == 16
        assert cache.stats.stores == 1
        assert sum(not r.coalesced for r in responses) == 1

    def test_solutions_match_uncached_solve(self):
        from repro.core.enforced_waits import EnforcedWaitsProblem

        req = _request(20.0)
        service = PlanningService(PlanCache())
        (resp,) = service.plan_batch([req])
        cold = EnforcedWaitsProblem(req.problem, req.b).solve()
        np.testing.assert_array_equal(resp.solution.periods, cold.periods)


class TestSingleFlight:
    def test_inflight_waiters_share_one_outcome(self, monkeypatch):
        """Pin the solver in a gate so requests genuinely overlap, then
        assert exactly one underlying solve ran."""
        calls = []
        gate = threading.Event()

        def fake_solve_plan(problem, b=None, **kwargs):
            calls.append(problem.tau0)
            gate.wait(timeout=5.0)
            sol = object.__new__(
                __import__(
                    "repro.core.enforced_waits", fromlist=["x"]
                ).EnforcedWaitsSolution
            )
            return PlanOutcome(sol, "k", "cold", 0.0)

        monkeypatch.setattr(
            "repro.planning.service.solve_plan", fake_solve_plan
        )

        async def scenario():
            service = PlanningService(PlanCache(), max_concurrency=4)
            req = _request(20.0)
            tasks = [
                asyncio.ensure_future(service.plan(req)) for _ in range(6)
            ]
            await asyncio.sleep(0.05)  # let all six reach the service
            gate.set()
            return await asyncio.gather(*tasks)

        responses = asyncio.run(scenario())
        assert len(calls) == 1
        assert sum(r.coalesced for r in responses) == 5
        sols = {id(r.solution) for r in responses}
        assert len(sols) == 1

    def test_owner_failure_propagates_to_waiters(self, monkeypatch):
        gate = threading.Event()

        def failing_solve_plan(problem, b=None, **kwargs):
            gate.wait(timeout=5.0)
            raise RuntimeError("injected solver crash")

        monkeypatch.setattr(
            "repro.planning.service.solve_plan", failing_solve_plan
        )

        async def scenario():
            service = PlanningService(PlanCache(), max_concurrency=2)
            req = _request(20.0)
            tasks = [
                asyncio.ensure_future(service.plan(req)) for _ in range(3)
            ]
            await asyncio.sleep(0.05)
            gate.set()
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_failed_solve_rejects_every_coalesced_waiter(self, monkeypatch):
        """Regression: >= 3 requests coalesced onto one failing solve
        must *each* receive the solver's exception — none may hang or
        resolve with a bogus solution."""
        gate = threading.Event()
        calls = []

        def failing_solve_plan(problem, b=None, **kwargs):
            calls.append(problem.tau0)
            gate.wait(timeout=5.0)
            raise ValueError("injected solver crash")

        monkeypatch.setattr(
            "repro.planning.service.solve_plan", failing_solve_plan
        )

        async def scenario():
            service = PlanningService(PlanCache(), max_concurrency=4)
            req = _request(20.0)
            leader = asyncio.ensure_future(service.plan(req))
            await asyncio.sleep(0.05)  # leader's solve is in flight
            waiters = [
                asyncio.ensure_future(service.plan(req)) for _ in range(3)
            ]
            await asyncio.sleep(0.05)  # all three coalesce onto it
            gate.set()
            return await asyncio.gather(
                leader, *waiters, return_exceptions=True
            )

        results = asyncio.run(scenario())
        assert len(calls) == 1  # single-flight held: one real solve
        assert len(results) == 4
        for r in results:
            assert isinstance(r, ValueError)
            assert "injected solver crash" in str(r)

    def test_cancelled_leader_rejects_waiters_with_real_error(
        self, monkeypatch
    ):
        """Regression: cancelling the single-flight leader must not
        deliver a bare CancelledError to coalesced waiters (gather()
        would tear the whole batch down as if *they* were cancelled);
        they get an actionable SolverError instead."""
        from repro.errors import SolverError

        gate = threading.Event()

        def slow_solve_plan(problem, b=None, **kwargs):
            gate.wait(timeout=5.0)
            raise RuntimeError("unreached")

        monkeypatch.setattr(
            "repro.planning.service.solve_plan", slow_solve_plan
        )

        async def scenario():
            service = PlanningService(PlanCache(), max_concurrency=2)
            req = _request(20.0)
            leader = asyncio.ensure_future(service.plan(req))
            await asyncio.sleep(0.05)
            waiters = [
                asyncio.ensure_future(service.plan(req)) for _ in range(3)
            ]
            await asyncio.sleep(0.05)
            leader.cancel()
            await asyncio.sleep(0.05)
            gate.set()
            return await asyncio.gather(
                leader, *waiters, return_exceptions=True
            )

        leader_res, *waiter_res = asyncio.run(scenario())
        assert isinstance(leader_res, asyncio.CancelledError)
        for r in waiter_res:
            assert isinstance(r, SolverError)
            assert "cancelled" in str(r)
            assert "resubmit" in str(r)


class TestConcurrencyBound:
    def test_semaphore_caps_parallel_solves(self, monkeypatch):
        limit = 3
        active = 0
        high_water = 0
        lock = threading.Lock()

        def slow_solve_plan(problem, b=None, **kwargs):
            nonlocal active, high_water
            with lock:
                active += 1
                high_water = max(high_water, active)
            try:
                threading.Event().wait(0.05)
                sol = object.__new__(
                    __import__(
                        "repro.core.enforced_waits", fromlist=["x"]
                    ).EnforcedWaitsSolution
                )
                return PlanOutcome(sol, "k", "cold", 0.0)
            finally:
                with lock:
                    active -= 1

        monkeypatch.setattr(
            "repro.planning.service.solve_plan", slow_solve_plan
        )
        service = PlanningService(PlanCache(), max_concurrency=limit)
        requests = [_request(20.0 + i) for i in range(10)]
        responses = service.plan_batch(requests)
        assert len(responses) == 10
        assert high_water <= limit

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(SpecError):
            PlanningService(max_concurrency=0)


class TestStream:
    def test_stream_yields_every_response(self):
        service = PlanningService(PlanCache(), max_concurrency=4)
        requests = [_request(20.0 + i, tag=f"s{i}") for i in range(5)]

        async def scenario():
            return [r async for r in service.stream(requests)]

        responses = asyncio.run(scenario())
        assert sorted(r.tag for r in responses) == [f"s{i}" for i in range(5)]
        assert all(r.solution.feasible for r in responses)

    def test_abandoned_stream_awaits_cancelled_tasks(self, monkeypatch):
        """Regression: breaking out of ``stream()`` early must cancel
        *and await* the remaining tasks — no task may outlive the
        generator (asyncio warns about pending tasks at loop shutdown,
        and the solve threads would keep running unobserved)."""
        gate = threading.Event()

        def slow_solve_plan(problem, b=None, **kwargs):
            # The tau0=20 request resolves instantly; every other solve
            # blocks on the gate so its task is still pending when the
            # consumer abandons the stream.
            if problem.tau0 != 20.0:
                gate.wait(timeout=5.0)
            sol = object.__new__(
                __import__(
                    "repro.core.enforced_waits", fromlist=["x"]
                ).EnforcedWaitsSolution
            )
            return PlanOutcome(sol, f"k{problem.tau0}", "cold", 0.0)

        monkeypatch.setattr(
            "repro.planning.service.solve_plan", slow_solve_plan
        )

        async def scenario():
            service = PlanningService(PlanCache(), max_concurrency=8)
            requests = [_request(20.0 + i) for i in range(6)]
            stream = service.stream(requests)
            async for _ in stream:
                break  # abandon after the first response
            gate.set()  # let the blocked solve threads finish
            await stream.aclose()
            # After aclose() returns, every task this stream spawned is
            # done (cancelled or finished) — nothing pending remains.
            return [
                t
                for t in asyncio.all_tasks()
                if t is not asyncio.current_task() and not t.done()
            ]

        try:
            pending = asyncio.run(scenario())
        finally:
            gate.set()  # never deadlock the solver threads on failure
        assert pending == []
