"""Tests for LinUCB, the plan library, and the bandit policy."""

import numpy as np
import pytest

from repro.control import (
    BanditPolicy,
    ControlEnvConfig,
    DriftSchedule,
    LinUCB,
    PipelineControlEnv,
    PlanLibrary,
    Regime,
    run_episode,
)
from repro.errors import SpecError
from repro.planning.cache import PlanCache


def _config(n_items=500):
    n = 3
    nominal = Regime.nominal(n)
    slow = Regime("slow", np.array([1.4, 1.0, 1.0]), np.ones(n))
    gainy = Regime("gainy", np.ones(n), np.array([1.0, 1.3, 1.0]))
    schedule = DriftSchedule.seeded(
        7, (nominal, slow, gainy), horizon=400.0, mean_dwell=80.0
    )
    return ControlEnvConfig(
        service_times=(0.08, 0.1, 0.06),
        mean_gains=(0.9, 2.0, 0.7),
        vector_width=8,
        tau0=0.05,
        deadline=5.0,
        n_items=n_items,
        segment_time=5.0,
        schedule=schedule,
        arrival="fixed",
        rate_scale=1.0,
    )


class TestLinUCB:
    def test_rejects_bad_parameters(self):
        with pytest.raises(SpecError):
            LinUCB(0, 3)
        with pytest.raises(SpecError):
            LinUCB(2, 0)
        with pytest.raises(SpecError):
            LinUCB(2, 3, alpha=-1.0)
        with pytest.raises(SpecError):
            LinUCB(2, 3, ridge=0.0)

    def test_context_shape_checked(self):
        b = LinUCB(2, 3)
        with pytest.raises(SpecError):
            b.select(np.ones(4))
        with pytest.raises(SpecError):
            b.update(0, np.array([1.0, np.nan, 0.0]), 1.0)
        with pytest.raises(SpecError):
            b.update(5, np.ones(3), 1.0)
        with pytest.raises(SpecError):
            b.update(0, np.ones(3), float("inf"))

    def test_learns_context_dependent_best_arm(self):
        # Arm 0 pays in context A, arm 1 pays in context B.
        b = LinUCB(2, 2, alpha=0.5)
        ctx_a = np.array([1.0, 0.0])
        ctx_b = np.array([0.0, 1.0])
        for _ in range(40):
            for ctx, good in ((ctx_a, 0), (ctx_b, 1)):
                arm = b.select(ctx)
                b.update(arm, ctx, 1.0 if arm == good else -1.0)
        b.alpha = 0.0
        assert b.select(ctx_a) == 0
        assert b.select(ctx_b) == 1

    def test_deterministic_tiebreak(self):
        b = LinUCB(3, 2, alpha=0.0)
        assert b.select(np.zeros(2)) == 0


class TestPlanLibrary:
    def test_one_arm_per_regime_via_shared_cache(self):
        cfg = _config()
        cache = PlanCache(capacity=16)
        lib = PlanLibrary(cfg, cache=cache)
        assert len(lib) == 3
        assert {a.name for a in lib.arms} == {"nominal", "slow", "gainy"}
        # Rebuilding through the same cache is all hits.
        lib2 = PlanLibrary(cfg, cache=cache)
        assert all(a.source == "hit" for a in lib2.arms)

    def test_closest_arm_matches_regime(self):
        cfg = _config()
        lib = PlanLibrary(cfg)
        slow = cfg.schedule.regimes[1]
        idx = lib.closest_arm(slow.service_scale, slow.gain_scale)
        assert lib.arms[idx].name == "slow"

    def test_empty_regimes_rejected(self):
        with pytest.raises(SpecError):
            PlanLibrary(_config(), regimes=())


class TestBanditPolicy:
    def test_learns_to_match_drifted_regimes(self):
        # After wide-alpha pretraining the bandit must pull the matching
        # arm on drifted segments (where the other arms are unstable).
        # At the *nominal* point several arms are stable at near-equal
        # reward, so arm identity there is deliberately not asserted.
        cfg = _config(n_items=3000)
        lib = PlanLibrary(cfg)
        policy = BanditPolicy(lib, alpha=0.4)
        env = PipelineControlEnv(cfg)
        for seed in (100, 101, 102, 103, 104, 105):
            run_episode(env, policy, seed=seed)
        policy.linucb.alpha = 0.05
        policy.selections.clear()
        result = run_episode(env, policy, seed=0)
        pulls = np.asarray(policy.selections)
        regimes = result.regimes[: len(pulls)]
        # Skip the two post-switch segments: the EWMA features lag the
        # regime, so those pulls are made on stale context by design.
        fresh = np.ones(len(pulls), dtype=bool)
        for k in np.flatnonzero(np.diff(regimes) != 0):
            fresh[k + 1 : k + 3] = False
        drifted = (regimes != 0) & fresh
        assert drifted.sum() >= 5
        agree = float(np.mean(pulls[drifted] == regimes[drifted]))
        assert agree > 0.6, f"drifted arm/regime agreement only {agree:.2f}"
        assert result.total_misses == 0

    def test_bandit_beats_stale_nominal_under_drift(self):
        cfg = _config(n_items=2000)
        lib = PlanLibrary(cfg)
        policy = BanditPolicy(lib, alpha=0.4)
        env = PipelineControlEnv(cfg)
        for seed in (100, 101, 102, 103):
            run_episode(env, policy, seed=seed)
        policy.linucb.alpha = 0.05
        bandit_result = run_episode(env, policy, seed=0)

        class StaleNominal:
            name = "stale"

            def begin_episode(self, env):
                pass

            def act(self, obs, env):
                return lib.arms[0].waits

            def observe(self, reward):
                pass

        stale_result = run_episode(env, StaleNominal(), seed=0)
        assert bandit_result.total_reward > stale_result.total_reward
        assert bandit_result.total_misses <= stale_result.total_misses

    def test_propose_live_protocol(self):
        from repro.runtime.calibration import CalibrationSnapshot

        cfg = _config()
        lib = PlanLibrary(cfg)
        policy = BanditPolicy(lib, alpha=0.1)
        n = cfg.n_nodes

        def snap(warmed=True, s_ratio=1.0):
            services = np.asarray(cfg.service_times) * s_ratio
            return CalibrationSnapshot(
                services=services,
                gains=np.asarray(cfg.mean_gains),
                planned_services=np.asarray(cfg.service_times),
                planned_gains=np.asarray(cfg.mean_gains),
                observations=np.full(n, 10),
                warmed=warmed,
            )

        assert policy.propose_live(snap(warmed=False), 0.0) is None
        # Make arm 0 clearly dominate at the nominal context so repeated
        # calls keep selecting it (fresh statistics would rotate arms).
        policy.linucb.alpha = 0.0
        # The live nominal context: bias 1, all log-ratios/depths 0.
        nominal_ctx = np.concatenate(([1.0], np.zeros(3 * n)))
        for arm in range(len(lib)):
            for _ in range(5):
                policy.linucb.update(
                    arm, nominal_ctx, 1.0 if arm == 0 else -1.0
                )
        first = policy.propose_live(snap(), 1.0)
        assert first is not None and first.shape == (n,)
        assert np.allclose(first, lib.arms[0].waits)
        # Same arm again -> no swap proposed.
        assert policy.propose_live(snap(), 2.0) is None
