"""Tests for the NIDS application, especially Aho-Corasick."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.nids.aho_corasick import AhoCorasick
from repro.apps.nids.inspector import measure_nids_gains, nids_pipeline
from repro.apps.nids.packets import (
    DEFAULT_RULES,
    PacketStreamConfig,
    Rule,
    synth_packets,
)
from repro.errors import SpecError


class TestAhoCorasick:
    def test_classic_example(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        assert sorted(ac.find(b"ushers")) == [(1, 1), (2, 0), (2, 3)]

    def test_overlapping_matches(self):
        ac = AhoCorasick([b"aa"])
        assert ac.find(b"aaaa") == [(0, 0), (1, 0), (2, 0)]

    def test_pattern_inside_pattern(self):
        ac = AhoCorasick([b"ab", b"abab"])
        found = sorted(ac.find(b"abab"))
        assert (0, 0) in found  # "ab" at 0
        assert (2, 0) in found  # "ab" at 2
        assert (0, 1) in found  # "abab" at 0

    def test_count_matches_find(self):
        ac = AhoCorasick([b"ab", b"ba", b"aba"])
        text = b"abababa"
        assert ac.count(text) == len(ac.find(text))

    def test_contains_any(self):
        ac = AhoCorasick([b"xyz"])
        assert ac.contains_any(b"wxyzw")
        assert not ac.contains_any(b"wxyw")

    def test_no_match(self):
        ac = AhoCorasick([b"needle"])
        assert ac.find(b"haystack") == []

    def test_from_strings(self):
        ac = AhoCorasick.from_strings(["abc"])
        assert ac.find(b"xxabcxx") == [(2, 0)]

    def test_validation(self):
        with pytest.raises(SpecError):
            AhoCorasick([])
        with pytest.raises(SpecError):
            AhoCorasick([b""])

    @settings(max_examples=40)
    @given(
        patterns=st.lists(
            st.binary(min_size=1, max_size=4), min_size=1, max_size=5, unique=True
        ),
        text=st.binary(max_size=80),
    )
    def test_property_matches_naive_search(self, patterns, text):
        """AC finds exactly what naive substring scanning finds."""
        ac = AhoCorasick(patterns)
        expected = set()
        for pidx, pat in enumerate(patterns):
            start = 0
            while True:
                i = text.find(pat, start)
                if i < 0:
                    break
                expected.add((i, pidx))
                start = i + 1
        assert set(ac.find(text)) == expected


class TestPackets:
    def test_malicious_packets_match_their_rule(self, rng):
        cfg = PacketStreamConfig(n_packets=2000, malicious_fraction=0.2)
        packets = synth_packets(cfg, rng)
        matcher = AhoCorasick([r.pattern for r in cfg.rules])
        for pkt in packets:
            if pkt.is_malicious:
                assert matcher.contains_any(pkt.payload)

    def test_rule_validation(self):
        with pytest.raises(SpecError):
            Rule(b"", 80)
        with pytest.raises(SpecError):
            Rule(b"x", 70000)
        with pytest.raises(SpecError):
            Rule(b"x", 80, max_offset=-1)

    def test_config_validation(self):
        with pytest.raises(SpecError):
            PacketStreamConfig(n_packets=0)
        with pytest.raises(SpecError):
            PacketStreamConfig(malicious_fraction=1.5)


class TestInspectorGains:
    @pytest.fixture(scope="class")
    def trace(self):
        return measure_nids_gains(
            config=PacketStreamConfig(n_packets=3000, malicious_fraction=0.05),
            seed=4,
        )

    def test_stage_shapes(self, trace):
        g = trace.mean_gains
        assert 0.0 < g[0] < 1.0  # port filter
        assert g[1] >= 0.0
        assert 0.0 < g[2] <= 1.0  # decoys rejected here
        assert g[3] == 1.0

    def test_decoys_rejected_by_rule_eval(self, trace):
        # Some content matches fail rule evaluation (wrong port decoys).
        assert trace.mean_gains[2] < 1.0

    def test_alerts_cover_malicious(self, trace):
        assert trace.n_alerts >= trace.n_malicious  # every plant matched

    def test_pipeline_constructs(self, trace):
        p = nids_pipeline(trace)
        assert p.n_nodes == 4
        assert p.vector_width == 128
