"""Schema smoke test for the plan-cache benchmark harness."""

from __future__ import annotations

import json

import pytest

from benchmarks.perf import plan_cache as bench


@pytest.mark.slow
def test_smoke_report_sections_and_invariants(tmp_path):
    report = bench.run_all(smoke=True)
    json.dumps(report)  # JSON-serializable as emitted by main()

    sweep = report["repeated_sweep"]
    assert sweep["solutions_equal"] is True
    assert sweep["total_solves"] == sweep["grid_points"] * sweep["repeats"]
    assert sweep["cache_hits"] + sweep["cache_misses"] == sweep["total_solves"]
    assert sweep["speedup"] > 1.0

    warm = report["warmstart"]
    assert 0.0 <= warm["warm_accept_rate"] <= 1.0
    assert warm["max_active_fraction_deviation"] < 1e-6

    batch = report["service_batch"]
    assert batch["all_resolved"] is True
    assert batch["requests"] == 64
    assert batch["solves"] == batch["distinct_configs"]
    assert batch["coalesced"] > 0
    assert sum(batch["sources"].values()) == batch["requests"]


@pytest.mark.slow
def test_main_writes_report_and_gates_speedup(tmp_path, capsys):
    out = tmp_path / "bench.json"
    rc = bench.main(["--smoke", "--out", str(out), "--min-speedup", "1.5"])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema_version"] == bench.SCHEMA_VERSION
    assert "wrote" in capsys.readouterr().out

    # An absurd floor must trip the gate.
    rc = bench.main(["--smoke", "--out", str(out), "--min-speedup", "1e9"])
    assert rc == 1
    assert "below" in capsys.readouterr().err
