"""Tests for the enforced-waits discrete-event simulator."""

import math

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.arrivals.trace import TraceArrivals
from repro.des.trace import TraceRecorder
from repro.errors import SimulationError, SpecError
from repro.sim.enforced import EnforcedWaitsSimulator


class TestDeterministicPipeline:
    """Pass-through pipeline: everything is exactly predictable."""

    def test_all_items_exit_once(self, passthrough_pipeline):
        sim = EnforcedWaitsSimulator(
            passthrough_pipeline,
            waits=np.zeros(3),
            arrivals=FixedRateArrivals(2.0),
            deadline=1e6,
            n_items=100,
        )
        m = sim.run()
        assert m.outputs == 100
        assert m.missed_items == 0

    def test_latency_of_single_item(self, passthrough_pipeline):
        # One item at t=0; nodes fire at t=0 (empty... item arrives at 0
        # with priority -1 so the t=0 firing consumes it).
        sim = EnforcedWaitsSimulator(
            passthrough_pipeline,
            waits=np.zeros(3),
            arrivals=TraceArrivals([0.0]),
            deadline=1e6,
            n_items=1,
        )
        m = sim.run()
        # Service times 5, 7, 3: node0 fires 0-5; node1's next firing
        # after its empty t=0 firing is t=7 (period 7), consuming at 7,
        # done 14; node2 fires at 15 (period 3, firings 0,3,6,9,12,15),
        # done 18.
        assert m.outputs == 1
        assert m.mean_latency == pytest.approx(18.0)

    def test_active_fraction_matches_objective(self, passthrough_pipeline):
        waits = np.asarray([5.0, 3.0, 7.0])
        sim = EnforcedWaitsSimulator(
            passthrough_pipeline,
            waits=waits,
            arrivals=FixedRateArrivals(5.0),
            deadline=1e6,
            n_items=2000,
        )
        m = sim.run()
        t = passthrough_pipeline.service_times
        predicted = float(np.mean(t / (t + waits)))
        assert m.active_fraction == pytest.approx(predicted, rel=0.02)

    def test_firing_periods_respected(self, passthrough_pipeline):
        trace = TraceRecorder(kinds={"fire"})
        sim = EnforcedWaitsSimulator(
            passthrough_pipeline,
            waits=np.asarray([2.0, 0.0, 0.0]),
            arrivals=FixedRateArrivals(10.0),
            deadline=1e6,
            n_items=20,
            trace=trace,
        )
        sim.run()
        fires = [r.time for r in trace.of_kind("fire") if r.subject == "p0"]
        gaps = np.diff(fires)
        assert np.allclose(gaps, 7.0)  # t0 + w0 = 5 + 2


class TestStochasticPipeline:
    def test_blast_conservation(self, blast, calibrated_b):
        from repro.core.enforced_waits import solve_enforced_waits
        from repro.core.model import RealTimeProblem

        sol = solve_enforced_waits(
            RealTimeProblem(blast, 20.0, 2e5), calibrated_b
        )
        sim = EnforcedWaitsSimulator(
            blast, sol.waits, FixedRateArrivals(20.0), 2e5, 3000, seed=3
        )
        m = sim.run()
        # Expected outputs ~ n * G3 * g3(=1) ~ 3000*0.0242*... node 3 is
        # Bernoulli(1.0) so outputs = inputs to node 3 that pass stage 2.
        expected = 3000 * blast.total_gains[3]
        assert m.outputs == pytest.approx(expected, rel=0.35)
        assert m.miss_rate <= 0.01

    def test_seed_reproducibility(self, blast, calibrated_b):
        def run(seed):
            sim = EnforcedWaitsSimulator(
                blast,
                np.full(4, 100.0),
                FixedRateArrivals(20.0),
                1e6,
                500,
                seed=seed,
            )
            return sim.run()

        a, b_run = run(7), run(7)
        assert a.outputs == b_run.outputs
        assert a.active_fraction == b_run.active_fraction
        assert a.mean_latency == b_run.mean_latency
        c = run(8)
        assert (a.outputs != c.outputs) or (a.mean_latency != c.mean_latency)

    def test_occupancy_improves_with_waits(self, blast):
        def mean_occ(waits0):
            sim = EnforcedWaitsSimulator(
                blast,
                np.asarray([waits0, 0.0, 0.0, 0.0]),
                FixedRateArrivals(20.0),
                1e7,
                2000,
                seed=0,
            )
            return sim.run().mean_occupancy[0]

        assert mean_occ(2000.0) > mean_occ(0.0)

    def test_vacation_policy_reduces_active(self, blast):
        kwargs = dict(
            waits=np.full(4, 500.0),
            arrivals=FixedRateArrivals(50.0),
            deadline=1e7,
            n_items=1000,
            seed=0,
        )
        charged = EnforcedWaitsSimulator(
            blast, charge_empty_firings=True, **kwargs
        ).run()
        vacation = EnforcedWaitsSimulator(
            blast, charge_empty_firings=False, **kwargs
        ).run()
        assert vacation.active_fraction < charged.active_fraction
        # Same dynamics otherwise: identical outputs and latencies.
        assert vacation.outputs == charged.outputs
        assert vacation.mean_latency == charged.mean_latency


class TestTimingModels:
    def test_gps_capped_equals_idealized(self, blast, calibrated_b):
        kwargs = dict(
            waits=np.full(4, 300.0),
            arrivals=FixedRateArrivals(20.0),
            deadline=1e7,
            n_items=800,
            seed=4,
        )
        ideal = EnforcedWaitsSimulator(blast, timing="idealized", **kwargs).run()
        capped = EnforcedWaitsSimulator(blast, timing="gps-capped", **kwargs).run()
        # Capped GPS drains every job at exactly rate 1/N, so firing
        # durations equal t_i; tiny float drift in the fluid integrator
        # can still reorder same-instant events, so the match is
        # statistical rather than bitwise.
        assert capped.active_fraction == pytest.approx(
            ideal.active_fraction, rel=0.02
        )
        assert capped.mean_latency == pytest.approx(ideal.mean_latency, rel=0.05)
        assert capped.outputs == pytest.approx(ideal.outputs, rel=0.02)

    def test_gps_never_slower(self, blast):
        kwargs = dict(
            waits=np.full(4, 300.0),
            arrivals=FixedRateArrivals(20.0),
            deadline=1e7,
            n_items=800,
            seed=4,
        )
        ideal = EnforcedWaitsSimulator(blast, timing="idealized", **kwargs).run()
        gps = EnforcedWaitsSimulator(blast, timing="gps", **kwargs).run()
        # Work-conserving sharing only speeds firings up.
        assert gps.active_fraction <= ideal.active_fraction + 1e-9
        assert gps.max_latency <= ideal.max_latency + 1e-9

    def test_unknown_timing_rejected(self, blast):
        with pytest.raises(SpecError):
            EnforcedWaitsSimulator(
                blast,
                np.zeros(4),
                FixedRateArrivals(10.0),
                1e5,
                10,
                timing="quantum",
            )


class TestValidation:
    def test_waits_shape(self, blast):
        with pytest.raises(SpecError):
            EnforcedWaitsSimulator(
                blast, np.zeros(3), FixedRateArrivals(10.0), 1e5, 10
            )

    def test_negative_waits(self, blast):
        with pytest.raises(SpecError):
            EnforcedWaitsSimulator(
                blast, np.asarray([-1.0, 0, 0, 0]), FixedRateArrivals(10.0), 1e5, 10
            )

    def test_single_use(self, tiny_pipeline):
        sim = EnforcedWaitsSimulator(
            tiny_pipeline, np.zeros(2), FixedRateArrivals(10.0), 1e5, 10
        )
        sim.run()
        with pytest.raises(SimulationError, match="single-use"):
            sim.run()

    def test_bad_deadline_and_items(self, tiny_pipeline):
        with pytest.raises(SpecError):
            EnforcedWaitsSimulator(
                tiny_pipeline, np.zeros(2), FixedRateArrivals(1.0), 0.0, 10
            )
        with pytest.raises(SpecError):
            EnforcedWaitsSimulator(
                tiny_pipeline, np.zeros(2), FixedRateArrivals(1.0), 1.0, 0
            )
