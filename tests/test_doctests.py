"""Run the executable examples embedded in docstrings."""

import doctest

import pytest

import repro
import repro.apps.nids.aho_corasick
import repro.des.engine
import repro.des.rng


@pytest.mark.parametrize(
    "module",
    [
        repro.des.engine,
        repro.des.rng,
        repro.apps.nids.aho_corasick,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert attempted > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0


def test_package_docstring_example():
    """The quickstart in repro/__init__ must stay runnable."""
    failures = doctest.testmod(repro, verbose=False).failed
    assert failures == 0
