"""Warm-start solver layer: hit/warm/cold resolution and equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.blast.pipeline import blast_pipeline, calibrated_b
from repro.core.enforced_waits import EnforcedWaitsProblem
from repro.core.model import RealTimeProblem
from repro.errors import SolverError
from repro.planning.cache import PlanCache
from repro.planning.warmstart import (
    default_cache,
    reset_default_cache,
    solve_plan,
    warm_start_solve,
)

POINT = (20.0, 1.5e5)


@pytest.fixture
def problem() -> RealTimeProblem:
    return RealTimeProblem(blast_pipeline(), *POINT)


@pytest.fixture
def cache() -> PlanCache:
    return PlanCache(capacity=64)


class TestResolutionOrder:
    def test_cold_then_exact_hit_is_bit_identical(self, problem, cache):
        cold = solve_plan(problem, calibrated_b(), cache=cache)
        assert cold.source == "cold"
        hit = solve_plan(problem, calibrated_b(), cache=cache)
        assert hit.source == "hit"
        assert hit.key == cold.key
        assert hit.solution is cold.solution  # literally the same object
        assert np.array_equal(hit.solution.periods, cold.solution.periods)
        assert cache.stats.hits == 1

    def test_disk_hit_is_bit_identical(self, problem, tmp_path):
        path = tmp_path / "plans.json"
        first = PlanCache(path=path)
        cold = solve_plan(problem, calibrated_b(), cache=first)
        first.flush()

        second = PlanCache(path=path)
        hit = solve_plan(problem, calibrated_b(), cache=second)
        assert hit.source == "hit"
        assert np.array_equal(hit.solution.periods, cold.solution.periods)
        assert hit.solution.active_fraction == cold.solution.active_fraction

    def test_warm_start_on_perturbed_operating_point(self, problem, cache):
        b = calibrated_b()
        solve_plan(problem, b, cache=cache)
        warm = solve_plan(problem.with_tau0(21.0), b, cache=cache)
        assert warm.source == "warm"
        assert warm.certificate is not None
        assert warm.certificate.satisfied
        assert cache.stats.warm_hits == 1

        # Warm result must match an independent cold solve within the
        # documented tolerance (docs/planning.md): certificate tol 1e-9,
        # equivalence tol 1e-6 on periods and active fraction.
        cold = EnforcedWaitsProblem(problem.with_tau0(21.0), b).solve()
        np.testing.assert_allclose(
            warm.solution.periods, cold.periods, rtol=1e-6, atol=1e-9
        )
        assert warm.solution.active_fraction == pytest.approx(
            cold.active_fraction, rel=1e-6
        )

    def test_warm_solution_respects_constraints(self, problem, cache):
        b = calibrated_b()
        solve_plan(problem, b, cache=cache)
        warm = solve_plan(problem.with_deadline(2.0e5), b, cache=cache)
        assert warm.source == "warm"
        ewp = EnforcedWaitsProblem(problem.with_deadline(2.0e5), b)
        A, c, _labels = ewp.constraint_system()
        assert (A @ warm.solution.periods <= c + 1e-9).all()
        assert (warm.solution.periods >= ewp.t - 1e-12).all()

    def test_rejected_warm_start_falls_back_cold(
        self, problem, cache, monkeypatch
    ):
        b = calibrated_b()
        solve_plan(problem, b, cache=cache)

        def boom(*args, **kwargs):
            raise SolverError("injected barrier failure")

        monkeypatch.setattr(
            "repro.planning.warmstart.barrier_solve", boom
        )
        out = solve_plan(problem.with_tau0(22.0), b, cache=cache)
        assert out.source == "cold"
        assert out.solution.feasible
        assert cache.stats.warm_rejects == 1
        assert cache.stats.warm_hits == 0

    def test_infeasible_point_cached_without_warm_attempt(
        self, problem, cache
    ):
        b = calibrated_b()
        solve_plan(problem, b, cache=cache)
        # Deadline far below what the chain can meet: infeasible.
        bad = problem.with_deadline(1.0)
        out = solve_plan(bad, b, cache=cache)
        assert out.source == "cold"
        assert not out.solution.feasible
        assert cache.stats.warm_hits == 0
        again = solve_plan(bad, b, cache=cache)
        assert again.source == "hit"
        assert not again.solution.feasible

    def test_warm_start_disabled(self, problem, cache):
        b = calibrated_b()
        solve_plan(problem, b, cache=cache)
        out = solve_plan(
            problem.with_tau0(23.0), b, cache=cache, warm_start=False
        )
        assert out.source == "cold"
        assert cache.stats.warm_hits == 0


class TestWarmStartSolve:
    def test_bad_seed_rejected(self, problem):
        ewp = EnforcedWaitsProblem(problem, calibrated_b())
        assert warm_start_solve(ewp, np.full(ewp.n, np.nan)) is None
        assert warm_start_solve(ewp, np.ones(ewp.n - 1)) is None

    def test_accepted_solve_carries_certificate(self, problem):
        ewp = EnforcedWaitsProblem(problem, calibrated_b())
        cold = ewp.solve()
        perturbed = EnforcedWaitsProblem(
            problem.with_tau0(20.5), calibrated_b()
        )
        got = warm_start_solve(perturbed, cold.periods)
        assert got is not None
        solution, cert = got
        assert solution.feasible
        assert solution.method == "warmstart(interior)"
        assert cert.satisfied
        assert solution.solver_result.extra["certificate"] is cert


class TestDefaultCache:
    def test_singleton_and_reset(self):
        reset_default_cache()
        a = default_cache()
        assert default_cache() is a
        reset_default_cache()
        assert default_cache() is not a
        reset_default_cache()
