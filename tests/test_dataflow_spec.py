"""Tests for NodeSpec / PipelineSpec."""

import numpy as np
import pytest

from repro.dataflow.gains import BernoulliGain, CensoredPoissonGain, DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError


class TestNodeSpec:
    def test_valid(self):
        n = NodeSpec("stage", 287.0, BernoulliGain(0.379))
        assert n.mean_gain == pytest.approx(0.379)

    def test_default_gain_is_passthrough(self):
        assert NodeSpec("x", 1.0).mean_gain == 1.0

    def test_rejects_bad_service_time(self):
        with pytest.raises(SpecError):
            NodeSpec("x", 0.0)
        with pytest.raises(SpecError):
            NodeSpec("x", -1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(SpecError):
            NodeSpec("", 1.0)

    def test_rejects_non_distribution_gain(self):
        with pytest.raises(SpecError):
            NodeSpec("x", 1.0, gain=0.5)  # type: ignore[arg-type]


class TestPipelineSpec:
    def test_blast_derived_quantities(self, blast):
        assert blast.n_nodes == 4
        assert blast.vector_width == 128
        G = blast.total_gains
        assert G[0] == 1.0
        assert G[1] == pytest.approx(0.379)
        assert G[2] == pytest.approx(0.379 * 1.92, rel=1e-3)
        assert G[3] == pytest.approx(0.379 * 1.92 * 0.0332, rel=1e-3)
        # per-item cost = sum G_i t_i / v ~ 7.87 cycles (hand-computed)
        assert blast.per_item_cost == pytest.approx(7.87, abs=0.05)

    def test_rejects_empty(self):
        with pytest.raises(SpecError):
            PipelineSpec((), 128)

    def test_rejects_duplicate_names(self):
        nodes = (NodeSpec("a", 1.0), NodeSpec("a", 2.0))
        with pytest.raises(SpecError, match="duplicate"):
            PipelineSpec(nodes, 4)

    def test_rejects_bad_vector_width(self):
        with pytest.raises(SpecError):
            PipelineSpec((NodeSpec("a", 1.0),), 0)

    def test_node_index(self, blast):
        assert blast.node_index("seed_expand") == 1
        with pytest.raises(SpecError):
            blast.node_index("missing")

    def test_with_vector_width(self, blast):
        narrower = blast.with_vector_width(32)
        assert narrower.vector_width == 32
        assert narrower.nodes == blast.nodes
        assert narrower.per_item_cost == pytest.approx(
            blast.per_item_cost * 4, rel=1e-9
        )

    def test_describe_renders(self, blast):
        text = blast.describe()
        assert "seed_filter" in text
        assert "G_i" in text

    def test_list_nodes_coerced_to_tuple(self):
        p = PipelineSpec([NodeSpec("a", 1.0)], 4)  # type: ignore[arg-type]
        assert isinstance(p.nodes, tuple)


class TestFromArrays:
    def test_gain_model_selection(self):
        p = PipelineSpec.from_arrays([287, 955], [0.379, 1.92], 128)
        assert isinstance(p.nodes[0].gain, BernoulliGain)
        assert isinstance(p.nodes[1].gain, CensoredPoissonGain)

    def test_expander_limit_forwarded(self):
        p = PipelineSpec.from_arrays([1.0], [3.0], 8, expander_limit=4)
        assert p.nodes[0].gain.max_outputs == 4

    def test_zero_gain(self):
        p = PipelineSpec.from_arrays([1.0], [0.0], 8)
        assert isinstance(p.nodes[0].gain, DeterministicGain)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SpecError):
            PipelineSpec.from_arrays([1.0, 2.0], [1.0], 8)

    def test_min_periods_equals_service_times(self, blast):
        assert np.allclose(blast.min_periods, blast.service_times)
