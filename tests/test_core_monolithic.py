"""Tests for the monolithic optimization (Figure 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import RealTimeProblem
from repro.core.monolithic import MonolithicProblem, solve_monolithic
from repro.errors import SpecError


class TestTbar:
    def test_matches_hand_computation(self, blast):
        prob = MonolithicProblem(RealTimeProblem(blast, 50.0, 2e5))
        # M=1000: inputs per node = 1000*G = (1000, 379, 727.7, 24.2)
        # firings = ceil(./128) = (8, 3, 6, 1)
        expected = 8 * 287 + 3 * 955 + 6 * 402 + 1 * 2753
        assert prob.tbar(1000) == pytest.approx(expected)

    def test_vectorized_matches_scalar(self, blast):
        prob = MonolithicProblem(RealTimeProblem(blast, 50.0, 2e5))
        ms = np.asarray([1, 7, 100, 12345])
        vec = prob.tbar(ms)
        for i, m in enumerate(ms):
            assert vec[i] == pytest.approx(prob.tbar(int(m)))

    def test_tbar_per_item_tends_to_limit(self, blast):
        prob = MonolithicProblem(RealTimeProblem(blast, 50.0, 1e9))
        assert prob.tbar(10**6) / 10**6 == pytest.approx(
            blast.per_item_cost, rel=1e-3
        )

    def test_rejects_m_below_one(self, blast):
        prob = MonolithicProblem(RealTimeProblem(blast, 50.0, 2e5))
        with pytest.raises(SpecError):
            prob.tbar(0)


class TestConstraints:
    def test_worst_case_scale(self, blast):
        prob = MonolithicProblem(
            RealTimeProblem(blast, 50.0, 2e5), s_scale=1.5
        )
        assert prob.worst_case_time(100) == pytest.approx(
            1.5 * prob.tbar(100)
        )

    def test_param_validation(self, blast):
        rt = RealTimeProblem(blast, 50.0, 2e5)
        with pytest.raises(SpecError):
            MonolithicProblem(rt, b=0)
        with pytest.raises(SpecError):
            MonolithicProblem(rt, s_scale=0.5)

    def test_max_block_from_deadline(self, blast):
        prob = MonolithicProblem(RealTimeProblem(blast, 50.0, 2e5), b=2)
        assert prob.max_block() == int(2e5 // (2 * 50.0))


class TestSolve:
    def test_paper_point_regression(self, blast):
        sol = solve_monolithic(RealTimeProblem(blast, 10.0, 3.5e5))
        assert sol.feasible
        assert sol.active_fraction == pytest.approx(0.789, abs=2e-3)
        assert sol.block_size == 15831

    def test_optimum_is_exact_over_scan(self, blast):
        prob = MonolithicProblem(RealTimeProblem(blast, 80.0, 1e5))
        sol = prob.solve()
        assert sol.feasible
        ms = np.arange(1, prob.max_block() + 1)
        afs = np.asarray(prob.active_fraction(ms))
        feas = np.asarray(prob.feasible(ms))
        assert sol.active_fraction == pytest.approx(float(afs[feas].min()))

    def test_infeasible_fast_arrivals(self, blast):
        sol = solve_monolithic(RealTimeProblem(blast, 3.0, 3.5e5))
        assert not sol.feasible
        assert "stable" in sol.diagnosis or "throughput" in sol.diagnosis

    def test_infeasible_tiny_deadline(self, blast):
        sol = solve_monolithic(RealTimeProblem(blast, 100.0, 50.0))
        assert not sol.feasible

    def test_solution_satisfies_both_constraints(self, blast):
        sol = solve_monolithic(RealTimeProblem(blast, 25.0, 1.5e5))
        assert sol.feasible
        m = sol.block_size
        tb = sol.block_service_time
        assert tb <= m * 25.0 * (1 + 1e-9)
        assert m * 25.0 + tb <= 1.5e5 * (1 + 1e-9)

    def test_af_decreases_with_tau0(self, blast):
        afs = [
            solve_monolithic(RealTimeProblem(blast, tau0, 3.5e5)).active_fraction
            for tau0 in (10.0, 30.0, 100.0)
        ]
        assert afs[0] > afs[1] > afs[2]

    def test_af_insensitive_to_large_deadline(self, blast):
        a = solve_monolithic(RealTimeProblem(blast, 100.0, 2e5)).active_fraction
        b = solve_monolithic(RealTimeProblem(blast, 100.0, 3.5e5)).active_fraction
        assert abs(a - b) < 0.02  # nearly flat in D (Fig 3 bottom)

    @settings(max_examples=20, deadline=None)
    @given(tau0=st.floats(8.5, 100.0), deadline=st.floats(3e4, 3.5e5))
    def test_property_optimum_feasible(self, tau0, deadline):
        from repro.apps.blast.pipeline import blast_pipeline

        prob = MonolithicProblem(
            RealTimeProblem(blast_pipeline(), tau0, deadline)
        )
        sol = prob.solve()
        if sol.feasible:
            assert bool(prob.feasible(sol.block_size))
            assert sol.active_fraction <= 1.0 + 1e-9
