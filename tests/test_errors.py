"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    CalibrationError,
    InfeasibleError,
    ReproError,
    SimulationError,
    SolverError,
    SpecError,
)


def test_all_derive_from_repro_error():
    for exc in (SpecError, InfeasibleError, SolverError, SimulationError, CalibrationError):
        assert issubclass(exc, ReproError)


def test_spec_error_is_value_error():
    # Callers used to ValueError semantics keep working.
    assert issubclass(SpecError, ValueError)


def test_infeasible_carries_diagnosis():
    err = InfeasibleError("nope", diagnosis="deadline too tight")
    assert err.diagnosis == "deadline too tight"
    assert "nope" in str(err)


def test_infeasible_diagnosis_optional():
    assert InfeasibleError("nope").diagnosis is None


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise SolverError("x")
