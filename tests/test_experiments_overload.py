"""Tests for the R1 overload-sweep experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments.overload import run_overload_sweep
from repro.experiments.registry import EXPERIMENTS


@pytest.fixture(scope="module")
def sweep():
    return run_overload_sweep(n_items=1500, telemetry=True)


class TestOverloadSweep:
    def test_registered_with_telemetry_support(self):
        exp = EXPERIMENTS["overload-sweep"]
        assert exp.supports_telemetry
        assert "R1" in exp.paper_artifact

    def test_covers_every_factor_policy_cell(self, sweep):
        factors = {row[0] for row in sweep.rows}
        policies = {row[1] for row in sweep.rows}
        assert factors == {1.2, 2.0, 3.0}
        assert policies == {"drop-newest", "drop-oldest", "deadline-aware"}
        assert len(sweep.rows) == 9

    def test_fail_fast_aborts_where_shedding_survives(self, sweep):
        """The headline claim: bounded queues abort without a shed
        policy, while every shedding cell completed (it has a row)."""
        assert sweep.raise_outcomes[1.2] == "survives"
        assert sweep.raise_outcomes[2.0] == "aborts"
        assert sweep.raise_outcomes[3.0] == "aborts"

    def test_overload_sheds_and_scores_misses(self, sweep):
        _, _, shed, lost, miss, _, _ = sweep.cell(2.0, "deadline-aware")
        assert shed > 0
        assert lost > 0
        assert miss > 0
        # Heavier overload sheds at least as much.
        assert sweep.cell(3.0, "deadline-aware")[2] >= shed

    def test_planned_rate_sheds_nothing(self, sweep):
        for policy in ("drop-newest", "drop-oldest", "deadline-aware"):
            _, _, shed, lost, miss, _, _ = sweep.cell(1.2, policy)
            assert shed == 0
            assert miss == 0

    def test_telemetry_carries_shed_counts(self, sweep):
        assert sweep.telemetry is not None
        assert sweep.telemetry.total_shed == sweep.cell(
            3.0, "deadline-aware"
        )[2]

    def test_render_mentions_fail_fast_outcomes(self, sweep):
        text = sweep.render()
        assert "aborts" in text
        assert "deadline-aware" in text
        assert f"capacity {sweep.queue_capacity}" in text

    def test_cell_lookup_raises_on_unknown(self, sweep):
        with pytest.raises(KeyError):
            sweep.cell(9.9, "drop-newest")
