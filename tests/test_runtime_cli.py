"""Tests for the repro-run command line (repro.runtime.cli)."""

from __future__ import annotations

import json

import pytest

from repro.runtime.cli import main


@pytest.mark.slow
class TestRunCommand:
    def test_run_writes_json_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "run",
                "--app",
                "synthetic",
                "--seconds",
                "0.8",
                "--seed",
                "0",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "active fraction" in text
        data = json.loads(out.read_text())
        assert data["app"] == "synthetic"
        assert data["missed_items"] == 0
        assert data["outputs"] > 0
        assert 0 < data["measured_active_fraction"] <= 1.0
        assert data["planned_active_fraction"] == pytest.approx(
            data["measured_active_fraction"], rel=0.15
        )
        assert {n["name"] for n in data["nodes"]} == {
            "filter",
            "expand",
            "score",
        }

    def test_drift_flags_trigger_replan(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            [
                "run",
                "--app",
                "synthetic",
                "--seconds",
                "2.5",
                "--drift-node",
                "1",
                "--drift-factor",
                "1.8",
                "--drift-after",
                "0.7",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["replans"] >= 1
        assert any(e["adopted"] for e in data["replan_events"])


class TestArgumentSurface:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "quantum"])

    def test_rejects_unknown_shed_policy(self):
        with pytest.raises(SystemExit):
            main(["run", "--shed", "telepathy"])
