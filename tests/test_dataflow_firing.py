"""Tests for the vector firing rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.firing import fire_vector
from repro.dataflow.gains import BernoulliGain, DeterministicGain
from repro.dataflow.queues import ItemQueue


def test_empty_queue_empty_firing(rng):
    q = ItemQueue("q")
    r = fire_vector(q, 4, DeterministicGain(1), rng)
    assert r.consumed == 0
    assert r.produced == 0
    assert r.occupancy == 0.0


def test_consumes_at_most_vector_width(rng):
    q = ItemQueue("q")
    q.push_many(np.arange(10.0))
    r = fire_vector(q, 4, DeterministicGain(1), rng)
    assert r.consumed == 4
    assert len(q) == 6
    assert r.occupancy == 1.0


def test_partial_vector_occupancy(rng):
    q = ItemQueue("q")
    q.push_many([1.0, 2.0])
    r = fire_vector(q, 8, DeterministicGain(1), rng)
    assert r.consumed == 2
    assert r.occupancy == pytest.approx(0.25)


def test_outputs_inherit_origins_in_order(rng):
    q = ItemQueue("q")
    q.push_many([10.0, 20.0])
    r = fire_vector(q, 4, DeterministicGain(2), rng)
    assert r.output_origins.tolist() == [10.0, 10.0, 20.0, 20.0]


def test_filter_gain_drops_items(rng):
    q = ItemQueue("q")
    q.push_many(np.arange(1000.0))
    produced = 0
    while len(q):
        produced += fire_vector(q, 128, BernoulliGain(0.25), rng).produced
    assert 150 < produced < 350  # ~250 expected


@settings(max_examples=40)
@given(
    n_items=st.integers(0, 40),
    v=st.integers(1, 16),
    k=st.integers(0, 4),
)
def test_property_conservation(n_items, v, k):
    """produced == consumed * k for deterministic gain k."""
    rng = np.random.default_rng(0)
    q = ItemQueue("q")
    q.push_many(np.arange(float(n_items)))
    r = fire_vector(q, v, DeterministicGain(k), rng)
    assert r.consumed == min(n_items, v)
    assert r.produced == r.consumed * k
    assert len(q) == n_items - r.consumed
