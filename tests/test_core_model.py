"""Tests for RealTimeProblem."""

import pytest

from repro.core.model import RealTimeProblem
from repro.errors import SpecError


def test_basic_properties(blast):
    p = RealTimeProblem(blast, tau0=10.0, deadline=1e5)
    assert p.rho0 == pytest.approx(0.1)
    assert p.n_nodes == 4
    assert p.vector_width == 128


def test_with_tau0_and_deadline(blast):
    p = RealTimeProblem(blast, 10.0, 1e5)
    assert p.with_tau0(20.0).tau0 == 20.0
    assert p.with_tau0(20.0).deadline == 1e5
    assert p.with_deadline(2e5).deadline == 2e5
    assert p.with_deadline(2e5).tau0 == 10.0


@pytest.mark.parametrize("tau0,deadline", [(0.0, 1e5), (10.0, 0.0), (-1.0, 1e5)])
def test_rejects_nonpositive(blast, tau0, deadline):
    with pytest.raises(SpecError):
        RealTimeProblem(blast, tau0, deadline)


def test_rejects_non_pipeline():
    with pytest.raises(SpecError):
        RealTimeProblem("not a pipeline", 1.0, 1.0)  # type: ignore[arg-type]
