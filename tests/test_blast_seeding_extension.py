"""Tests for k-mer seeding and ungapped extension."""

import numpy as np
import pytest

from repro.apps.blast.extension import ungapped_extend
from repro.apps.blast.seeding import KmerIndex, pack_kmers
from repro.apps.blast.sequence import from_string, random_dna
from repro.errors import SpecError


class TestPackKmers:
    def test_known_values(self):
        # "ACG" = 0*16 + 1*4 + 2 = 6 for k=3.
        codes = pack_kmers(from_string("ACGT"), 3)
        assert codes.tolist() == [6, int("123", 4)]

    def test_short_sequence_empty(self):
        assert pack_kmers(from_string("AC"), 3).size == 0

    def test_distinct_kmers_distinct_codes(self, rng):
        seq = random_dna(5000, rng)
        k = 8
        codes = pack_kmers(seq, k)
        # Reconstruct a few kmers from codes and compare.
        for i in (0, 100, 4990):
            val = int(codes[i])
            digits = []
            for _ in range(k):
                digits.append(val % 4)
                val //= 4
            assert digits[::-1] == seq[i : i + k].tolist()

    def test_k_bounds(self):
        with pytest.raises(SpecError):
            pack_kmers(np.zeros(40, dtype=np.uint8), 0)
        with pytest.raises(SpecError):
            pack_kmers(np.zeros(40, dtype=np.uint8), 32)


class TestKmerIndex:
    def test_finds_planted_seed(self, rng):
        query = from_string("ACGTACGTACGTACG")
        idx = KmerIndex(query, k=11)
        db = np.concatenate([random_dna(100, rng), query[:11], random_dna(100, rng)])
        seeds = idx.window_seeds(db, 90, 40)
        assert any(dpos == 100 and qpos == 0 for qpos, dpos in seeds)

    def test_has_seed_agrees_with_window_seeds(self, rng):
        query = random_dna(200, rng)
        idx = KmerIndex(query, k=9)
        db = random_dna(3000, rng)
        for start in range(0, 2900, 100):
            has = idx.has_seed(db, start, 100)
            found = len(idx.window_seeds(db, start, 100)) > 0
            assert has == found

    def test_windows_tile_without_double_count(self, rng):
        query = random_dna(300, rng)
        idx = KmerIndex(query, k=8)
        db = random_dna(2000, rng)
        w = 50
        all_seeds = []
        for start in range(0, db.size - w + 1, w):
            all_seeds.extend(idx.window_seeds(db, start, w))
        assert len(all_seeds) == len(set(all_seeds))

    def test_query_shorter_than_k_rejected(self, rng):
        with pytest.raises(SpecError):
            KmerIndex(random_dna(5, rng), k=11)

    def test_lookup(self):
        query = from_string("AAAA")
        idx = KmerIndex(query, k=2)
        assert idx.lookup(0) == [0, 1, 2]  # "AA" at positions 0,1,2
        assert idx.lookup(15) == []

    def test_bad_window_start(self, rng):
        idx = KmerIndex(random_dna(100, rng), k=8)
        with pytest.raises(SpecError):
            idx.window_seeds(random_dna(50, rng), 60, 10)


class TestExtension:
    def test_perfect_match_extends_fully(self):
        seq = from_string("ACGTACGTACGTACGTACGT")
        r = ungapped_extend(seq, seq, 8, 8, k=4)
        assert r.q_start == 0 and r.q_end == seq.size
        assert r.score == seq.size  # +1 per base

    def test_mismatch_stops_extension(self):
        query = from_string("AAAAACCCCC")
        db = from_string("AAAAAGGGGG")
        r = ungapped_extend(query, db, 0, 0, k=5, xdrop=2)
        # Seed covers the matching A's; right extension hits C vs G.
        assert r.score == 5
        assert r.q_end <= 7

    def test_xdrop_allows_recovery(self):
        # match-mismatch-match: larger xdrop tolerates the dip.
        query = from_string("AAAAA" + "T" + "AAAAA")
        db = from_string("AAAAA" + "C" + "AAAAA")
        strict = ungapped_extend(query, db, 0, 0, k=5, xdrop=1)
        lenient = ungapped_extend(query, db, 0, 0, k=5, xdrop=10)
        assert lenient.score >= strict.score
        assert lenient.q_end == 11

    def test_left_extension(self):
        query = from_string("ACGTAAAAA")
        db = from_string("ACGTAAAAA")
        r = ungapped_extend(query, db, 4, 4, k=5)
        assert r.q_start == 0  # extended left through ACGT

    def test_length_property(self):
        seq = from_string("ACGTACGT")
        r = ungapped_extend(seq, seq, 0, 0, k=4)
        assert r.length == r.q_end - r.q_start

    def test_bounds_validation(self):
        seq = from_string("ACGTACGT")
        with pytest.raises(SpecError):
            ungapped_extend(seq, seq, 6, 0, k=4)
        with pytest.raises(SpecError):
            ungapped_extend(seq, seq, 0, 0, k=0)
