"""Tests for the gamma-ray burst detection application."""

import numpy as np
import pytest

from repro.apps.gamma.detector import gamma_pipeline, measure_gamma_gains
from repro.apps.gamma.photons import PhotonStreamConfig, synth_photon_stream
from repro.errors import SpecError


class TestPhotonStream:
    def test_time_sorted_with_fields(self, rng):
        events = synth_photon_stream(PhotonStreamConfig(), rng)
        assert (np.diff(events["time"]) >= 0).all()
        assert {"time", "x", "y", "energy", "is_burst"} <= set(
            events.dtype.names
        )

    def test_burst_count(self, rng):
        cfg = PhotonStreamConfig(n_bursts=3, burst_photons=25)
        events = synth_photon_stream(cfg, rng)
        assert int(events["is_burst"].sum()) == 75

    def test_positions_in_unit_square(self, rng):
        events = synth_photon_stream(PhotonStreamConfig(), rng)
        assert (events["x"] >= 0).all() and (events["x"] <= 1).all()
        assert (events["y"] >= 0).all() and (events["y"] <= 1).all()

    def test_energy_spectrum_above_min(self, rng):
        cfg = PhotonStreamConfig(min_energy=2.0)
        events = synth_photon_stream(cfg, rng)
        bg = events[~events["is_burst"]]
        assert (bg["energy"] >= 2.0).all()

    def test_config_validation(self):
        with pytest.raises(SpecError):
            PhotonStreamConfig(duration=0)
        with pytest.raises(SpecError):
            PhotonStreamConfig(burst_radius=0.6)
        with pytest.raises(SpecError):
            PhotonStreamConfig(energy_index=1.0)


class TestDetectorGains:
    @pytest.fixture(scope="class")
    def trace(self):
        return measure_gamma_gains(seed=2)

    def test_stage_shapes(self, trace):
        g = trace.mean_gains
        assert 0.0 < g[0] < 1.0  # energy filter
        assert g[1] >= 0.0  # pair expansion
        assert 0.0 <= g[2] <= 1.0  # coincidence filter
        assert g[3] == 1.0

    def test_pair_limit_respected(self, trace):
        assert trace.stage_counts[1].max() <= 16

    def test_bursts_yield_coincidences(self):
        quiet = measure_gamma_gains(
            config=PhotonStreamConfig(n_bursts=0), seed=2
        )
        busy = measure_gamma_gains(
            config=PhotonStreamConfig(n_bursts=10, burst_photons=60), seed=2
        )
        assert busy.n_detected_pairs > quiet.n_detected_pairs

    def test_pipeline_is_usable_problem(self, trace):
        from repro.core.enforced_waits import solve_enforced_waits
        from repro.core.feasibility import min_tau0_enforced
        from repro.core.model import RealTimeProblem

        p = gamma_pipeline(trace)
        tau0 = 2.0 * min_tau0_enforced(p)
        sol = solve_enforced_waits(
            RealTimeProblem(p, tau0, 5e5), np.full(4, 3.0)
        )
        assert sol.feasible
        assert 0 < sol.active_fraction < 1
