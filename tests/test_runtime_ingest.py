"""Tests for live ingest (repro.runtime.ingest): replay + TCP server."""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.dataflow.gains import DeterministicGain
from repro.runtime.executor import PipelineExecutor
from repro.runtime.ingest import IngestServer, ReplaySource
from repro.runtime.kernels import SpinKernel


def _executor(n=2, service=0.002):
    kernels = [
        SpinKernel(f"k{i}", DeterministicGain(1), nominal_service=service)
        for i in range(n)
    ]
    return PipelineExecutor(
        kernels, [0.0] * n, vector_width=8, deadline=10.0
    )


class TestReplaySource:
    def test_replays_into_executor(self):
        ex = _executor()
        source = ReplaySource(
            np.linspace(0.0, 0.05, 20),
            lambda n, rng: np.zeros(n),
        )
        ex.start()
        submitted = source.feed(ex)
        report = ex.join(timeout=20.0)
        assert submitted == 20
        assert report.outputs == 20
        assert report.missed_items == 0

    def test_n_items_truncates_array(self):
        source = ReplaySource(
            np.linspace(0.0, 1.0, 10),
            lambda n, rng: np.zeros(n),
            n_items=3,
        )
        assert len(source) == 3

    def test_start_runs_on_background_thread(self):
        ex = _executor()
        source = ReplaySource(
            np.zeros(5), lambda n, rng: np.zeros(n)
        )
        ex.start()
        thread = source.start(ex)
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        report = ex.join(timeout=10.0)
        assert report.outputs == 5


class _Client:
    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=10.0)
        self.file = self.sock.makefile("rwb")

    def request(self, obj) -> dict:
        self.file.write((json.dumps(obj) + "\n").encode())
        self.file.flush()
        return json.loads(self.file.readline())

    def close(self):
        self.file.close()
        self.sock.close()


@pytest.mark.slow
class TestIngestServer:
    def test_submit_stats_shutdown_roundtrip(self):
        ex = _executor()
        ex.start()
        server = IngestServer(ex, port=0).start()
        client = _Client(server.host, server.port)
        try:
            reply = client.request(
                {"op": "submit", "items": [0.0, 1.0, 2.0]}
            )
            assert reply == {"ok": True, "accepted": 3}

            stats = client.request({"op": "stats"})
            assert stats["items_ingested"] == 3

            bad = client.request({"op": "warp"})
            assert "error" in bad

            bye = client.request({"op": "shutdown"})
            assert bye["ok"] is True
        finally:
            client.close()
        server.stop()
        report = ex.join(timeout=20.0)
        assert report.outputs == 3
        assert report.missed_items == 0

    def test_stop_without_shutdown_op(self):
        ex = _executor()
        ex.start()
        server = IngestServer(ex, port=0, finish_on_shutdown=False).start()
        server.stop()
        ex.finish_ingest()
        assert ex.join(timeout=20.0).outputs == 0
