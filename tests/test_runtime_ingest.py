"""Tests for live ingest (repro.runtime.ingest): replay + TCP server."""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.dataflow.gains import DeterministicGain
from repro.runtime.executor import PipelineExecutor
from repro.runtime.ingest import IngestServer, ReplaySource
from repro.runtime.kernels import SpinKernel


def _executor(n=2, service=0.002):
    kernels = [
        SpinKernel(f"k{i}", DeterministicGain(1), nominal_service=service)
        for i in range(n)
    ]
    return PipelineExecutor(
        kernels, [0.0] * n, vector_width=8, deadline=10.0
    )


class TestReplaySource:
    def test_replays_into_executor(self):
        ex = _executor()
        source = ReplaySource(
            np.linspace(0.0, 0.05, 20),
            lambda n, rng: np.zeros(n),
        )
        ex.start()
        submitted = source.feed(ex)
        report = ex.join(timeout=20.0)
        assert submitted == 20
        assert report.outputs == 20
        assert report.missed_items == 0

    def test_n_items_truncates_array(self):
        source = ReplaySource(
            np.linspace(0.0, 1.0, 10),
            lambda n, rng: np.zeros(n),
            n_items=3,
        )
        assert len(source) == 3

    def test_start_runs_on_background_thread(self):
        ex = _executor()
        source = ReplaySource(
            np.zeros(5), lambda n, rng: np.zeros(n)
        )
        ex.start()
        thread = source.start(ex)
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        report = ex.join(timeout=10.0)
        assert report.outputs == 5


class _Client:
    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=10.0)
        self.file = self.sock.makefile("rwb")

    def request(self, obj) -> dict:
        self.file.write((json.dumps(obj) + "\n").encode())
        self.file.flush()
        return json.loads(self.file.readline())

    def close(self):
        self.file.close()
        self.sock.close()


@pytest.mark.slow
class TestIngestServer:
    def test_submit_stats_shutdown_roundtrip(self):
        ex = _executor()
        ex.start()
        server = IngestServer(ex, port=0).start()
        client = _Client(server.host, server.port)
        try:
            reply = client.request(
                {"op": "submit", "items": [0.0, 1.0, 2.0]}
            )
            assert reply == {"ok": True, "accepted": 3}

            stats = client.request({"op": "stats"})
            assert stats["items_ingested"] == 3

            bad = client.request({"op": "warp"})
            assert "error" in bad

            bye = client.request({"op": "shutdown"})
            assert bye["ok"] is True
        finally:
            client.close()
        server.stop()
        report = ex.join(timeout=20.0)
        assert report.outputs == 3
        assert report.missed_items == 0

    def test_stop_without_shutdown_op(self):
        ex = _executor()
        ex.start()
        server = IngestServer(ex, port=0, finish_on_shutdown=False).start()
        server.stop()
        ex.finish_ingest()
        assert ex.join(timeout=20.0).outputs == 0

    def test_health_op_reports_executor_state(self):
        ex = _executor()
        ex.start()
        server = IngestServer(ex, port=0).start()
        client = _Client(server.host, server.port)
        try:
            health = client.request({"op": "health"})
            assert health["ok"] is True
            assert health["ready"] is True
            assert health["executor_stopped"] is False
            assert health["accepted_items"] == 0
            assert "stats" in health
        finally:
            client.close()
            server.stop()
            ex.finish_ingest()
            ex.join(timeout=20.0)

    def test_malformed_inputs_get_structured_errors(self):
        ex = _executor()
        ex.start()
        server = IngestServer(ex, port=0).start()
        client = _Client(server.host, server.port)
        try:
            # Non-JSON, non-object, unknown op, empty submit, missing
            # items, ragged rows — every one is a structured error and
            # the connection keeps serving.
            client.file.write(b"not json at all\n")
            client.file.flush()
            assert "JSONDecodeError" in json.loads(client.file.readline())[
                "error"
            ]
            client.file.write(b"[1, 2, 3]\n")
            client.file.flush()
            assert "SpecError" in json.loads(client.file.readline())["error"]
            assert "unknown op" in client.request({"op": "warp"})["error"]
            assert (
                "non-empty"
                in client.request({"op": "submit", "items": []})["error"]
            )
            assert "non-empty" in client.request({"op": "submit"})["error"]
            ragged = client.request(
                {"op": "submit", "items": [[1.0], [1.0, 2.0]]}
            )
            assert "error" in ragged
            # Still serving: a good submit lands.
            assert client.request(
                {"op": "submit", "items": [1.0, 2.0]}
            ) == {"ok": True, "accepted": 2}
        finally:
            client.close()
            server.stop()
            ex.finish_ingest()
            assert ex.join(timeout=20.0).outputs == 2

    def test_oversized_submit_rejected_and_connection_closed(self):
        from repro.serving import ServingConfig

        ex = _executor()
        ex.start()
        server = IngestServer(
            ex,
            port=0,
            config=ServingConfig(max_line_bytes=512, idle_timeout=None),
        ).start()
        client = _Client(server.host, server.port)
        try:
            blob = json.dumps(
                {"op": "submit", "items": [1.0] * 4096}
            ).encode()
            client.file.write(blob + b"\n")
            client.file.flush()
            reply = json.loads(client.file.readline())
            assert "exceeds" in reply["error"]
            assert client.file.readline() == b""  # server closed it
        finally:
            client.close()
            server.stop()
            ex.finish_ingest()
            ex.join(timeout=20.0)

    def test_admission_overload_is_retriable(self):
        from repro.serving import AdmissionController

        ex = _executor()
        ex.start()
        server = IngestServer(
            ex, port=0, admission=AdmissionController(4)
        ).start()
        client = _Client(server.host, server.port)
        try:
            reply = client.request(
                {"op": "submit", "items": [float(i) for i in range(8)]}
            )
            assert reply["ok"] is False
            assert reply["retriable"] is True
            assert reply["budget"] == 4
            assert server.overload_rejections == 1
            # A within-budget submit still lands.
            small = client.request({"op": "submit", "items": [1.0, 2.0]})
            assert small == {"ok": True, "accepted": 2}
            stats = client.request({"op": "stats"})
            assert stats["admission"]["rejections"] == 1
        finally:
            client.close()
            server.stop()
            ex.finish_ingest()
            ex.join(timeout=20.0)

    def test_submit_after_executor_stop_rejected(self):
        ex = _executor()
        ex.start()
        server = IngestServer(ex, port=0, finish_on_shutdown=False).start()
        client = _Client(server.host, server.port)
        try:
            ex.finish_ingest()
            ex.join(timeout=20.0)
            assert ex.stopped  # public API, not executor._stop
            reply = client.request({"op": "submit", "items": [1.0]})
            assert reply["ok"] is False
            assert "stopped" in reply["error"]
        finally:
            client.close()
            server.stop()
