"""`repro-plan` CLI: batch verb, request files, store persistence, serve."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.planning.cli import (
    demo_requests,
    main,
    parse_request,
    request_to_wire,
)

BLAST_REQUEST = {
    "pipeline": {
        "service_times": [10.0, 20.0],
        "mean_gains": [0.5, 1.0],
        "vector_width": 8,
    },
    "tau0": 20.0,
    "deadline": 500.0,
}


class TestParseRequest:
    def test_full_object(self):
        obj = dict(BLAST_REQUEST, b=[1.0, 1.0], method="interior", tag="x")
        req = parse_request(obj)
        assert req.tag == "x"
        assert req.method == "interior"
        assert req.problem.tau0 == 20.0
        assert list(req.b) == [1.0, 1.0]

    def test_optional_fields_defaulted(self):
        req = parse_request(dict(BLAST_REQUEST), tag="fallback")
        assert req.b is None
        assert req.method == "auto"
        assert req.tag == "fallback"

    def test_missing_field_raises_spec_error(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="missing required field"):
            parse_request({"pipeline": BLAST_REQUEST["pipeline"]})

    def test_demo_requests_cycle_distinct_points(self):
        reqs = demo_requests(10, distinct=4)
        assert len(reqs) == 10
        keys = {(r.problem.tau0, r.problem.deadline) for r in reqs}
        assert len(keys) == 4

    def test_request_to_wire_round_trips(self):
        obj = dict(BLAST_REQUEST, b=[1.0, 2.0], method="interior", tag="rt")
        req = parse_request(obj)
        wire = request_to_wire(req)
        again = parse_request(wire)
        assert again.tag == "rt"
        assert again.method == "interior"
        assert again.problem.tau0 == req.problem.tau0
        assert again.problem.deadline == req.problem.deadline
        assert list(again.b) == [1.0, 2.0]
        assert (
            wire["pipeline"]["service_times"]
            == BLAST_REQUEST["pipeline"]["service_times"]
        )

    def test_request_to_wire_omits_optionals(self):
        wire = request_to_wire(parse_request(dict(BLAST_REQUEST)))
        assert "b" not in wire
        assert "tag" not in wire


@pytest.mark.slow
class TestBatchVerb:
    def test_demo_batch_prints_requests_and_telemetry(self, capsys):
        rc = main(["batch", "--demo", "12", "--demo-distinct", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("demo-") == 12
        assert "plan cache telemetry" in out
        assert "coalesced (single-flight)" in out

    def test_requests_file_and_json_output(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(
            json.dumps(
                [
                    dict(BLAST_REQUEST, tag="a"),
                    dict(BLAST_REQUEST, tag="b"),  # duplicate key
                    dict(BLAST_REQUEST, tau0=25.0, tag="c"),
                ]
            )
        )
        out_json = tmp_path / "responses.json"
        rc = main(
            ["batch", "--requests", str(reqs), "--json", str(out_json)]
        )
        assert rc == 0
        responses = json.loads(out_json.read_text())
        assert [r["tag"] for r in responses] == ["a", "b", "c"]
        assert all(r["feasible"] for r in responses)
        # a and b share a key: one was served by the other's solve or
        # from cache.
        assert (
            sum(r["coalesced"] for r in responses)
            + sum(r["source"] == "hit" for r in responses)
            >= 1
        )
        out = capsys.readouterr().out
        assert "responses written to" in out

    def test_store_persists_across_runs(self, tmp_path, capsys):
        store = tmp_path / "plans.json"
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([dict(BLAST_REQUEST, tag="p")]))

        assert main(["batch", "--requests", str(reqs), "--store", str(store)]) == 0
        first = capsys.readouterr().out
        assert "cold" in first
        assert store.exists()

        assert main(["batch", "--requests", str(reqs), "--store", str(store)]) == 0
        second = capsys.readouterr().out
        assert "hit" in second.splitlines()[0]

    def test_requires_exactly_one_input_mode(self, tmp_path, capsys):
        assert main(["batch"]) == 2
        reqs = tmp_path / "reqs.json"
        reqs.write_text("[]")
        assert main(["batch", "--requests", str(reqs), "--demo", "4"]) == 2
        err = capsys.readouterr().err
        assert "exactly one of" in err


def _serve_in_thread(extra_args: list[str]):
    """Run ``repro-plan serve --port 0 ...`` on a thread; return (thread, port).

    Captures the "serving on host:port" announcement to learn the bound
    port (stdout is swapped for a tee only on the serving thread).
    """
    ready = threading.Event()
    port_box: list[int] = []

    class _Tee:
        def __init__(self, inner):
            self.inner = inner

        def write(self, text):
            if "serving on" in text and not port_box:
                port_box.append(int(text.rsplit(":", 1)[1]))
                ready.set()
            return self.inner.write(text)

        def flush(self):
            self.inner.flush()

    def run_server():
        import sys as _sys

        old = _sys.stdout
        _sys.stdout = _Tee(old)
        try:
            main(["serve", "--port", "0", *extra_args])
        finally:
            _sys.stdout = old

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    assert ready.wait(timeout=15), "server never announced its port"
    return thread, port_box[0]


def _client_lines(port: int, lines: list[str]) -> list[dict]:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        fh = sock.makefile("rw", encoding="utf-8")
        out = []
        for line in lines:
            fh.write(line + "\n")
            fh.flush()
            out.append(json.loads(fh.readline()))
        return out


@pytest.mark.slow
class TestServeVerb:
    def test_serve_plans_stats_and_shutdown(self, capsys):
        # Port 0: the OS picks a free port; the server prints it.
        ready = threading.Event()
        port_box: list[int] = []
        rc_box: list[int] = []

        class _Tee:
            """Capture the 'serving on' line to learn the bound port."""

            def __init__(self, inner):
                self.inner = inner

            def write(self, text):
                if "serving on" in text and not port_box:
                    port_box.append(int(text.rsplit(":", 1)[1]))
                    ready.set()
                return self.inner.write(text)

            def flush(self):
                self.inner.flush()

        def run_server():
            import sys as _sys

            old = _sys.stdout
            _sys.stdout = _Tee(old)
            try:
                # 3 = two plan requests + the stats op (each successful
                # line counts toward --max-requests).
                rc_box.append(
                    main(["serve", "--port", "0", "--max-requests", "3"])
                )
            finally:
                _sys.stdout = old

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert ready.wait(timeout=15), "server never announced its port"
        port = port_box[0]

        responses = _client_lines(
            port,
            [
                json.dumps(dict(BLAST_REQUEST, tag="wire-1")),
                json.dumps(dict(BLAST_REQUEST, tag="wire-2")),
                json.dumps({"op": "stats"}),
            ],
        )
        assert responses[0]["tag"] == "wire-1"
        assert responses[0]["source"] == "cold"
        assert responses[0]["feasible"]
        assert responses[1]["source"] == "hit"
        assert responses[2]["op"] == "stats"
        assert responses[2]["hits"] == 1
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert rc_box == [0]

    def test_serve_reports_malformed_requests(self):
        ready = threading.Event()
        port_box: list[int] = []

        class _Tee:
            def __init__(self, inner):
                self.inner = inner

            def write(self, text):
                if "serving on" in text and not port_box:
                    port_box.append(int(text.rsplit(":", 1)[1]))
                    ready.set()
                return self.inner.write(text)

            def flush(self):
                self.inner.flush()

        def run_server():
            import sys as _sys

            old = _sys.stdout
            _sys.stdout = _Tee(old)
            try:
                main(["serve", "--port", "0", "--max-requests", "1"])
            finally:
                _sys.stdout = old

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert ready.wait(timeout=15)
        port = port_box[0]

        responses = _client_lines(
            port,
            [
                json.dumps({"tau0": 1.0}),  # missing pipeline -> error
                json.dumps(dict(BLAST_REQUEST, tag="ok")),
            ],
        )
        assert "error" in responses[0]
        assert responses[1]["tag"] == "ok"
        thread.join(timeout=15)
        assert not thread.is_alive()

    def test_serve_health_and_malformed_lines(self):
        thread, port = _serve_in_thread(["--max-requests", "1"])
        responses = _client_lines(
            port,
            [
                '{"op": "health"}',
                "this is not json",
                "[1, 2]",
                json.dumps(dict(BLAST_REQUEST, tag="done")),
            ],
        )
        assert responses[0]["ok"] is True
        assert responses[0]["ready"] is True
        assert "cache" in responses[0]
        assert "JSONDecodeError" in responses[1]["error"]
        assert "SpecError" in responses[2]["error"]
        assert responses[3]["tag"] == "done"
        thread.join(timeout=15)
        assert not thread.is_alive()

    def test_serve_shutdown_op_drains(self):
        thread, port = _serve_in_thread([])
        responses = _client_lines(
            port,
            [
                json.dumps(dict(BLAST_REQUEST, tag="one")),
                json.dumps({"op": "shutdown"}),
            ],
        )
        assert responses[0]["tag"] == "one"
        assert responses[1] == {"op": "shutdown", "ok": True}
        thread.join(timeout=15)
        assert not thread.is_alive()


@pytest.mark.slow
class TestBatchConnect:
    def test_batch_resolves_against_live_server(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(
            json.dumps(
                [
                    dict(BLAST_REQUEST, tag="w1"),
                    dict(BLAST_REQUEST, tag="w2"),  # duplicate -> hit
                    dict(BLAST_REQUEST, tau0=25.0, tag="w3"),
                ]
            )
        )
        out_json = tmp_path / "remote.json"
        thread, port = _serve_in_thread(["--max-requests", "3"])
        rc = main(
            [
                "batch",
                "--requests",
                str(reqs),
                "--connect",
                f"127.0.0.1:{port}",
                "--json",
                str(out_json),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        replies = json.loads(out_json.read_text())
        assert [r["tag"] for r in replies] == ["w1", "w2", "w3"]
        assert all(r["feasible"] for r in replies)
        assert replies[1]["source"] == "hit"
        assert "client: 3 requests" in out
        assert "breaker closed" in out
        thread.join(timeout=15)
        assert not thread.is_alive()

    def test_bad_connect_address_is_usage_error(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([dict(BLAST_REQUEST, tag="x")]))
        rc = main(
            ["batch", "--requests", str(reqs), "--connect", "nonsense"]
        )
        assert rc == 2
        assert "HOST:PORT" in capsys.readouterr().err
