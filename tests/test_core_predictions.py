"""Tests for closed-form predictions."""

import numpy as np
import pytest

from repro.core.enforced_waits import solve_enforced_waits
from repro.core.model import RealTimeProblem
from repro.core.monolithic import solve_monolithic
from repro.core.predictions import (
    enforced_af_at_caps,
    enforced_af_lower_bound,
    monolithic_af_limit,
)


class TestMonolithicLimit:
    def test_limit_is_per_item_cost_over_tau0(self, blast):
        assert monolithic_af_limit(blast, 50.0) == pytest.approx(
            blast.per_item_cost / 50.0
        )

    def test_actual_af_approaches_limit_for_large_d(self, blast):
        sol = solve_monolithic(RealTimeProblem(blast, 100.0, 3.5e5))
        limit = monolithic_af_limit(blast, 100.0)
        assert sol.active_fraction >= limit - 1e-12
        assert sol.active_fraction <= limit * 1.15  # close for big blocks


class TestEnforcedLowerBound:
    @pytest.mark.parametrize(
        "tau0,deadline", [(10.0, 3.5e5), (50.0, 2e5), (100.0, 5e4)]
    )
    def test_bound_is_valid(self, blast, calibrated_b, tau0, deadline):
        prob = RealTimeProblem(blast, tau0, deadline)
        sol = solve_enforced_waits(prob, calibrated_b)
        if sol.feasible:
            lb = enforced_af_lower_bound(prob, calibrated_b)
            assert sol.active_fraction >= lb - 1e-9

    def test_bound_tight_when_only_deadline_binds(self, blast, calibrated_b):
        # Huge head cap (slow arrivals) and modest D: deadline dominates.
        prob = RealTimeProblem(blast, 1e4, 1e5)
        sol = solve_enforced_waits(prob, calibrated_b)
        lb = enforced_af_lower_bound(prob, calibrated_b)
        assert sol.active_fraction == pytest.approx(lb, rel=1e-3)


class TestEnforcedAtCaps:
    def test_caps_value_is_large_d_limit(self, blast, calibrated_b):
        tau0 = 20.0
        cap_af = enforced_af_at_caps(RealTimeProblem(blast, tau0, 1.0))
        # With an enormous deadline, the solver should hit the caps.
        sol = solve_enforced_waits(
            RealTimeProblem(blast, tau0, 1e9), calibrated_b
        )
        assert sol.active_fraction == pytest.approx(cap_af, rel=1e-6)

    def test_scales_inversely_with_tau0(self, blast):
        a = enforced_af_at_caps(RealTimeProblem(blast, 10.0, 1.0))
        b = enforced_af_at_caps(RealTimeProblem(blast, 100.0, 1.0))
        assert b == pytest.approx(a / 10.0, rel=1e-6)

    def test_respects_service_floors(self, blast):
        # At very slow tau0 the caps exceed nothing; utilizations <= 1.
        af = enforced_af_at_caps(RealTimeProblem(blast, 0.1, 1.0))
        assert 0.0 < af <= 1.0
