"""Network chaos suite: misbehaving clients vs. the hardened servers.

Every scenario ends the same way: a well-formed ``{"op": "health"}``
probe must still get a healthy answer.  Survival — not graceful
degradation of the *attacker's* experience — is the assertion.
"""

from __future__ import annotations

import pytest

from repro.dataflow.gains import DeterministicGain
from repro.runtime.executor import PipelineExecutor
from repro.runtime.ingest import IngestServer
from repro.runtime.kernels import SpinKernel
from repro.serving import AdmissionController, JsonLinesServer, ServingConfig
from repro.serving.chaos import (
    disconnect_mid_request,
    flood,
    oversized_frame,
    request_once,
    send_raw_lines,
    slow_loris,
)


def _executor(n=2, service=0.001):
    kernels = [
        SpinKernel(f"k{i}", DeterministicGain(1), nominal_service=service)
        for i in range(n)
    ]
    return PipelineExecutor(
        kernels, [0.0] * n, vector_width=8, deadline=30.0
    )


def _assert_healthy(server) -> dict:
    health = request_once(server.host, server.port, {"op": "health"})
    assert health["ok"] is True
    assert health["ready"] is True
    return health


@pytest.mark.slow
class TestIngestChaos:
    def _serve(self, config=None, admission=None):
        ex = _executor()
        ex.start()
        server = IngestServer(
            ex, port=0, config=config, admission=admission
        ).start()
        return ex, server

    def _teardown(self, ex, server):
        server.stop()
        ex.finish_ingest()
        ex.join(timeout=30.0)

    def test_slow_loris_is_kicked_and_server_survives(self):
        ex, server = self._serve(config=ServingConfig(idle_timeout=0.3))
        try:
            reply = slow_loris(
                server.host,
                server.port,
                byte_interval=0.2,
                max_bytes=10,
            )
            # The server either sent the structured idle kick or just
            # hung up; both leave it serving.
            if reply is not None:
                assert reply["retriable"] is True
            _assert_healthy(server)
        finally:
            self._teardown(ex, server)

    def test_oversized_frame_gets_structured_error(self):
        ex, server = self._serve(
            config=ServingConfig(max_line_bytes=1024, idle_timeout=None)
        )
        try:
            reply = oversized_frame(server.host, server.port, nbytes=64_000)
            assert reply is not None
            assert "exceeds" in reply["error"]
            assert server.stats.oversized_lines == 1
            _assert_healthy(server)
        finally:
            self._teardown(ex, server)

    def test_mid_request_disconnects_do_not_crash(self):
        ex, server = self._serve()
        try:
            for _ in range(8):
                disconnect_mid_request(server.host, server.port)
            health = _assert_healthy(server)
            assert health["stats"]["internal_errors"] == 0
        finally:
            self._teardown(ex, server)

    def test_garbage_lines_then_valid_submit(self):
        ex, server = self._serve()
        try:
            replies = send_raw_lines(
                server.host,
                server.port,
                [
                    b"\x00\xff garbage",
                    b"42",
                    b'{"op": "nope"}',
                    b'{"op": "submit", "items": []}',
                    b'{"op": "submit", "items": [1.0, 2.0]}',
                ],
            )
            assert "JSONDecodeError" in replies[0]["error"]
            assert "SpecError" in replies[1]["error"]
            assert "unknown op" in replies[2]["error"]
            assert "non-empty" in replies[3]["error"]
            assert replies[4] == {"ok": True, "accepted": 2}
            _assert_healthy(server)
        finally:
            self._teardown(ex, server)

    def test_overload_flood_sheds_with_retriable_rejections(self):
        admission = AdmissionController(16)
        # Real (spinning) service time so the pipeline cannot drain as
        # fast as the flood submits — in-flight must hit the budget.
        kernels = [
            SpinKernel(
                f"k{i}",
                DeterministicGain(1),
                nominal_service=0.005,
                spin_seconds=0.005,
            )
            for i in range(2)
        ]
        ex = PipelineExecutor(
            kernels, [0.0, 0.0], vector_width=8, deadline=60.0
        )
        ex.start()
        server = IngestServer(ex, port=0, admission=admission).start()
        try:
            result = flood(
                server.host,
                server.port,
                clients=16,
                requests_per_client=12,
                build_request=lambda ci, ri: {
                    "op": "submit",
                    "items": [float(ci)] * 8,
                },
            )
            assert result.answered == result.sent
            assert result.transport_failures == 0
            assert not result.exceptions
            # The budget must have forced real shedding under this load.
            assert result.overload > 0
            assert admission.stats()["rejections"] > 0
            health = _assert_healthy(server)
            # Conservation: whatever was accepted is in flight or done.
            assert health["accepted_items"] == result.ok * 8
        finally:
            self._teardown(ex, server)

    def test_graceful_drain_under_load(self):
        ex, server = self._serve()
        try:
            reply = request_once(
                server.host,
                server.port,
                {"op": "submit", "items": [1.0] * 8},
            )
            assert reply["ok"] is True
            bye = request_once(server.host, server.port, {"op": "shutdown"})
            assert bye["ok"] is True
            assert server.join(timeout=15.0)
            # finish_on_shutdown drained ingest: join returns the report.
            report = ex.join(timeout=30.0)
            assert report.outputs == 8
        finally:
            server.stop()


@pytest.mark.slow
class TestPlainServerChaos:
    def test_flood_of_mixed_garbage_and_requests(self):
        async def handler(obj):
            return {"ok": True, "n": obj.get("n")}

        server = JsonLinesServer(handler, port=0, name="chaos")
        server.start()
        try:
            result = flood(
                server.host,
                server.port,
                clients=8,
                requests_per_client=16,
                build_request=lambda ci, ri: {"n": ci * 100 + ri},
            )
            assert result.ok == 8 * 16
            assert result.transport_failures == 0
            for _ in range(4):
                disconnect_mid_request(server.host, server.port)
            health = request_once(
                server.host, server.port, {"op": "health"}
            )
            assert health["ok"] is True
            assert health["stats"]["responses"] >= 8 * 16
        finally:
            server.stop()


@pytest.mark.slow
class TestTenantChurn:
    """Satellite chaos scenario: rapid admit/submit/evict tenant churn.

    Concurrent clients cycle whole tenant lifecycles on fresh
    connections against a MultiTenantIngestServer.  Afterward the
    server must be healthy, its admission counters must add up
    exactly, and no tenant state may survive the evictions.
    """

    def _serve(self):
        from repro.runtime.kernels import RuntimeWorkload, plan_runtime
        from repro.tenancy.executor import MultiPipelineExecutor
        from repro.tenancy.server import MultiTenantIngestServer

        def plan_factory(name, tau0, deadline):
            kernels = [
                SpinKernel(
                    f"{name}-k{i}",
                    DeterministicGain(1),
                    nominal_service=0.001,
                )
                for i in range(2)
            ]
            wl = RuntimeWorkload(
                name=name,
                kernels=kernels,
                sample_payload=lambda n, rng: rng.random(n),
            )
            return plan_runtime(
                wl,
                vector_width=8,
                tau0=tau0 or 0.05,
                deadline=deadline or 2.0,
                calibrate_b=False,
                n_gain_items=64,
                seed=0,
            )

        multi = MultiPipelineExecutor(arbitration="wrr").start()
        server = MultiTenantIngestServer(multi, plan_factory).start()
        return multi, server

    def test_churn_leaves_no_state_and_counters_add_up(self):
        from repro.serving.chaos import tenant_churn

        multi, server = self._serve()
        try:
            result = tenant_churn(
                server.host,
                server.port,
                clients=4,
                cycles=3,
                build_admit=lambda ci, cy: {
                    "op": "admit",
                    "tenant": f"t{ci}-{cy}",
                    "qos": ("gold", "best-effort")[ci % 2],
                },
                build_submit=lambda ci, cy, tenant: {
                    "op": "submit",
                    "tenant": tenant,
                    "items": [[0.5]] * 8,
                },
                submits_per_cycle=2,
            )
            # Chaos may reject (capacity, budget) but must never break:
            # no transport failures, no unstructured errors, and every
            # admitted tenant evicted cleanly (no state leaks).
            assert result.cycles == 12
            assert result.transport_failures == 0, result.exceptions
            assert result.errors == 0
            assert result.evict_failures == 0
            assert result.evicted == result.admitted > 0
            assert result.admitted + result.admit_rejected == result.cycles

            health = request_once(
                server.host, server.port, {"op": "health"}
            )
            assert health["ok"] is True
            assert health["active_tenants"] == 0
            admission = health["admission"]
            assert admission["active_tenants"] == 0
            assert admission["total_demand"] == 0.0
            assert admission["admitted_tenants"] == result.admitted
            assert admission["evicted_tenants"] == result.evicted
            # Rejections observed by clients match the server's count.
            assert admission["rejected_tenants"] == result.admit_rejected

            tenants = request_once(
                server.host, server.port, {"op": "tenants"}
            )
            assert tenants["tenants"] == []
            stats = request_once(
                server.host, server.port, {"op": "stats"}
            )
            assert stats["tenants"] == {}
            # Arbiter ledgers were released with their tenants.
            assert stats.get("device", {}) == {}
        finally:
            server.stop()
            server.join(timeout=30.0)
            multi.finish_ingest()
            multi.join(timeout=30.0)
