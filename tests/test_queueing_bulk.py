"""Tests for the bulk-service queue analysis."""

import numpy as np
import pytest

from repro.errors import SolverError, SpecError
from repro.queueing.bulk_service import (
    arrivals_pmf_deterministic,
    arrivals_pmf_poisson,
    bulk_queue_stationary,
    pmf_convolve,
)
from repro.queueing.mg1 import md1_mean_queue, md1_mean_wait, mg1_mean_wait


class TestArrivalPmfs:
    def test_deterministic_integer_rate(self):
        pmf = arrivals_pmf_deterministic(2.0, 3.0)  # exactly 6 per period
        assert pmf[6] == pytest.approx(1.0)

    def test_deterministic_fractional_mixture(self):
        pmf = arrivals_pmf_deterministic(0.5, 5.0)  # mean 2.5
        assert pmf[2] == pytest.approx(0.5)
        assert pmf[3] == pytest.approx(0.5)
        mean = float(np.dot(np.arange(pmf.size), pmf))
        assert mean == pytest.approx(2.5)

    def test_poisson_mean(self):
        pmf = arrivals_pmf_poisson(0.7, 10.0)
        mean = float(np.dot(np.arange(pmf.size), pmf))
        assert mean == pytest.approx(7.0, rel=1e-6)
        assert pmf.sum() == pytest.approx(1.0)

    def test_poisson_zero_rate(self):
        assert arrivals_pmf_poisson(0.0, 5.0).tolist() == [1.0]

    def test_validation(self):
        with pytest.raises(SpecError):
            arrivals_pmf_deterministic(-1.0, 1.0)
        with pytest.raises(SpecError):
            arrivals_pmf_poisson(1.0, 0.0)


class TestStationary:
    def test_md1_embedded_anchor(self):
        """Batch capacity 1 + Poisson arrivals = M/D/1 at departures.

        The stationary queue length at departure epochs of M/D/1 has mean
        rho + rho^2/(2(1-rho)).
        """
        rho = 0.5
        stat = bulk_queue_stationary(arrivals_pmf_poisson(rho, 1.0), 1)
        expected = rho + rho**2 / (2 * (1 - rho))
        assert stat.mean == pytest.approx(expected, abs=1e-6)

    def test_deterministic_point_mass(self):
        # Exactly 3 arrivals per period, capacity 4: queue is always 3.
        stat = bulk_queue_stationary(
            arrivals_pmf_deterministic(3.0, 1.0), 4
        )
        assert stat.pmf[3] == pytest.approx(1.0)
        assert stat.lost_mass == 0.0

    def test_critical_deterministic_is_stable(self):
        # Exactly v arrivals per period is fine for degenerate arrivals.
        stat = bulk_queue_stationary(arrivals_pmf_deterministic(4.0, 1.0), 4)
        assert stat.mean == pytest.approx(4.0)

    def test_critical_stochastic_rejected(self):
        pmf = arrivals_pmf_poisson(4.0, 1.0)  # mean 4 = capacity
        with pytest.raises(SolverError, match="critically loaded"):
            bulk_queue_stationary(pmf, 4)

    def test_overloaded_rejected(self):
        with pytest.raises(SolverError):
            bulk_queue_stationary(arrivals_pmf_poisson(5.0, 1.0), 4)

    def test_quantile_and_tail(self):
        stat = bulk_queue_stationary(arrivals_pmf_poisson(2.0, 1.0), 4)
        q95 = stat.quantile(0.95)
        assert stat.tail_prob(q95) <= 0.05 + 1e-9
        assert stat.tail_prob(-1) == 1.0
        assert stat.tail_prob(10**6) == 0.0

    def test_heavier_load_longer_queue(self):
        light = bulk_queue_stationary(arrivals_pmf_poisson(1.0, 1.0), 4)
        heavy = bulk_queue_stationary(arrivals_pmf_poisson(3.5, 1.0), 4)
        assert heavy.mean > light.mean

    def test_pmf_validation(self):
        with pytest.raises(SpecError):
            bulk_queue_stationary(np.asarray([0.5, 0.4]), 2)  # sums to .9
        with pytest.raises(SpecError):
            bulk_queue_stationary(np.asarray([1.0]), 0)


class TestPmfConvolve:
    def test_small_matches_numpy(self):
        a = np.asarray([0.5, 0.5])
        b = np.asarray([0.25, 0.75])
        assert pmf_convolve(a, b) == pytest.approx(np.convolve(a, b))

    def test_large_uses_fft_and_stays_pmf(self):
        rng = np.random.default_rng(0)
        a = rng.random(1000)
        a /= a.sum()
        out = pmf_convolve(a, a)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0)


class TestMg1:
    def test_pk_formula(self):
        # Exponential service: E[S^2] = 2/mu^2 -> W_q = rho/(mu - lambda).
        lam, mu = 0.5, 1.0
        w = mg1_mean_wait(lam, 1 / mu, 2 / mu**2)
        assert w == pytest.approx(lam / (mu * (mu - lam)))

    def test_md1_half_of_mm1(self):
        lam, s = 0.5, 1.0
        assert md1_mean_wait(lam, s) == pytest.approx(
            mg1_mean_wait(lam, s, 2 * s**2) / 2
        )

    def test_littles_law(self):
        lam, s = 0.3, 1.0
        assert md1_mean_queue(lam, s) == pytest.approx(
            lam * md1_mean_wait(lam, s)
        )

    def test_unstable_rejected(self):
        with pytest.raises(SpecError, match="rho"):
            mg1_mean_wait(1.0, 1.0, 1.0)
