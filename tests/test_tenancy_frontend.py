"""Tests for the sharded planning frontend (repro.tenancy.frontend).

Ring tests are pure and fast.  The end-to-end tests spawn real
``repro-plan serve`` worker subprocesses behind the consistent-hash
frontend and are marked slow; the big concurrent load test lives in
``benchmarks/perf/tenancy.py`` (the CI job runs its smoke mode).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ServingError, SpecError
from repro.serving.chaos import flood, request_once
from repro.tenancy.frontend import (
    ConsistentHashRing,
    ShardedPlanningFrontend,
    start_worker_pool,
)

KEYS = [f"key-{i}" for i in range(1000)]


class TestConsistentHashRing:
    def test_routing_is_deterministic(self):
        a = ConsistentHashRing(("x", "y", "z"))
        b = ConsistentHashRing(("z", "y", "x"))  # insertion order free
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_every_node_owns_keys(self):
        ring = ConsistentHashRing(("a", "b", "c"))
        owners = Counter(ring.route(k) for k in KEYS)
        assert set(owners) == {"a", "b", "c"}
        assert min(owners.values()) > 0

    def test_removal_only_moves_the_removed_nodes_keys(self):
        ring = ConsistentHashRing(("a", "b", "c"))
        before = {k: ring.route(k) for k in KEYS}
        ring.remove("c")
        for k in KEYS:
            if before[k] != "c":
                assert ring.route(k) == before[k]
            else:
                assert ring.route(k) in {"a", "b"}

    def test_re_adding_restores_the_original_map(self):
        ring = ConsistentHashRing(("a", "b", "c"))
        before = {k: ring.route(k) for k in KEYS}
        ring.remove("b")
        ring.add("b")
        assert {k: ring.route(k) for k in KEYS} == before

    def test_membership_validation(self):
        ring = ConsistentHashRing(("a",))
        with pytest.raises(SpecError, match="already on the ring"):
            ring.add("a")
        with pytest.raises(SpecError, match="not on the ring"):
            ring.remove("b")
        ring.remove("a")
        with pytest.raises(SpecError, match="empty ring"):
            ring.route("k")

    def test_replicas_validation(self):
        with pytest.raises(SpecError, match="replicas"):
            ConsistentHashRing(replicas=0)

    def test_len_counts_members(self):
        assert len(ConsistentHashRing(("a", "b"))) == 2


def _demo_wire_requests(n, distinct):
    from repro.planning.cli import demo_requests, request_to_wire

    return [request_to_wire(r) for r in demo_requests(n, distinct=distinct)]


@pytest.mark.slow
class TestShardedFrontend:
    @pytest.fixture()
    def frontend(self):
        workers = start_worker_pool(2)
        fe = ShardedPlanningFrontend(workers).start()
        try:
            yield fe
        finally:
            fe.stop()
            fe.join(timeout=30.0)
            for w in workers:
                w.stop()

    def test_routing_is_sticky_and_work_is_answered(self, frontend):
        reqs = _demo_wire_requests(16, distinct=8)
        result = flood(
            frontend.host,
            frontend.port,
            clients=4,
            requests_per_client=4,
            build_request=lambda ci, ri: reqs[(ci * 4 + ri) % len(reqs)],
        )
        assert result.transport_failures == 0, result.exceptions
        assert result.ok == result.sent == 16
        stats = request_once(frontend.host, frontend.port, {"op": "stats"})
        assert stats["worker_failures"] == 0
        assert sum(stats["routed"].values()) == 16
        # The same request always lands on the same worker: replaying
        # one request repeatedly must leave the other worker's routed
        # count untouched.
        before = request_once(
            frontend.host, frontend.port, {"op": "stats"}
        )["routed"]
        for _ in range(5):
            reply = request_once(frontend.host, frontend.port, reqs[0])
            assert "error" not in reply
            owner = reply["worker"]
        after = request_once(
            frontend.host, frontend.port, {"op": "stats"}
        )["routed"]
        moved = {w: after[w] - before[w] for w in after}
        assert moved[owner] == 5
        assert sum(moved.values()) == 5

    def test_repeat_requests_hit_the_worker_cache(self, frontend):
        req = _demo_wire_requests(1, distinct=1)[0]
        first = request_once(frontend.host, frontend.port, req)
        again = request_once(frontend.host, frontend.port, req)
        assert "error" not in first and "error" not in again
        assert again["source"] == "hit"
        assert again["worker"] == first["worker"]

    def test_health_reports_per_worker_liveness(self, frontend):
        health = request_once(frontend.host, frontend.port, {"op": "health"})
        assert health["ok"]
        workers = health["workers"]
        assert len(workers) == 2
        assert all(w["alive"] for w in workers.values())

    def test_dead_worker_yields_retriable_error(self, frontend):
        reqs = _demo_wire_requests(32, distinct=32)
        # Find a request routed to each worker, then kill one worker.
        owner_of = {}
        for req in reqs:
            reply = request_once(frontend.host, frontend.port, req)
            owner_of.setdefault(reply["worker"], req)
            if len(owner_of) == 2:
                break
        assert len(owner_of) == 2
        victim_name, victim_req = next(iter(owner_of.items()))
        victim = frontend.workers[victim_name]
        victim.process.kill()
        victim.process.wait(timeout=10.0)
        reply = request_once(
            frontend.host, frontend.port, victim_req, timeout=30.0
        )
        assert reply["ok"] is False
        assert reply["retriable"] is True
        assert reply["worker"] == victim_name
        # The surviving worker keeps serving its shard.
        other_name = next(n for n in owner_of if n != victim_name)
        reply = request_once(
            frontend.host, frontend.port, owner_of[other_name]
        )
        assert "error" not in reply
        stats = request_once(frontend.host, frontend.port, {"op": "stats"})
        assert stats["worker_failures"] >= 1

    def test_shutdown_stops_the_worker_pool(self):
        workers = start_worker_pool(2)
        fe = ShardedPlanningFrontend(workers).start()
        reply = request_once(fe.host, fe.port, {"op": "shutdown"})
        assert reply["ok"]
        fe.join(timeout=30.0)
        assert all(not w.alive for w in workers)


@pytest.mark.slow
class TestWorkerPoolSpawn:
    def test_pool_size_validation(self):
        with pytest.raises(SpecError, match="pool size"):
            start_worker_pool(0)

    def test_worker_spawn_failure_raises_serving_error(self):
        from repro.tenancy.frontend import PlanWorker

        with pytest.raises(ServingError, match="worker"):
            PlanWorker.spawn(
                "doomed", extra_args=("--no-such-flag",), timeout=15.0
            )
