"""Tests for Process/PeriodicProcess."""

import pytest

from repro.des.engine import Engine
from repro.des.process import PeriodicProcess, Process
from repro.errors import SimulationError


class TestProcess:
    def test_double_start_rejected(self):
        p = Process(Engine(), "p")
        p.start()
        with pytest.raises(SimulationError, match="already started"):
            p.start()

    def test_stop_is_safe_twice(self):
        p = Process(Engine(), "p")
        p.stop()
        p.stop()
        assert p.stopped


class TestPeriodicProcess:
    def test_fires_at_offset_then_period(self):
        eng = Engine()
        times = []
        proc = PeriodicProcess(
            eng, "tick", period=10.0, action=lambda i: times.append(eng.now), offset=3.0
        )
        proc.start()
        eng.run(until=35.0)
        assert times == [3.0, 13.0, 23.0, 33.0]
        assert proc.invocations == 4

    def test_action_receives_index(self):
        eng = Engine()
        indices = []
        proc = PeriodicProcess(eng, "tick", 1.0, lambda i: indices.append(i))
        proc.start()
        eng.run(until=3.5)
        assert indices == [0, 1, 2, 3]

    def test_stop_halts_firing(self):
        eng = Engine()
        count = [0]

        def action(i):
            count[0] += 1
            if count[0] == 2:
                proc.stop()

        proc = PeriodicProcess(eng, "tick", 1.0, action)
        proc.start()
        eng.run(until=100.0)
        assert count[0] == 2

    def test_period_change_applies_next_cycle(self):
        eng = Engine()
        times = []

        def action(i):
            times.append(eng.now)
            if i == 0:
                proc.period = 5.0

        proc = PeriodicProcess(eng, "tick", 1.0, action)
        proc.start()
        eng.run(until=12.0)
        assert times == [0.0, 5.0, 10.0]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Engine(), "x", 0.0, lambda i: None)

    def test_rejects_negative_offset(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Engine(), "x", 1.0, lambda i: None, offset=-1.0)
