"""Tests for the DAG discrete-event simulator (repro.sim.dag)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.arrivals.poisson import PoissonArrivals
from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
)
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SimulationError, SpecError
from repro.sim.dag import DagEnforcedWaitsSimulator
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.simd.backend import available_backends, use_backend

SCALAR_FIELDS = (
    "strategy",
    "n_items",
    "makespan",
    "active_fraction",
    "missed_items",
    "miss_rate",
    "outputs",
    "mean_latency",
    "max_latency",
)
ARRAY_FIELDS = (
    "active_time_per_node",
    "queue_hwm_vectors",
    "firings",
    "empty_firings",
    "mean_occupancy",
)


def _pipeline() -> PipelineSpec:
    return PipelineSpec(
        nodes=(
            NodeSpec("a", service_time=1.0, gain=CensoredPoissonGain(1.2, 4)),
            NodeSpec("b", service_time=0.7, gain=BernoulliGain(0.8)),
            NodeSpec("c", service_time=0.5, gain=DeterministicGain(2)),
        ),
        vector_width=8,
    )


def _diamond() -> DataflowGraph:
    g = DataflowGraph(16)
    g.add_node(NodeSpec("s", 1.5, DeterministicGain(1)))
    g.add_node(NodeSpec("l", 1.0, BernoulliGain(0.8)))
    g.add_node(NodeSpec("r", 2.0, CensoredPoissonGain(1.3, 6)))
    g.add_node(NodeSpec("t", 1.2, DeterministicGain(1)))
    g.add_edge("s", "l", BernoulliGain(0.6))
    g.add_edge("s", "r", BernoulliGain(0.4))
    g.add_edge("l", "t")
    g.add_edge("r", "t")
    return g


def _assert_metrics_equal(m1, m2) -> None:
    import math

    for f in SCALAR_FIELDS:
        a, b = getattr(m1, f), getattr(m2, f)
        if isinstance(a, float) and math.isnan(a) and math.isnan(b):
            continue
        assert a == b, f"{f}: {a!r} != {b!r}"
    for f in ARRAY_FIELDS:
        a, b = getattr(m1, f), getattr(m2, f)
        assert np.array_equal(a, b, equal_nan=True), f"{f}: {a!r} != {b!r}"


class TestChainEquivalence:
    """A chain-shaped DataflowGraph must simulate bit-identically to the
    chain simulator — same RNG streams, same event ordering, same
    metrics, on every execution backend."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("backend", list(available_backends()))
    def test_bitwise_equal_to_chain_simulator(self, seed, backend):
        waits = np.asarray([3.0, 2.0, 1.5])
        kw = dict(
            arrivals=PoissonArrivals(1.4),
            deadline=40.0,
            n_items=1200,
            seed=seed,
        )
        with use_backend(backend) as be:
            s1 = DagEnforcedWaitsSimulator(
                DataflowGraph.from_pipeline(_pipeline()), waits, **kw
            )
            m1 = s1.run()
            assert (s1.engine.events_processed == 0) == be.fastpath
            s2 = EnforcedWaitsSimulator(_pipeline(), waits, **kw)
            m2 = s2.run()
        _assert_metrics_equal(m1, m2)
        la, lb = s1.ledger, s2.ledger
        assert la.outputs == lb.outputs
        assert la.missed_items == lb.missed_items
        if la.outputs:
            assert la.latency.mean == lb.latency.mean
            assert la.latency.std == lb.latency.std

    def test_chain_tail_is_the_single_sink_ledger(self):
        waits = np.asarray([3.0, 2.0, 1.5])
        sim = DagEnforcedWaitsSimulator(
            DataflowGraph.from_pipeline(_pipeline()),
            waits,
            arrivals=PoissonArrivals(1.4),
            deadline=40.0,
            n_items=600,
            seed=0,
        )
        m = sim.run()
        assert sim.sink_names == ("c",)
        sink = m.extra["sinks"]["c"]
        assert sink.outputs == m.outputs
        assert sink.missed_items == m.missed_items


class TestDiamond:
    def test_fastpath_matches_event_loop(self):
        waits = np.asarray([8.0, 14.0, 22.0, 8.0])
        kw = dict(
            arrivals=FixedRateArrivals(9.6),
            deadline=300.0,
            n_items=2000,
            seed=3,
        )
        with use_backend("vector") as be:
            assert be.fastpath
            s1 = DagEnforcedWaitsSimulator(_diamond(), waits, **kw)
            m1 = s1.run()
            assert s1.engine.events_processed == 0
        with use_backend("python"):
            s2 = DagEnforcedWaitsSimulator(_diamond(), waits, **kw)
            m2 = s2.run()
            assert s2.engine.events_processed > 0
        _assert_metrics_equal(m1, m2)
        for name in s1.sink_names:
            a = m1.extra["sinks"][name]
            b = m2.extra["sinks"][name]
            assert a.outputs == b.outputs
            assert a.missed_items == b.missed_items
            if a.outputs:
                assert a.latency.mean == b.latency.mean

    def test_planned_point_runs_clean(self):
        """Solve the diamond, then simulate at the planned waits: the
        end-to-end acceptance criterion is zero deadline misses."""
        from repro.core.dag import DagRealTimeProblem, solve_enforced_waits_dag

        sol = solve_enforced_waits_dag(
            DagRealTimeProblem(_diamond(), 0.6, 300.0)
        )
        assert sol.feasible
        sim = DagEnforcedWaitsSimulator(
            _diamond(),
            sol.waits_by_name,
            arrivals=FixedRateArrivals(0.6),
            deadline=300.0,
            n_items=5000,
            seed=0,
        )
        m = sim.run()
        assert m.missed_items == 0
        assert m.outputs > 0
        assert m.extra["order"] == ("s", "l", "r", "t")

    def test_waits_dict_equals_array(self):
        waits = {"s": 8.0, "l": 14.0, "r": 22.0, "t": 8.0}
        arr = np.asarray([8.0, 14.0, 22.0, 8.0])
        kw = dict(
            arrivals=FixedRateArrivals(9.6),
            deadline=300.0,
            n_items=800,
            seed=1,
        )
        m1 = DagEnforcedWaitsSimulator(_diamond(), waits, **kw).run()
        m2 = DagEnforcedWaitsSimulator(_diamond(), arr, **kw).run()
        _assert_metrics_equal(m1, m2)

    def test_multi_sink_ledgers(self):
        """Fan-out to two sinks: each gets its own ledger; the global
        ledger scores every exit."""
        g = DataflowGraph(8)
        g.add_node(NodeSpec("s", 1.0, DeterministicGain(1)))
        g.add_node(NodeSpec("u", 0.5, DeterministicGain(1)))
        g.add_node(NodeSpec("w", 0.5, DeterministicGain(1)))
        g.add_edge("s", "u", BernoulliGain(0.5))
        g.add_edge("s", "w", BernoulliGain(0.5))
        sim = DagEnforcedWaitsSimulator(
            g,
            np.asarray([4.0, 4.0, 4.0]),
            arrivals=FixedRateArrivals(1.0),
            deadline=100.0,
            n_items=1000,
            seed=0,
        )
        m = sim.run()
        sinks = m.extra["sinks"]
        assert set(sinks) == {"u", "w"}
        assert sinks["u"].outputs + sinks["w"].outputs == m.outputs
        assert m.outputs > 0


class TestValidation:
    def _kw(self):
        return dict(
            arrivals=FixedRateArrivals(9.6),
            deadline=300.0,
            n_items=10,
        )

    def test_rejects_non_graph(self):
        with pytest.raises(SpecError, match="DataflowGraph"):
            DagEnforcedWaitsSimulator(
                _pipeline(), np.zeros(3), **self._kw()
            )

    def test_rejects_wrong_waits_length(self):
        with pytest.raises(SpecError, match="length 4"):
            DagEnforcedWaitsSimulator(_diamond(), np.zeros(3), **self._kw())

    def test_rejects_negative_waits(self):
        with pytest.raises(SpecError, match=">= 0"):
            DagEnforcedWaitsSimulator(
                _diamond(), np.asarray([1.0, -1.0, 1.0, 1.0]), **self._kw()
            )

    def test_rejects_incomplete_waits_dict(self):
        with pytest.raises(SpecError, match="missing nodes \\['t'\\]"):
            DagEnforcedWaitsSimulator(
                _diamond(),
                {"s": 1.0, "l": 1.0, "r": 1.0},
                **self._kw(),
            )

    def test_rejects_invalid_graph(self):
        g = DataflowGraph(8)
        g.add_node(NodeSpec("a", 1.0, DeterministicGain(1)))
        g.add_node(NodeSpec("b", 1.0, DeterministicGain(1)))
        with pytest.raises(SpecError, match="sources"):
            DagEnforcedWaitsSimulator(g, np.zeros(2), **self._kw())

    def test_single_use(self):
        sim = DagEnforcedWaitsSimulator(
            _diamond(), np.zeros(4), **self._kw()
        )
        sim.run()
        with pytest.raises(SimulationError, match="single-use"):
            sim.run()
