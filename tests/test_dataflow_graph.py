"""Tests for the general dataflow graph."""

import pytest

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.gains import BernoulliGain, DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError


def _node(name, t=1.0, g=1.0):
    gain = DeterministicGain(1) if g == 1.0 else BernoulliGain(g)
    return NodeSpec(name, t, gain)


class TestConstruction:
    def test_add_nodes_and_edges(self):
        g = DataflowGraph(8)
        g.add_node(_node("a"))
        g.add_node(_node("b"))
        g.add_edge("a", "b")
        assert g.n_nodes == 2 and g.n_edges == 1

    def test_duplicate_node_rejected(self):
        g = DataflowGraph(8)
        g.add_node(_node("a"))
        with pytest.raises(SpecError, match="duplicate"):
            g.add_node(_node("a"))

    def test_unknown_edge_endpoint_rejected(self):
        g = DataflowGraph(8)
        g.add_node(_node("a"))
        with pytest.raises(SpecError, match="unknown"):
            g.add_edge("a", "zzz")

    def test_self_loop_rejected(self):
        g = DataflowGraph(8)
        g.add_node(_node("a"))
        with pytest.raises(SpecError, match="self-loop"):
            g.add_edge("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        g = DataflowGraph(8)
        for n in "abc":
            g.add_node(_node(n))
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        with pytest.raises(SpecError, match="cycle"):
            g.add_edge("c", "a")
        assert g.n_edges == 2  # offending edge rolled back


class TestQueries:
    def _diamond(self):
        g = DataflowGraph(8)
        for n, gain in [("s", 1.0), ("l", 0.5), ("r", 0.5), ("t", 1.0)]:
            g.add_node(_node(n, g=gain))
        g.add_edge("s", "l")
        g.add_edge("s", "r")
        g.add_edge("l", "t")
        g.add_edge("r", "t")
        return g

    def test_sources_and_sinks(self):
        g = self._diamond()
        assert g.sources() == ["s"]
        assert g.sinks() == ["t"]

    def test_topological_order_valid(self):
        g = self._diamond()
        order = g.topological_order()
        assert order.index("s") == 0
        assert order.index("t") == 3

    def test_total_gain_sums_paths(self):
        g = self._diamond()
        # Two paths s->l->t and s->r->t, each with gain 1 * 0.5.
        assert g.total_gain_into("t") == pytest.approx(1.0)
        assert g.total_gain_into("l") == pytest.approx(1.0)

    def test_total_gain_chain_matches_pipeline(self, blast):
        g = DataflowGraph.from_pipeline(blast)
        for i, node in enumerate(blast.nodes):
            assert g.total_gain_into(node.name) == pytest.approx(
                float(blast.total_gains[i]), rel=1e-9
            )


class TestChainCertification:
    def test_diamond_is_not_chain(self):
        g = TestQueries()._diamond()
        assert not g.is_chain()
        with pytest.raises(SpecError, match="linear chain"):
            g.as_chain()

    def test_round_trip_pipeline(self, blast):
        g = DataflowGraph.from_pipeline(blast)
        assert g.is_chain()
        back = g.as_chain()
        assert isinstance(back, PipelineSpec)
        assert [n.name for n in back.nodes] == [n.name for n in blast.nodes]
        assert back.vector_width == blast.vector_width

    def test_single_node_is_chain(self):
        g = DataflowGraph(4)
        g.add_node(_node("only"))
        assert g.is_chain()
        assert g.as_chain().n_nodes == 1

    def test_disconnected_is_not_chain(self):
        g = DataflowGraph(4)
        g.add_node(_node("a"))
        g.add_node(_node("b"))
        assert not g.is_chain()

    def test_empty_is_not_chain(self):
        assert not DataflowGraph(4).is_chain()
