"""Tests for the general dataflow graph."""

import pytest

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.gains import BernoulliGain, DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError


def _node(name, t=1.0, g=1.0):
    gain = DeterministicGain(1) if g == 1.0 else BernoulliGain(g)
    return NodeSpec(name, t, gain)


class TestConstruction:
    def test_add_nodes_and_edges(self):
        g = DataflowGraph(8)
        g.add_node(_node("a"))
        g.add_node(_node("b"))
        g.add_edge("a", "b")
        assert g.n_nodes == 2 and g.n_edges == 1

    def test_duplicate_node_rejected(self):
        g = DataflowGraph(8)
        g.add_node(_node("a"))
        with pytest.raises(SpecError, match="duplicate"):
            g.add_node(_node("a"))

    def test_unknown_edge_endpoint_rejected(self):
        g = DataflowGraph(8)
        g.add_node(_node("a"))
        with pytest.raises(SpecError, match="unknown"):
            g.add_edge("a", "zzz")

    def test_self_loop_rejected(self):
        g = DataflowGraph(8)
        g.add_node(_node("a"))
        with pytest.raises(SpecError, match="self-loop"):
            g.add_edge("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        g = DataflowGraph(8)
        for n in "abc":
            g.add_node(_node(n))
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        with pytest.raises(SpecError, match="cycle"):
            g.add_edge("c", "a")
        assert g.n_edges == 2  # offending edge rolled back


class TestQueries:
    def _diamond(self):
        g = DataflowGraph(8)
        for n, gain in [("s", 1.0), ("l", 0.5), ("r", 0.5), ("t", 1.0)]:
            g.add_node(_node(n, g=gain))
        g.add_edge("s", "l")
        g.add_edge("s", "r")
        g.add_edge("l", "t")
        g.add_edge("r", "t")
        return g

    def test_sources_and_sinks(self):
        g = self._diamond()
        assert g.sources() == ["s"]
        assert g.sinks() == ["t"]

    def test_topological_order_valid(self):
        g = self._diamond()
        order = g.topological_order()
        assert order.index("s") == 0
        assert order.index("t") == 3

    def test_total_gain_sums_paths(self):
        g = self._diamond()
        # Two paths s->l->t and s->r->t, each with gain 1 * 0.5.
        assert g.total_gain_into("t") == pytest.approx(1.0)
        assert g.total_gain_into("l") == pytest.approx(1.0)

    def test_total_gain_chain_matches_pipeline(self, blast):
        g = DataflowGraph.from_pipeline(blast)
        for i, node in enumerate(blast.nodes):
            assert g.total_gain_into(node.name) == pytest.approx(
                float(blast.total_gains[i]), rel=1e-9
            )


class TestChainCertification:
    def test_diamond_is_not_chain(self):
        g = TestQueries()._diamond()
        assert not g.is_chain()
        with pytest.raises(SpecError, match="linear chain"):
            g.as_chain()

    def test_round_trip_pipeline(self, blast):
        g = DataflowGraph.from_pipeline(blast)
        assert g.is_chain()
        back = g.as_chain()
        assert isinstance(back, PipelineSpec)
        assert [n.name for n in back.nodes] == [n.name for n in blast.nodes]
        assert back.vector_width == blast.vector_width

    def test_single_node_is_chain(self):
        g = DataflowGraph(4)
        g.add_node(_node("only"))
        assert g.is_chain()
        assert g.as_chain().n_nodes == 1

    def test_disconnected_is_not_chain(self):
        g = DataflowGraph(4)
        g.add_node(_node("a"))
        g.add_node(_node("b"))
        assert not g.is_chain()

    def test_empty_is_not_chain(self):
        assert not DataflowGraph(4).is_chain()


def _weighted_diamond():
    """Diamond with *heterogeneous* explicit edge gains.

    s --0.6--> l --0.5--> t
    s --0.25-> r --2.0--> t       (r's own node gain is 0.5, ignored on
                                   the explicit s->r and r->t edges)
    """
    g = DataflowGraph(8)
    for n, gain in [("s", 1.0), ("l", 0.5), ("r", 0.5), ("t", 1.0)]:
        g.add_node(_node(n, g=gain))
    g.add_edge("s", "l", BernoulliGain(0.6))
    g.add_edge("s", "r", BernoulliGain(0.25))
    g.add_edge("l", "t")  # inherited: l's node gain 0.5
    g.add_edge("r", "t", DeterministicGain(2))
    return g


class TestEdgeGains:
    def test_inherited_edge_gain_is_source_node_gain(self):
        g = _weighted_diamond()
        assert g.edge_gain_is_inherited("l", "t")
        assert g.edge_gain("l", "t") is g.spec("l").gain
        assert g.edge_mean_gain("l", "t") == pytest.approx(0.5)

    def test_explicit_edge_gain_overrides_node_gain(self):
        g = _weighted_diamond()
        assert not g.edge_gain_is_inherited("s", "l")
        assert g.edge_mean_gain("s", "l") == pytest.approx(0.6)
        assert g.edge_mean_gain("r", "t") == pytest.approx(2.0)

    def test_duplicate_edge_rejected(self):
        g = _weighted_diamond()
        with pytest.raises(SpecError, match="duplicate edge"):
            g.add_edge("s", "l")

    def test_unknown_edge_queried(self):
        g = _weighted_diamond()
        with pytest.raises(SpecError, match="no edge"):
            g.edge_gain("t", "s")

    def test_diamond_total_gains_use_edge_gains(self):
        """Regression (fan-in semantics): G_i must sum *edge*-gain path
        products, not broadcast the source node's own gain.  With
        heterogeneous edge gains the two are observably different:
        using node gains would give G_t = 1.0*0.5 + 1.0*0.5 = 1.0."""
        g = _weighted_diamond()
        gains = g.total_gains()
        assert gains["s"] == pytest.approx(1.0)
        assert gains["l"] == pytest.approx(0.6)
        assert gains["r"] == pytest.approx(0.25)
        # G_t = 0.6 * 0.5  +  0.25 * 2.0 = 0.3 + 0.5
        assert gains["t"] == pytest.approx(0.8)
        assert g.total_gain_into("t") == pytest.approx(0.8)

    def test_total_gain_unknown_node(self):
        g = _weighted_diamond()
        with pytest.raises(SpecError, match="unknown node"):
            g.total_gain_into("zzz")


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(SpecError, match="empty.*add_node"):
            DataflowGraph(8).validate()

    def test_multiple_sources_rejected_with_names(self):
        g = DataflowGraph(8)
        for n in ("a", "b", "t"):
            g.add_node(_node(n))
        g.add_edge("a", "t")
        g.add_edge("b", "t")
        with pytest.raises(SpecError, match=r"2 sources \['a', 'b'\]"):
            g.validate()

    def test_disconnected_graph_rejected(self):
        """A disconnected DAG always presents >= 2 entry points (every
        weak component has a source), so validate() rejects it with the
        multi-source message naming each stray entry node."""
        g = DataflowGraph(8)
        for n in ("a", "b", "x", "y"):
            g.add_node(_node(n))
        g.add_edge("a", "b")
        g.add_edge("x", "y")
        with pytest.raises(SpecError, match=r"\['a', 'x'\].*exactly one"):
            g.validate()

    def test_isolated_node_rejected(self):
        g = DataflowGraph(8)
        for n in ("a", "b"):
            g.add_node(_node(n))
        g.add_edge("a", "b")
        g.add_node(_node("stray"))
        with pytest.raises(SpecError, match="'stray'"):
            g.validate()

    def test_validate_returns_self_and_single_source(self):
        g = _weighted_diamond()
        assert g.validate() is g
        assert g.single_source() == "s"

    def test_as_chain_refusal_names_branching_nodes(self):
        g = _weighted_diamond()
        with pytest.raises(SpecError, match=r"\['s', 't'\] branch or merge"):
            g.as_chain()
        with pytest.raises(SpecError, match="repro.core.dag"):
            g.as_chain()

    def test_cycle_rejected_with_actionable_message(self):
        g = DataflowGraph(8)
        for n in "abc":
            g.add_node(_node(n))
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        with pytest.raises(SpecError, match="'c'->'a' would create a cycle"):
            g.add_edge("c", "a")


class TestPaths:
    def test_diamond_paths_deterministic(self):
        g = _weighted_diamond()
        assert g.source_sink_paths() == [
            ("s", "l", "t"),
            ("s", "r", "t"),
        ]

    def test_chain_single_path(self, blast):
        g = DataflowGraph.from_pipeline(blast)
        (path,) = g.source_sink_paths()
        assert path == tuple(n.name for n in blast.nodes)

    def test_single_node_path(self):
        g = DataflowGraph(4)
        g.add_node(_node("only"))
        assert g.source_sink_paths() == [("only",)]

    def test_describe_mentions_gains(self):
        text = _weighted_diamond().describe()
        assert "G_i" in text and "dataflow graph" in text
