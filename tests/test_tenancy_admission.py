"""Tests for certificate-based tenant admission.

The Hypothesis property is the battery's satellite (b): over random
operating points ``(tau0, D)`` the controller must *never* admit a
tenant whose own feasibility certificate fails — admission is exactly
as strict as the solver.  The regression tests at the bottom pin the
satellite-3 bugfix: the serving admission budget is no longer frozen at
server start but recomputed from every hot re-plan the executor adopts
(``PipelineExecutor`` -> ``on_replan`` -> :func:`budget_from_event` ->
:meth:`AdmissionController.set_budget`).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enforced_waits import EnforcedWaitsProblem
from repro.core.model import RealTimeProblem
from repro.errors import SpecError
from repro.runtime.replan import ReplanEvent
from repro.serving.admission import (
    AdmissionController,
    budget_from_event,
    budget_from_plan,
    inflight_budget,
)
from repro.tenancy.admission import TenantAdmissionController


def _controller(**kwargs):
    return TenantAdmissionController(**kwargs)


class TestTryAdmit:
    def test_feasible_gold_admitted(self, tiny_pipeline):
        ctl = _controller()
        decision = ctl.try_admit(
            "a", RealTimeProblem(tiny_pipeline, 100.0, 1e4), qos="gold"
        )
        assert decision.admitted
        assert decision.reason == "certificate"
        assert decision.record is not None
        assert decision.record.budget >= tiny_pipeline.vector_width
        assert 0 < decision.record.active_fraction <= 1.0
        assert decision.as_dict()["ok"] is True

    def test_infeasible_rejected_for_every_class(self, tiny_pipeline):
        # A deadline shorter than one pass through the pipeline is
        # unschedulable no matter the class.
        problem = RealTimeProblem(tiny_pipeline, 5.0, 1.0)
        for qos in ("gold", "silver", "best-effort"):
            ctl = _controller()
            decision = ctl.try_admit("t", problem, qos=qos)
            assert not decision.admitted
            assert decision.reason.startswith("certificate")
            assert decision.as_dict()["retriable"] is False

    def test_duplicate_rejected(self, tiny_pipeline):
        ctl = _controller()
        problem = RealTimeProblem(tiny_pipeline, 100.0, 1e4)
        assert ctl.try_admit("a", problem).admitted
        decision = ctl.try_admit("a", problem)
        assert not decision.admitted
        assert decision.reason.startswith("duplicate")

    def test_guaranteed_capacity_rejection_is_retriable(self, tiny_pipeline):
        # Load the device with gold until the next gold no longer fits.
        ctl = _controller()
        problem = RealTimeProblem(tiny_pipeline, 40.0, 1e4)
        af = EnforcedWaitsProblem(problem).solve().active_fraction
        fit = int(1.0 // af)
        for i in range(fit):
            assert ctl.try_admit(f"g{i}", problem, qos="gold").admitted
        decision = ctl.try_admit("one-too-many", problem, qos="gold")
        assert not decision.admitted
        assert decision.reason.startswith("capacity")
        assert decision.as_dict()["retriable"] is True
        # ... and eviction frees the load for a retry.
        assert ctl.evict("g0")
        assert ctl.try_admit("one-too-many", problem, qos="gold").admitted

    def test_best_effort_may_oversubscribe(self, tiny_pipeline):
        ctl = _controller()
        problem = RealTimeProblem(tiny_pipeline, 40.0, 1e4)
        for i in range(20):  # way past capacity 1.0 in summed AF
            assert ctl.try_admit(f"b{i}", problem).admitted
        assert ctl.pressure() > 1.0

    def test_max_overload_caps_best_effort(self, tiny_pipeline):
        problem = RealTimeProblem(tiny_pipeline, 40.0, 1e4)
        af = EnforcedWaitsProblem(problem).solve().active_fraction
        ctl = _controller(max_overload=1.5)
        admitted = 0
        while ctl.try_admit(f"b{admitted}", problem).admitted:
            admitted += 1
        assert admitted == int(1.5 // af)
        decision = ctl.try_admit("next", problem)
        assert decision.reason.startswith("capacity")
        assert "overload cap" in decision.reason

    def test_recheck_confirms_conservative_invariant(self, tiny_pipeline):
        ctl = _controller()
        ctl.try_admit(
            "a", RealTimeProblem(tiny_pipeline, 100.0, 1e4), qos="gold"
        )
        ctl.try_admit(
            "b", RealTimeProblem(tiny_pipeline, 120.0, 1e4), qos="silver"
        )
        assert ctl.recheck()

    def test_counters_and_stats(self, tiny_pipeline):
        ctl = _controller()
        good = RealTimeProblem(tiny_pipeline, 100.0, 1e4)
        bad = RealTimeProblem(tiny_pipeline, 5.0, 1.0)
        ctl.try_admit("a", good, qos="gold")
        ctl.try_admit("b", bad)
        ctl.evict("a")
        stats = ctl.stats()
        assert stats["admitted_tenants"] == 1
        assert stats["rejected_tenants"] == 1
        assert stats["evicted_tenants"] == 1
        assert stats["active_tenants"] == 0
        assert stats["total_demand"] == 0.0

    def test_validation(self):
        with pytest.raises(SpecError):
            _controller(capacity=0.0)
        with pytest.raises(SpecError):
            _controller(capacity=1.5)
        with pytest.raises(SpecError):
            _controller(max_overload=0.5)

    def test_evict_absent_tenant_false(self):
        assert not _controller().evict("ghost")


class TestCertificateProperty:
    """Satellite (b): admission is never laxer than the certificate."""

    @settings(max_examples=25, deadline=None)
    @given(
        tau0=st.floats(min_value=0.5, max_value=500.0),
        deadline=st.floats(min_value=1.0, max_value=1e5),
        qos=st.sampled_from(["gold", "silver", "best-effort"]),
    )
    def test_never_admits_a_failing_certificate(self, tau0, deadline, qos):
        from repro.dataflow.gains import BernoulliGain, DeterministicGain
        from repro.dataflow.spec import NodeSpec, PipelineSpec

        pipeline = PipelineSpec(
            (
                NodeSpec("a", 10.0, BernoulliGain(0.5)),
                NodeSpec("b", 20.0, DeterministicGain(1)),
            ),
            vector_width=4,
        )
        problem = RealTimeProblem(pipeline, tau0, deadline)
        certificate = EnforcedWaitsProblem(problem).solve()
        decision = TenantAdmissionController().try_admit(
            "t", problem, qos=qos
        )
        if not certificate.feasible:
            assert not decision.admitted
            assert decision.reason.startswith("certificate")
        else:
            # A fresh controller holds no load, so a feasible point with
            # AF <= capacity must be admitted symmetrically.
            if certificate.active_fraction <= 1.0:
                assert decision.admitted


class TestReplanBudgetRecompute:
    """Satellite 3: the serving budget follows hot re-plan adoptions."""

    def _event(self, *, feasible=True, active_fraction=0.4, n_nodes=2):
        return ReplanEvent(
            time=1.0,
            services=np.full(n_nodes, 0.002),
            gains=np.ones(n_nodes),
            waits=np.zeros(n_nodes) if feasible else None,
            active_fraction=active_fraction,
            feasible=feasible,
            source="drift",
            solve_seconds=0.0,
            adopted=feasible,
        )

    def _plan(self):
        from tests.test_tenancy_executor import _plan

        return _plan("replan-budget")

    def test_feasible_event_keeps_littles_law_budget(self):
        plan = self._plan()
        budget = budget_from_event(plan, self._event())
        assert budget.source == "replan-certificate"
        assert budget.budget == inflight_budget(
            plan.problem.tau0,
            plan.problem.deadline,
            plan.pipeline.vector_width,
        )

    def test_infeasible_event_zeroes_budget(self):
        plan = self._plan()
        budget = budget_from_event(plan, self._event(feasible=False))
        assert budget.budget == 0
        assert budget.source == "replan-infeasible"

    def test_over_capacity_event_zeroes_budget(self):
        plan = self._plan()
        budget = budget_from_event(
            plan, self._event(active_fraction=1.2)
        )
        assert budget.budget == 0

    def test_set_budget_swaps_and_counts(self):
        ctl = AdmissionController(100)
        assert ctl.budget_updates == 0
        ctl.set_budget(3)
        assert ctl.budget == 3
        assert not ctl.admit(4, 0)
        ctl.set_budget(10)
        assert ctl.admit(4, 0)
        assert ctl.budget_updates == 2
        assert ctl.stats()["budget_updates"] == 2
        with pytest.raises(SpecError):
            ctl.set_budget(-1)

    def test_executor_adoption_drives_the_admission_budget(self):
        # The regression: before the fix the budget was computed once at
        # server start; an adopted re-plan (here: one that certifies the
        # operating point infeasible) must now propagate through
        # on_replan into the controller, closing the ingest gate.
        from repro.runtime.executor import PipelineExecutor

        plan = self._plan()
        admission = AdmissionController(budget_from_plan(plan))
        assert admission.budget > 0

        def on_replan(event, plan=plan):
            admission.set_budget(budget_from_event(plan, event))

        ex = PipelineExecutor.from_plan(plan, on_replan=on_replan)
        ex._adopt_replan(self._event(feasible=True, active_fraction=0.3))
        assert admission.budget_updates == 1
        assert admission.budget > 0

        bad = self._event(feasible=True, active_fraction=1.5)
        ex._adopt_replan(bad)
        assert admission.budget_updates == 2
        assert admission.budget == 0
        assert not admission.admit(1, 0)
        assert ex._adopted_replans == 2
