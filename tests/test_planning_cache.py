"""Plan-cache correctness: key canonicalization, LRU, disk store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.enforced_waits import EnforcedWaitsProblem
from repro.core.model import RealTimeProblem
from repro.dataflow.gains import BernoulliGain, CensoredPoissonGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError
from repro.planning.cache import (
    SCHEMA_VERSION,
    PlanCache,
    plan_key,
    shape_key,
    solution_from_dict,
    solution_to_dict,
)


@pytest.fixture
def pipeline() -> PipelineSpec:
    return PipelineSpec.from_arrays([10.0, 20.0], [0.5, 1.0], 4)


@pytest.fixture
def problem(pipeline) -> RealTimeProblem:
    return RealTimeProblem(pipeline, 20.0, 500.0)


@pytest.fixture
def solution(problem):
    return EnforcedWaitsProblem(problem, np.asarray([1.0, 1.0])).solve()


class TestKeyCanonicalization:
    def test_deterministic(self, problem):
        b = np.asarray([1.0, 2.0])
        assert plan_key(problem, b) == plan_key(problem, b)

    def test_float_formatting_invariance(self, pipeline):
        """20, 20.0, np.float64(20) — same value, same key."""
        b = [1, 2]
        k1 = plan_key(RealTimeProblem(pipeline, 20, 500), b)
        k2 = plan_key(RealTimeProblem(pipeline, 20.0, 5e2), b)
        k3 = plan_key(
            RealTimeProblem(pipeline, float(np.float64(20)), 500.0),
            np.asarray([1.0, 2.0]),
        )
        assert k1 == k2 == k3

    def test_node_names_and_gain_model_do_not_enter_key(self):
        """The optimizer sees only (t, g, v): keys ignore naming and the
        gain distribution's family (only its mean matters)."""
        via_arrays = PipelineSpec.from_arrays([5.0, 7.0], [0.5, 2.0], 8)
        manual = PipelineSpec(
            (
                NodeSpec("alpha", 5.0, BernoulliGain(0.5)),
                NodeSpec("omega", 7.0, CensoredPoissonGain(2.0, 16)),
            ),
            8,
        )
        b = [1.0, 2.0]
        k1 = plan_key(RealTimeProblem(via_arrays, 3.0, 100.0), b)
        k2 = plan_key(RealTimeProblem(manual, 3.0, 100.0), b)
        # from_arrays' censored-Poisson mean is slightly below nominal;
        # only compare when the means genuinely agree.
        if np.allclose(via_arrays.mean_gains, manual.mean_gains):
            assert k1 == k2

    def test_distinct_configurations_distinct_keys(self, pipeline, problem):
        b = [1.0, 2.0]
        base = plan_key(problem, b)
        assert plan_key(problem.with_tau0(21.0), b) != base
        assert plan_key(problem.with_deadline(600.0), b) != base
        assert plan_key(problem, [1.0, 3.0]) != base
        assert plan_key(problem, b, method="fallback") != base
        wider = RealTimeProblem(pipeline.with_vector_width(8), 20.0, 500.0)
        assert plan_key(wider, b) != base

    def test_shape_key_ignores_operating_point(self, pipeline, problem):
        b = [1.0, 2.0]
        s = shape_key(pipeline, b)
        assert (
            shape_key(problem.with_tau0(99.0).pipeline, b) == s
        )  # same pipeline object family
        assert shape_key(pipeline, [2.0, 2.0]) != s
        assert shape_key(pipeline.with_vector_width(16), b) != s

    def test_bad_b_shape_raises(self, problem):
        with pytest.raises(SpecError, match="length"):
            plan_key(problem, [1.0, 2.0, 3.0])


class TestSolutionRoundTrip:
    def test_bit_exact_json_round_trip(self, solution):
        blob = json.dumps(solution_to_dict(solution))
        back = solution_from_dict(json.loads(blob))
        assert back.feasible == solution.feasible
        assert np.array_equal(back.periods, solution.periods)
        assert np.array_equal(back.waits, solution.waits)
        assert back.active_fraction == solution.active_fraction
        assert np.array_equal(
            back.node_utilizations, solution.node_utilizations
        )
        assert back.binding == solution.binding
        assert back.method == solution.method

    def test_infeasible_round_trip(self, problem):
        bad = EnforcedWaitsProblem(
            problem.with_deadline(1e-3), np.asarray([1.0, 1.0])
        ).solve()
        assert not bad.feasible
        back = solution_from_dict(
            json.loads(json.dumps(solution_to_dict(bad)))
        )
        assert not back.feasible
        assert np.isnan(back.active_fraction)
        assert back.diagnosis == bad.diagnosis


class TestLru:
    def test_hit_miss_counters_and_identity(self, solution):
        cache = PlanCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", solution)
        assert cache.get("k") is solution
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.requests == 2

    def test_eviction_order_is_lru(self, solution):
        cache = PlanCache(capacity=2)
        cache.put("a", solution)
        cache.put("b", solution)
        assert cache.get("a") is solution  # refresh a
        cache.put("c", solution)  # evicts b, the least recently used
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_shape_index_follows_eviction(self, solution):
        cache = PlanCache(capacity=1)
        cache.put("a", solution, shape="s")
        cache.put("b", solution, shape="s2")
        assert cache.nearest_by_shape("s") is None
        assert cache.nearest_by_shape("s2") is solution

    def test_nearest_by_shape_prefers_most_recent(self, solution, problem):
        other = EnforcedWaitsProblem(
            problem.with_tau0(25.0), np.asarray([1.0, 1.0])
        ).solve()
        cache = PlanCache()
        cache.put("a", solution, shape="s")
        cache.put("b", other, shape="s")
        assert cache.nearest_by_shape("s") is other

    def test_infeasible_solutions_never_seed_warm_starts(self, problem):
        bad = EnforcedWaitsProblem(
            problem.with_deadline(1e-3), np.asarray([1.0, 1.0])
        ).solve()
        cache = PlanCache()
        cache.put("a", bad, shape="s")
        assert cache.nearest_by_shape("s") is None

    def test_capacity_validation(self):
        with pytest.raises(SpecError):
            PlanCache(capacity=0)


class TestDiskStore:
    def test_round_trip_is_bit_exact(self, tmp_path, solution):
        path = tmp_path / "plans.json"
        cache = PlanCache(path=path)
        cache.put("k", solution, shape="s", meta={"note": "x"})
        cache.flush()

        fresh = PlanCache(path=path)
        assert len(fresh) == 1
        assert fresh.stats.disk_entries_loaded == 1
        assert fresh.stats.disk_load_errors == 0
        got = fresh.get("k")
        assert np.array_equal(got.periods, solution.periods)
        assert got.active_fraction == solution.active_fraction
        assert fresh.nearest_by_shape("s") is got

    def test_missing_file_is_cold_start(self, tmp_path):
        cache = PlanCache(path=tmp_path / "absent.json")
        assert len(cache) == 0
        assert cache.stats.disk_load_errors == 0

    @pytest.mark.parametrize(
        "content",
        [
            "this is not json{{{",
            '{"schema": 999, "entries": []}',
            '{"entries": []}',
            '{"schema": %d, "entries": {"not": "a list"}}' % SCHEMA_VERSION,
            "[1, 2, 3]",
            "",
        ],
    )
    def test_corrupted_store_never_raises(self, tmp_path, content):
        path = tmp_path / "plans.json"
        path.write_text(content)
        cache = PlanCache(path=path)  # must not raise
        assert len(cache) == 0
        assert cache.stats.disk_load_errors == 1

    def test_truncated_store_never_raises(self, tmp_path, solution):
        path = tmp_path / "plans.json"
        cache = PlanCache(path=path)
        cache.put("k", solution)
        cache.flush()
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])
        fresh = PlanCache(path=path)
        assert len(fresh) == 0
        assert fresh.stats.disk_load_errors == 1

    def test_partial_entries_skipped_good_ones_kept(self, tmp_path, solution):
        path = tmp_path / "plans.json"
        payload = {
            "schema": SCHEMA_VERSION,
            "entries": [
                {"key": "bad-1"},  # missing solution
                {
                    "key": "good",
                    "shape": None,
                    "meta": {},
                    "solution": solution_to_dict(solution),
                },
                {"key": 42, "solution": solution_to_dict(solution)},
                "not even a dict",
            ],
        }
        path.write_text(json.dumps(payload))
        cache = PlanCache(path=path)
        assert len(cache) == 1
        assert cache.stats.disk_entries_loaded == 1
        assert cache.stats.disk_load_errors == 3
        assert cache.get("good") is not None

    def test_flush_without_path_raises(self, solution):
        cache = PlanCache()
        cache.put("k", solution)
        with pytest.raises(SpecError, match="no on-disk path"):
            cache.flush()

    def test_telemetry_counters(self, solution):
        cache = PlanCache(capacity=1)
        cache.put("a", solution)
        cache.put("b", solution)
        cache.get("b")
        cache.get("zzz")
        t = cache.telemetry()
        assert t.entries == 1
        assert t.hits == 1 and t.misses == 1
        assert t.stores == 2 and t.evictions == 1
        assert "plan cache telemetry" in t.render()
        assert t.hit_rate == pytest.approx(0.5)


class TestFloatCanonicalization:
    def test_negative_zero_and_zero_share_a_key(self, problem):
        """-0.0 and 0.0 compare equal, so their keys must agree.

        float.hex() distinguishes them ('-0x0.0p+0' vs '0x0.0p+0'), so
        canonicalization has to collapse the sign before hashing — a
        solver emitting a -0.0 budget entry used to miss the cache.
        """
        assert plan_key(problem, [0.0, 1.0]) == plan_key(
            problem, [-0.0, 1.0]
        )
        assert shape_key(problem.pipeline, [0.0, 1.0]) == shape_key(
            problem.pipeline, [-0.0, 1.0]
        )
        assert plan_key(problem, np.asarray([0.0, 1.0])) == plan_key(
            problem, np.asarray([np.negative(0.0), 1.0])
        )

    def test_negative_zero_hits_a_zero_keyed_entry(self, problem, solution):
        cache = PlanCache(capacity=4)
        cache.put(plan_key(problem, [0.0, 1.0]), solution)
        assert cache.get(plan_key(problem, [-0.0, 1.0])) is solution

    def test_nan_parameter_rejected(self, problem):
        with pytest.raises(SpecError, match="NaN"):
            plan_key(problem, [float("nan"), 1.0])

    def test_nonzero_values_keep_full_precision(self, problem):
        """Canonicalization must not round: nextafter(1) gets its own key."""
        eps_up = np.nextafter(1.0, 2.0)
        assert plan_key(problem, [1.0, 1.0]) != plan_key(
            problem, [eps_up, 1.0]
        )
