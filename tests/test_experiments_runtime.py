"""The R2 experiment: prediction vs simulator vs live execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runtime_exp import run_runtime_validation


def test_registered():
    assert "runtime-validation" in EXPERIMENTS


@pytest.mark.slow
class TestRuntimeValidation:
    def test_all_three_measurements_agree(self):
        result = run_runtime_validation(
            ("synthetic",), seconds=1.2, n_sim_items=2000
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        # The DES leg tracks the solver tightly; the live leg pays for
        # real sleeps and scheduling but stays inside the 15% gate.
        assert row.sim_rel_error < 0.05
        assert row.live_rel_error < 0.15
        assert row.live_missed == 0
        assert row.live_outputs > 0
        assert np.isfinite(result.max_live_rel_error)
        text = result.render()
        assert "synthetic" in text and "live AF" in text
