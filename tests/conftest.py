"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.blast.pipeline import blast_pipeline
from repro.dataflow.gains import BernoulliGain, DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def blast() -> PipelineSpec:
    """The paper's Table 1 pipeline."""
    return blast_pipeline()


@pytest.fixture
def calibrated_b() -> np.ndarray:
    return np.asarray([1.0, 3.0, 9.0, 6.0])


@pytest.fixture
def tiny_pipeline() -> PipelineSpec:
    """A fast two-node pipeline for cheap simulation tests."""
    return PipelineSpec(
        (
            NodeSpec("a", 10.0, BernoulliGain(0.5)),
            NodeSpec("b", 20.0, DeterministicGain(1)),
        ),
        vector_width=4,
    )


@pytest.fixture
def passthrough_pipeline() -> PipelineSpec:
    """Three deterministic pass-through nodes (no randomness at all)."""
    return PipelineSpec(
        (
            NodeSpec("p0", 5.0, DeterministicGain(1)),
            NodeSpec("p1", 7.0, DeterministicGain(1)),
            NodeSpec("p2", 3.0, DeterministicGain(1)),
        ),
        vector_width=8,
    )
