"""Hardened JSON-lines server (repro.serving.server + config)."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.errors import ServingError, SpecError
from repro.serving import JsonLinesServer, ServingConfig
from repro.serving.chaos import request_once, send_raw_lines


async def echo_handler(obj: dict) -> dict:
    op = obj.get("op")
    if op == "echo":
        return {"ok": True, "echo": obj.get("value")}
    if op == "boom":
        raise RuntimeError("handler exploded")
    if op == "bad":
        raise SpecError("bad request by design")
    if op == "slow":
        import asyncio

        await asyncio.sleep(obj.get("seconds", 1.0))
        return {"ok": True}
    if op == "shutdown":
        return {"op": "shutdown", "ok": True}
    raise SpecError(f"unknown op {op!r}")


def serve(config=None, **kwargs):
    server = JsonLinesServer(
        echo_handler, port=0, config=config, name="test", **kwargs
    )
    server.start()
    return server


class TestServingConfig:
    def test_defaults_valid(self):
        cfg = ServingConfig()
        assert cfg.max_line_bytes >= 1 << 20
        assert cfg.max_connections >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_line_bytes": 8},
            {"idle_timeout": 0.0},
            {"request_deadline": -1.0},
            {"max_connections": 0},
            {"drain_timeout": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(SpecError):
            ServingConfig(**kwargs)

    def test_none_timeouts_allowed(self):
        cfg = ServingConfig(idle_timeout=None, request_deadline=None)
        assert cfg.idle_timeout is None
        assert cfg.request_deadline is None


@pytest.mark.slow
class TestJsonLinesServer:
    def test_echo_roundtrip_and_shutdown(self):
        server = serve()
        reply = request_once(
            server.host, server.port, {"op": "echo", "value": 42}
        )
        assert reply == {"ok": True, "echo": 42}
        bye = request_once(server.host, server.port, {"op": "shutdown"})
        assert bye == {"op": "shutdown", "ok": True}
        assert server.join(timeout=10.0)
        assert server.stats.requests == 2

    def test_health_op_served_by_server(self):
        server = serve(health_extra=lambda: {"depth": 7})
        try:
            health = request_once(server.host, server.port, {"op": "health"})
            assert health["ok"] is True
            assert health["ready"] is True
            assert health["draining"] is False
            assert health["depth"] == 7
            assert "stats" in health
        finally:
            server.stop()

    def test_health_extra_failure_is_contained(self):
        def broken():
            raise RuntimeError("probe broke")

        server = serve(health_extra=broken)
        try:
            health = request_once(server.host, server.port, {"op": "health"})
            assert health["ok"] is True
            assert "probe broke" in health["health_extra_error"]
        finally:
            server.stop()

    def test_non_json_line_gets_structured_error(self):
        server = serve()
        try:
            replies = send_raw_lines(
                server.host,
                server.port,
                [b"this is not json", b'{"op": "echo", "value": 1}'],
            )
            assert "JSONDecodeError" in replies[0]["error"]
            # The connection survives the malformed line.
            assert replies[1] == {"ok": True, "echo": 1}
        finally:
            server.stop()

    def test_non_object_payload_rejected(self):
        server = serve()
        try:
            replies = send_raw_lines(
                server.host, server.port, [b"[1, 2, 3]", b'"just a string"']
            )
            assert all("SpecError" in r["error"] for r in replies)
        finally:
            server.stop()

    def test_handler_spec_error_becomes_response(self):
        server = serve()
        try:
            reply = request_once(server.host, server.port, {"op": "bad"})
            assert reply == {"error": "SpecError: bad request by design"}
        finally:
            server.stop()

    def test_handler_crash_becomes_internal_error(self):
        server = serve()
        try:
            reply = request_once(server.host, server.port, {"op": "boom"})
            assert "InternalError" in reply["error"]
            assert "handler exploded" in reply["error"]
            # Server is still alive and serving.
            ok = request_once(
                server.host, server.port, {"op": "echo", "value": 2}
            )
            assert ok["echo"] == 2
            assert server.stats.internal_errors == 1
        finally:
            server.stop()

    def test_oversized_line_rejected_with_error(self):
        server = serve(config=ServingConfig(max_line_bytes=256))
        try:
            blob = b'{"op": "echo", "value": "' + b"x" * 1024 + b'"}'
            replies = send_raw_lines(server.host, server.port, [blob])
            assert "exceeds" in replies[0]["error"]
            assert server.stats.oversized_lines == 1
            # Fresh connections still work after the oversized frame.
            ok = request_once(
                server.host, server.port, {"op": "echo", "value": 3}
            )
            assert ok["echo"] == 3
        finally:
            server.stop()

    def test_idle_timeout_kicks_connection(self):
        server = serve(config=ServingConfig(idle_timeout=0.2))
        try:
            with socket.create_connection(
                (server.host, server.port), timeout=10.0
            ) as sock:
                sock.settimeout(10.0)
                fh = sock.makefile("rwb")
                line = fh.readline()  # blocks until the server kicks us
            reply = json.loads(line)
            assert reply["retriable"] is True
            assert "idle" in reply["error"]
            assert server.stats.idle_timeouts == 1
        finally:
            server.stop()

    def test_request_deadline_returns_retriable_error(self):
        server = serve(config=ServingConfig(request_deadline=0.1))
        try:
            reply = request_once(
                server.host, server.port, {"op": "slow", "seconds": 5.0}
            )
            assert reply["retriable"] is True
            assert "deadline" in reply["error"]
            assert server.stats.deadline_timeouts == 1
        finally:
            server.stop()

    def test_connection_cap_rejects_excess(self):
        server = serve(config=ServingConfig(max_connections=1))
        try:
            first = socket.create_connection(
                (server.host, server.port), timeout=10.0
            )
            fh = first.makefile("rwb")
            fh.write(b'{"op": "echo", "value": 0}\n')
            fh.flush()
            assert json.loads(fh.readline())["ok"] is True
            # Second connection is told to back off.
            reply = request_once(
                server.host, server.port, {"op": "echo", "value": 1}
            )
            assert reply["ok"] is False
            assert reply["retriable"] is True
            assert "connection limit" in reply["error"]
            assert server.stats.connections_rejected >= 1
            first.close()
        finally:
            server.stop()

    def test_mid_request_disconnect_counted(self):
        server = serve()
        try:
            with socket.create_connection(
                (server.host, server.port), timeout=10.0
            ) as sock:
                sock.sendall(b'{"op": "ech')
            deadline = time.time() + 5.0
            while (
                server.stats.disconnects_mid_request == 0
                and time.time() < deadline
            ):
                time.sleep(0.01)
            assert server.stats.disconnects_mid_request == 1
        finally:
            server.stop()

    def test_on_drain_runs_exactly_once(self):
        calls = []
        server = serve(on_drain=lambda: calls.append(1))
        request_once(server.host, server.port, {"op": "shutdown"})
        assert server.join(timeout=10.0)
        server.stop()  # second stop must not re-run the hook
        assert calls == [1]

    def test_stop_without_traffic(self):
        server = serve()
        server.stop()
        assert server.join(timeout=10.0)

    def test_double_start_rejected(self):
        server = serve()
        try:
            with pytest.raises(ServingError, match="already started"):
                server.start()
        finally:
            server.stop()

    def test_bind_failure_raises_serving_error(self):
        taken = serve()
        try:
            clash = JsonLinesServer(
                echo_handler, host=taken.host, port=taken.port, name="clash"
            )
            with pytest.raises(ServingError, match="failed to bind"):
                clash.start()
        finally:
            taken.stop()

    def test_draining_connection_rejected(self):
        server = serve(config=ServingConfig(drain_timeout=0.5))
        # Hold a connection open so drain has something to wait on.
        hold = socket.create_connection(
            (server.host, server.port), timeout=10.0
        )
        server.request_shutdown_threadsafe()
        assert server.join(timeout=10.0)
        hold.close()
