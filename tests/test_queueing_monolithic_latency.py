"""Tests for the monolithic latency model."""

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.core.model import RealTimeProblem
from repro.core.monolithic import solve_monolithic
from repro.errors import SpecError
from repro.queueing.monolithic_latency import predict_monolithic_latency
from repro.sim.monolithic import MonolithicSimulator


@pytest.fixture(scope="module")
def blast_setup():
    from repro.apps.blast.pipeline import blast_pipeline

    blast = blast_pipeline()
    tau0, deadline = 30.0, 2.0e5
    sol = solve_monolithic(RealTimeProblem(blast, tau0, deadline))
    return blast, tau0, deadline, sol


class TestAgainstSimulation:
    @pytest.fixture(scope="class")
    def measured(self, blast_setup):
        blast, tau0, deadline, sol = blast_setup
        return MonolithicSimulator(
            blast,
            sol.block_size,
            FixedRateArrivals(tau0),
            deadline,
            10 * sol.block_size,
            seed=4,
            keep_latency_samples=True,
        ).run()

    def test_mean_within_two_percent(self, blast_setup, measured):
        blast, tau0, _, sol = blast_setup
        pred = predict_monolithic_latency(blast, sol.block_size, tau0)
        assert pred.mean_latency == pytest.approx(
            measured.mean_latency, rel=0.02
        )

    def test_tail_quantile_close(self, blast_setup, measured):
        blast, tau0, _, sol = blast_setup
        pred = predict_monolithic_latency(blast, sol.block_size, tau0)
        ledger = measured.extra["ledger"]
        assert pred.quantile(0.99) == pytest.approx(
            ledger.latency.quantile(0.99), rel=0.03
        )

    def test_miss_probability_agrees(self, blast_setup, measured):
        blast, tau0, deadline, sol = blast_setup
        pred = predict_monolithic_latency(blast, sol.block_size, tau0)
        assert pred.miss_probability(deadline) < 1e-3
        assert measured.miss_rate == 0


class TestStructure:
    def test_pmf_is_distribution(self, blast_setup):
        blast, tau0, _, sol = blast_setup
        pred = predict_monolithic_latency(blast, sol.block_size, tau0)
        assert pred.service_pmf.sum() == pytest.approx(1.0)
        assert (pred.service_pmf >= 0).all()

    def test_mean_service_matches_tbar_closely(self, blast_setup):
        from repro.core.monolithic import MonolithicProblem

        blast, tau0, deadline, sol = blast_setup
        pred = predict_monolithic_latency(blast, sol.block_size, tau0)
        tbar = MonolithicProblem(
            RealTimeProblem(blast, tau0, deadline)
        ).tbar(sol.block_size)
        # E[ceil] >= ceil[E] (Jensen), so prediction sits at or above Tbar.
        assert pred.mean_service >= tbar - 1e-9
        assert pred.mean_service <= tbar * 1.15

    def test_deterministic_passthrough_exact(self, passthrough_pipeline):
        # All gains 1: T is deterministic, latency quantiles exact.
        m = 16
        pred = predict_monolithic_latency(passthrough_pipeline, m, 5.0)
        expected_t = sum(
            -(-m // passthrough_pipeline.vector_width) * n.service_time
            for n in passthrough_pipeline.nodes
        )
        assert pred.service_support.size == 1
        assert pred.mean_service == pytest.approx(expected_t)
        assert pred.quantile(1.0) == pytest.approx(
            (m - 1) * 5.0 + expected_t
        )

    def test_quantiles_monotone(self, blast_setup):
        blast, tau0, _, sol = blast_setup
        pred = predict_monolithic_latency(blast, sol.block_size, tau0)
        qs = [pred.quantile(q) for q in (0.1, 0.5, 0.9, 0.999)]
        assert qs == sorted(qs)

    def test_validation(self, passthrough_pipeline):
        with pytest.raises(SpecError):
            predict_monolithic_latency(passthrough_pipeline, 0, 1.0)
        with pytest.raises(SpecError):
            predict_monolithic_latency(passthrough_pipeline, 5, 0.0)
        pred = predict_monolithic_latency(passthrough_pipeline, 5, 1.0)
        with pytest.raises(SpecError):
            pred.quantile(2.0)
