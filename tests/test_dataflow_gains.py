"""Tests for gain distributions, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
    EmpiricalGain,
    MixtureGain,
    gain_from_mean,
)
from repro.errors import SpecError


def _check_pmf_contract(dist):
    """Shared invariants every distribution must satisfy."""
    pmf = dist.pmf()
    assert pmf.size == dist.max_outputs + 1
    assert (pmf >= 0).all()
    assert pmf.sum() == pytest.approx(1.0)
    mean_from_pmf = float(np.dot(np.arange(pmf.size), pmf))
    assert mean_from_pmf == pytest.approx(dist.mean, rel=1e-9, abs=1e-12)


class TestDeterministic:
    def test_mean_and_samples(self, rng):
        d = DeterministicGain(3)
        assert d.mean == 3.0
        assert (d.sample(rng, 10) == 3).all()
        _check_pmf_contract(d)

    def test_zero_gain(self, rng):
        d = DeterministicGain(0)
        assert (d.sample(rng, 5) == 0).all()
        assert d.variance == 0.0

    def test_rejects_negative(self):
        with pytest.raises(SpecError):
            DeterministicGain(-1)


class TestBernoulli:
    def test_mean_is_p(self):
        assert BernoulliGain(0.379).mean == pytest.approx(0.379)

    def test_samples_binary(self, rng):
        s = BernoulliGain(0.5).sample(rng, 1000)
        assert set(np.unique(s)) <= {0, 1}

    def test_sample_mean_converges(self, rng):
        s = BernoulliGain(0.379).sample(rng, 200_000)
        assert s.mean() == pytest.approx(0.379, abs=0.005)

    def test_pmf(self):
        _check_pmf_contract(BernoulliGain(0.25))

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects_bad_p(self, bad):
        with pytest.raises(SpecError):
            BernoulliGain(bad)


class TestCensoredPoisson:
    def test_censoring_limits_samples(self, rng):
        d = CensoredPoissonGain(1.92, 16)
        s = d.sample(rng, 100_000)
        assert s.max() <= 16
        assert s.min() >= 0

    def test_censored_mean_below_nominal(self):
        d = CensoredPoissonGain(1.92, 2)  # aggressive censoring
        assert d.mean < d.nominal_mean

    def test_mild_censoring_mean_close(self):
        d = CensoredPoissonGain(1.92, 16)  # paper's configuration
        assert d.mean == pytest.approx(1.92, abs=1e-6)

    def test_pmf_contract(self):
        _check_pmf_contract(CensoredPoissonGain(1.92, 16))

    def test_tail_mass_collapses_to_limit(self):
        tight = CensoredPoissonGain(5.0, 3)
        pmf = tight.pmf()
        # P(X=3 censored) = P(Poisson >= 3), which is large for lam=5.
        assert pmf[3] > 0.7

    def test_sample_mean_matches_censored_mean(self, rng):
        d = CensoredPoissonGain(3.0, 4)
        s = d.sample(rng, 200_000)
        assert s.mean() == pytest.approx(d.mean, abs=0.02)

    def test_rejects_bad_args(self):
        with pytest.raises(SpecError):
            CensoredPoissonGain(0.0, 16)
        with pytest.raises(SpecError):
            CensoredPoissonGain(1.0, 0)


class TestEmpirical:
    def test_reproduces_observed_frequencies(self):
        d = EmpiricalGain([0, 0, 1, 1, 1, 2])
        pmf = d.pmf()
        assert pmf[0] == pytest.approx(2 / 6)
        assert pmf[1] == pytest.approx(3 / 6)
        assert pmf[2] == pytest.approx(1 / 6)
        assert d.mean == pytest.approx(5 / 6)
        assert d.n_observations == 6

    def test_sampling_within_support(self, rng):
        d = EmpiricalGain([0, 3, 3, 7])
        s = d.sample(rng, 1000)
        assert set(np.unique(s)) <= {0, 3, 7}

    def test_rejects_empty_and_negative(self):
        with pytest.raises(SpecError):
            EmpiricalGain([])
        with pytest.raises(SpecError):
            EmpiricalGain([1, -1])


class TestMixture:
    def test_mean_is_weighted(self):
        m = MixtureGain([BernoulliGain(0.0), BernoulliGain(1.0)], [0.25, 0.75])
        assert m.mean == pytest.approx(0.75)
        _check_pmf_contract(m)

    def test_mixture_has_higher_variance_than_single(self):
        single = BernoulliGain(0.5)
        mix = MixtureGain([BernoulliGain(0.0), BernoulliGain(1.0)], [0.5, 0.5])
        assert mix.mean == pytest.approx(single.mean)
        # Same mean, but mixture concentrates on extreme phases.
        assert mix.variance <= single.variance + 1e-12

    def test_sampling_uses_all_components(self, rng):
        m = MixtureGain(
            [DeterministicGain(1), DeterministicGain(5)], [0.5, 0.5]
        )
        s = m.sample(rng, 2000)
        assert {1, 5} <= set(np.unique(s))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(SpecError):
            MixtureGain([DeterministicGain(1)], [0.5, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(SpecError):
            MixtureGain([], [])


class TestGainFromMean:
    def test_sub_unit_becomes_bernoulli(self):
        assert isinstance(gain_from_mean(0.379), BernoulliGain)

    def test_super_unit_becomes_censored_poisson(self):
        d = gain_from_mean(1.92)
        assert isinstance(d, CensoredPoissonGain)
        assert d.u == 16  # the paper's default limit

    def test_zero_is_deterministic(self):
        assert isinstance(gain_from_mean(0.0), DeterministicGain)

    def test_custom_limit(self):
        assert gain_from_mean(3.0, u=4).max_outputs == 4

    def test_rejects_negative(self):
        with pytest.raises(SpecError):
            gain_from_mean(-0.5)


@settings(max_examples=30)
@given(mean=st.floats(0.01, 0.99))
def test_property_bernoulli_pmf_mean(mean):
    _check_pmf_contract(BernoulliGain(mean))


@settings(max_examples=30)
@given(lam=st.floats(0.1, 10.0), u=st.integers(1, 32))
def test_property_censored_poisson_contract(lam, u):
    d = CensoredPoissonGain(lam, u)
    _check_pmf_contract(d)
    assert d.mean <= d.nominal_mean + 1e-12
    assert d.max_outputs == u


@settings(max_examples=30)
@given(
    counts=st.lists(st.integers(0, 20), min_size=1, max_size=200),
)
def test_property_empirical_mean_matches_data(counts):
    d = EmpiricalGain(counts)
    assert d.mean == pytest.approx(float(np.mean(counts)))
    _check_pmf_contract(d)
