"""Tests for arrival processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import (
    BurstyArrivals,
    FixedRateArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.errors import SpecError


class TestFixedRate:
    def test_exact_spacing(self, rng):
        times = FixedRateArrivals(10.0).generate(5, rng)
        assert times.tolist() == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_offset(self, rng):
        times = FixedRateArrivals(10.0, offset=3.0).generate(2, rng)
        assert times.tolist() == [3.0, 13.0]

    def test_rate_and_interarrival(self):
        p = FixedRateArrivals(4.0)
        assert p.mean_rate == 0.25
        assert p.mean_interarrival == 4.0

    def test_rng_optional(self):
        assert FixedRateArrivals(1.0).generate(3, None).size == 3

    def test_rejects_bad_tau(self):
        with pytest.raises(SpecError):
            FixedRateArrivals(0.0)


class TestPoisson:
    def test_mean_rate_statistics(self, rng):
        times = PoissonArrivals(10.0).generate(20_000, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(10.0, rel=0.05)
        # Exponential: std == mean.
        assert gaps.std() == pytest.approx(10.0, rel=0.1)

    def test_nondecreasing(self, rng):
        times = PoissonArrivals(1.0).generate(1000, rng)
        assert (np.diff(times) >= 0).all()


class TestBursty:
    def test_mean_rate_accounts_for_phases(self):
        p = BurstyArrivals(10.0, 2.0, burst_fraction=0.5)
        assert p.mean_rate == pytest.approx(1.0 / 6.0)

    def test_gaps_only_two_values(self, rng):
        p = BurstyArrivals(10.0, 2.0)
        gaps = np.diff(p.generate(5000, rng))
        assert set(np.unique(gaps)) <= {2.0, 10.0}

    def test_burst_fraction_realized(self, rng):
        p = BurstyArrivals(10.0, 2.0, burst_fraction=0.2, mean_burst_len=30)
        gaps = np.diff(p.generate(50_000, rng))
        frac = (gaps == 2.0).mean()
        assert frac == pytest.approx(0.2, abs=0.06)

    def test_rejects_slow_burst(self):
        with pytest.raises(SpecError):
            BurstyArrivals(2.0, 10.0)

    def test_rejects_degenerate_fraction(self):
        with pytest.raises(SpecError):
            BurstyArrivals(10.0, 2.0, burst_fraction=0.0)


class TestTrace:
    def test_replays(self, rng):
        p = TraceArrivals([0.0, 1.5, 4.0])
        assert p.generate(2, rng).tolist() == [0.0, 1.5]
        assert len(p) == 3

    def test_over_request_rejected(self, rng):
        with pytest.raises(SpecError):
            TraceArrivals([1.0]).generate(2, rng)

    def test_rejects_decreasing(self):
        with pytest.raises(SpecError):
            TraceArrivals([2.0, 1.0])

    def test_rejects_negative_start(self):
        with pytest.raises(SpecError):
            TraceArrivals([-1.0, 1.0])

    def test_mean_rate(self):
        assert TraceArrivals([0.0, 1.0, 2.0]).mean_rate == pytest.approx(1.0)

    def test_ties_allowed(self, rng):
        """Equal consecutive timestamps are part of the contract."""
        p = TraceArrivals([0.0, 1.0, 1.0, 1.0, 2.0])
        assert p.generate(5, rng).tolist() == [0.0, 1.0, 1.0, 1.0, 2.0]

    def test_rejects_empty_trace(self):
        with pytest.raises(SpecError, match="non-empty"):
            TraceArrivals([])

    def test_rejects_2d_trace(self):
        with pytest.raises(SpecError, match="1-D"):
            TraceArrivals(np.zeros((2, 2)))

    def test_generate_returns_a_copy(self, rng):
        p = TraceArrivals([0.0, 1.0])
        out = p.generate(2, rng)
        out[0] = 99.0
        assert p.generate(2, rng)[0] == 0.0


class _StubExecutor:
    """Just enough of the PipelineExecutor surface for ReplaySource.feed."""

    def __init__(self):
        import threading
        import time

        self._stop = threading.Event()
        self._clock = time.perf_counter
        self.batches: list[tuple[float, int]] = []
        self.finished = False
        self._t0 = self._clock()

    def should_stop(self) -> bool:
        return self._stop.is_set()

    def submit(self, payload):
        self.batches.append((self._clock() - self._t0, len(payload)))
        return np.arange(len(payload))

    def finish_ingest(self):
        self.finished = True


class TestTraceReplayPacing:
    """TraceArrivals driven through the executor's ReplaySource."""

    def _feed(self, times, *, scale, n_items=None):
        from repro.runtime.ingest import ReplaySource

        source = ReplaySource(
            TraceArrivals(times).generate(len(times), None)
            if n_items is None
            else TraceArrivals(times),
            lambda n, rng: np.zeros(n),
            n_items=n_items,
            scale=scale,
        )
        executor = _StubExecutor()
        submitted = source.feed(executor)
        return source, executor, submitted

    def test_scale_paces_the_replay(self):
        """A trace recorded in 0.1-unit steps replays in scaled seconds."""
        import time

        t0 = time.perf_counter()
        _, executor, submitted = self._feed(
            [0.0, 1.0, 2.0], scale=0.05
        )
        elapsed = time.perf_counter() - t0
        assert submitted == 3
        assert executor.finished
        # Last item is due at 2.0 * 0.05 = 0.1 s; generous upper bound
        # for a loaded CI box.
        assert 0.1 <= elapsed < 2.0
        last_batch_time = executor.batches[-1][0]
        assert last_batch_time >= 0.1

    def test_tied_timestamps_coalesce_into_one_batch(self):
        _, executor, submitted = self._feed(
            [0.0, 0.0, 0.0], scale=1.0
        )
        assert submitted == 3
        assert executor.batches[0][1] == 3

    def test_replay_rebases_capture_epoch(self):
        """A trace starting at t=1e9 still begins replaying immediately."""
        import time

        t0 = time.perf_counter()
        _, _, submitted = self._feed(
            [1e9, 1e9 + 0.01, 1e9 + 0.02], scale=1.0
        )
        assert submitted == 3
        assert time.perf_counter() - t0 < 2.0

    def test_arrival_process_requires_n_items(self):
        from repro.runtime.ingest import ReplaySource

        with pytest.raises(SpecError, match="n_items"):
            ReplaySource(TraceArrivals([0.0, 1.0]), lambda n, rng: np.zeros(n))

    def test_rejects_nonpositive_scale(self):
        from repro.runtime.ingest import ReplaySource

        with pytest.raises(SpecError, match="scale"):
            ReplaySource(
                np.asarray([0.0, 1.0]), lambda n, rng: np.zeros(n), scale=0.0
            )


@settings(max_examples=25)
@given(
    tau0=st.floats(0.1, 100.0),
    n=st.integers(1, 200),
    kind=st.sampled_from(["fixed", "poisson", "bursty"]),
)
def test_property_generators_contract(tau0, n, kind):
    """All generators produce n nondecreasing nonnegative times."""
    rng = np.random.default_rng(0)
    if kind == "fixed":
        proc = FixedRateArrivals(tau0)
    elif kind == "poisson":
        proc = PoissonArrivals(tau0)
    else:
        proc = BurstyArrivals(tau0 * 2, tau0 / 2)
    times = proc.generate(n, rng)
    assert times.shape == (n,)
    assert (times >= 0).all()
    assert (np.diff(times) >= 0).all()


class TestDiurnal:
    def test_nondecreasing_across_zero_rate_epochs(self):
        """Regression: amplitude > 1 clamps the rate to zero around each
        trough; interpolating the inverse of the (flat) integrated rate
        there could step backwards by one ULP before the accumulate-clamp
        was added."""
        from repro.arrivals import DiurnalArrivals

        proc = DiurnalArrivals(0.05, period=10.0, amplitude=1.6)
        for seed in range(5):
            times = proc.generate(500, np.random.default_rng(seed))
            assert times.shape == (500,)
            assert (np.diff(times) >= 0).all()
            # The trace must span several periods so it actually crosses
            # empty epochs.
            assert times[-1] > 2 * proc.period

    def test_generated_trace_replays(self):
        """A diurnal trace with empty epochs satisfies the TraceArrivals
        replay contract (nondecreasing, nonnegative)."""
        from repro.arrivals import DiurnalArrivals

        proc = DiurnalArrivals(0.05, period=5.0, amplitude=1.4)
        times = proc.generate(300, np.random.default_rng(3))
        trace = TraceArrivals(times)
        replayed = trace.generate(300, np.random.default_rng(0))
        assert np.array_equal(replayed, times)

    def test_rate_clamped_at_zero(self):
        from repro.arrivals import DiurnalArrivals

        proc = DiurnalArrivals(0.1, period=1.0, amplitude=2.0)
        t = np.linspace(0.0, 1.0, 101)
        rates = np.asarray(proc.rate(t))
        assert (rates >= 0).all()
        assert (rates == 0).any()

    def test_mean_rate_matches_unclamped_curve(self):
        from repro.arrivals import DiurnalArrivals

        proc = DiurnalArrivals(0.1, period=1.0, amplitude=0.8)
        assert proc.mean_rate == pytest.approx(10.0, rel=1e-3)
        clamped = DiurnalArrivals(0.1, period=1.0, amplitude=1.5)
        assert clamped.mean_rate > 10.0

    def test_deterministic_given_rng(self):
        from repro.arrivals import DiurnalArrivals

        proc = DiurnalArrivals(0.05, period=4.0, amplitude=1.2)
        a = proc.generate(200, np.random.default_rng(11))
        b = proc.generate(200, np.random.default_rng(11))
        assert np.array_equal(a, b)

    def test_rejects_negative_amplitude(self):
        from repro.arrivals import DiurnalArrivals

        with pytest.raises(SpecError, match="amplitude"):
            DiurnalArrivals(0.1, period=1.0, amplitude=-0.5)


class TestHeavyTailed:
    def test_contract_and_burst_spacing(self):
        from repro.arrivals import HeavyTailedArrivals

        proc = HeavyTailedArrivals(1.0, 0.01, exponent=1.8, max_burst=64)
        times = proc.generate(400, np.random.default_rng(2))
        assert times.shape == (400,)
        assert (np.diff(times) >= 0).all()
        gaps = np.diff(times)
        # Within-burst gaps are exactly tau_burst; some must occur.
        assert (np.isclose(gaps, 0.01)).any()

    def test_mean_rate_consistent_with_samples(self):
        from repro.arrivals import HeavyTailedArrivals

        proc = HeavyTailedArrivals(0.5, 0.01, exponent=2.0, max_burst=32)
        n = 5000
        times = proc.generate(n, np.random.default_rng(0))
        empirical = n / times[-1]
        assert empirical == pytest.approx(proc.mean_rate, rel=0.15)

    def test_rejects_bad_params(self):
        from repro.arrivals import HeavyTailedArrivals

        with pytest.raises(SpecError, match="tau_burst"):
            HeavyTailedArrivals(0.1, 0.2)
        with pytest.raises(SpecError, match="exponent"):
            HeavyTailedArrivals(1.0, 0.01, exponent=1.0)
        with pytest.raises(SpecError, match="max_burst"):
            HeavyTailedArrivals(1.0, 0.01, max_burst=0)
