"""Tests for the experiment drivers and registry."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.scale import repro_scale, scaled
from repro.experiments.table1 import run_table1


class TestScale:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert repro_scale() == 1.0
        assert scaled(10) == 10

    def test_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scaled(10) == 5

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert scaled(10, minimum=3) == 3

    def test_bad_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(SpecError):
            repro_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(SpecError):
            repro_scale()

    def test_explicit_factor_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert scaled(100, factor=0.5) == 50


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(EXPERIMENTS)
        assert {
            "table1",
            "fig3",
            "fig4",
            "calibration",
            "sim-validation",
            "ablation-timing",
            "ablation-vacation",
            "ablation-gains",
            "poisson-arrivals",
            "queueing-b",
        } <= ids

    def test_get_unknown_raises_with_hints(self):
        with pytest.raises(SpecError, match="known ids"):
            get_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table1")
        assert hasattr(result, "render")


class TestTable1:
    def test_values(self):
        r = run_table1()
        assert r.per_item_cost == pytest.approx(7.87, abs=0.05)
        assert r.min_tau0_enforced < r.min_tau0_monolithic
        text = r.render()
        assert "287" in text and "2753" in text
        assert "BLAST" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3(n_tau0=5, n_deadline=4)

    def test_surfaces_have_feasible_region(self, fig3):
        assert fig3.sweep.enforced_feasible_mask().any()
        assert fig3.sweep.monolithic_feasible_mask().any()

    def test_complementary_sensitivities(self, fig3):
        s = fig3.sensitivities
        assert s.monolithic_tau0_sensitivity > s.monolithic_deadline_sensitivity
        assert s.monolithic_tau0_sensitivity > s.enforced_tau0_sensitivity

    def test_render_contains_both_surfaces(self, fig3):
        text = fig3.render()
        assert "enforced-waits active fraction" in text
        assert "monolithic active fraction" in text
        assert "Sensitivities" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4(n_tau0=5, n_deadline=4)

    def test_paper_dominance_claims(self, fig4):
        # Enforced wins by >= 0.4 at fast arrivals + slack deadline.
        assert fig4.corner_margin_fast_slack >= 0.4
        # Monolithic wins at slow arrivals + tight deadline.
        assert fig4.corner_margin_slow_tight < 0.0
        assert fig4.regions.max_enforced_margin >= 0.4

    def test_difference_shape(self, fig4):
        assert fig4.difference.shape == fig4.sweep.shape

    def test_render(self, fig4):
        text = fig4.render()
        assert "Figure 4" in text
        assert "margin" in text

    def test_reuses_sweep(self, fig4):
        again = run_fig4(sweep=fig4.sweep)
        assert np.array_equal(
            again.difference, fig4.difference, equal_nan=True
        )
