"""Tests for the live-executor control-policy integration."""

import numpy as np
import pytest

from repro.control.live import (
    LIVE_POLICIES,
    StaticPolicy,
    candidate_regimes,
    control_config_from_plan,
    make_live_policy,
)
from repro.errors import SpecError


@pytest.fixture(scope="module")
def plan():
    from repro.runtime.kernels import build_workload, plan_runtime

    workload = build_workload("synthetic", seed=0)
    return plan_runtime(workload, vector_width=8, seed=0)


class TestLivePolicyFactory:
    def test_unknown_kind_rejected(self, plan):
        with pytest.raises(SpecError):
            make_live_policy("nope", plan)

    def test_replan_maps_to_none(self, plan):
        assert make_live_policy("replan", plan) is None

    def test_oracle_is_static(self, plan):
        policy = make_live_policy("oracle", plan)
        assert isinstance(policy, StaticPolicy)
        assert policy.propose_live(None, 0.0) is None

    def test_candidate_regimes_shape(self):
        regimes = candidate_regimes(3, slow_factor=1.3)
        assert len(regimes) == 4
        assert regimes[0].name == "nominal"
        assert np.allclose(regimes[2].service_scale, [1.0, 1.3, 1.0])
        with pytest.raises(SpecError):
            candidate_regimes(3, slow_factor=1.0)

    def test_config_from_plan_matches_plan(self, plan):
        cfg = control_config_from_plan(plan, seed=0)
        assert cfg.tau0 == plan.problem.tau0
        assert cfg.deadline == plan.problem.deadline
        assert cfg.vector_width == plan.pipeline.vector_width
        assert len(cfg.service_times) == len(plan.workload.kernels)
        # The nominal regime always survives the feasibility filter.
        assert cfg.schedule.regimes[0].name == "nominal"

    def test_bandit_policy_proposes_live(self, plan):
        policy = make_live_policy("bandit", plan, seed=0)
        snap = _nominal_snapshot(plan)
        waits = policy.propose_live(snap, 1.0)
        n = len(plan.workload.kernels)
        assert waits is None or waits.shape == (n,)


def _nominal_snapshot(plan):
    from repro.runtime.calibration import CalibrationSnapshot

    services = np.asarray(
        [k.nominal_service for k in plan.workload.kernels]
    )
    gains = np.asarray(plan.pipeline.mean_gains, dtype=float)
    n = services.size
    return CalibrationSnapshot(
        services=services,
        gains=gains,
        planned_services=services,
        planned_gains=gains,
        observations=np.full(n, 10),
        warmed=True,
    )


class TestExecutorPolicyHook:
    def test_policy_drives_live_swaps(self):
        from repro.runtime.cli import run_live

        plan, report = run_live(
            "synthetic", seconds=0.8, seed=0, policy="bandit"
        )
        assert report.missed_items == 0
        # The controller consulted the policy (swaps may legitimately be
        # zero only if the bandit kept one arm the whole run; the first
        # selection always swaps, so require at least one).
        assert report.policy_swaps >= 1

    def test_oracle_policy_never_swaps(self):
        from repro.runtime.cli import run_live

        plan, report = run_live(
            "synthetic", seconds=0.6, seed=0, policy="oracle"
        )
        assert report.missed_items == 0
        assert report.policy_swaps == 0

    def test_policy_takes_precedence_over_replanner(self):
        # With a policy set, the executor's control loop must not run
        # the drift-detector/replanner path.
        from repro.runtime.cli import run_live

        plan, report = run_live(
            "synthetic",
            seconds=0.8,
            seed=0,
            policy="oracle",
            drift_node=1,
            drift_factor=1.6,
            drift_after=0.2,
        )
        assert report.replans == 0
