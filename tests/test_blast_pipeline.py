"""Tests for the Table 1 pipeline spec and mini-BLAST gain measurement."""

import numpy as np
import pytest

from repro.apps.blast.pipeline import (
    CALIBRATED_B,
    EXPANDER_LIMIT,
    PAPER_GAINS,
    PAPER_SERVICE_TIMES,
    VECTOR_WIDTH,
    blast_pipeline,
    calibrated_b,
)
from repro.apps.blast.trace_gains import (
    empirical_blast_pipeline,
    measure_gains,
)
from repro.dataflow.gains import BernoulliGain, CensoredPoissonGain
from repro.errors import SpecError


class TestTable1Constants:
    def test_paper_values(self):
        assert PAPER_SERVICE_TIMES == (287.0, 955.0, 402.0, 2753.0)
        assert PAPER_GAINS[:3] == (0.379, 1.920, 0.0332)
        assert VECTOR_WIDTH == 128
        assert EXPANDER_LIMIT == 16
        assert CALIBRATED_B == (1.0, 3.0, 9.0, 6.0)

    def test_pipeline_gain_models(self):
        p = blast_pipeline()
        assert isinstance(p.nodes[0].gain, BernoulliGain)
        assert isinstance(p.nodes[1].gain, CensoredPoissonGain)
        assert p.nodes[1].gain.u == 16
        assert isinstance(p.nodes[2].gain, BernoulliGain)

    def test_custom_width(self):
        assert blast_pipeline(vector_width=64).vector_width == 64

    def test_calibrated_b_array(self):
        assert calibrated_b().tolist() == [1.0, 3.0, 9.0, 6.0]


class TestMeasureGains:
    @pytest.fixture(scope="class")
    def trace(self):
        return measure_gains(db_len=40_000, n_homologies=25, seed=3)

    def test_stage_structure(self, trace):
        gains = trace.mean_gains
        assert 0.0 < gains[0] < 1.0  # stage 0 filters
        assert gains[1] > 1.0  # stage 1 expands
        assert 0.0 < gains[2] <= 1.0  # stage 2 filters
        assert gains[3] == 1.0  # report emits one per input

    def test_expander_censored(self, trace):
        assert trace.stage_counts[1].max() <= EXPANDER_LIMIT

    def test_counts_chain_consistently(self, trace):
        s0, s1, s2, s3 = trace.stage_counts
        # Stage 1 sees exactly the stage-0 passers.
        assert s1.size == int(s0.sum())
        # Stage 2 sees every expanded seed.
        assert s2.size == int(s1.sum())
        assert s3.size == int(s2.sum())

    def test_homologies_drive_hits(self):
        quiet = measure_gains(db_len=40_000, n_homologies=0, seed=3)
        busy = measure_gains(db_len=40_000, n_homologies=60, seed=3)
        assert busy.mean_gains[0] > quiet.mean_gains[0]

    def test_deterministic_by_seed(self):
        a = measure_gains(db_len=20_000, seed=5)
        b = measure_gains(db_len=20_000, seed=5)
        assert all(
            (x == y).all() for x, y in zip(a.stage_counts, b.stage_counts)
        )

    @pytest.mark.slow
    def test_gapped_verification_filters(self):
        plain = measure_gains(db_len=40_000, seed=3)
        gapped = measure_gains(
            db_len=40_000, gapped_threshold=100, seed=3
        )
        assert plain.mean_gains[3] == 1.0
        assert gapped.mean_gains[3] < 1.0
        # Earlier stages are untouched by the stage-3 policy.
        assert (plain.stage_counts[0] == gapped.stage_counts[0]).all()
        assert (plain.stage_counts[2] == gapped.stage_counts[2]).all()


class TestEmpiricalPipeline:
    def test_builds_with_paper_service_times(self):
        trace = measure_gains(db_len=40_000, seed=3)
        p = empirical_blast_pipeline(trace)
        assert p.n_nodes == 4
        assert np.allclose(p.service_times, PAPER_SERVICE_TIMES)
        assert p.mean_gains[1] > 1.0

    def test_service_times_validated(self):
        trace = measure_gains(db_len=40_000, seed=3)
        with pytest.raises(SpecError):
            empirical_blast_pipeline(trace, service_times=(1.0, 2.0))
