"""Tests for the live wall-clock executor (repro.runtime.executor).

The acceptance tests at the bottom run real planned pipelines on the
wall clock: a live run must hold zero deadline misses with measured
active fraction within 15% of the solver's predicted ``T(w)``, and an
injected mid-run service shift must trigger a drift re-plan that
restores compliance without restarting the executor.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.dataflow.gains import BernoulliGain, DeterministicGain
from repro.errors import SimulationError, SpecError
from repro.runtime.executor import PipelineExecutor
from repro.runtime.kernels import SpinKernel, VectorKernel


def _kernels(n=2, service=0.002, seed=0):
    gains = [DeterministicGain(1)] * n
    return [
        SpinKernel(f"k{i}", g, nominal_service=service, seed=seed + i)
        for i, g in enumerate(gains)
    ]


def _run(executor, n_items=32, batch=8):
    executor.start()
    rng = np.random.default_rng(0)
    for _ in range(0, n_items, batch):
        executor.submit(rng.random(batch))
        time.sleep(0.002)
    executor.finish_ingest()
    return executor.join(timeout=30.0)


class TestExecutorBasics:
    def test_passthrough_delivers_every_item(self):
        ex = PipelineExecutor(
            _kernels(), [0.0, 0.0], vector_width=8, deadline=5.0
        )
        report = _run(ex, n_items=32)
        assert report.outputs == 32
        assert report.missed_items == 0
        assert ex.in_flight == 0

    def test_submit_before_start_rejected(self):
        ex = PipelineExecutor(
            _kernels(), [0.0, 0.0], vector_width=8, deadline=5.0
        )
        with pytest.raises(SimulationError, match="start"):
            ex.submit(np.zeros(4))

    def test_filter_kernel_drops_items_silently(self):
        kernels = [
            SpinKernel("f", BernoulliGain(0.5), nominal_service=0.002, seed=1),
            SpinKernel("t", DeterministicGain(1), nominal_service=0.002),
        ]
        ex = PipelineExecutor(kernels, [0.0, 0.0], vector_width=8, deadline=5.0)
        report = _run(ex, n_items=64)
        assert 0 < report.outputs < 64
        assert report.missed_items == 0

    def test_wait_validation(self):
        with pytest.raises(SpecError):
            PipelineExecutor(
                _kernels(), [0.0], vector_width=8, deadline=5.0
            )

    def test_swap_waits_length_checked(self):
        ex = PipelineExecutor(
            _kernels(), [0.0, 0.0], vector_width=8, deadline=5.0
        )
        with pytest.raises(SpecError):
            ex.swap_waits(np.zeros(3))

    def test_kernel_exception_surfaces_in_join(self):
        class Boom(VectorKernel):
            def fire(self, payload):
                raise RuntimeError("kernel exploded")

        ex = PipelineExecutor(
            [Boom("boom", 0.002)], [0.0], vector_width=8, deadline=5.0
        )
        ex.start()
        ex.submit(np.zeros(4))
        ex.finish_ingest()
        with pytest.raises(SimulationError, match="kernel exploded"):
            ex.join(timeout=10.0)

    def test_snapshot_while_running(self):
        ex = PipelineExecutor(
            _kernels(), [0.0, 0.0], vector_width=8, deadline=5.0
        )
        ex.start()
        ex.submit(np.zeros(8))
        snap = ex.snapshot()
        assert snap.items_ingested == 8
        assert len(snap.nodes) == 2
        ex.finish_ingest()
        report = ex.join(timeout=10.0)
        assert report.telemetry.items_ingested == 8


class TestExecutorResilience:
    def test_bounded_queue_with_shed_records_misses(self):
        from repro.resilience.shedding import make_shed_policy

        # Slow tail, fast head, tiny queue: overflow must shed, and shed
        # items must be charged as deadline misses.
        kernels = [
            SpinKernel("h", DeterministicGain(1), nominal_service=0.001),
            SpinKernel("t", DeterministicGain(1), nominal_service=0.02),
        ]
        ex = PipelineExecutor(
            kernels,
            [0.0, 0.0],
            vector_width=4,
            deadline=10.0,
            queue_capacity=8,
            shed_policy=make_shed_policy("drop-newest"),
        )
        ex.start()
        for _ in range(12):
            ex.submit(np.zeros(8))
        ex.finish_ingest()
        report = ex.join(timeout=30.0)
        t = report.telemetry
        assert t.total_shed > 0
        assert t.missed_items == t.total_shed
        assert t.outputs + t.missed_items == t.items_ingested

    def test_overflow_without_policy_raises(self):
        kernels = [
            SpinKernel("h", DeterministicGain(1), nominal_service=0.001),
            SpinKernel("t", DeterministicGain(1), nominal_service=0.05),
        ]
        ex = PipelineExecutor(
            kernels, [0.0, 0.0], vector_width=4, deadline=10.0, queue_capacity=4
        )
        ex.start()
        with pytest.raises(SimulationError):
            for _ in range(30):
                ex.submit(np.zeros(8))
                time.sleep(0.002)
        ex.finish_ingest()


class TestAcceptance:
    """ISSUE 5 acceptance: live runs hold the plan's promises."""

    def test_live_blast_holds_af_and_deadline(self):
        """3 real mini-BLAST kernels, Poisson arrivals at the planned
        operating point: zero misses, AF within 15% of predicted T(w)."""
        from repro.runtime.cli import run_live

        plan, report = run_live("blast", seconds=1.5, seed=0)
        assert plan.feasible
        t = report.telemetry
        assert t.outputs > 0
        assert t.missed_items == 0
        assert t.planned_active_fraction == pytest.approx(
            t.measured_active_fraction, rel=0.15
        )
        assert t.latency_max <= plan.problem.deadline

    def test_drift_triggers_replan_and_compliance_holds(self):
        """A mid-run service slowdown trips the drift detector; the
        adopted re-plan restores compliance without a restart."""
        from repro.runtime.cli import run_live

        plan, report = run_live(
            "synthetic",
            seconds=3.0,
            seed=0,
            drift_node=1,
            drift_factor=1.8,
            drift_after=0.8,
        )
        adopted = [e for e in report.replan_events if e.adopted]
        assert len(adopted) >= 1
        assert report.missed_items == 0
        # The adopted plan rebased node 1's planned service upward.
        node = report.telemetry.nodes[1]
        assert node.planned_service > plan.pipeline.service_times[1] * 1.2
        # Single uninterrupted run: every ingested item is accounted for.
        t = report.telemetry
        assert t.outputs + t.missed_items <= t.items_ingested
        assert t.in_flight == 0

    @pytest.mark.slow
    def test_second_drift_replan_is_cache_assisted(self):
        """Two identical drift scenarios sharing a PlanCache: the second
        run's re-plan comes from the cache (hit or warm-start)."""
        from repro.planning.cache import PlanCache
        from repro.runtime.cli import run_live

        cache = PlanCache()
        _, first = run_live(
            "synthetic",
            seconds=3.0,
            seed=0,
            drift_node=1,
            drift_factor=1.8,
            drift_after=0.8,
            cache=cache,
        )
        _, second = run_live(
            "synthetic",
            seconds=3.0,
            seed=0,
            drift_node=1,
            drift_factor=1.8,
            drift_after=0.8,
            cache=cache,
        )
        first_adopted = [e for e in first.replan_events if e.adopted]
        second_adopted = [e for e in second.replan_events if e.adopted]
        assert first_adopted and second_adopted
        assert all(e.source in ("hit", "warm") for e in second_adopted)
        assert second.missed_items == 0


class TestSleepOversleep:
    """The deadline-anchored sleep and its measured residual."""

    def _executor(self):
        return PipelineExecutor(
            _kernels(1), [0.0], vector_width=4, deadline=10.0
        )

    def test_sleep_returns_nonnegative_residual(self):
        ex = self._executor()
        residual = ex._sleep(0.02)
        assert residual >= 0.0
        # The whole point of the fix: the residual is bounded by
        # scheduler noise, not by the historical 50 ms slice quantum.
        assert residual < 0.045

    def test_sleep_holds_the_deadline(self):
        ex = self._executor()
        t0 = time.perf_counter()
        ex._sleep(0.08)
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.08  # never wakes early
        assert elapsed < 0.08 + 0.045

    def test_stop_interrupts_without_residual(self):
        ex = self._executor()
        ex._stop.set()
        t0 = time.perf_counter()
        residual = ex._sleep(5.0)
        assert time.perf_counter() - t0 < 1.0
        assert residual == 0.0

    def test_zero_and_negative_sleep(self):
        ex = self._executor()
        assert ex._sleep(0.0) >= 0.0
        assert ex._sleep(-1.0) >= 0.0

    def test_report_surfaces_total_oversleep(self):
        ex = PipelineExecutor(
            _kernels(2, service=0.001),
            [0.01, 0.01],
            vector_width=8,
            deadline=10.0,
        )
        report = _run(ex, n_items=16, batch=8)
        total = report.total_oversleep
        assert total >= 0.0
        assert total == pytest.approx(
            sum(n.oversleep_time for n in report.telemetry.nodes)
        )
        # Waits of 10 ms over a handful of periods cannot plausibly
        # accumulate a second of scheduler overshoot; a regression to
        # slice-quantized sleeping would.
        assert total < 1.0


class _FlakyKernel(VectorKernel):
    """Fails its first ``fail_times`` non-empty firings, then works."""

    def __init__(self, name, fail_times=1):
        super().__init__(name, 0.002)
        self.failures_left = fail_times

    def fire(self, payload):
        k = len(payload)
        if k and self.failures_left > 0:
            self.failures_left -= 1
            raise RuntimeError("transient kernel fault")
        return np.ones(k, dtype=np.int64), payload


class TestSupervision:
    def test_public_stop_api(self):
        ex = PipelineExecutor(
            _kernels(), [0.0, 0.0], vector_width=8, deadline=5.0
        )
        assert ex.stopped is False
        assert ex.should_stop() is False
        ex.request_stop()
        assert ex.stopped is True
        assert ex.should_stop() is True

    def test_failed_node_restarts_and_run_completes(self):
        ex = PipelineExecutor(
            [_FlakyKernel("flaky", fail_times=1)],
            [0.0],
            vector_width=8,
            deadline=30.0,
            restart_failed_nodes=True,
        )
        ex.start()
        rng = np.random.default_rng(0)
        for _ in range(4):
            ex.submit(rng.random(8))
            time.sleep(0.005)
        ex.finish_ingest()
        report = ex.join(timeout=30.0)

        assert len(report.node_failures) == 1
        failure = report.node_failures[0]
        assert failure.restarted is True
        assert failure.node == 0
        assert failure.name == "flaky"
        assert "transient kernel fault" in failure.error
        assert report.node_restarts == 1
        # The batch the thread died holding is scored as misses, so
        # item conservation still holds.
        assert failure.items_lost > 0
        assert report.missed_items == failure.items_lost
        assert report.outputs == 32 - failure.items_lost
        assert ex.in_flight == 0

    def test_restart_budget_exhaustion_stops_the_run(self):
        ex = PipelineExecutor(
            [_FlakyKernel("doomed", fail_times=10_000)],
            [0.0],
            vector_width=8,
            deadline=30.0,
            restart_failed_nodes=True,
            max_node_restarts=2,
        )
        ex.start()
        ex.submit(np.zeros(32))
        ex.finish_ingest()
        with pytest.raises(SimulationError, match="transient kernel fault"):
            ex.join(timeout=30.0)
        # Budget of 2 restarts: failures 1 and 2 restarted, 3rd stopped.
        assert ex.node_restarts == 2
        assert len(ex.node_failures) == 3
        assert ex.node_failures[-1].restarted is False
        assert ex.stopped

    def test_supervision_off_by_default(self):
        ex = PipelineExecutor(
            [_FlakyKernel("once", fail_times=1)],
            [0.0],
            vector_width=8,
            deadline=30.0,
        )
        ex.start()
        ex.submit(np.zeros(8))
        ex.finish_ingest()
        with pytest.raises(SimulationError, match="transient kernel fault"):
            ex.join(timeout=30.0)
        assert ex.node_restarts == 0
        assert len(ex.node_failures) == 1
        assert ex.node_failures[0].restarted is False

    def test_snapshot_and_render_surface_failures(self):
        ex = PipelineExecutor(
            [_FlakyKernel("flaky", fail_times=1)],
            [0.0],
            vector_width=8,
            deadline=30.0,
            restart_failed_nodes=True,
        )
        ex.start()
        for _ in range(4):
            ex.submit(np.zeros(8))
            time.sleep(0.005)
        ex.finish_ingest()
        report = ex.join(timeout=30.0)
        assert report.telemetry.node_failures == 1
        assert report.telemetry.node_restarts == 1
        rendered = report.render()
        assert "node failures: 1 (1 recovered by restart)" in rendered

    def test_invalid_restart_budget_rejected(self):
        with pytest.raises(SpecError):
            PipelineExecutor(
                _kernels(),
                [0.0, 0.0],
                vector_width=8,
                deadline=5.0,
                max_node_restarts=-1,
            )
