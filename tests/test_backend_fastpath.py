"""Backend seam + hot-loop kernels + fast-path authenticity.

Three layers of the compiled-backend stack:

- :mod:`repro.simd.backend` — selection, the ``REPRO_BACKEND`` override,
  degradation when a requested backend is unavailable;
- :mod:`repro.des.hotloop` — the dispatched kernels against literal
  one-step-at-a-time loop references (bit-identical, not approximate);
- the enforced-waits fast path — that it *actually* runs under fast
  backends (``engine.events_processed == 0`` is the tell), that forcing
  ``python`` authentically runs the event loop, and that both produce
  bit-identical metrics on randomized pipelines (property-based).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.simd.backend as backend_mod
from repro.arrivals.poisson import PoissonArrivals
from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
)
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.des.hotloop import consumed_scan, firing_schedule, ragged_gather
from repro.errors import SpecError
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.simd.backend import (
    available_backends,
    get_backend,
    numba_available,
    set_backend,
    use_backend,
)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-wide backend exactly as we found it."""
    before = backend_mod._active
    yield
    backend_mod._active = before


class TestBackendSelection:
    def test_auto_resolves_to_an_available_backend(self):
        be = set_backend("auto")
        assert be.name in available_backends()
        assert be.requested == "auto"
        assert be.name != "auto"

    def test_explicit_choices_resolve(self):
        assert set_backend("vector").name == "vector"
        assert set_backend("python").name == "python"
        assert not set_backend("python").fastpath
        assert set_backend("vector").fastpath

    def test_unknown_name_raises_spec_error(self):
        with pytest.raises(SpecError, match="REPRO_BACKEND"):
            set_backend("cuda")

    def test_env_var_drives_first_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        backend_mod._active = None
        assert get_backend().name == "python"
        monkeypatch.setenv("REPRO_BACKEND", "VECTOR")  # case-insensitive
        backend_mod._active = None
        assert get_backend().name == "vector"

    def test_use_backend_restores_previous(self):
        set_backend("vector")
        with use_backend("python") as be:
            assert be.name == "python"
            assert get_backend().name == "python"
        assert get_backend().name == "vector"
        # ... including on error.
        with pytest.raises(RuntimeError):
            with use_backend("python"):
                raise RuntimeError("boom")
        assert get_backend().name == "vector"

    def test_available_backends_always_include_fallbacks(self):
        names = available_backends()
        assert "vector" in names and "python" in names

    @pytest.mark.skipif(
        numba_available(), reason="needs an environment without numba"
    )
    def test_requesting_missing_numba_degrades_with_warning(self):
        with pytest.warns(RuntimeWarning, match="numba"):
            be = set_backend("numba")
        assert be.name == "vector"
        assert be.requested == "numba"
        assert not be.compiled

    def test_demote_is_a_noop_off_numba(self):
        set_backend("vector")
        assert backend_mod.demote_backend("test").name == "vector"


# -- hot-loop kernels vs literal loop references ----------------------------


def _firing_schedule_loop(f0, t, w, k):
    fires, comps = [], []
    f = f0
    for _ in range(k):
        fires.append(f)
        c = f + t
        comps.append(c)
        f = c + w
    return np.asarray(fires), np.asarray(comps)


def _consumed_scan_loop(avail, v):
    out, c = [], 0
    for a in avail:
        c += min(v, max(0, int(a) - c))
        out.append(c)
    return np.asarray(out, dtype=np.int64)


def _ragged_gather_loop(offsets, flat, idx):
    counts, owners, values = [], [], []
    for i in idx:
        seg = flat[offsets[i] : offsets[i + 1]]
        counts.append(len(seg))
        owners.extend([i] * len(seg))
        values.extend(seg.tolist())
    return (
        np.asarray(counts, dtype=np.int64),
        np.asarray(owners, dtype=np.int64),
        np.asarray(values, dtype=np.int64),
    )


class TestHotloopKernels:
    def test_firing_schedule_bit_identical_to_loop(self):
        fires, comps = firing_schedule(0.37, 1.1, 0.7, 50)
        ref_f, ref_c = _firing_schedule_loop(0.37, 1.1, 0.7, 50)
        # Bitwise: the accumulate performs the same adds in the same
        # order as the event loop's recurrence.
        assert np.array_equal(fires, ref_f)
        assert np.array_equal(comps, ref_c)

    def test_firing_schedule_empty(self):
        fires, comps = firing_schedule(0.0, 1.0, 1.0, 0)
        assert fires.size == 0 and comps.size == 0

    @given(
        f0=st.floats(0, 100, allow_nan=False),
        t=st.floats(0.01, 10, allow_nan=False),
        w=st.floats(0, 10, allow_nan=False),
        k=st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_firing_schedule_property(self, f0, t, w, k):
        fires, comps = firing_schedule(f0, t, w, k)
        ref_f, ref_c = _firing_schedule_loop(f0, t, w, k)
        assert np.array_equal(fires, ref_f)
        assert np.array_equal(comps, ref_c)

    def test_consumed_scan_matches_loop(self):
        avail = np.asarray([3, 3, 10, 10, 25, 40], dtype=np.int64)
        assert np.array_equal(
            consumed_scan(avail, 8), _consumed_scan_loop(avail, 8)
        )

    def test_consumed_scan_empty(self):
        assert consumed_scan(np.empty(0, dtype=np.int64), 4).size == 0

    @given(
        deltas=st.lists(st.integers(0, 20), min_size=1, max_size=60),
        v=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_consumed_scan_property(self, deltas, v):
        avail = np.cumsum(np.asarray(deltas, dtype=np.int64))
        assert np.array_equal(
            consumed_scan(avail, v), _consumed_scan_loop(avail, v)
        )

    def test_ragged_gather_matches_loop(self):
        offsets = np.asarray([0, 2, 2, 5, 9], dtype=np.int64)
        flat = np.arange(100, 109, dtype=np.int64)
        idx = np.asarray([3, 0, 2, 2, 1], dtype=np.int64)
        got = ragged_gather(offsets, flat, idx)
        ref = _ragged_gather_loop(offsets, flat, idx)
        for g, r in zip(got, ref):
            assert np.array_equal(g, r)

    def test_ragged_gather_empty_idx(self):
        offsets = np.asarray([0, 1], dtype=np.int64)
        counts, owners, values = ragged_gather(
            offsets, np.asarray([7]), np.empty(0, dtype=np.int64)
        )
        assert counts.size == owners.size == values.size == 0

    @given(
        lens=st.lists(st.integers(0, 6), min_size=1, max_size=20),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_ragged_gather_property(self, lens, data):
        offsets = np.zeros(len(lens) + 1, dtype=np.int64)
        offsets[1:] = np.cumsum(lens)
        flat = np.arange(int(offsets[-1]), dtype=np.int64) * 3
        idx = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, len(lens) - 1), min_size=0, max_size=30
                )
            ),
            dtype=np.int64,
        )
        got = ragged_gather(offsets, flat, idx)
        ref = _ragged_gather_loop(offsets, flat, idx)
        for g, r in zip(got, ref):
            assert np.array_equal(g, r)


# -- fast-path authenticity --------------------------------------------------


def _pipeline():
    return PipelineSpec(
        nodes=(
            NodeSpec("a", service_time=1.0, gain=CensoredPoissonGain(1.2, 4)),
            NodeSpec("b", service_time=0.7, gain=BernoulliGain(0.8)),
            NodeSpec("c", service_time=0.5, gain=DeterministicGain(2)),
        ),
        vector_width=8,
    )


def _run(n_items=400, seed=0, **kw):
    sim = EnforcedWaitsSimulator(
        _pipeline(),
        np.asarray([3.0, 2.0, 1.5]),
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=n_items,
        seed=seed,
        **kw,
    )
    return sim, sim.run()


_COMPARE_FIELDS = (
    "makespan",
    "active_fraction",
    "missed_items",
    "outputs",
    "mean_latency",
    "max_latency",
)


def _assert_same_metrics(ma, mb):
    for f in _COMPARE_FIELDS:
        a, b = getattr(ma, f), getattr(mb, f)
        if isinstance(a, float) and math.isnan(a) and math.isnan(b):
            continue
        assert a == b, f"{f}: {a!r} != {b!r}"
    assert np.array_equal(ma.firings, mb.firings)
    assert np.array_equal(ma.queue_hwm_vectors, mb.queue_hwm_vectors)


class TestFastPathAuthenticity:
    @pytest.mark.parametrize(
        "backend", [b for b in available_backends() if b != "python"]
    )
    def test_fast_backends_skip_the_event_loop(self, backend):
        with use_backend(backend):
            sim, _ = _run()
        assert sim.engine.events_processed == 0

    def test_python_backend_runs_the_event_loop(self):
        with use_backend("python"):
            sim, _ = _run()
        assert sim.engine.events_processed > 0

    @pytest.mark.parametrize(
        "backend", [b for b in available_backends() if b != "python"]
    )
    def test_forced_fallback_is_bit_identical(self, backend):
        with use_backend(backend):
            fast_sim, fast = _run()
        with use_backend("python"):
            slow_sim, slow = _run()
        assert fast_sim.engine.events_processed == 0
        assert slow_sim.engine.events_processed > 0
        _assert_same_metrics(fast, slow)
        # Queue-side statistics (read directly off the queue objects by
        # the overload calibration) must also agree.
        for qf, qs in zip(fast_sim.queues, slow_sim.queues):
            assert qf.max_depth == qs.max_depth
            assert qf.total_pushed == qs.total_pushed
            assert qf.total_popped == qs.total_popped

    def test_telemetry_forces_the_event_loop(self):
        with use_backend("vector"):
            sim, _ = _run(telemetry=True)
        assert sim.engine.events_processed > 0

    @given(
        w0=st.floats(0.0, 5.0, allow_nan=False),
        w1=st.floats(0.0, 5.0, allow_nan=False),
        w2=st.floats(0.0, 5.0, allow_nan=False),
        seed=st.integers(0, 2**16),
        n_items=st.integers(1, 250),
    )
    @settings(max_examples=25, deadline=None)
    def test_backend_equivalence_property(self, w0, w1, w2, seed, n_items):
        """vector ≡ python on randomized waits/seed/size — bit-identical."""
        waits = np.asarray([w0, w1, w2])
        kw = dict(
            arrivals=PoissonArrivals(1.4),
            deadline=30.0,
            n_items=n_items,
            seed=seed,
        )
        with use_backend("vector"):
            fast = EnforcedWaitsSimulator(_pipeline(), waits, **kw).run()
        with use_backend("python"):
            slow = EnforcedWaitsSimulator(_pipeline(), waits, **kw).run()
        _assert_same_metrics(fast, slow)
