"""Tests for structured result export."""

import csv
import json

import numpy as np
import pytest

from repro.experiments.export import (
    metrics_to_dict,
    save_json,
    sweep_to_csv,
    sweep_to_dict,
)


@pytest.fixture(scope="module")
def sweep():
    from repro.apps.blast.pipeline import blast_pipeline
    from repro.core.sweep import sweep_strategies

    return sweep_strategies(
        blast_pipeline(),
        np.asarray([10.0, 100.0]),
        np.asarray([5e4, 3.5e5]),
        b_enforced=np.asarray([1.0, 3.0, 9.0, 6.0]),
    )


class TestSweepExport:
    def test_dict_is_json_serializable(self, sweep):
        data = sweep_to_dict(sweep)
        text = json.dumps(data)  # must not raise
        parsed = json.loads(text)
        assert parsed["tau0_values"] == [10.0, 100.0]
        assert parsed["b_monolithic"] == 1

    def test_nan_becomes_null(self, sweep):
        data = sweep_to_dict(sweep)
        # (tau0=10, D=5e4): monolithic feasible; find a NaN elsewhere by
        # construction: enforced at tau0=10 D=5e4 may be feasible, so force
        # a NaN check structurally: JSON must contain no bare NaN tokens.
        text = json.dumps(data)
        assert "NaN" not in text

    def test_save_json_roundtrip(self, sweep, tmp_path):
        path = save_json(sweep_to_dict(sweep), tmp_path / "sweep.json")
        loaded = json.loads(path.read_text())
        assert loaded["deadline_values"] == [5e4, 3.5e5]

    def test_csv_rows(self, sweep, tmp_path):
        path = sweep_to_csv(sweep, tmp_path / "sweep.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "tau0"
        assert len(rows) == 1 + 4  # header + 2x2 grid


class TestMetricsExport:
    def test_dict_round_trips(self, tiny_pipeline):
        from repro.arrivals.fixed import FixedRateArrivals
        from repro.sim.enforced import EnforcedWaitsSimulator

        metrics = EnforcedWaitsSimulator(
            tiny_pipeline,
            np.zeros(2),
            FixedRateArrivals(10.0),
            1e6,
            200,
            seed=0,
        ).run()
        data = metrics_to_dict(metrics)
        text = json.dumps(data)
        parsed = json.loads(text)
        assert parsed["strategy"] == "enforced"
        assert parsed["n_items"] == 200
        assert "ledger" not in parsed["extra"]
