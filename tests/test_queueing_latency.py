"""Tests for the a-priori latency prediction."""

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.core.enforced_waits import solve_enforced_waits
from repro.core.model import RealTimeProblem
from repro.errors import SpecError
from repro.queueing.latency import predict_latency
from repro.sim.enforced import EnforcedWaitsSimulator

B = np.asarray([1.0, 3.0, 9.0, 6.0])


@pytest.fixture(scope="module")
def tight_point():
    """Deadline-binding point where the approximation is sharpest."""
    from repro.apps.blast.pipeline import blast_pipeline

    blast = blast_pipeline()
    tau0, deadline = 100.0, 5.0e4
    sol = solve_enforced_waits(RealTimeProblem(blast, tau0, deadline), B)
    return blast, tau0, deadline, sol


class TestPrediction:
    def test_pmf_is_distribution(self, tight_point):
        blast, tau0, _, sol = tight_point
        pred = predict_latency(blast, sol.periods, tau0)
        assert pred.pmf.sum() == pytest.approx(1.0)
        assert (pred.pmf >= 0).all()
        assert pred.support[0] == 0.0

    def test_mean_close_to_simulation(self, tight_point):
        blast, tau0, deadline, sol = tight_point
        pred = predict_latency(blast, sol.periods, tau0)
        metrics = EnforcedWaitsSimulator(
            blast,
            sol.waits,
            FixedRateArrivals(tau0),
            deadline,
            20_000,
            seed=2,
        ).run()
        assert pred.mean == pytest.approx(metrics.mean_latency, rel=0.15)

    def test_prediction_bounds_measured_tail(self, tight_point):
        """The independence approximation skews conservative: the
        predicted 99.9% quantile should cover the measured maximum."""
        blast, tau0, deadline, sol = tight_point
        pred = predict_latency(blast, sol.periods, tau0)
        metrics = EnforcedWaitsSimulator(
            blast,
            sol.waits,
            FixedRateArrivals(tau0),
            deadline,
            20_000,
            seed=2,
        ).run()
        assert pred.quantile(0.999) >= metrics.max_latency * 0.9

    def test_predicts_no_misses_where_none_measured(self, tight_point):
        blast, tau0, deadline, sol = tight_point
        pred = predict_latency(blast, sol.periods, tau0)
        assert pred.miss_probability(deadline) < 1e-3

    def test_quantiles_monotone(self, tight_point):
        blast, tau0, _, sol = tight_point
        pred = predict_latency(blast, sol.periods, tau0)
        qs = [pred.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_quantile_validated(self, tight_point):
        blast, tau0, _, sol = tight_point
        pred = predict_latency(blast, sol.periods, tau0)
        with pytest.raises(SpecError):
            pred.quantile(1.5)

    def test_critical_point_raises(self):
        from repro.apps.blast.pipeline import blast_pipeline
        from repro.errors import SolverError

        blast = blast_pipeline()
        sol = solve_enforced_waits(
            RealTimeProblem(blast, 10.0, 3.5e5), B
        )
        with pytest.raises(SolverError):
            predict_latency(blast, sol.periods, 10.0)

    def test_periods_validated(self, tight_point):
        blast, tau0, _, sol = tight_point
        with pytest.raises(SpecError):
            predict_latency(blast, sol.periods[:2], tau0)
