"""Differential fuzzing: vectorized simulators vs the reference oracle.

Randomized (but seeded — every case is reproducible from its index)
small pipelines are pushed through the production vectorized simulators
and the pre-vectorization per-item reference implementations in
``repro.sim.reference``; the resulting :class:`SimMetrics` must be
**bit-identical** field by field — the same equivalence contract the
perf harness (``benchmarks/perf/run.py``) enforces on its fixed
configuration, here swept over a randomized configuration space:
pipeline depth 1–4, mixed gain families, vector widths 2–8, fixed-rate
and Poisson arrivals, and waits both generous and tight.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.arrivals.poisson import PoissonArrivals
from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
)
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.sim.adaptive import AdaptiveWaitsSimulator
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.reference import (
    ReferenceAdaptiveSimulator,
    ReferenceEnforcedSimulator,
)

_SCALAR_FIELDS = (
    "strategy",
    "n_items",
    "makespan",
    "active_fraction",
    "missed_items",
    "miss_rate",
    "outputs",
    "mean_latency",
    "max_latency",
)
_ARRAY_FIELDS = (
    "active_time_per_node",
    "queue_hwm_vectors",
    "firings",
    "empty_firings",
    "mean_occupancy",
)


def assert_metrics_bit_identical(a, b) -> None:
    for f in _SCALAR_FIELDS:
        x, y = getattr(a, f), getattr(b, f)
        if isinstance(x, float) and math.isnan(x) and math.isnan(y):
            continue
        assert x == y, f"scalar field {f!r} differs: {x!r} != {y!r}"
    for f in _ARRAY_FIELDS:
        assert np.array_equal(
            getattr(a, f), getattr(b, f), equal_nan=True
        ), f"array field {f!r} differs"


def _random_case(rng: np.random.Generator) -> dict:
    """One random small configuration (everything drawn from ``rng``)."""
    n_nodes = int(rng.integers(1, 5))
    nodes = []
    for i in range(n_nodes):
        kind = int(rng.integers(0, 3))
        if kind == 0:
            gain = DeterministicGain(int(rng.integers(0, 4)))
        elif kind == 1:
            gain = BernoulliGain(float(rng.uniform(0.1, 1.0)))
        else:
            gain = CensoredPoissonGain(
                float(rng.uniform(0.2, 2.5)), int(rng.integers(2, 7))
            )
        nodes.append(
            NodeSpec(f"f{i}", float(rng.uniform(0.3, 3.0)), gain)
        )
    pipeline = PipelineSpec(
        tuple(nodes), int(rng.choice([2, 4, 8]))
    )
    waits = rng.uniform(0.0, 4.0, size=n_nodes)
    tau0 = float(rng.uniform(0.5, 4.0))
    arrivals = (
        FixedRateArrivals(tau0)
        if rng.random() < 0.5
        else PoissonArrivals(1.0 / tau0)
    )
    return dict(
        pipeline=pipeline,
        waits=waits,
        sim_kwargs=dict(
            arrivals=arrivals,
            deadline=float(rng.uniform(5.0, 80.0)),
            n_items=int(rng.integers(20, 400)),
            seed=int(rng.integers(0, 2**31)),
        ),
    )


@pytest.mark.parametrize("case_index", range(20))
def test_enforced_matches_reference(case_index):
    case = _random_case(np.random.default_rng(1000 + case_index))
    prod = EnforcedWaitsSimulator(
        case["pipeline"], case["waits"], **case["sim_kwargs"]
    ).run()
    ref = ReferenceEnforcedSimulator(
        case["pipeline"], case["waits"], **case["sim_kwargs"]
    ).run()
    assert_metrics_bit_identical(prod, ref)


@pytest.mark.parametrize("case_index", range(20))
def test_adaptive_matches_reference(case_index):
    case = _random_case(np.random.default_rng(2000 + case_index))
    policy = ("full-vector", "slack", "fixed")[case_index % 3]
    prod = AdaptiveWaitsSimulator(
        case["pipeline"],
        case["waits"],
        policy=policy,
        **case["sim_kwargs"],
    ).run()
    ref = ReferenceAdaptiveSimulator(
        case["pipeline"],
        case["waits"],
        policy=policy,
        **case["sim_kwargs"],
    ).run()
    assert_metrics_bit_identical(prod, ref)


@pytest.mark.slow
@pytest.mark.parametrize("case_index", range(20, 60))
def test_enforced_matches_reference_extended(case_index):
    case = _random_case(np.random.default_rng(1000 + case_index))
    prod = EnforcedWaitsSimulator(
        case["pipeline"], case["waits"], **case["sim_kwargs"]
    ).run()
    ref = ReferenceEnforcedSimulator(
        case["pipeline"], case["waits"], **case["sim_kwargs"]
    ).run()
    assert_metrics_bit_identical(prod, ref)


@pytest.mark.slow
@pytest.mark.parametrize("case_index", range(20, 60))
def test_adaptive_matches_reference_extended(case_index):
    case = _random_case(np.random.default_rng(2000 + case_index))
    policy = ("full-vector", "slack", "fixed")[case_index % 3]
    prod = AdaptiveWaitsSimulator(
        case["pipeline"],
        case["waits"],
        policy=policy,
        **case["sim_kwargs"],
    ).run()
    ref = ReferenceAdaptiveSimulator(
        case["pipeline"],
        case["waits"],
        policy=policy,
        **case["sim_kwargs"],
    ).run()
    assert_metrics_bit_identical(prod, ref)
