"""Tests for the multi-seed runner and report rendering."""

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.errors import SpecError
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.report import summarize_metrics, summarize_trials
from repro.sim.runner import run_trials


def _factory(pipeline):
    def make(seed: int) -> EnforcedWaitsSimulator:
        return EnforcedWaitsSimulator(
            pipeline,
            np.zeros(pipeline.n_nodes),
            FixedRateArrivals(10.0),
            1e6,
            200,
            seed=seed,
        )

    return make


class TestRunTrials:
    def test_int_seeds_expand_to_range(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 3)
        assert trials.seeds == (0, 1, 2)
        assert trials.n_trials == 3

    def test_explicit_seeds(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), [5, 9])
        assert trials.seeds == (5, 9)

    def test_statistics(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 4)
        assert 0.0 <= trials.miss_free_fraction <= 1.0
        assert trials.mean_active_fraction > 0
        assert trials.std_active_fraction >= 0
        assert trials.max_miss_rate >= trials.mean_miss_rate or (
            trials.max_miss_rate == trials.mean_miss_rate
        )

    def test_observed_b_at_least_one(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 3)
        assert (trials.observed_b() >= 1.0).all()

    def test_empty_seeds_rejected(self, tiny_pipeline):
        with pytest.raises(SpecError):
            run_trials(_factory(tiny_pipeline), [])
        with pytest.raises(SpecError):
            run_trials(_factory(tiny_pipeline), 0)


class TestReports:
    def test_summarize_metrics(self, tiny_pipeline):
        m = _factory(tiny_pipeline)(0).run()
        text = summarize_metrics(m)
        assert "active fraction" in text
        assert "enforced" in text

    def test_summarize_trials(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 2)
        text = summarize_trials(trials, label="unit test")
        assert "unit test" in text
        assert "miss-free fraction" in text
