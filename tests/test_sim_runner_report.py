"""Tests for the multi-seed runner and report rendering."""

import math

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.des.monitors import Accumulator
from repro.errors import SpecError
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.report import summarize_metrics, summarize_trials
from repro.sim.runner import TrialOutcome, run_trials


def _factory(pipeline):
    def make(seed: int) -> EnforcedWaitsSimulator:
        return EnforcedWaitsSimulator(
            pipeline,
            np.zeros(pipeline.n_nodes),
            FixedRateArrivals(10.0),
            1e6,
            200,
            seed=seed,
        )

    return make


class TestRunTrials:
    def test_int_seeds_expand_to_range(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 3)
        assert trials.seeds == (0, 1, 2)
        assert trials.n_trials == 3

    def test_explicit_seeds(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), [5, 9])
        assert trials.seeds == (5, 9)

    def test_statistics(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 4)
        assert 0.0 <= trials.miss_free_fraction <= 1.0
        assert trials.mean_active_fraction > 0
        assert trials.std_active_fraction >= 0
        assert trials.max_miss_rate >= trials.mean_miss_rate or (
            trials.max_miss_rate == trials.mean_miss_rate
        )

    def test_observed_b_at_least_one(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 3)
        assert (trials.observed_b() >= 1.0).all()

    def test_empty_seeds_rejected(self, tiny_pipeline):
        with pytest.raises(SpecError):
            run_trials(_factory(tiny_pipeline), [])
        with pytest.raises(SpecError):
            run_trials(_factory(tiny_pipeline), 0)

    def test_std_active_fraction_matches_accumulator(self, tiny_pipeline):
        """Regression: the campaign std must use the same ddof=1 convention
        as Accumulator.variance (it used to mix population and sample std)."""
        trials = run_trials(_factory(tiny_pipeline), 6)
        acc = Accumulator("af")
        for m in trials.metrics:
            acc.add(m.active_fraction)
        assert trials.std_active_fraction == pytest.approx(acc.std, rel=1e-12)
        assert trials.std_active_fraction == pytest.approx(
            float(np.std([m.active_fraction for m in trials.metrics], ddof=1)),
            rel=1e-12,
        )

    def test_std_active_fraction_nan_below_two_samples(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 1)
        assert math.isnan(trials.std_active_fraction)

    def test_wrong_metrics_type_error_names_types(self):
        class Confused:
            def __init__(self, seed):
                pass

            def run(self):
                return [1, 2, 3]

        with pytest.raises(SpecError, match=r"Confused.*list.*not SimMetrics"):
            run_trials(Confused, 2)

    def test_failure_propagates_by_default(self):
        class Broken:
            def __init__(self, seed):
                pass

            def run(self):
                raise ValueError("kaput")

        with pytest.raises(ValueError, match="kaput"):
            run_trials(Broken, 2)

    def test_catch_failures_records_outcomes(self, tiny_pipeline):
        calls = []

        def flaky(seed):
            calls.append(seed)
            if seed == 1:
                raise ValueError("seed 1 is cursed")
            return _factory(tiny_pipeline)(seed)

        trials = run_trials(flaky, 3, catch_failures=True)
        assert [o.status for o in trials.outcomes] == ["ok", "failed", "ok"]
        assert trials.n_trials == 2
        assert "seed 1 is cursed" in trials.outcomes[1].error
        assert not trials.all_ok

    def test_catch_failures_retries(self, tiny_pipeline):
        attempts = {1: 0}

        def flaky(seed):
            if seed == 1:
                attempts[1] += 1
                if attempts[1] < 3:
                    raise ValueError("transient")
            return _factory(tiny_pipeline)(seed)

        trials = run_trials(flaky, 2, catch_failures=True, retries=2)
        assert trials.all_ok
        assert trials.outcomes[1].attempts == 3


class TestTrialOutcome:
    def test_invalid_status_rejected(self):
        with pytest.raises(SpecError):
            TrialOutcome(seed=0, status="exploded")

    def test_ok_requires_metrics(self):
        with pytest.raises(SpecError):
            TrialOutcome(seed=0, status="ok")

    def test_failed_forbids_metrics(self, tiny_pipeline):
        m = _factory(tiny_pipeline)(0).run()
        with pytest.raises(SpecError):
            TrialOutcome(seed=0, status="failed", metrics=m)


class TestReports:
    def test_summarize_metrics(self, tiny_pipeline):
        m = _factory(tiny_pipeline)(0).run()
        text = summarize_metrics(m)
        assert "active fraction" in text
        assert "enforced" in text

    def test_summarize_trials(self, tiny_pipeline):
        trials = run_trials(_factory(tiny_pipeline), 2)
        text = summarize_trials(trials, label="unit test")
        assert "unit test" in text
        assert "miss-free fraction" in text
        assert "incomplete trials" not in text

    def test_summarize_trials_names_failures(self, tiny_pipeline):
        def flaky(seed):
            if seed == 1:
                raise ValueError("cursed")
            return _factory(tiny_pipeline)(seed)

        trials = run_trials(flaky, 3, catch_failures=True)
        text = summarize_trials(trials)
        assert "failed trials" in text
        assert "incomplete trials" in text
        assert "seed 1: failed after 1 attempt(s)" in text
