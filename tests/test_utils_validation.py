"""Tests for repro.utils.validation."""

import math

import pytest

from repro.errors import SpecError
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("x", 3.5, (int, float)) == 3.5

    def test_rejects_mismatch(self):
        with pytest.raises(SpecError, match="x must be of type int"):
            check_type("x", "3", int)


class TestCheckFinite:
    def test_accepts_int_and_float(self):
        assert check_finite("x", 3) == 3.0
        assert check_finite("x", -2.5) == -2.5

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(SpecError, match="finite"):
            check_finite("x", bad)

    def test_rejects_nonnumeric(self):
        with pytest.raises(SpecError):
            check_finite("x", "hello")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.001) == 0.001

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(SpecError, match="> 0"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(SpecError, match=">= 0"):
            check_nonnegative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2])
    def test_rejects_outside(self, bad):
        with pytest.raises(SpecError, match=r"\[0, 1\]"):
            check_probability("p", bad)


class TestCheckInRange:
    def test_closed_endpoints(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_open_endpoints_reject_boundary(self):
        with pytest.raises(SpecError):
            check_in_range("x", 1.0, 1.0, 2.0, lo_open=True)
        with pytest.raises(SpecError):
            check_in_range("x", 2.0, 1.0, 2.0, hi_open=True)

    def test_error_message_shows_brackets(self):
        with pytest.raises(SpecError, match=r"\(1, 2\]"):
            check_in_range("x", 1.0, 1, 2, lo_open=True)
