"""Tests for scalar solver utilities: bisection, golden section, grid."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solvers.bisection import bisect_decreasing, bisect_root
from repro.solvers.golden import golden_section_min
from repro.solvers.grid import best_feasible_index, grid_min
from repro.solvers.line_search import backtracking_armijo


class TestBisectRoot:
    def test_finds_sqrt2(self):
        root = bisect_root(lambda x: x * x - 2.0, 0.0, 2.0)
        assert root == pytest.approx(math.sqrt(2), abs=1e-9)

    def test_exact_endpoint(self):
        assert bisect_root(lambda x: x, 0.0, 1.0) == 0.0

    def test_no_sign_change_rejected(self):
        with pytest.raises(SolverError, match="sign change"):
            bisect_root(lambda x: x * x + 1, -1, 1)

    def test_inverted_interval_rejected(self):
        with pytest.raises(SolverError):
            bisect_root(lambda x: x, 1.0, 0.0)

    @settings(max_examples=30)
    @given(root=st.floats(-100, 100))
    def test_property_linear_roots(self, root):
        found = bisect_root(lambda x: x - root, -1e3, 1e3)
        assert found == pytest.approx(root, abs=1e-6)


class TestBisectDecreasing:
    def test_solves_decreasing(self):
        # f(x) = 100/x, target 4 -> x = 25.
        x = bisect_decreasing(lambda x: 100.0 / x, 4.0, 1e-6, 1.0)
        assert x == pytest.approx(25.0, rel=1e-6)

    def test_expands_bracket(self):
        x = bisect_decreasing(lambda x: 1e6 / x, 1.0, 1e-9, 1.0)
        assert x == pytest.approx(1e6, rel=1e-6)


class TestGoldenSection:
    def test_quadratic_minimum(self):
        x, fx = golden_section_min(lambda x: (x - 3.0) ** 2 + 1, 0.0, 10.0)
        assert x == pytest.approx(3.0, abs=1e-6)
        assert fx == pytest.approx(1.0, abs=1e-9)

    def test_degenerate_interval(self):
        x, fx = golden_section_min(lambda x: x, 2.0, 2.0)
        assert (x, fx) == (2.0, 2.0)

    def test_monotone_converges_to_endpoint(self):
        x, _ = golden_section_min(lambda x: x, 0.0, 1.0)
        assert x == pytest.approx(0.0, abs=1e-5)

    def test_inverted_rejected(self):
        with pytest.raises(SolverError):
            golden_section_min(lambda x: x, 1.0, 0.0)

    @settings(max_examples=30)
    @given(center=st.floats(-50, 50))
    def test_property_quadratics(self, center):
        x, _ = golden_section_min(
            lambda x: (x - center) ** 2, center - 100, center + 100
        )
        assert x == pytest.approx(center, abs=1e-4)


class TestGrid:
    def test_best_feasible(self):
        obj = np.asarray([3.0, 1.0, 2.0])
        feas = np.asarray([True, False, True])
        assert best_feasible_index(obj, feas) == 2

    def test_all_infeasible(self):
        assert best_feasible_index(np.asarray([1.0]), np.asarray([False])) is None

    def test_tie_breaks_to_first(self):
        obj = np.asarray([2.0, 1.0, 1.0])
        feas = np.ones(3, dtype=bool)
        assert best_feasible_index(obj, feas) == 1

    def test_grid_min(self):
        out = grid_min(
            lambda x: (x - 5) ** 2,
            np.arange(10, dtype=float),
            feasible=lambda x: x >= 3,
        )
        assert out == (5.0, 0.0)

    def test_grid_min_none(self):
        assert (
            grid_min(lambda x: x, np.asarray([1.0]), feasible=lambda x: x > 5)
            is None
        )

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            best_feasible_index(np.zeros(2), np.zeros(3, dtype=bool))


class TestArmijo:
    def test_accepts_descent(self):
        f = lambda x: float(x @ x)
        x = np.asarray([1.0, 1.0])
        g = 2 * x
        alpha = backtracking_armijo(f, x, -g, f(x), float(g @ -g))
        assert f(x - alpha * g) < f(x)

    def test_rejects_ascent_direction(self):
        f = lambda x: float(x @ x)
        x = np.asarray([1.0])
        with pytest.raises(SolverError, match="descent"):
            backtracking_armijo(f, x, np.asarray([1.0]), f(x), 2.0)

    def test_backtracks_through_infinite_region(self):
        # Barrier-like: +inf for x <= 0.5; start at 1, direction -1.
        f = lambda x: float(1.0 / (x[0] - 0.5)) if x[0] > 0.5 else float("inf")
        x = np.asarray([1.0])
        fx = f(x)
        slope = -4.0  # d/dx of 1/(x-.5) at 1 is -4
        alpha = backtracking_armijo(f, x, np.asarray([-1.0]), fx, slope)
        assert x[0] - alpha > 0.5
