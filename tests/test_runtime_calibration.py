"""Tests for online calibration, drift detection, and re-planning
(repro.runtime.calibration / drift / replan)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.planning.cache import PlanCache
from repro.runtime.calibration import (
    NodeEstimator,
    OnlineCalibrator,
    quantize_relative,
)
from repro.runtime.drift import DriftConfig, DriftDetector
from repro.runtime.replan import Replanner


class TestQuantizeRelative:
    def test_nearby_values_collapse_to_one_grid_point(self):
        a, b = quantize_relative(np.asarray([1.000, 1.004]), step=0.05)
        assert a == b

    def test_distant_values_stay_distinct(self):
        a, b = quantize_relative(np.asarray([1.0, 1.5]), step=0.05)
        assert a != b

    def test_within_one_step_of_input(self):
        vals = np.asarray([0.003, 0.7, 12.0, 900.0])
        q = quantize_relative(vals, step=0.05)
        assert (np.abs(q / vals - 1.0) <= 0.05).all()

    def test_floor_clamps_nonpositive(self):
        q = quantize_relative(np.asarray([0.0]), step=0.05, floor=1e-9)
        # The floor itself lands on the nearest grid point.
        assert q[0] == pytest.approx(1e-9, rel=0.05)

    def test_rejects_bad_step(self):
        with pytest.raises(SpecError, match="step"):
            quantize_relative(np.asarray([1.0]), step=0.0)

    def test_deterministic_keys(self):
        """The property the plan cache relies on: same regime, same bytes."""
        a = quantize_relative(np.asarray([1.01, 2.02]), step=0.05)
        b = quantize_relative(np.asarray([1.02, 2.01]), step=0.05)
        assert a.tobytes() == b.tobytes()


class TestNodeEstimator:
    def test_reports_planned_until_warmed(self):
        est = NodeEstimator("n", 0.01, 2.0, min_observations=3)
        est.observe(0.05, outputs=10, consumed=5)
        est.observe(0.05, outputs=10, consumed=5)
        assert est.service == 0.01
        assert est.gain == 2.0
        assert not est.warmed

    def test_warmup_seeds_with_batch_totals(self):
        est = NodeEstimator("n", 0.01, 2.0, min_observations=3)
        est.observe(0.02, outputs=0, consumed=4)
        est.observe(0.04, outputs=8, consumed=4)
        est.observe(0.06, outputs=4, consumed=4)
        assert est.warmed
        # Service seeded with the mean duration; gain with the ratio of
        # totals (items-weighted), not the mean of per-firing ratios.
        assert est.service == pytest.approx(0.04)
        assert est.gain == pytest.approx(12 / 12)

    def test_skips_empty_firing(self):
        """Regression: a zero-consumed warm-up batch must not count
        toward warm-up (div-by-zero seed) or kill the node thread."""
        est = NodeEstimator("n", 0.01, 2.0, min_observations=2)
        est.observe(0.01, outputs=0, consumed=0)
        assert est.observations == 0
        assert est.skipped == 1
        # Two *valid* firings later the estimator warms up finitely —
        # the degenerate one contributed nothing to the seeds.
        est.observe(0.02, outputs=4, consumed=4)
        est.observe(0.04, outputs=4, consumed=4)
        assert est.warmed
        assert est.service == pytest.approx(0.03)
        assert est.gain == pytest.approx(1.0)

    def test_skips_degenerate_durations(self):
        """Zero, negative, NaN, and inf durations are all skipped."""
        est = NodeEstimator("n", 0.01, 2.0, min_observations=1)
        for bad in (0.0, -0.5, math.nan, math.inf):
            est.observe(bad, outputs=2, consumed=2)
        est.observe(0.01, outputs=-1, consumed=2)  # negative outputs
        assert est.observations == 0
        assert est.skipped == 5
        assert est.service == 0.01  # still reporting the plan
        assert est.gain == 2.0

    def test_rebase_resets_to_new_plan(self):
        est = NodeEstimator("n", 0.01, 2.0, min_observations=1)
        est.observe(0.09, outputs=1, consumed=1)
        assert est.service == pytest.approx(0.09)
        est.rebase(0.05, 1.5)
        assert est.observations == 0
        assert est.service == 0.05
        assert est.gain == 1.5

    def test_rejects_zero_min_observations(self):
        with pytest.raises(SpecError, match="min_observations"):
            NodeEstimator("n", 0.01, 2.0, min_observations=0)

    @given(
        obs=st.lists(
            st.tuples(
                st.one_of(
                    st.floats(
                        min_value=-1.0,
                        max_value=1.0,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    st.just(0.0),
                    st.just(math.nan),
                    st.just(math.inf),
                    st.just(-math.inf),
                ),
                st.integers(min_value=-3, max_value=64),
                st.integers(min_value=0, max_value=8),
            ),
            max_size=40,
        ),
        min_obs=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=200, deadline=None)
    def test_estimates_stay_finite_under_any_observation_stream(
        self, obs, min_obs
    ):
        """Property (the satellite's acceptance bar): whatever mix of
        degenerate and valid firings arrives — zero-consumed warm-up
        batches, zero/negative/NaN/inf durations, negative outputs —
        the reported estimates are finite at every step."""
        est = NodeEstimator("n", 0.01, 2.0, min_observations=min_obs)
        for duration, outputs, consumed in obs:
            est.observe(duration, outputs, consumed)
            assert math.isfinite(est.service), (duration, outputs, consumed)
            assert math.isfinite(est.gain), (duration, outputs, consumed)
        assert est.observations + est.skipped == len(obs)


class TestOnlineCalibrator:
    def _calibrator(self, **kwargs):
        return OnlineCalibrator(
            ["a", "b"],
            np.asarray([0.01, 0.02]),
            np.asarray([0.5, 2.0]),
            **kwargs,
        )

    def test_snapshot_shapes_and_ratios(self):
        cal = self._calibrator(min_observations=1)
        cal.observe(0, 0.02, outputs=1, consumed=2)
        snap = cal.snapshot()
        assert snap.services.shape == (2,)
        assert snap.service_ratios[0] == pytest.approx(2.0)
        assert snap.gain_ratios[1] == pytest.approx(1.0)

    def test_warmed_requires_every_node(self):
        cal = self._calibrator(min_observations=1)
        cal.observe(0, 0.01, outputs=1, consumed=1)
        assert not cal.snapshot().warmed
        cal.observe(1, 0.02, outputs=2, consumed=1)
        assert cal.snapshot().warmed

    def test_length_mismatch_rejected(self):
        with pytest.raises(SpecError, match="mismatch"):
            OnlineCalibrator(["a"], np.asarray([0.01, 0.02]), np.asarray([1.0]))


def _snapshot(service_ratio=1.0, gain_ratio=1.0, warmed=True):
    from repro.runtime.calibration import CalibrationSnapshot

    planned_t = np.asarray([0.01, 0.02])
    planned_g = np.asarray([0.5, 2.0])
    return CalibrationSnapshot(
        services=planned_t * service_ratio,
        gains=planned_g * gain_ratio,
        planned_services=planned_t,
        planned_gains=planned_g,
        observations=np.asarray([10, 10]),
        warmed=warmed,
    )


class TestDriftDetector:
    def test_on_plan_never_trips(self):
        det = DriftDetector(DriftConfig(sustain_checks=1))
        for _ in range(10):
            assert not det.update(_snapshot()).drifted

    def test_trips_after_sustained_deviation(self):
        det = DriftDetector(DriftConfig(service_rtol=0.25, sustain_checks=3))
        states = [det.update(_snapshot(service_ratio=1.5)) for _ in range(3)]
        assert [s.drifted for s in states] == [False, False, True]
        assert det.trips == 1

    def test_unwarmed_snapshot_does_not_accumulate(self):
        det = DriftDetector(DriftConfig(sustain_checks=2))
        det.update(_snapshot(service_ratio=1.5, warmed=False))
        det.update(_snapshot(service_ratio=1.5, warmed=False))
        assert not det.update(_snapshot(service_ratio=1.5)).drifted

    def test_recovery_resets_streak(self):
        det = DriftDetector(DriftConfig(sustain_checks=2))
        det.update(_snapshot(service_ratio=1.5))
        det.update(_snapshot())  # back on plan
        assert not det.update(_snapshot(service_ratio=1.5)).drifted

    def test_gain_drift_flags_suspect_nodes(self):
        det = DriftDetector(DriftConfig(gain_rtol=0.5, sustain_checks=1))
        state = det.update(_snapshot(gain_ratio=2.0))
        assert state.drifted
        assert state.suspect_nodes == (0, 1)

    def test_rebase_clears_streak(self):
        det = DriftDetector(DriftConfig(sustain_checks=2))
        det.update(_snapshot(service_ratio=1.5))
        det.rebase()
        assert not det.update(_snapshot(service_ratio=1.5)).drifted

    def test_config_validation(self):
        with pytest.raises(SpecError):
            DriftConfig(service_rtol=0.0)
        with pytest.raises(SpecError):
            DriftConfig(sustain_checks=0)

    @staticmethod
    def _mixed_snapshot(service_ratios, gain_ratios, warmed=True):
        """Snapshot with independent per-node service/gain drift."""
        from repro.runtime.calibration import CalibrationSnapshot

        planned_t = np.asarray([0.01, 0.02])
        planned_g = np.asarray([0.5, 2.0])
        return CalibrationSnapshot(
            services=planned_t * np.asarray(service_ratios),
            gains=planned_g * np.asarray(gain_ratios),
            planned_services=planned_t,
            planned_gains=planned_g,
            observations=np.asarray([10, 10]),
            warmed=warmed,
        )

    def test_simultaneous_service_and_gain_drift_masks(self):
        """Service drift on node 0 and gain drift on node 1 at once:
        each dimension's suspect mask flags only its own node."""
        det = DriftDetector(
            DriftConfig(service_rtol=0.25, gain_rtol=0.5, sustain_checks=1)
        )
        state = det.update(self._mixed_snapshot([1.5, 1.0], [1.0, 2.0]))
        assert state.drifted
        assert state.suspect_nodes == (0, 1)
        assert state.service_suspect.tolist() == [True, False]
        assert state.gain_suspect.tolist() == [False, True]

    def test_same_node_drifts_in_both_dimensions(self):
        det = DriftDetector(
            DriftConfig(service_rtol=0.25, gain_rtol=0.5, sustain_checks=1)
        )
        state = det.update(self._mixed_snapshot([1.5, 1.0], [2.0, 1.0]))
        assert state.drifted
        assert state.suspect_nodes == (0,)
        assert state.service_suspect.tolist() == [True, False]
        assert state.gain_suspect.tolist() == [True, False]

    def test_subthreshold_dimension_stays_clear(self):
        """A dimension within tolerance never enters its mask even while
        the other dimension is tripping the detector."""
        det = DriftDetector(
            DriftConfig(service_rtol=0.25, gain_rtol=0.5, sustain_checks=1)
        )
        # Gains off by 20% (< 50% rtol) while services drift hard.
        state = det.update(self._mixed_snapshot([1.6, 1.6], [1.2, 1.2]))
        assert state.drifted
        assert state.service_suspect.tolist() == [True, True]
        assert state.gain_suspect.tolist() == [False, False]

    def test_masks_drive_minimal_replan_update(self):
        """End-to-end with the re-planner: under simultaneous drift, only
        the suspect dimensions take live estimates; clear dimensions keep
        their planned values (deterministic cache keys)."""
        det = DriftDetector(
            DriftConfig(service_rtol=0.25, gain_rtol=0.5, sustain_checks=1)
        )
        # Service drift on node 0, gain drift on node 1, plus 5% noise on
        # the non-drifted gain dimension of node 0.
        snap = self._mixed_snapshot([1.5, 1.0], [1.05, 2.0])
        state = det.update(snap)
        assert state.drifted
        rp = Replanner(
            tau0=0.002, deadline=0.5, vector_width=8, min_interval=0.0
        )
        event = rp.replan(
            snap,
            now=1.0,
            service_mask=state.service_suspect,
            gain_mask=state.gain_suspect,
        )
        # Node 1 service and node 0 gain were within tolerance: the
        # re-plan keeps their planned values exactly (quantized), so the
        # 5% noise on node 0's gain never enters the operating point.
        q = quantize_relative(np.asarray([0.015, 0.02, 0.5, 4.0]), step=0.05)
        assert event.services[0] == pytest.approx(q[0])
        assert event.services[1] == pytest.approx(q[1])
        assert event.gains[0] == pytest.approx(q[2])
        assert event.gains[1] == pytest.approx(q[3])

    def test_streak_shared_across_dimensions(self):
        """Alternating service-only and gain-only drift sustains one
        streak: the detector trips on 'any suspect', not per-dimension."""
        det = DriftDetector(
            DriftConfig(service_rtol=0.25, gain_rtol=0.5, sustain_checks=3)
        )
        states = [
            det.update(self._mixed_snapshot([1.5, 1.0], [1.0, 1.0])),
            det.update(self._mixed_snapshot([1.0, 1.0], [1.0, 2.0])),
            det.update(self._mixed_snapshot([1.5, 1.0], [1.0, 2.0])),
        ]
        assert [s.drifted for s in states] == [False, False, True]


class TestReplanner:
    def _replanner(self, cache=None, **kwargs):
        return Replanner(
            tau0=0.002,
            deadline=0.5,
            vector_width=8,
            cache=cache,
            min_interval=0.0,
            **kwargs,
        )

    def test_replan_returns_adoptable_event(self):
        rp = self._replanner()
        event = rp.replan(_snapshot(), now=1.0)
        assert event.feasible
        assert event.adopted
        assert event.waits is not None
        assert len(rp.events) == 1

    def test_identical_drift_regime_is_a_cache_hit(self):
        """Quantization makes equal regimes produce equal cache keys."""
        cache = PlanCache()
        rp = self._replanner(cache=cache)
        first = rp.replan(_snapshot(service_ratio=1.5), now=1.0)
        # Slightly different estimates, same grid point after quantization.
        second = rp.replan(_snapshot(service_ratio=1.502), now=2.0)
        assert first.source == "cold"
        assert second.source == "hit"
        assert second.solve_seconds <= first.solve_seconds

    def test_min_interval_rate_limits(self):
        rp = Replanner(tau0=0.002, deadline=0.5, vector_width=8, min_interval=10.0)
        assert rp.ready(0.0)
        rp.replan(_snapshot(), now=0.0)
        assert not rp.ready(5.0)
        assert rp.ready(10.0)

    def test_infeasible_plan_not_adopted(self):
        rp = Replanner(
            tau0=0.002, deadline=1e-6, vector_width=8, min_interval=0.0
        )
        event = rp.replan(_snapshot(), now=1.0)
        assert not event.feasible
        assert not event.adopted

    @staticmethod
    def _dim0_snapshot(ratio):
        """Snapshot where only service dimension 0 drifted."""
        from repro.runtime.calibration import CalibrationSnapshot

        planned_t = np.asarray([0.01, 0.02])
        planned_g = np.asarray([0.5, 2.0])
        services = planned_t.copy()
        services[0] *= ratio
        return CalibrationSnapshot(
            services=services,
            gains=planned_g.copy(),
            planned_services=planned_t,
            planned_gains=planned_g,
            observations=np.asarray([10, 10]),
            warmed=True,
        )

    def test_grid_neighbor_snap_provenance(self):
        # 1.5x on dim 0 quantizes to grid index k; 1.55x to k+1.  The
        # second estimate's nearest point has no cached plan, but its
        # neighbor (the first re-plan's point) does — the snap turns the
        # boundary coin-flip into a cache hit and records provenance.
        cache = PlanCache()
        rp = self._replanner(cache=cache)
        first = rp.replan(
            self._dim0_snapshot(1.5),
            now=1.0,
            service_mask=np.array([True, False]),
        )
        assert first.source == "cold"
        assert not first.snapped
        assert first.snap_distance == 0.0
        second = rp.replan(
            self._dim0_snapshot(1.55),
            now=2.0,
            service_mask=np.array([True, False]),
        )
        assert second.source == "hit"
        assert second.snapped
        assert second.snap_distance == pytest.approx(1 - 1 / 1.05)
        assert np.allclose(second.services, first.services)

    def test_no_cache_never_snaps(self):
        rp = self._replanner(cache=None)
        event = rp.replan(self._dim0_snapshot(1.55), now=1.0)
        assert not event.snapped
        assert event.snap_distance == 0.0

    def test_snap_counters_surface_in_telemetry(self):
        from repro.obs.telemetry import RuntimeTelemetry

        t = RuntimeTelemetry(
            strategy="live-enforced",
            nodes=(),
            elapsed=1.0,
            items_ingested=0,
            outputs=0,
            in_flight=0,
            missed_items=0,
            deadline=0.5,
            latency_mean=0.0,
            latency_p99=0.0,
            latency_max=0.0,
            planned_active_fraction=0.5,
            replans=2,
            degraded_time=0.0,
            replan_snap_hits=1,
            replan_snap_misses=1,
            replan_max_snap_distance=0.047,
        )
        assert t.replan_snap_hits == 1
        assert t.replan_snap_misses == 1
        assert t.replan_max_snap_distance == pytest.approx(0.047)
