"""Tests for the QoS ladder and the DES multi-tenant co-simulator.

The load-bearing property (pinned in :class:`TestSingleTenantIdentity`)
is that co-simulation is *exact* for a fully funded tenant: one tenant
run through :class:`~repro.tenancy.sim.MultiTenantSimulator` is
bit-identical to its solo :class:`~repro.sim.enforced.
EnforcedWaitsSimulator` run.  On top of that exactness the QoS tests
check the ladder itself: under 2x overload gold keeps zero deadline
misses while best-effort slows down and sheds, and the device-seconds
ledger conserves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.dataflow.gains import DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.tenancy.qos import (
    BEST_EFFORT,
    GOLD,
    QOS_CLASSES,
    SILVER,
    allocate_capacity,
    qos_class,
    service_scales,
)
from repro.tenancy.sim import MultiTenantSimulator, SimTenant
from tests.test_sim_differential_fuzz import assert_metrics_bit_identical


def _passthrough(n_nodes=2, service=10.0, vector_width=4):
    return PipelineSpec(
        tuple(
            NodeSpec(f"n{i}", service, DeterministicGain(1))
            for i in range(n_nodes)
        ),
        vector_width=vector_width,
    )


def _tenant(name, *, qos="best-effort", waits=(0.0, 0.0), tau0=4.0,
            deadline=200.0, n_items=64, seed=7, **kwargs):
    pipeline = _passthrough()
    return SimTenant(
        name=name,
        pipeline=pipeline,
        waits=np.asarray(waits, dtype=float),
        arrivals=FixedRateArrivals(tau0),
        deadline=deadline,
        n_items=n_items,
        qos=qos,
        seed=seed,
        **kwargs,
    )


class TestLadder:
    def test_rank_orders_degradation(self):
        assert GOLD.rank < SILVER.rank < BEST_EFFORT.rank
        assert GOLD.weight > SILVER.weight > BEST_EFFORT.weight

    def test_gold_never_sheds(self):
        assert GOLD.shed is None
        assert GOLD.queue_capacity_vectors is None
        assert GOLD.queue_capacity(8) is None

    def test_lower_classes_bound_their_queues(self):
        assert SILVER.queue_capacity(8) == 64 * 8
        assert BEST_EFFORT.queue_capacity(8) == 16 * 8
        assert SILVER.shed == "drop-newest"
        assert BEST_EFFORT.shed == "deadline-aware"

    def test_guaranteed_flags(self):
        assert GOLD.guaranteed and SILVER.guaranteed
        assert not BEST_EFFORT.guaranteed

    def test_qos_class_resolution(self):
        assert qos_class("gold") is GOLD
        assert qos_class(SILVER) is SILVER
        with pytest.raises(SpecError, match="unknown QoS class"):
            qos_class("platinum")
        assert set(QOS_CLASSES) == {"gold", "silver", "best-effort"}


class TestAllocateCapacity:
    def test_underload_funds_everyone_fully(self):
        demands = {"a": (GOLD, 0.3), "b": (BEST_EFFORT, 0.4)}
        alloc = allocate_capacity(demands, capacity=1.0)
        assert alloc == {"a": 0.3, "b": 0.4}

    def test_gold_funded_before_best_effort(self):
        demands = {"g": (GOLD, 0.7), "b": (BEST_EFFORT, 0.7)}
        alloc = allocate_capacity(demands, capacity=1.0)
        assert alloc["g"] == pytest.approx(0.7)
        assert alloc["b"] == pytest.approx(0.3)

    def test_pro_rata_within_a_rank(self):
        demands = {"x": (BEST_EFFORT, 0.6), "y": (BEST_EFFORT, 0.2)}
        alloc = allocate_capacity(demands, capacity=0.4)
        assert alloc["x"] == pytest.approx(0.3)
        assert alloc["y"] == pytest.approx(0.1)

    def test_exhausted_ranks_get_zero(self):
        demands = {"g": (GOLD, 1.0), "b": (BEST_EFFORT, 0.5)}
        alloc = allocate_capacity(demands, capacity=1.0)
        assert alloc["b"] == 0.0

    def test_invariants_hold_on_random_mixes(self):
        rng = np.random.default_rng(3)
        classes = (GOLD, SILVER, BEST_EFFORT)
        for _ in range(50):
            demands = {
                f"t{i}": (
                    classes[int(rng.integers(0, 3))],
                    float(rng.uniform(0.0, 0.8)),
                )
                for i in range(int(rng.integers(1, 6)))
            }
            capacity = float(rng.uniform(0.2, 1.0))
            alloc = allocate_capacity(demands, capacity=capacity)
            assert sum(alloc.values()) <= capacity + 1e-9
            for name, (_, demand) in demands.items():
                assert 0.0 <= alloc[name] <= demand + 1e-12

    def test_validation(self):
        with pytest.raises(SpecError):
            allocate_capacity({"a": (GOLD, 0.1)}, capacity=0.0)
        with pytest.raises(SpecError):
            allocate_capacity({"a": (GOLD, -0.1)})
        with pytest.raises(SpecError):
            allocate_capacity({"a": ("gold", 0.1)})


class TestServiceScales:
    def test_fully_funded_keeps_scale_one(self):
        demands = {"a": (GOLD, 0.5), "b": (BEST_EFFORT, 0.3)}
        assert service_scales(demands) == {"a": 1.0, "b": 1.0}

    def test_underfunded_scale_is_demand_over_alloc(self):
        demands = {"g": (GOLD, 0.5), "b": (BEST_EFFORT, 1.0)}
        scales = service_scales(demands, capacity=1.0)
        assert scales["g"] == 1.0
        assert scales["b"] == pytest.approx(2.0)  # funded 0.5 for demand 1.0

    def test_defunded_tenant_clamped_at_max_scale(self):
        demands = {"g": (GOLD, 1.0), "b": (BEST_EFFORT, 0.5)}
        scales = service_scales(demands, capacity=1.0, max_scale=8.0)
        assert scales["b"] == 8.0

    def test_zero_demand_is_scale_one(self):
        assert service_scales({"z": (GOLD, 0.0)}) == {"z": 1.0}

    def test_validation(self):
        with pytest.raises(SpecError):
            service_scales({"a": (GOLD, 0.1)}, max_scale=0.5)


class TestSingleTenantIdentity:
    """K=1 co-simulation must be *bit-identical* to the solo run."""

    def test_fully_funded_tenant_matches_solo(self, tiny_pipeline):
        waits = np.asarray([2.0, 1.0])
        kwargs = dict(
            arrivals=FixedRateArrivals(40.0),
            deadline=500.0,
            n_items=120,
            seed=11,
        )
        solo = EnforcedWaitsSimulator(
            tiny_pipeline, waits, **kwargs
        ).run()
        co = MultiTenantSimulator(
            [
                SimTenant(
                    name="only",
                    pipeline=tiny_pipeline,
                    waits=waits,
                    qos="gold",
                    **kwargs,
                )
            ]
        ).run()
        assert co.scales == {"only": 1.0}
        assert_metrics_bit_identical(co.metrics("only"), solo)
        assert co.conserves()

    def test_best_effort_alone_is_also_exact(self, tiny_pipeline):
        # An uncontended best-effort tenant is fully funded too; its
        # bounded queue must never bite when the solo run never sheds.
        waits = np.asarray([0.5, 0.0])
        kwargs = dict(
            arrivals=FixedRateArrivals(50.0),
            deadline=800.0,
            n_items=80,
            seed=3,
        )
        solo = EnforcedWaitsSimulator(tiny_pipeline, waits, **kwargs).run()
        co = MultiTenantSimulator(
            [
                SimTenant(
                    name="be",
                    pipeline=tiny_pipeline,
                    waits=waits,
                    qos="best-effort",
                    **kwargs,
                )
            ]
        ).run()
        assert_metrics_bit_identical(co.metrics("be"), solo)


class TestOverloadLadder:
    def _overloaded(self, *, capacity=0.75, deadline_gold=200.0,
                    deadline_be=60.0, n_items=96):
        # Gold runs at AF 0.5 (waits == services) and fits the device;
        # best-effort demands AF 1.0 on top, so total demand is 1.5
        # against capacity 0.75 — the acceptance criterion's 2x
        # overload.  Gold must stay fully funded and miss-free while
        # best-effort absorbs the whole slowdown.
        gold = _tenant(
            "gold-t", qos="gold", waits=(10.0, 10.0), tau0=6.0,
            deadline=deadline_gold, n_items=n_items,
        )
        be = _tenant(
            "be-t", qos="best-effort", deadline=deadline_be, n_items=n_items
        )
        return MultiTenantSimulator([gold, be], capacity=capacity).run()

    def test_gold_holds_zero_misses_under_overload(self):
        result = self._overloaded()
        assert result.missed("gold-t") == 0
        assert result.metrics("gold-t").outputs == 96

    def test_best_effort_degrades_first(self):
        result = self._overloaded()
        assert result.scales["gold-t"] == 1.0
        assert result.scales["be-t"] > 1.0
        # The stretched best-effort tenant blows its tight deadline.
        assert result.missed("be-t") > 0

    def test_ledger_conserves_under_overload(self):
        result = self._overloaded()
        assert result.conserves()
        # Work-rate charge: neither tenant can exceed its allocation
        # share of the makespan by more than rounding.
        busy = {t.name: t.busy_seconds for t in result.device.tenants}
        assert busy["gold-t"] + busy["be-t"] <= (
            result.device.capacity * result.makespan + 1e-9
        )

    def test_silver_outranks_best_effort(self):
        silver = _tenant("s", qos="silver", deadline=200.0)
        be = _tenant("b", qos="best-effort", deadline=200.0)
        result = MultiTenantSimulator([silver, be], capacity=1.0).run()
        assert result.scales["s"] == 1.0
        assert result.scales["b"] > 1.0


class TestSimulatorContract:
    def test_needs_at_least_one_tenant(self):
        with pytest.raises(SpecError, match="at least one"):
            MultiTenantSimulator([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecError, match="duplicate"):
            MultiTenantSimulator([_tenant("a"), _tenant("a")])

    def test_single_use(self):
        sim = MultiTenantSimulator([_tenant("a")])
        sim.run()
        with pytest.raises(SpecError, match="single-use"):
            sim.run()

    def test_p99_needs_latency_samples(self):
        result = MultiTenantSimulator(
            [_tenant("a", keep_latency_samples=True)]
        ).run()
        assert result.p99_latency("a") > 0.0
