"""Tests for the monolithic block simulator."""

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.errors import SimulationError, SpecError
from repro.sim.monolithic import MonolithicSimulator


class TestDeterministic:
    def test_single_block_latency(self, passthrough_pipeline):
        # M=4, tau0=10: block ready at t=30 (4th arrival), duration
        # = ceil(4/8)*(5+7+3) = 15, completion 45.
        sim = MonolithicSimulator(
            passthrough_pipeline,
            block_size=4,
            arrivals=FixedRateArrivals(10.0),
            deadline=1e6,
            n_items=4,
        )
        m = sim.run()
        assert m.outputs == 4
        assert m.makespan == pytest.approx(45.0)
        # Item 0 arrived at 0, exits at 45.
        assert m.max_latency == pytest.approx(45.0)
        assert m.mean_latency == pytest.approx((45 + 35 + 25 + 15) / 4)

    def test_blocks_queue_fifo(self, passthrough_pipeline):
        # Blocks of 8 full items take 15 each; arrivals every 1 cycle mean
        # blocks become ready every 8 cycles but take 15 -> backlog grows.
        sim = MonolithicSimulator(
            passthrough_pipeline,
            block_size=8,
            arrivals=FixedRateArrivals(1.0),
            deadline=1e9,
            n_items=64,
        )
        m = sim.run()
        assert m.outputs == 64
        # 8 blocks, first ready at t=7, each takes 15: last completes at
        # 7 + 8*15 = 127.
        assert m.makespan == pytest.approx(127.0)
        assert m.extra["max_backlog_items"] > 8  # backlog built up

    def test_partial_flush_toggle(self, passthrough_pipeline):
        common = dict(
            block_size=5,
            arrivals=FixedRateArrivals(1.0),
            deadline=1e9,
            n_items=7,
        )
        with_flush = MonolithicSimulator(
            passthrough_pipeline, flush_partial=True, **common
        ).run()
        without = MonolithicSimulator(
            passthrough_pipeline, flush_partial=False, **common
        ).run()
        assert with_flush.outputs == 7
        assert without.outputs == 5

    def test_miss_detection(self, passthrough_pipeline):
        # Deadline shorter than accumulate+service for the first item.
        sim = MonolithicSimulator(
            passthrough_pipeline,
            block_size=8,
            arrivals=FixedRateArrivals(10.0),
            deadline=50.0,
            n_items=8,
        )
        m = sim.run()
        # Block ready at 70, done at 85; item 0 latency 85 > 50.
        assert m.missed_items > 0


class TestStochastic:
    def test_blast_af_steady_matches_prediction(self, blast):
        from repro.core.model import RealTimeProblem
        from repro.core.monolithic import solve_monolithic

        sol = solve_monolithic(RealTimeProblem(blast, 30.0, 2e5))
        sim = MonolithicSimulator(
            blast,
            sol.block_size,
            FixedRateArrivals(30.0),
            2e5,
            n_items=12 * sol.block_size,
            seed=2,
        )
        m = sim.run()
        assert m.extra["af_steady"] == pytest.approx(
            sol.active_fraction, rel=0.05
        )
        assert m.miss_free

    def test_seed_reproducibility(self, blast):
        def run(seed):
            return MonolithicSimulator(
                blast, 500, FixedRateArrivals(30.0), 1e6, 2000, seed=seed
            ).run()

        a, b = run(1), run(1)
        assert a.outputs == b.outputs
        assert a.active_fraction == b.active_fraction
        assert run(2).outputs != a.outputs or True  # different seed runs fine

    def test_occupancy_tracked_per_stage(self, blast):
        m = MonolithicSimulator(
            blast, 1000, FixedRateArrivals(30.0), 1e7, 4000, seed=0
        ).run()
        assert m.firings[0] == 4 * int(np.ceil(1000 / 128))
        assert (m.mean_occupancy[: 3] > 0).all()


class TestValidation:
    def test_bad_block_size(self, blast):
        with pytest.raises(SpecError):
            MonolithicSimulator(blast, 0, FixedRateArrivals(1.0), 1e5, 10)

    def test_single_use(self, tiny_pipeline):
        sim = MonolithicSimulator(
            tiny_pipeline, 2, FixedRateArrivals(1.0), 1e5, 10
        )
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()
