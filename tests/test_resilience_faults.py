"""Tests for in-simulation fault injection (repro.resilience.faults).

Covers the fault dataclasses' validation, the pure lookup functions
(service factor compounding, stall chaining, burst remapping), and the
ISSUE acceptance scenario: a sustained arrival burst through bounded
queues with deadline-aware shedding completes gracefully where the
fail-fast configuration aborts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.dataflow.gains import DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SimulationError, SpecError
from repro.resilience import (
    ArrivalBurst,
    DeadlineWatchdog,
    NodeStall,
    RuntimeFaultPlan,
    ServiceSpike,
)
from repro.sim.enforced import EnforcedWaitsSimulator


class TestValidation:
    def test_spike_rejects_negative_node(self):
        with pytest.raises(SpecError, match="node"):
            ServiceSpike(-1, 0.0, 1.0, 2.0)

    def test_spike_rejects_empty_window(self):
        with pytest.raises(SpecError, match="window"):
            ServiceSpike(0, 5.0, 5.0, 2.0)

    def test_spike_rejects_negative_start(self):
        with pytest.raises(SpecError, match="window"):
            ServiceSpike(0, -1.0, 5.0, 2.0)

    def test_spike_rejects_nonpositive_factor(self):
        with pytest.raises(SpecError, match="factor"):
            ServiceSpike(0, 0.0, 1.0, 0.0)

    def test_stall_rejects_negative_node(self):
        with pytest.raises(SpecError, match="node"):
            NodeStall(-2, 0.0, 1.0)

    def test_stall_rejects_nonpositive_duration(self):
        with pytest.raises(SpecError, match="duration"):
            NodeStall(0, 1.0, 0.0)

    def test_stall_end_property(self):
        assert NodeStall(0, 2.0, 3.0).end == 5.0

    def test_burst_rejects_inverted_window(self):
        with pytest.raises(SpecError, match="window"):
            ArrivalBurst(10.0, 4.0, 2.0)

    def test_burst_rejects_nonpositive_factor(self):
        with pytest.raises(SpecError, match="factor"):
            ArrivalBurst(0.0, 10.0, -1.0)


class TestEmptyPlan:
    def test_empty_flag(self):
        assert RuntimeFaultPlan().empty
        assert not RuntimeFaultPlan(stalls=(NodeStall(0, 1.0, 1.0),)).empty

    def test_unit_service_factor(self):
        assert RuntimeFaultPlan().service_factor(0, 100.0) == 1.0

    def test_identity_stall_release(self):
        assert RuntimeFaultPlan().stall_release(3, 42.0) == 42.0

    def test_transform_is_identity_not_copy(self):
        """With no bursts the input array itself must come back."""
        times = np.linspace(0.0, 10.0, 11)
        out = RuntimeFaultPlan().transform_arrivals(times)
        assert out is times


class TestServiceFactor:
    def test_window_is_half_open(self):
        plan = RuntimeFaultPlan(
            service_spikes=(ServiceSpike(1, 10.0, 20.0, 3.0),)
        )
        assert plan.service_factor(1, 9.999) == 1.0
        assert plan.service_factor(1, 10.0) == 3.0
        assert plan.service_factor(1, 19.999) == 3.0
        assert plan.service_factor(1, 20.0) == 1.0  # end exclusive

    def test_other_nodes_unaffected(self):
        plan = RuntimeFaultPlan(
            service_spikes=(ServiceSpike(1, 10.0, 20.0, 3.0),)
        )
        assert plan.service_factor(0, 15.0) == 1.0
        assert plan.service_factor(2, 15.0) == 1.0

    def test_overlapping_spikes_compound(self):
        plan = RuntimeFaultPlan(
            service_spikes=(
                ServiceSpike(0, 0.0, 100.0, 2.0),
                ServiceSpike(0, 50.0, 60.0, 1.5),
            )
        )
        assert plan.service_factor(0, 55.0) == pytest.approx(3.0)
        assert plan.service_factor(0, 70.0) == 2.0


class TestStallRelease:
    def test_not_stalled_returns_t(self):
        plan = RuntimeFaultPlan(stalls=(NodeStall(0, 10.0, 5.0),))
        assert plan.stall_release(0, 9.0) == 9.0
        assert plan.stall_release(0, 15.0) == 15.0  # end is release

    def test_inside_stall_defers_to_end(self):
        plan = RuntimeFaultPlan(stalls=(NodeStall(0, 10.0, 5.0),))
        assert plan.stall_release(0, 12.0) == 15.0
        assert plan.stall_release(0, 10.0) == 15.0  # start inclusive

    def test_chained_stalls_resolve_to_final_release(self):
        """A stall ending inside another pushes through both."""
        plan = RuntimeFaultPlan(
            stalls=(NodeStall(0, 10.0, 5.0), NodeStall(0, 14.0, 6.0))
        )
        assert plan.stall_release(0, 11.0) == 20.0

    def test_other_node_stall_ignored(self):
        plan = RuntimeFaultPlan(stalls=(NodeStall(2, 10.0, 5.0),))
        assert plan.stall_release(0, 12.0) == 12.0


class TestTransformArrivals:
    def _plan(self, factor: float = 2.0) -> RuntimeFaultPlan:
        return RuntimeFaultPlan(
            bursts=(ArrivalBurst(10.0, 20.0, factor),)
        )

    def test_before_window_untouched(self):
        times = np.asarray([0.0, 5.0, 9.9])
        out = self._plan().transform_arrivals(times)
        assert np.array_equal(out, times)

    def test_window_gaps_compressed_by_factor(self):
        times = np.asarray([10.0, 12.0, 16.0, 20.0])
        out = self._plan(2.0).transform_arrivals(times)
        assert out == pytest.approx([10.0, 11.0, 13.0, 15.0])

    def test_after_window_shifted_by_saved_time(self):
        # A 2x burst over a 10-wide window saves 5 time units.
        times = np.asarray([25.0, 40.0])
        out = self._plan(2.0).transform_arrivals(times)
        assert out == pytest.approx([20.0, 35.0])

    def test_remap_is_continuous_and_order_preserving(self):
        times = np.linspace(0.0, 40.0, 400)
        out = self._plan(3.0).transform_arrivals(times)
        assert (np.diff(out) > 0).all()
        # Piecewise affine with no jumps: max step bounded by input step.
        assert np.diff(out).max() <= np.diff(times).max() + 1e-12

    def test_preserves_count_and_dtype(self):
        times = np.linspace(0.0, 40.0, 50)
        out = self._plan().transform_arrivals(times)
        assert out.shape == times.shape
        assert out.dtype == float

    def test_sequential_bursts_compose(self):
        plan = RuntimeFaultPlan(
            bursts=(
                ArrivalBurst(10.0, 20.0, 2.0),
                ArrivalBurst(30.0, 40.0, 2.0),
            )
        )
        out = plan.transform_arrivals(np.asarray([50.0]))
        assert out == pytest.approx([40.0])  # 5 saved by each burst


# -- end-to-end: the ISSUE acceptance scenario ----------------------------


def _overload_pipeline() -> PipelineSpec:
    return PipelineSpec(
        nodes=(
            NodeSpec("s0", 0.5, DeterministicGain(1)),
            NodeSpec("s1", 0.5, DeterministicGain(1)),
            NodeSpec("s2", 0.5, DeterministicGain(1)),
        ),
        vector_width=4,
    )


def _overload_sim(factor: float, **kwargs) -> EnforcedWaitsSimulator:
    plan = RuntimeFaultPlan(
        bursts=(ArrivalBurst(20.0, 120.0, factor),)
    )
    return EnforcedWaitsSimulator(
        _overload_pipeline(),
        np.asarray([2.0, 2.0, 2.0]),
        FixedRateArrivals(1.0),
        15.0,
        300,
        seed=0,
        runtime_faults=plan,
        **kwargs,
    )


class TestOverloadAcceptance:
    """2x burst + deadline-aware shedding: complete, shed, degrade."""

    def test_fail_fast_aborts_under_burst(self):
        with pytest.raises(SimulationError, match="overflow"):
            _overload_sim(3.0, queue_capacity=16).run()

    @pytest.mark.parametrize("factor", [2.0, 3.0])
    def test_shedding_run_completes(self, factor):
        sim = _overload_sim(
            factor,
            queue_capacity=16,
            shed_policy="deadline-aware",
            watchdog=DeadlineWatchdog(15.0, sustain_time=0.75),
            telemetry=True,
        )
        metrics = sim.run()  # must not raise
        res = metrics.extra["resilience"]
        assert res["shed_total"] > 0
        assert res["shed_total"] == int(res["shed_per_node"].sum())
        # Shed items are lost for good: they count as misses.
        assert res["dropped_items"] > 0
        assert metrics.miss_rate > 0

        # Telemetry carries the same shed counts and the intervals.
        tel = metrics.extra["telemetry"]
        assert tel.total_shed == res["shed_total"]
        assert tel.degraded_intervals == res["degraded_intervals"]

        # Queue conservation: pushed = popped + dropped + still queued.
        for q in sim.queues:
            assert (
                q.total_popped + q.total_dropped + len(q) == q.total_pushed
            )
            assert q.max_depth <= 16

    def test_watchdog_degrades_under_sustained_burst(self):
        sim = _overload_sim(
            3.0,
            queue_capacity=16,
            shed_policy="deadline-aware",
            watchdog=DeadlineWatchdog(15.0, sustain_time=0.75),
        )
        metrics = sim.run()
        res = metrics.extra["resilience"]
        assert res["degradations"] >= 1
        assert res["degraded_time"] > 0
        for enter, exit_ in res["degraded_intervals"]:
            assert 0 <= enter < exit_ <= metrics.makespan

    def test_drop_policies_also_survive(self):
        for policy in ("drop-newest", "drop-oldest"):
            metrics = _overload_sim(
                3.0, queue_capacity=16, shed_policy=policy
            ).run()
            assert metrics.extra["resilience"]["shed_total"] > 0

    def test_service_spike_extends_makespan(self):
        clean = EnforcedWaitsSimulator(
            _overload_pipeline(),
            np.asarray([2.0, 2.0, 2.0]),
            FixedRateArrivals(1.0),
            15.0,
            100,
            seed=0,
        ).run()
        spiked = EnforcedWaitsSimulator(
            _overload_pipeline(),
            np.asarray([2.0, 2.0, 2.0]),
            FixedRateArrivals(1.0),
            15.0,
            100,
            seed=0,
            runtime_faults=RuntimeFaultPlan(
                service_spikes=(ServiceSpike(1, 0.0, 200.0, 8.0),)
            ),
        ).run()
        assert spiked.makespan > clean.makespan

    def test_stall_defers_firings(self):
        clean = EnforcedWaitsSimulator(
            _overload_pipeline(),
            np.asarray([2.0, 2.0, 2.0]),
            FixedRateArrivals(1.0),
            15.0,
            100,
            seed=0,
        ).run()
        stalled = EnforcedWaitsSimulator(
            _overload_pipeline(),
            np.asarray([2.0, 2.0, 2.0]),
            FixedRateArrivals(1.0),
            15.0,
            100,
            seed=0,
            runtime_faults=RuntimeFaultPlan(
                stalls=(NodeStall(0, 10.0, 40.0),)
            ),
        ).run()
        assert stalled.makespan > clean.makespan
