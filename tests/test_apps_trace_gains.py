"""Blast-parity empirical gain facades for the NIDS and gamma apps.

`repro.apps.blast.trace_gains` set the pattern (measure_gains /
empirical_*_pipeline / calibrated_*_b); these tests pin the same
contract on the other two apps so the offline calibration loop and the
live runtime can treat all three uniformly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.gamma import (
    calibrated_gamma_b,
    empirical_gamma_pipeline,
)
from repro.apps.gamma import measure_gains as measure_gamma
from repro.apps.nids import (
    calibrated_nids_b,
    empirical_nids_pipeline,
)
from repro.apps.nids import measure_gains as measure_nids
from repro.apps.nids.packets import PacketStreamConfig
from repro.core.enforced_waits import optimistic_b


class TestNidsFacade:
    def test_measure_gains_records_every_stage(self):
        trace = measure_nids(
            config=PacketStreamConfig(n_packets=400), seed=3
        )
        assert len(trace.stage_counts) == 4
        assert all(c.size > 0 for c in trace.stage_counts[:1])
        assert np.all(trace.mean_gains >= 0)

    def test_measurement_is_seed_deterministic(self):
        cfg = PacketStreamConfig(n_packets=300)
        a = measure_nids(config=cfg, seed=7)
        b = measure_nids(config=cfg, seed=7)
        for x, y in zip(a.stage_counts, b.stage_counts):
            np.testing.assert_array_equal(x, y)

    def test_empirical_pipeline_uses_measured_gains(self):
        trace = measure_nids(
            config=PacketStreamConfig(n_packets=400), seed=3
        )
        pipeline = empirical_nids_pipeline(trace)
        assert pipeline.n_nodes == 4
        # The head stage's modeled mean matches the measurement.
        assert pipeline.nodes[0].gain.mean == pytest.approx(
            trace.mean_gains[0], rel=0.05
        )


class TestGammaFacade:
    def test_measure_and_build_pipeline(self):
        trace = measure_gamma(seed=5)
        assert len(trace.stage_counts) == 4
        pipeline = empirical_gamma_pipeline(trace)
        assert pipeline.n_nodes == 4
        assert pipeline.nodes[0].gain.mean == pytest.approx(
            trace.mean_gains[0], rel=0.05
        )


@pytest.mark.slow
class TestCalibratedB:
    """The simulator raise-and-retry loop applies to all three apps."""

    def test_nids_calibrated_b_covers_optimistic(self):
        # Default 5000-packet stream: small ones can starve the last
        # stage (alerts) of samples entirely.
        trace = measure_nids(seed=0)
        pipeline = empirical_nids_pipeline(trace)
        b = calibrated_nids_b(
            tau0=2000.0,
            deadline=4.0e5,
            pipeline=pipeline,
            n_trials=3,
            n_items=800,
        )
        assert b.shape == (4,)
        assert np.all(b >= optimistic_b(pipeline))

    def test_gamma_calibrated_b_covers_optimistic(self):
        trace = measure_gamma(seed=0)
        pipeline = empirical_gamma_pipeline(trace)
        b = calibrated_gamma_b(
            tau0=3000.0,
            deadline=6.0e5,
            pipeline=pipeline,
            n_trials=3,
            n_items=800,
        )
        assert b.shape == (4,)
        assert np.all(b >= optimistic_b(pipeline))
