"""Tests for the DES engine: ordering, cancellation, run limits."""

import pytest

from repro.des.engine import Engine
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(5.0, lambda: order.append("b"))
        eng.schedule(1.0, lambda: order.append("a"))
        eng.schedule(9.0, lambda: order.append("c"))
        eng.run()
        assert order == ["a", "b", "c"]
        assert eng.now == 9.0

    def test_priority_breaks_time_ties(self):
        eng = Engine()
        order = []
        eng.schedule(1.0, lambda: order.append("late"), priority=1)
        eng.schedule(1.0, lambda: order.append("early"), priority=-1)
        eng.run()
        assert order == ["early", "late"]

    def test_fifo_within_same_time_and_priority(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.schedule(1.0, lambda i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_rejects_scheduling_in_past(self):
        eng = Engine()
        eng.schedule(5.0, lambda: eng.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError, match="before current time"):
            eng.run()

    def test_rejects_nan_time(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="NaN"):
            eng.schedule(float("nan"), lambda: None)

    def test_schedule_after(self):
        eng = Engine()
        seen = []
        eng.schedule(3.0, lambda: eng.schedule_after(2.0, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [5.0]

    def test_schedule_after_rejects_negative(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        handle = eng.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        eng.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        eng = Engine()
        handle = eng.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        h1 = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending == 2
        h1.cancel()
        assert eng.pending == 1


class TestRunControls:
    def test_run_until_stops_and_advances_clock(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(10.0, lambda: fired.append(2))
        eng.run(until=5.0)
        assert fired == [1]
        assert eng.now == 5.0
        eng.run()  # remaining event still fires later
        assert fired == [1, 2]

    def test_max_events_guard(self):
        eng = Engine()

        def reschedule():
            eng.schedule_after(1.0, reschedule)

        eng.schedule(0.0, reschedule)
        with pytest.raises(SimulationError, match="budget"):
            eng.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_events_processed_counts(self):
        eng = Engine()
        for t in (1.0, 2.0):
            eng.schedule(t, lambda: None)
        eng.run()
        assert eng.events_processed == 2

    def test_run_not_reentrant(self):
        eng = Engine()
        err = []

        def inner():
            try:
                eng.run()
            except SimulationError as exc:
                err.append(exc)

        eng.schedule(1.0, inner)
        eng.run()
        assert len(err) == 1

    def test_clear_cancels_everything(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.clear()
        eng.run()
        assert fired == []
