"""Tests for reproducible named RNG streams."""

import numpy as np
import pytest

from repro.des.rng import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(7).stream("x").random(16)
    b = RngRegistry(7).stream("x").random(16)
    assert (a == b).all()


def test_different_names_independent():
    reg = RngRegistry(7)
    a = reg.stream("x").random(16)
    b = reg.stream("y").random(16)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(16)
    b = RngRegistry(2).stream("x").random(16)
    assert not (a == b).all()


def test_stream_is_cached_and_continues():
    reg = RngRegistry(7)
    g1 = reg.stream("x")
    first = g1.random(4)
    g2 = reg.stream("x")
    assert g1 is g2
    second = g2.random(4)
    assert not (first == second).all()  # draws continue, not restart


def test_fresh_restarts_stream():
    reg = RngRegistry(7)
    first = reg.stream("x").random(4)
    restarted = reg.fresh("x").random(4)
    assert (first == restarted).all()


def test_adding_stream_does_not_perturb_others():
    reg1 = RngRegistry(7)
    a1 = reg1.stream("a").random(8)
    reg2 = RngRegistry(7)
    reg2.stream("unrelated")  # extra consumer created first
    a2 = reg2.stream("a").random(8)
    assert (a1 == a2).all()


def test_long_names_and_unicode():
    reg = RngRegistry(0)
    g = reg.stream("node/3.gain — ünïcode" * 5)
    assert isinstance(g.random(), float)


def test_names_property_tracks_creation_order():
    reg = RngRegistry(0)
    reg.stream("b")
    reg.stream("a")
    assert reg.names == ["b", "a"]


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngRegistry("seed")  # type: ignore[arg-type]


def test_numpy_int_seed_accepted():
    assert RngRegistry(np.int64(5)).seed == 5
