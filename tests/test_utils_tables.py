"""Tests for the ASCII table renderer."""

import pytest

from repro.utils.tables import render_table


def test_basic_render():
    out = render_table(["a", "bb"], [(1, 2.5), (10, 0.25)])
    lines = out.splitlines()
    assert len(lines) == 4  # header, separator, 2 rows
    assert "a" in lines[0] and "bb" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_title_prepended():
    out = render_table(["x"], [(1,)], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_float_formatting():
    out = render_table(["v"], [(0.123456789,)], floatfmt=".2f")
    assert "0.12" in out


def test_bool_rendering():
    out = render_table(["ok"], [(True,), (False,)])
    assert "yes" in out and "no" in out


def test_column_alignment():
    out = render_table(["col"], [(1,), (1000,)])
    rows = out.splitlines()[2:]
    assert len(rows[0]) == len(rows[1])  # right-justified equal width


def test_mismatched_row_raises():
    with pytest.raises(ValueError, match="row 0 has 1 cells"):
        render_table(["a", "b"], [(1,)])
