"""Tests for repro.utils.mathx."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.mathx import (
    ceil_div,
    clamp,
    cumprod_prefix,
    geometric_spread,
    is_close,
    relative_error,
    safe_div,
)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(0, 5, 0), (1, 5, 1), (5, 5, 1), (6, 5, 2), (300, 128, 3)],
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b) or ceil_div(a, b) == -(-a // b)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_covers_exactly(self, a, b):
        # ceil_div(a,b)*b is the least multiple of b covering a.
        k = ceil_div(a, b)
        assert k * b >= a
        assert (k - 1) * b < a or k == 0


class TestClamp:
    def test_inside(self):
        assert clamp(1.5, 1, 2) == 1.5

    def test_outside(self):
        assert clamp(0.0, 1, 2) == 1
        assert clamp(3.0, 1, 2) == 2

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            clamp(0, 2, 1)


class TestCumprodPrefix:
    def test_blast_total_gains(self):
        g = [0.379, 1.920, 0.0332, 1.0]
        G = cumprod_prefix(g)
        assert G[0] == 1.0
        assert G[1] == pytest.approx(0.379)
        assert G[2] == pytest.approx(0.379 * 1.920)
        assert G[3] == pytest.approx(0.379 * 1.920 * 0.0332)

    def test_empty(self):
        assert cumprod_prefix([]).tolist() == [1.0]

    @given(st.lists(st.floats(0.01, 10), min_size=1, max_size=8))
    def test_recurrence(self, gains):
        G = cumprod_prefix(gains)
        assert G[0] == 1.0
        for i in range(1, len(gains)):
            assert G[i] == pytest.approx(G[i - 1] * gains[i - 1])


class TestGeometricSpread:
    def test_endpoints(self):
        pts = geometric_spread(1.0, 100.0, 5)
        assert pts[0] == pytest.approx(1.0)
        assert pts[-1] == pytest.approx(100.0)

    def test_single_point(self):
        assert geometric_spread(3.0, 9.0, 1).tolist() == [3.0]

    def test_log_even_spacing(self):
        pts = geometric_spread(1.0, 16.0, 5)
        ratios = pts[1:] / pts[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_spread(0.0, 1.0, 3)


class TestMisc:
    def test_is_close(self):
        assert is_close(1.0, 1.0 + 1e-12)
        assert not is_close(1.0, 1.1)

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0

    def test_safe_div(self):
        assert safe_div(1.0, 2.0) == 0.5
        assert safe_div(1.0, 0.0) == math.inf
        assert safe_div(1.0, 0.0, default=0.0) == 0.0
