"""Tests for the A4-A6 extension experiments."""

import numpy as np
import pytest

from repro.experiments.extensions import (
    run_adaptive_policies,
    run_gain_sensitivity,
    run_phase_offsets,
)
from repro.experiments.registry import EXPERIMENTS


def test_extensions_registered():
    assert {"adaptive-policies", "phase-offsets", "gain-sensitivity"} <= set(
        EXPERIMENTS
    )


class TestAdaptivePolicies:
    @pytest.fixture(scope="class")
    def result(self):
        return run_adaptive_policies(n_trials=3, n_items=3000)

    def test_all_policies_present(self, result):
        names = [r[0] for r in result.rows]
        assert names == ["fixed", "full-vector", "slack"]

    def test_adaptive_never_misses_more(self, result):
        fixed_mr = result.variant("fixed")[3]
        assert result.variant("full-vector")[3] <= fixed_mr + 1e-12
        assert result.variant("slack")[3] <= fixed_mr + 1e-12

    def test_render_includes_latency(self, result):
        text = result.render()
        assert "mean latency" in text
        assert "A4" in text


class TestPhaseOffsets:
    def test_runs_and_preserves_af(self):
        result = run_phase_offsets(n_trials=3, n_items=3000)
        base = result.variant("zero phases (default)")
        aligned = result.variant("chain-aligned phases")
        # Phases shift when firings happen, not how often: the active
        # fraction is essentially unchanged.
        assert aligned[1] == pytest.approx(base[1], rel=0.05)
        assert "A5" in result.render()


class TestGainSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_gain_sensitivity(n_trials=4, n_items=6000)

    def test_covers_both_strategies_and_workloads(self, result):
        combos = {(s, w) for s, w, _, _ in result.rows}
        assert combos == {
            ("enforced", "nominal"),
            ("enforced", "bursty"),
            ("monolithic", "nominal"),
            ("monolithic", "bursty"),
        }

    def test_degradations_computable(self, result):
        # Direction is a finding, not an assumption (see EXPERIMENTS.md);
        # both values must simply be well-defined and non-negative-ish.
        e = result.degradation("enforced")
        m = result.degradation("monolithic")
        assert np.isfinite(e) and np.isfinite(m)

    def test_render(self, result):
        assert "A6" in result.render()
        assert "degradation" in result.render()
