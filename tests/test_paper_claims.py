"""The paper's quotable claims, one test each.

A reviewer-facing index: every numbered claim cites the paper sentence it
checks. All tests here are optimizer-level (fast); simulation-backed
versions live in test_integration.py and the benchmark harness.
"""

import numpy as np
import pytest

from repro.core.enforced_waits import solve_enforced_waits
from repro.core.model import RealTimeProblem
from repro.core.monolithic import solve_monolithic

B = np.asarray([1.0, 3.0, 9.0, 6.0])


@pytest.fixture(scope="module")
def blast():
    from repro.apps.blast.pipeline import blast_pipeline

    return blast_pipeline()


class TestSection4Claims:
    def test_claim_waits_trade_latency_for_occupancy(self, blast):
        """Sec. 4: "we can increase occupancy by delaying n_i's firing" —
        more deadline room means longer waits and lower active fraction."""
        tight = solve_enforced_waits(RealTimeProblem(blast, 50.0, 5e4), B)
        slack = solve_enforced_waits(RealTimeProblem(blast, 50.0, 3e5), B)
        assert (slack.waits >= tight.waits - 1e-6).all()
        assert slack.active_fraction < tight.active_fraction

    def test_claim_objective_form(self, blast):
        """Fig. 1: T(w) = (1/N) sum t_i/(t_i + w_i)."""
        sol = solve_enforced_waits(RealTimeProblem(blast, 50.0, 2e5), B)
        t = blast.service_times
        assert sol.active_fraction == pytest.approx(
            float(np.mean(t / (t + sol.waits)))
        )


class TestSection5Claims:
    def test_claim_af_tends_to_constant_in_large_m(self, blast):
        """Sec. 6.3: "raising D allows the block size M to grow, but the
        active fraction tends to a constant in the limit of large M"."""
        tau0 = 100.0
        afs = [
            solve_monolithic(RealTimeProblem(blast, tau0, d)).active_fraction
            for d in (1.5e5, 2.5e5, 3.5e5)
        ]
        limit = blast.per_item_cost / tau0
        # Converging from above toward the constant (ceil overhead ~ 1/M).
        assert afs[0] > afs[1] > afs[2] > limit
        assert afs[-1] == pytest.approx(limit, rel=0.10)
        assert abs(afs[2] - afs[1]) < abs(afs[1] - afs[0])

    def test_claim_m_restricted_by_deadline(self, blast):
        """Sec. 5: "Eventually, M becomes too large to ensure that an
        arriving item will ... be completely processed by its deadline"."""
        loose = solve_monolithic(RealTimeProblem(blast, 50.0, 3e5))
        tight = solve_monolithic(RealTimeProblem(blast, 50.0, 6e4))
        assert tight.block_size < loose.block_size


class TestSection6Claims:
    def test_claim_no_feasible_below_2e4(self, blast):
        """Sec. 6.1: "Values of D below 2x10^4 cycles resulted in no
        feasible ... realizations of the pipeline by either approach"."""
        for tau0 in (5.0, 20.0, 100.0):
            prob = RealTimeProblem(blast, tau0, 1.9e4)
            assert not solve_enforced_waits(prob, B).feasible

    def test_claim_enforced_insensitive_to_tau0_except_smallest(self, blast):
        """Sec. 6.3: "the enforced-wait strategy's active fraction is
        insensitive to tau0 except at the smallest sizes"."""
        d = 2e5
        af_small = solve_enforced_waits(
            RealTimeProblem(blast, 4.0, d), B
        ).active_fraction
        af_mid = solve_enforced_waits(
            RealTimeProblem(blast, 40.0, d), B
        ).active_fraction
        af_large = solve_enforced_waits(
            RealTimeProblem(blast, 100.0, d), B
        ).active_fraction
        assert af_small > 2 * af_mid  # sensitive at the smallest tau0
        assert af_mid == pytest.approx(af_large, rel=0.15)  # then flat-ish

    def test_claim_enforced_scales_inversely_with_d(self, blast):
        """Sec. 6.3: enforced AF "scales inversely with D"."""
        tau0 = 50.0
        af1 = solve_enforced_waits(
            RealTimeProblem(blast, tau0, 1e5), B
        ).active_fraction
        af2 = solve_enforced_waits(
            RealTimeProblem(blast, tau0, 2e5), B
        ).active_fraction
        assert af1 / af2 == pytest.approx(2.0, rel=0.15)

    def test_claim_monolithic_scales_inversely_with_tau0(self, blast):
        """Sec. 6.3: monolithic AF "scales linearly with rho_0 and hence
        inversely with tau0"."""
        d = 3.5e5
        af1 = solve_monolithic(RealTimeProblem(blast, 25.0, d)).active_fraction
        af2 = solve_monolithic(RealTimeProblem(blast, 100.0, d)).active_fraction
        assert af1 / af2 == pytest.approx(4.0, rel=0.15)

    def test_claim_enforced_wins_by_04_fast_and_slack(self, blast):
        """Sec. 6.3: "at least 0.4 in absolute terms ... in the region of
        the fastest arrival rates and sufficient deadline slack"."""
        prob = RealTimeProblem(blast, 10.0, 3.5e5)
        e = solve_enforced_waits(prob, B).active_fraction
        m = solve_monolithic(prob).active_fraction
        assert m - e >= 0.4

    def test_claim_severalfold_better(self, blast):
        """Sec. 6.3: "or several-fold better for enforced-waits"."""
        prob = RealTimeProblem(blast, 10.0, 3.5e5)
        e = solve_enforced_waits(prob, B).active_fraction
        m = solve_monolithic(prob).active_fraction
        assert m / e >= 3.0

    def test_claim_monolithic_dominates_opposite_corner(self, blast):
        """Sec. 6.3: "the monolithic strategy dominates by a similar
        amount for slow arrivals and little deadline slack"."""
        prob = RealTimeProblem(blast, 100.0, 2.4e4)
        e = solve_enforced_waits(prob, B).active_fraction
        m = solve_monolithic(prob).active_fraction
        assert e - m >= 0.4
