"""Property-based tests (Hypothesis): ItemQueue vs a list oracle; gains.

The ring buffer (``repro.dataflow.queues.ItemQueue``) sits on the
simulator hot path and owns tricky wrap-around arithmetic; here it is
driven with arbitrary operation sequences against a plain-Python-list
oracle, checking FIFO order, occupancy statistics, the conservation
invariant ``total_popped + total_dropped + len == total_pushed``, and
the no-partial-enqueue overflow contract.

The gain properties pin the algebra the planning layer builds on: the
pmf is a distribution, its mean matches ``.mean``, samples stay within
``[0, max_outputs]``, and ``G_i`` composition is an exclusive prefix
product.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
    EmpiricalGain,
    gain_from_mean,
)
from repro.dataflow.queues import ItemQueue
from repro.dataflow.spec import PipelineSpec
from repro.errors import SimulationError
from repro.utils.mathx import cumprod_prefix

# -- operation sequences for the queue-vs-oracle test ----------------------

_push_one = st.tuples(st.just("push"), st.floats(0.0, 1e9))
_push_many = st.tuples(
    st.just("push_many"),
    st.lists(st.floats(0.0, 1e9), min_size=0, max_size=40),
)
_pop = st.tuples(st.just("pop"), st.integers(0, 50))
_clear = st.tuples(st.just("clear"), st.none())
_ops = st.lists(
    st.one_of(_push_one, _push_many, _pop, _clear), min_size=1, max_size=60
)


class _Oracle:
    """The obviously-correct model: a plain Python list."""

    def __init__(self, capacity: int | None) -> None:
        self.items: list[float] = []
        self.capacity = capacity
        self.pushed = 0
        self.popped = 0
        self.cleared = 0
        self.max_depth = 0

    def push_many(self, xs: list[float]) -> bool:
        """Mirror the all-or-nothing overflow contract; True if accepted."""
        if not xs:
            return True
        if (
            self.capacity is not None
            and len(self.items) + len(xs) > self.capacity
        ):
            return False
        self.items.extend(xs)
        self.pushed += len(xs)
        self.max_depth = max(self.max_depth, len(self.items))
        return True

    def pop_up_to(self, k: int) -> list[float]:
        out, self.items = self.items[:k], self.items[k:]
        self.popped += len(out)
        return out

    def clear(self) -> None:
        self.cleared += len(self.items)
        self.items = []


@given(ops=_ops, capacity=st.one_of(st.none(), st.integers(1, 30)))
@settings(max_examples=200, deadline=None)
def test_queue_matches_list_oracle(ops, capacity):
    q = ItemQueue("prop", capacity=capacity)
    oracle = _Oracle(capacity)

    for op, arg in ops:
        if op == "push":
            if oracle.push_many([arg]):
                q.push(arg)
            else:
                with pytest.raises(SimulationError):
                    q.push(arg)
        elif op == "push_many":
            if oracle.push_many(arg):
                q.push_many(arg)
            else:
                depth = len(q)
                with pytest.raises(SimulationError):
                    q.push_many(arg)
                # no-partial-enqueue: the failed batch changed nothing
                assert len(q) == depth
        elif op == "pop":
            got = q.pop_up_to(arg)
            assert list(got) == oracle.pop_up_to(arg)
        else:
            q.clear()
            oracle.clear()

        # Invariants hold after every single operation.
        assert len(q) == len(oracle.items)
        assert q.total_pushed == oracle.pushed
        assert q.total_popped == oracle.popped
        assert q.dropped_by_clear == oracle.cleared
        assert q.max_depth == oracle.max_depth
        assert (
            q.total_popped + q.total_dropped + len(q) == q.total_pushed
        )

    # Drain and compare the full remaining FIFO order.
    assert list(q.pop_up_to(len(q) + 1)) == oracle.pop_up_to(
        len(oracle.items) + 1
    )


@given(
    xs=st.lists(st.floats(0.0, 1e9), min_size=0, max_size=200),
    pops=st.lists(st.integers(0, 20), max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_queue_wraparound_preserves_fifo(xs, pops):
    """Interleaved pushes/pops force head wraps; order must survive."""
    q = ItemQueue("wrap")
    expected: list[float] = []
    got: list[float] = []
    it = iter(xs)
    for k in pops:
        batch = [x for _, x in zip(range(k + 1), it)]
        q.push_many(batch)
        expected.extend(batch)
        got.extend(q.pop_up_to(k))
    got.extend(q.pop_up_to(len(q)))
    remaining = list(it)
    q.push_many(remaining)
    expected.extend(remaining)
    got.extend(q.pop_up_to(len(q)))
    assert got == expected


# -- gain distribution properties ------------------------------------------

_gains = st.one_of(
    st.builds(DeterministicGain, st.integers(0, 8)),
    st.builds(BernoulliGain, st.floats(0.0, 1.0)),
    st.builds(
        CensoredPoissonGain,
        st.floats(0.01, 8.0),
        st.integers(1, 24),
    ),
    st.builds(
        EmpiricalGain,
        st.lists(st.integers(0, 50), min_size=1, max_size=8).filter(
            lambda c: sum(c) > 0
        ),
    ),
)


@given(gain=_gains)
@settings(max_examples=150, deadline=None)
def test_pmf_is_a_distribution_with_matching_mean(gain):
    p = gain.pmf()
    assert p.shape == (gain.max_outputs + 1,)
    assert (p >= 0).all()
    assert np.isclose(p.sum(), 1.0, atol=1e-12)
    pmf_mean = float(np.dot(np.arange(p.size), p))
    assert pmf_mean == pytest.approx(gain.mean, rel=1e-9, abs=1e-12)


@given(gain=_gains, seed=st.integers(0, 2**32 - 1), n=st.integers(1, 300))
@settings(max_examples=100, deadline=None)
def test_samples_stay_on_support(gain, seed, n):
    draws = gain.sample(np.random.default_rng(seed), n)
    assert draws.shape == (n,)
    assert draws.dtype == np.int64
    assert (draws >= 0).all()
    assert (draws <= gain.max_outputs).all()


@given(
    means=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=8),
    v=st.sampled_from([1, 2, 4, 8, 128]),
)
@settings(max_examples=150, deadline=None)
def test_total_gains_compose_as_prefix_products(means, v):
    """G_i = prod_{j<i} g_j with G_0 = 1 — on specs and raw arrays."""
    pipeline = PipelineSpec.from_arrays([1.0] * len(means), means, v)
    G = pipeline.total_gains
    assert G[0] == 1.0
    g = pipeline.mean_gains
    for i in range(1, len(means)):
        assert G[i] == pytest.approx(G[i - 1] * g[i - 1], rel=1e-12)
    np.testing.assert_allclose(G, cumprod_prefix(g), rtol=1e-12)
    # Composition: splitting the chain multiplies the tail gains through.
    if len(means) >= 2:
        k = len(means) // 2
        np.testing.assert_allclose(
            G[k:], G[k] * cumprod_prefix(g[k:]), rtol=1e-12
        )


@given(mean=st.floats(0.0, 6.0))
@settings(max_examples=100, deadline=None)
def test_gain_from_mean_round_trips_the_mean(mean):
    gain = gain_from_mean(mean, u=32)
    # Censored Poisson truncates mass above u: its mean is *at most* the
    # nominal rate, equal for small rates where censoring is negligible.
    assert gain.mean <= mean + 1e-12
    if mean <= 1.0:
        assert gain.mean == pytest.approx(mean, abs=1e-12)
