"""Tests for shed policies (repro.resilience.shedding).

keep_mask contracts are exercised directly on synthetic combined arrays
(queued oldest-first, then incoming); integration with ItemQueue buffer
surgery lives in test_dataflow_queues.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpecError
from repro.resilience.shedding import (
    DeadlineAware,
    DropNewest,
    DropOldest,
    make_shed_policy,
)


class TestDropNewest:
    def test_keeps_leading_capacity_items(self):
        mask = DropNewest().keep_mask(np.arange(5.0), 3, now=0.0)
        assert mask.tolist() == [True, True, True, False, False]

    def test_name(self):
        assert DropNewest().name == "drop-newest"


class TestDropOldest:
    def test_keeps_trailing_capacity_items(self):
        mask = DropOldest().keep_mask(np.arange(5.0), 3, now=0.0)
        assert mask.tolist() == [False, False, True, True, True]

    def test_name(self):
        assert DropOldest().name == "drop-oldest"


class TestDeadlineAware:
    def test_drops_smallest_slack_items(self):
        # Tokens are arbitrary; slack decides.  Token 2.0 and 4.0 are
        # the most doomed and must go.
        slack_by_token = {0.0: 5.0, 1.0: 9.0, 2.0: -1.0, 3.0: 7.0, 4.0: 0.5}

        def slack_of(tokens, now):
            return np.asarray([slack_by_token[t] for t in tokens])

        mask = DeadlineAware(slack_of).keep_mask(
            np.arange(5.0), 3, now=0.0
        )
        assert mask.tolist() == [True, True, False, True, False]

    def test_ties_drop_oldest_first(self):
        """Equal slack: the stable sort sheds earlier positions first."""
        policy = DeadlineAware(lambda tokens, now: np.zeros(tokens.size))
        mask = policy.keep_mask(np.arange(4.0), 2, now=0.0)
        assert mask.tolist() == [False, False, True, True]

    def test_now_is_forwarded_to_slack_of(self):
        seen = []

        def slack_of(tokens, now):
            seen.append(now)
            return np.zeros(tokens.size)

        DeadlineAware(slack_of).keep_mask(np.arange(3.0), 2, now=17.5)
        assert seen == [17.5]

    def test_keep_mask_preserves_fifo_of_survivors(self):
        """The mask never reorders; survivors keep their relative order."""
        policy = DeadlineAware(
            lambda tokens, now: np.asarray([3.0, 1.0, 4.0, 2.0])
        )
        mask = policy.keep_mask(np.arange(4.0), 2, now=0.0)
        kept = np.arange(4.0)[mask]
        assert kept.tolist() == [0.0, 2.0]  # still ascending = FIFO

    def test_rejects_noncallable_slack_of(self):
        with pytest.raises(SpecError, match="callable"):
            DeadlineAware(None)

    def test_rejects_wrong_shape_from_slack_of(self):
        policy = DeadlineAware(lambda tokens, now: np.zeros(2))
        with pytest.raises(SpecError, match="shape"):
            policy.keep_mask(np.arange(5.0), 3, now=0.0)

    def test_repr_elides_callback(self):
        assert repr(DeadlineAware(lambda t, n: t)) == (
            "DeadlineAware(slack_of=...)"
        )


class TestFactory:
    def test_builds_by_name(self):
        assert isinstance(make_shed_policy("drop-newest"), DropNewest)
        assert isinstance(make_shed_policy("drop-oldest"), DropOldest)
        policy = make_shed_policy(
            "deadline-aware", slack_of=lambda t, n: np.zeros(t.size)
        )
        assert isinstance(policy, DeadlineAware)

    def test_deadline_aware_requires_slack_of(self):
        with pytest.raises(SpecError, match="slack_of"):
            make_shed_policy("deadline-aware")

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(SpecError, match="drop-newest.*drop-oldest"):
            make_shed_policy("random-drop")
