"""Cross-module property tests: invariants that must hold for *any* input.

These complement the per-module tests with randomized end-to-end checks:
flow conservation through the simulator, cross-solver dominance, event
ordering under fuzzed schedules, and GPS work conservation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.fixed import FixedRateArrivals
from repro.dataflow.gains import BernoulliGain, CensoredPoissonGain, DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.des.engine import Engine
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.simd.sharing import GpsProcessor


def _random_pipeline(draw) -> PipelineSpec:
    n = draw(st.integers(1, 4))
    nodes = []
    for i in range(n):
        t = draw(st.floats(1.0, 50.0))
        kind = draw(st.integers(0, 2))
        if kind == 0:
            gain = BernoulliGain(draw(st.floats(0.1, 1.0)))
        elif kind == 1:
            gain = DeterministicGain(draw(st.integers(0, 2)))
        else:
            gain = CensoredPoissonGain(draw(st.floats(0.2, 3.0)), 8)
        nodes.append(NodeSpec(f"n{i}", t, gain))
    v = draw(st.sampled_from([2, 4, 8, 16]))
    return PipelineSpec(tuple(nodes), v)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_simulation_flow_conservation(data):
    """Every arrival is consumed exactly once per stage it reaches, and
    the pipeline always drains."""
    pipeline = _random_pipeline(data.draw)
    n = pipeline.n_nodes
    waits = np.asarray(
        [data.draw(st.floats(0.0, 100.0)) for _ in range(n)]
    )
    n_items = data.draw(st.integers(1, 300))
    tau0 = data.draw(st.floats(0.5, 20.0))
    sim = EnforcedWaitsSimulator(
        pipeline,
        waits,
        FixedRateArrivals(tau0),
        deadline=1e9,
        n_items=n_items,
        seed=data.draw(st.integers(0, 100)),
    )
    metrics = sim.run()
    # Node 0 consumed exactly the offered stream.
    assert sim.queues[0].total_pushed == n_items
    for i in range(n):
        assert sim.queues[i].total_popped == sim.trackers[i].items_consumed
        # Everything pushed to a queue was eventually popped (drained).
        assert sim.queues[i].total_popped == sim.queues[i].total_pushed
    # Active fraction is a genuine fraction.
    assert 0.0 <= metrics.active_fraction <= 1.0 + 1e-9
    # No deadline misses possible with an effectively infinite deadline.
    assert metrics.missed_items == 0


@settings(max_examples=25, deadline=None)
@given(
    times=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=60),
    priorities=st.lists(st.integers(-3, 3), min_size=1, max_size=60),
)
def test_engine_fuzz_ordering(times, priorities):
    """Events always fire in (time, priority, insertion) order."""
    eng = Engine()
    fired: list[tuple[float, int, int]] = []
    n = min(len(times), len(priorities))
    for k in range(n):
        eng.schedule(
            times[k],
            lambda t=times[k], p=priorities[k], k=k: fired.append((t, p, k)),
            priority=priorities[k],
        )
    eng.run()
    assert len(fired) == n
    assert fired == sorted(fired)


@settings(max_examples=25, deadline=None)
@given(
    works=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=12),
    gaps=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=12),
)
def test_gps_work_conservation(works, gaps):
    """All submitted jobs complete; completions are time-ordered; total
    busy time equals total work (unit-rate work-conserving processor)."""
    gps = GpsProcessor()
    n = min(len(works), len(gaps))
    now = 0.0
    completions = []
    for k in range(n):
        now += gaps[k]
        completions.extend(gps.advance(now))
        gps.submit(now, works[k], k)
    completions.extend(gps.advance(now + sum(works) + 1.0))
    assert len(completions) == n
    times = [t for t, _ in completions]
    assert times == sorted(times)
    assert {tag for _, tag in completions} == set(range(n))
    # Work conservation: the last completion can be no earlier than
    # total work / full rate measured from the first submission window.
    assert times[-1] >= gaps[0] + min(works) - 1e-9


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_enforced_solution_bounds(data):
    """For random feasible instances: lower bound <= AF* <= 1, and the
    interior-point answer never beats the waterfill relaxation."""
    from repro.core.enforced_waits import EnforcedWaitsProblem
    from repro.core.model import RealTimeProblem
    from repro.core.predictions import enforced_af_lower_bound
    from repro.solvers.result import SolverStatus

    pipeline = _random_pipeline(data.draw)
    n = pipeline.n_nodes
    b = np.asarray([data.draw(st.floats(1.0, 5.0)) for _ in range(n)])
    tau0 = data.draw(st.floats(1.0, 100.0))
    deadline = data.draw(st.floats(100.0, 1e6))
    problem = RealTimeProblem(pipeline, tau0, deadline)
    ew = EnforcedWaitsProblem(problem, b)
    sol = ew.solve()
    if not sol.feasible:
        return
    assert 0.0 < sol.active_fraction <= 1.0 + 1e-9
    lb = enforced_af_lower_bound(problem, b)
    assert sol.active_fraction >= lb - 1e-9
    relaxed = ew.solve_waterfill_relaxation()
    if relaxed.status is SolverStatus.OPTIMAL:
        # The relaxation drops constraints, so it can only be better.
        assert relaxed.objective / n <= sol.active_fraction + 1e-9


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_monolithic_scan_is_exhaustive(data):
    """The reported optimum really is the best feasible block size."""
    from repro.core.model import RealTimeProblem
    from repro.core.monolithic import MonolithicProblem

    pipeline = _random_pipeline(data.draw)
    tau0 = data.draw(st.floats(pipeline.per_item_cost * 1.2 + 0.1, 200.0))
    deadline = data.draw(st.floats(1e3, 2e5))
    prob = MonolithicProblem(RealTimeProblem(pipeline, tau0, deadline))
    sol = prob.solve()
    if not sol.feasible:
        return
    upper = min(prob.max_block(), 5000)
    ms = np.arange(1, upper + 1)
    afs = np.asarray(prob.active_fraction(ms))
    feas = np.asarray(prob.feasible(ms))
    if feas.any():
        assert sol.active_fraction <= float(afs[feas].min()) + 1e-12
