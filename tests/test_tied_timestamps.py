"""Regression tests: items sharing an origin timestamp stay distinct.

The arrival contract (:meth:`repro.arrivals.base.ArrivalProcess.generate`)
is nondecreasing *with ties allowed* — trace replays of real instruments
produce equal timestamps routinely.  The pre-change
:class:`~repro.sim.reference.ReferenceLatencyLedger` keyed per-item
bookkeeping on the origin timestamp and therefore collapsed distinct
tied-arrival items into one, undercounting ``missed_items`` and
``items_with_output``.  The production
:class:`~repro.sim.metrics.LatencyLedger` keys on integer item ids.

The ledger-level tests below run the *same* recording sequence through
both ledgers: the reference ledger demonstrably undercounts (the test
that "fails on the old ledger") while the id-keyed ledger counts every
item (passes on the new one).
"""

from __future__ import annotations

import numpy as np

from repro.arrivals.trace import TraceArrivals
from repro.dataflow.gains import DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.metrics import LatencyLedger
from repro.sim.reference import (
    ReferenceEnforcedSimulator,
    ReferenceLatencyLedger,
)


class TestLedgerTiedOrigins:
    def test_reference_ledger_conflates_tied_items(self):
        """The old origin-keyed ledger undercounts: this documents the bug."""
        ledger = ReferenceLatencyLedger(deadline=1.0)
        # Three distinct items, all arriving at t=5.0, all exiting late.
        ledger.record_exits(np.asarray([5.0, 5.0, 5.0]), exit_time=10.0)
        assert ledger.late_outputs == 3
        # BUG (frozen behavior): three late items counted as one.
        assert ledger.missed_items == 1
        assert ledger.items_with_output == 1

    def test_id_keyed_ledger_counts_tied_items(self):
        """The same sequence through the new ledger counts every item."""
        ledger = LatencyLedger(deadline=1.0)
        ledger.record_exits(
            np.asarray([5.0, 5.0, 5.0]),
            exit_time=10.0,
            ids=np.asarray([3, 4, 5]),
        )
        assert ledger.late_outputs == 3
        assert ledger.missed_items == 3
        assert ledger.items_with_output == 3

    def test_repeat_outputs_of_one_item_still_count_once(self):
        """Multiple outputs of the same item (fan-out) stay one item."""
        ledger = LatencyLedger(deadline=1.0)
        ledger.record_exits(
            np.asarray([5.0, 5.0]), exit_time=10.0, ids=np.asarray([7, 7])
        )
        ledger.record_exit(5.0, 10.0, item_id=7)
        assert ledger.late_outputs == 3
        assert ledger.missed_items == 1
        assert ledger.items_with_output == 1

    def test_scalar_path_matches_vector_path(self):
        a = LatencyLedger(deadline=2.0)
        b = LatencyLedger(deadline=2.0)
        origins = np.asarray([0.0, 0.0, 1.0, 1.5])
        ids = np.asarray([0, 1, 2, 3])
        a.record_exits(origins, 3.0, ids=ids)
        for o, i in zip(origins, ids):
            b.record_exit(float(o), 3.0, item_id=int(i))
        assert a.missed_items == b.missed_items
        assert a.items_with_output == b.items_with_output
        assert a.latency.mean == b.latency.mean
        assert a.latency.std == b.latency.std

    def test_no_ids_falls_back_to_origin_keys(self):
        ledger = LatencyLedger(deadline=1.0)
        ledger.record_exits(np.asarray([5.0, 5.0]), exit_time=10.0)
        # Documented fallback: without ids, tied origins still conflate.
        assert ledger.missed_items == 1


class TestEndToEndTiedArrivals:
    """A burst of simultaneous arrivals through the full simulator."""

    def _pipeline(self) -> PipelineSpec:
        return PipelineSpec(
            (NodeSpec("p", 5.0, DeterministicGain(1)),), vector_width=4
        )

    def _run(self, cls):
        # Four items all at t=0; a single 4-wide pass-through node with
        # service time 5 and wait 20 fires every 25: all four exit at
        # t=5, violating the deadline of 1 — four distinct missed items.
        sim = cls(
            self._pipeline(),
            waits=np.asarray([20.0]),
            arrivals=TraceArrivals([0.0, 0.0, 0.0, 0.0]),
            deadline=1.0,
            n_items=4,
        )
        return sim.run()

    def test_production_counts_each_tied_item(self):
        m = self._run(EnforcedWaitsSimulator)
        assert m.outputs == 4
        assert m.missed_items == 4
        assert m.miss_rate == 1.0

    def test_reference_undercounts_tied_items(self):
        """Frozen-bug witness: remove with the reference implementations."""
        m = self._run(ReferenceEnforcedSimulator)
        assert m.outputs == 4
        assert m.missed_items == 1  # the conflation bug
