"""Tests for the adaptive-waits simulator (extension A4)."""

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.errors import SimulationError, SpecError
from repro.sim.adaptive import AdaptiveWaitsSimulator
from repro.sim.enforced import EnforcedWaitsSimulator


def _run(pipeline, waits, tau0, deadline, n_items, **kw):
    return AdaptiveWaitsSimulator(
        pipeline,
        waits,
        FixedRateArrivals(tau0),
        deadline,
        n_items,
        seed=kw.pop("seed", 0),
        **kw,
    ).run()


class TestFixedPolicyBaseline:
    def test_matches_enforced_simulator(self, blast, calibrated_b):
        """policy='fixed' reproduces the fixed-wait simulator's behaviour."""
        from repro.core.enforced_waits import solve_enforced_waits
        from repro.core.model import RealTimeProblem

        tau0, deadline = 20.0, 2e5
        sol = solve_enforced_waits(
            RealTimeProblem(blast, tau0, deadline), calibrated_b
        )
        fixed = _run(blast, sol.waits, tau0, deadline, 4000, policy="fixed")
        reference = EnforcedWaitsSimulator(
            blast,
            sol.waits,
            FixedRateArrivals(tau0),
            deadline,
            4000,
            seed=0,
        ).run()
        assert fixed.outputs == reference.outputs
        assert fixed.mean_latency == pytest.approx(reference.mean_latency)
        assert fixed.active_fraction == pytest.approx(
            reference.active_fraction, rel=1e-9
        )
        assert (fixed.extra["early_firings"] == 0).all()


class TestFullVectorPolicy:
    def test_early_fires_on_backlog(self, tiny_pipeline):
        """With waits much longer than needed, the trigger fires early."""
        waits = np.asarray([500.0, 500.0])  # periods 510 / 520
        # Arrivals every 10 cycles fill the width-4 vector every 40.
        eager = _run(
            tiny_pipeline, waits, 10.0, 1e6, 400, policy="full-vector"
        )
        fixed = _run(tiny_pipeline, waits, 10.0, 1e6, 400, policy="fixed")
        assert eager.extra["early_firings"][0] > 0
        assert eager.mean_latency < fixed.mean_latency

    def test_never_misses_more_than_fixed(self, blast, calibrated_b):
        from repro.core.enforced_waits import solve_enforced_waits
        from repro.core.model import RealTimeProblem

        tau0, deadline = 10.0, 3.5e5
        sol = solve_enforced_waits(
            RealTimeProblem(blast, tau0, deadline), calibrated_b
        )
        eager = _run(
            blast, sol.waits, tau0, deadline, 5000, policy="full-vector"
        )
        fixed = _run(blast, sol.waits, tau0, deadline, 5000, policy="fixed")
        assert eager.missed_items <= fixed.missed_items
        assert eager.max_latency <= fixed.max_latency + 1e-9

    def test_conservation(self, tiny_pipeline):
        m = _run(
            tiny_pipeline,
            np.asarray([100.0, 100.0]),
            5.0,
            1e6,
            1000,
            policy="full-vector",
        )
        # Node 1 is a deterministic pass-through, node 0 Bernoulli(0.5).
        assert 350 < m.outputs < 650


class TestSlackPolicy:
    def test_rescues_deadline_pressed_items(self, tiny_pipeline):
        """Long waits + a tight deadline: slack firing prevents misses."""
        waits = np.asarray([400.0, 400.0])  # periods 410 / 420
        deadline = 600.0
        fixed = _run(
            tiny_pipeline, waits, 20.0, deadline, 500, policy="fixed"
        )
        slack = _run(
            tiny_pipeline, waits, 20.0, deadline, 500, policy="slack"
        )
        assert slack.missed_items < fixed.missed_items

    def test_slack_factor_validated(self, tiny_pipeline):
        with pytest.raises(SpecError):
            AdaptiveWaitsSimulator(
                tiny_pipeline,
                np.zeros(2),
                FixedRateArrivals(1.0),
                10.0,
                5,
                slack_factor=0.0,
            )


class TestValidation:
    def test_unknown_policy(self, tiny_pipeline):
        with pytest.raises(SpecError, match="policy"):
            AdaptiveWaitsSimulator(
                tiny_pipeline,
                np.zeros(2),
                FixedRateArrivals(1.0),
                10.0,
                5,
                policy="psychic",
            )

    def test_single_use(self, tiny_pipeline):
        sim = AdaptiveWaitsSimulator(
            tiny_pipeline, np.zeros(2), FixedRateArrivals(1.0), 1e5, 10
        )
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()

    def test_seed_reproducible(self, tiny_pipeline):
        a = _run(tiny_pipeline, np.full(2, 50.0), 5.0, 1e5, 500, seed=3)
        b = _run(tiny_pipeline, np.full(2, 50.0), 5.0, 1e5, 500, seed=3)
        assert a.outputs == b.outputs
        assert a.mean_latency == b.mean_latency
