"""Tests for the deadline watchdog (repro.resilience.watchdog).

All tests drive observe_exit directly with a controlled clock; most use
``alpha=1.0`` so the smoothed slack equals the last observation and the
threshold crossings are exact.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import SpecError
from repro.resilience import DeadlineWatchdog


def _watchdog(**kwargs) -> DeadlineWatchdog:
    defaults = dict(
        enter_slack_frac=0.25,
        exit_slack_frac=0.5,
        sustain_time=0.0,
        drain_backlog=0,
        alpha=1.0,
    )
    defaults.update(kwargs)
    return DeadlineWatchdog(10.0, **defaults)


class TestValidation:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(SpecError, match="deadline"):
            DeadlineWatchdog(0.0)

    def test_rejects_inverted_hysteresis_band(self):
        with pytest.raises(SpecError, match="hysteresis"):
            DeadlineWatchdog(10.0, enter_slack_frac=0.5, exit_slack_frac=0.5)
        with pytest.raises(SpecError, match="hysteresis"):
            DeadlineWatchdog(10.0, enter_slack_frac=0.6, exit_slack_frac=0.3)

    def test_rejects_fraction_out_of_range(self):
        with pytest.raises(SpecError, match="hysteresis"):
            DeadlineWatchdog(10.0, enter_slack_frac=-0.1)
        with pytest.raises(SpecError, match="hysteresis"):
            DeadlineWatchdog(10.0, exit_slack_frac=1.5)

    def test_rejects_negative_sustain(self):
        with pytest.raises(SpecError, match="sustain"):
            DeadlineWatchdog(10.0, sustain_time=-1.0)

    def test_rejects_negative_drain_backlog(self):
        with pytest.raises(SpecError, match="drain_backlog"):
            DeadlineWatchdog(10.0, drain_backlog=-1)


class TestNominalState:
    def test_starts_nominal(self):
        wd = _watchdog()
        assert not wd.degraded
        assert wd.wait_scale == 1.0
        assert math.isnan(wd.smoothed_slack)
        assert wd.intervals == ()
        assert wd.degradations == 0
        assert wd.degraded_time(100.0) == 0.0

    def test_healthy_slack_keeps_waits(self):
        wd = _watchdog()
        for t in range(10):
            wd.observe_exit(float(t), slack=8.0, backlog=50)
        assert not wd.degraded
        assert wd.wait_scale == 1.0


class TestEnterAndExit:
    def test_enters_on_eroded_slack(self):
        wd = _watchdog()  # enter threshold = 2.5
        wd.observe_exit(5.0, slack=1.0, backlog=40)
        assert wd.degraded
        assert wd.wait_scale == 0.0
        assert wd.degradations == 1  # open interval counts

    def test_hysteresis_band_does_not_exit(self):
        """Slack between enter (2.5) and exit (5.0) thresholds stays degraded."""
        wd = _watchdog()
        wd.observe_exit(5.0, slack=1.0, backlog=40)
        wd.observe_exit(6.0, slack=4.0, backlog=0)
        assert wd.degraded

    def test_exit_requires_backlog_drained(self):
        wd = _watchdog(drain_backlog=2)
        wd.observe_exit(5.0, slack=1.0, backlog=40)
        wd.observe_exit(6.0, slack=9.0, backlog=3)  # slack fine, backlog not
        assert wd.degraded
        wd.observe_exit(7.0, slack=9.0, backlog=2)
        assert not wd.degraded
        assert wd.intervals == ((5.0, 7.0),)
        assert wd.wait_scale == 1.0

    def test_reentry_records_second_interval(self):
        wd = _watchdog()
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        wd.observe_exit(8.0, slack=9.0, backlog=0)
        wd.observe_exit(20.0, slack=0.5, backlog=10)
        wd.observe_exit(25.0, slack=9.0, backlog=0)
        assert wd.intervals == ((5.0, 8.0), (20.0, 25.0))
        assert wd.degradations == 2
        assert wd.degraded_time(30.0) == pytest.approx(8.0)


class TestSustain:
    def test_single_late_item_does_not_degrade(self):
        wd = _watchdog(sustain_time=2.0)
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        assert not wd.degraded  # erosion just started

    def test_sustained_erosion_degrades(self):
        wd = _watchdog(sustain_time=2.0)
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        wd.observe_exit(6.0, slack=1.0, backlog=10)
        assert not wd.degraded
        wd.observe_exit(7.0, slack=1.0, backlog=10)  # 2.0 elapsed
        assert wd.degraded

    def test_recovery_resets_the_sustain_clock(self):
        wd = _watchdog(sustain_time=2.0)
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        wd.observe_exit(6.0, slack=8.0, backlog=10)  # recovered: reset
        wd.observe_exit(7.0, slack=1.0, backlog=10)  # erosion restarts
        wd.observe_exit(8.0, slack=1.0, backlog=10)
        assert not wd.degraded  # only 1.0 sustained since the restart
        wd.observe_exit(9.0, slack=1.0, backlog=10)
        assert wd.degraded


class TestSmoothing:
    def test_ewma_dampens_a_single_outlier(self):
        """With alpha=0.2 one terrible slack sample cannot trigger."""
        wd = _watchdog(alpha=0.2)
        for t in range(5):
            wd.observe_exit(float(t), slack=8.0, backlog=10)
        wd.observe_exit(5.0, slack=-20.0, backlog=10)
        # smoothed = 0.8*8 + 0.2*(-20) = 2.4 < 2.5: barely crosses, but
        # the point is the outlier was damped from -20 to 2.4.
        assert wd.smoothed_slack == pytest.approx(0.8 * 8.0 + 0.2 * -20.0)

    def test_first_sample_seeds_exactly(self):
        wd = _watchdog(alpha=0.2)
        wd.observe_exit(0.0, slack=4.0, backlog=10)
        assert wd.smoothed_slack == 4.0


class TestFinalize:
    def test_closes_open_interval_at_makespan(self):
        wd = _watchdog()
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        intervals = wd.finalize(42.0)
        assert intervals == ((5.0, 42.0),)
        assert not wd.degraded
        assert wd.degradations == 1

    def test_idempotent(self):
        wd = _watchdog()
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        first = wd.finalize(42.0)
        assert wd.finalize(99.0) == first

    def test_noop_when_never_degraded(self):
        wd = _watchdog()
        wd.observe_exit(5.0, slack=9.0, backlog=10)
        assert wd.finalize(42.0) == ()

    def test_degraded_time_includes_open_interval(self):
        wd = _watchdog()
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        assert wd.degraded_time(9.0) == pytest.approx(4.0)


class TestRestoreHysteresis:
    """Restore is driven by its own EWMA (restore_alpha, restore_time)."""

    def test_rejects_negative_restore_time(self):
        with pytest.raises(SpecError, match="restore_time"):
            DeadlineWatchdog(10.0, restore_time=-0.5)

    def test_default_restore_alpha_matches_legacy_behavior(self):
        """restore_alpha=None reuses alpha: first qualifying exit restores."""
        wd = _watchdog()
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        wd.observe_exit(6.0, slack=9.0, backlog=0)
        assert not wd.degraded

    def test_slow_restore_ewma_resists_one_lucky_exit(self):
        """With restore_alpha=0.1 one optimistic exit cannot restore.

        Entry uses the fast EWMA (alpha=1.0 here, so last-sample); the
        restore EWMA has already absorbed the eroded samples and a single
        slack=9 exit only moves it to 0.1*9 + 0.9*1 = 1.8 < 5.0.
        """
        wd = _watchdog(restore_alpha=0.1)
        wd.observe_exit(4.0, slack=1.0, backlog=10)  # seeds both EWMAs
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        assert wd.degraded
        wd.observe_exit(6.0, slack=9.0, backlog=0)
        assert wd.degraded  # restore EWMA still inside the band
        assert wd.smoothed_restore_slack == pytest.approx(0.1 * 9.0 + 0.9 * 1.0)
        for t in range(7, 40):
            wd.observe_exit(float(t), slack=9.0, backlog=0)
            if not wd.degraded:
                break
        assert not wd.degraded  # sustained recovery eventually restores

    def test_restore_time_requires_sustained_recovery(self):
        wd = _watchdog(restore_time=2.0)
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        wd.observe_exit(6.0, slack=9.0, backlog=0)  # recovery clock starts
        assert wd.degraded
        wd.observe_exit(7.0, slack=9.0, backlog=0)  # 1.0 sustained
        assert wd.degraded
        wd.observe_exit(8.0, slack=9.0, backlog=0)  # 2.0 sustained
        assert not wd.degraded
        assert wd.intervals == ((5.0, 8.0),)

    def test_relapse_resets_the_recovery_clock(self):
        wd = _watchdog(restore_time=2.0)
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        wd.observe_exit(6.0, slack=9.0, backlog=0)   # recovery starts
        wd.observe_exit(7.0, slack=1.0, backlog=10)  # relapse: reset
        wd.observe_exit(8.0, slack=9.0, backlog=0)   # recovery restarts
        wd.observe_exit(9.0, slack=9.0, backlog=0)
        assert wd.degraded  # only 1.0 sustained since the restart
        wd.observe_exit(10.0, slack=9.0, backlog=0)
        assert not wd.degraded
        assert wd.intervals == ((5.0, 10.0),)

    def test_backlog_spike_resets_the_recovery_clock(self):
        wd = _watchdog(restore_time=2.0, drain_backlog=2)
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        wd.observe_exit(6.0, slack=9.0, backlog=0)   # recovery starts
        wd.observe_exit(7.0, slack=9.0, backlog=5)   # backlog spike: reset
        wd.observe_exit(8.0, slack=9.0, backlog=1)
        wd.observe_exit(9.0, slack=9.0, backlog=1)
        assert wd.degraded
        wd.observe_exit(10.0, slack=9.0, backlog=0)
        assert not wd.degraded

    def test_smoothed_restore_slack_starts_nan(self):
        wd = _watchdog(restore_alpha=0.1)
        assert math.isnan(wd.smoothed_restore_slack)


class TestRepr:
    def test_shows_state(self):
        wd = _watchdog()
        wd.observe_exit(5.0, slack=1.0, backlog=10)
        assert "degraded" in repr(wd)
        wd.observe_exit(6.0, slack=9.0, backlog=0)
        assert "nominal" in repr(wd)
