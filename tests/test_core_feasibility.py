"""Tests for feasibility analysis."""

import numpy as np
import pytest

from repro.core.feasibility import (
    enforced_feasibility,
    min_deadline_enforced,
    min_tau0_enforced,
    min_tau0_monolithic,
    minimal_periods,
    monolithic_feasible_blocks,
)
from repro.core.model import RealTimeProblem
from repro.errors import SpecError


class TestMinimalPeriods:
    def test_blast_backward_recursion(self, blast):
        x = minimal_periods(blast)
        # Hand-computed: x3=2753, x2=max(402, .0332*2753)=402,
        # x1=max(955, 1.92*402)=955, x0=max(287, .379*955)=361.9...
        assert x[3] == 2753.0
        assert x[2] == 402.0
        assert x[1] == pytest.approx(max(955.0, 1.92 * 402.0))
        assert x[0] == pytest.approx(0.379 * 955.0)

    def test_chain_consistency(self, blast):
        x = minimal_periods(blast)
        g = blast.mean_gains
        for i in range(1, blast.n_nodes):
            assert g[i - 1] * x[i] <= x[i - 1] * (1 + 1e-12)
        assert (x >= blast.service_times).all()

    def test_passthrough_chain(self, passthrough_pipeline):
        # Gains of 1: upstream must be at least as fast as downstream.
        x = minimal_periods(passthrough_pipeline)
        assert x.tolist() == [7.0, 7.0, 3.0]


class TestEnforcedFeasibility:
    def test_feasible_point(self, blast, calibrated_b):
        prob = RealTimeProblem(blast, 50.0, 2e5)
        feas = enforced_feasibility(prob, calibrated_b)
        assert feas.feasible
        assert feas.diagnosis is None

    def test_too_fast_arrivals(self, blast, calibrated_b):
        prob = RealTimeProblem(blast, 1.0, 3.5e5)
        feas = enforced_feasibility(prob, calibrated_b)
        assert not feas.feasible
        assert "keep up" in feas.diagnosis

    def test_too_tight_deadline(self, blast, calibrated_b):
        prob = RealTimeProblem(blast, 50.0, 1e4)
        feas = enforced_feasibility(prob, calibrated_b)
        assert not feas.feasible
        assert "deadline" in feas.diagnosis

    def test_b_shape_validated(self, blast):
        prob = RealTimeProblem(blast, 50.0, 1e5)
        with pytest.raises(SpecError):
            enforced_feasibility(prob, np.ones(3))
        with pytest.raises(SpecError):
            enforced_feasibility(prob, np.asarray([1.0, -1.0, 1.0, 1.0]))


class TestThresholds:
    def test_min_deadline_matches_paper_scale(self, blast, calibrated_b):
        # With the paper's b, min feasible D ~= 2.3e4, explaining why
        # "values of D below 2e4 resulted in no feasible realizations".
        d_min = min_deadline_enforced(blast, calibrated_b)
        assert 2.0e4 < d_min < 2.6e4

    def test_min_tau0_enforced(self, blast):
        # x_min[0]/v = 361.945/128 ~ 2.83.
        assert min_tau0_enforced(blast) == pytest.approx(2.83, abs=0.01)

    def test_min_tau0_monolithic_is_per_item_cost(self, blast):
        assert min_tau0_monolithic(blast) == pytest.approx(
            blast.per_item_cost
        )

    def test_strategies_ordering(self, blast):
        # Enforced waits sustain faster arrivals than monolithic on BLAST.
        assert min_tau0_enforced(blast) < min_tau0_monolithic(blast)


class TestMonolithicBlocks:
    def test_feasible_interval_nonempty(self, blast):
        prob = RealTimeProblem(blast, 50.0, 2e5)
        blocks = monolithic_feasible_blocks(prob, b=1, s_scale=1.0)
        assert blocks.size > 0
        assert blocks.min() >= 1

    def test_infeasible_when_arrivals_too_fast(self, blast):
        prob = RealTimeProblem(blast, 3.0, 3.5e5)
        blocks = monolithic_feasible_blocks(prob, b=1, s_scale=1.0)
        assert blocks.size == 0

    def test_max_block_cap_respected(self, blast):
        prob = RealTimeProblem(blast, 50.0, 2e5)
        blocks = monolithic_feasible_blocks(prob, b=1, s_scale=1.0, max_block=500)
        assert blocks.max() <= 500
