"""Schema smoke test for the perf-regression harness (micro scale)."""

from __future__ import annotations

import json

from benchmarks.perf import run as perf_run


def test_micro_sections_have_schema_fields():
    engine = perf_run.bench_engine(300)
    for backend in ("heap", "calendar"):
        assert engine[backend]["events"] == 300
        assert engine[backend]["seconds"] >= 0
        assert engine[backend]["events_per_sec"] > 0

    queue = perf_run.bench_queue(2_000)
    assert queue["items"] > 0
    assert queue["ring"]["items_per_sec"] > 0
    assert queue["reference_deque"]["items_per_sec"] > 0
    assert queue["speedup"] > 0

    ledger = perf_run.bench_ledger(2_048)
    assert ledger["outputs"] == 2_048
    assert ledger["vectorized"]["outputs_per_sec"] > 0
    assert ledger["speedup"] > 0


def test_e2e_section_verifies_bit_identity(tmp_path):
    section = perf_run._e2e(
        lambda **kw: perf_run.EnforcedWaitsSimulator(
            perf_run._pipeline(), perf_run.np.asarray([3.0, 2.0, 1.5]), **kw
        ),
        lambda **kw: perf_run.ReferenceEnforcedSimulator(
            perf_run._pipeline(), perf_run.np.asarray([3.0, 2.0, 1.5]), **kw
        ),
        400,
        repeats=1,
    )
    assert section["metrics_bit_identical"] is True
    assert section["n_items"] == 400
    assert section["production_seconds"] > 0
    # The full report is JSON-serializable as emitted by main().
    json.dumps(section)
