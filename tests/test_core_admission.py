"""Tests for co-scheduling admission control."""

import numpy as np
import pytest

from repro.core.admission import AdmissionRequest, admit, max_copies
from repro.core.model import RealTimeProblem
from repro.errors import SpecError

B = np.asarray([1.0, 3.0, 9.0, 6.0])


def _request(blast, name, tau0, deadline):
    return AdmissionRequest(
        name=name, problem=RealTimeProblem(blast, tau0, deadline), b=B
    )


class TestAdmit:
    def test_low_load_apps_admitted(self, blast):
        reqs = [
            _request(blast, "a", 100.0, 3.5e5),  # AF ~ 0.05
            _request(blast, "b", 50.0, 2.0e5),  # AF ~ 0.09
        ]
        result = admit(reqs)
        assert result.admitted
        assert result.total_utilization < 0.2
        assert result.headroom == pytest.approx(
            1.0 - result.total_utilization
        )
        assert set(result.solutions) == {"a", "b"}

    def test_overload_rejected(self, blast):
        # Three copies of a ~0.66-utilization stream cannot co-reside.
        reqs = [
            _request(blast, f"app{i}", 3.0, 3.5e5) for i in range(3)
        ]
        result = admit(reqs)
        assert not result.admitted
        assert result.total_utilization > 1.0

    def test_infeasible_app_blocks_admission(self, blast):
        reqs = [
            _request(blast, "good", 100.0, 3.5e5),
            _request(blast, "impossible", 1.0, 3.5e5),
        ]
        result = admit(reqs)
        assert not result.admitted
        assert result.infeasible == ["impossible"]

    def test_capacity_parameter(self, blast):
        reqs = [_request(blast, "a", 50.0, 2.0e5)]  # AF ~ 0.087
        assert admit(reqs, capacity=0.5).admitted
        assert not admit(reqs, capacity=0.05).admitted

    def test_render(self, blast):
        result = admit([_request(blast, "a", 100.0, 3.5e5)])
        text = result.render()
        assert "ADMIT" in text and "a" in text

    def test_validation(self, blast):
        with pytest.raises(SpecError):
            admit([])
        with pytest.raises(SpecError):
            admit([_request(blast, "a", 50.0, 2e5)], capacity=0.0)
        with pytest.raises(SpecError):
            admit(
                [
                    _request(blast, "dup", 50.0, 2e5),
                    _request(blast, "dup", 60.0, 2e5),
                ]
            )
        with pytest.raises(SpecError):
            AdmissionRequest("", RealTimeProblem(blast, 50.0, 2e5), B)


class TestMaxCopies:
    def test_counts_match_single_af(self, blast):
        problem = RealTimeProblem(blast, 100.0, 3.5e5)
        from repro.core.enforced_waits import solve_enforced_waits

        af = solve_enforced_waits(problem, B).active_fraction
        assert max_copies(problem, B) == int(1.0 // af)

    def test_infeasible_is_zero(self, blast):
        assert max_copies(RealTimeProblem(blast, 1.0, 3.5e5), B) == 0

    def test_consistent_with_admit(self, blast):
        problem = RealTimeProblem(blast, 100.0, 3.5e5)
        k = max_copies(problem, B)
        reqs = [
            AdmissionRequest(f"copy{i}", problem, B) for i in range(k)
        ]
        assert admit(reqs).admitted
        reqs_over = reqs + [AdmissionRequest("extra", problem, B)]
        assert not admit(reqs_over).admitted