"""Tests for the parallel campaign runner."""

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.errors import SpecError
from repro.sim.campaign import run_trials_parallel
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.monolithic import MonolithicSimulator
from repro.sim.runner import run_trials


@pytest.fixture(scope="module")
def enforced_kwargs():
    from repro.apps.blast.pipeline import blast_pipeline
    from repro.core.enforced_waits import solve_enforced_waits
    from repro.core.model import RealTimeProblem

    blast = blast_pipeline()
    sol = solve_enforced_waits(
        RealTimeProblem(blast, 20.0, 2e5), np.asarray([1.0, 3.0, 9.0, 6.0])
    )
    return dict(
        pipeline=blast,
        waits=sol.waits,
        arrivals=FixedRateArrivals(20.0),
        deadline=2e5,
        n_items=2000,
    )


class TestSerialEquivalence:
    def test_matches_serial_runner(self, enforced_kwargs):
        serial = run_trials(
            lambda seed: EnforcedWaitsSimulator(**enforced_kwargs, seed=seed),
            4,
        )
        parallel_serial = run_trials_parallel(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=1
        )
        assert [m.outputs for m in serial.metrics] == [
            m.outputs for m in parallel_serial.metrics
        ]
        assert serial.mean_active_fraction == pytest.approx(
            parallel_serial.mean_active_fraction, rel=1e-12
        )

    def test_workers_give_identical_results(self, enforced_kwargs):
        one = run_trials_parallel(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=1
        )
        many = run_trials_parallel(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=2
        )
        assert [m.outputs for m in one.metrics] == [
            m.outputs for m in many.metrics
        ]
        assert [m.mean_latency for m in one.metrics] == [
            m.mean_latency for m in many.metrics
        ]

    def test_monolithic_class_supported(self, enforced_kwargs):
        kwargs = dict(
            pipeline=enforced_kwargs["pipeline"],
            block_size=1000,
            arrivals=FixedRateArrivals(20.0),
            deadline=2e5,
            n_items=4000,
        )
        trials = run_trials_parallel(
            MonolithicSimulator, kwargs, [3, 7], workers=2
        )
        assert trials.seeds == (3, 7)
        assert trials.n_trials == 2


class TestCalibrationIntegration:
    def test_workers_do_not_change_calibration(self):
        from repro.apps.blast.pipeline import blast_pipeline
        from repro.core.calibration import calibrate_enforced_b

        p = blast_pipeline()
        kwargs = dict(n_trials=4, n_items=4000)
        serial = calibrate_enforced_b(
            p, np.asarray([5.0]), np.asarray([4e4]), **kwargs
        )
        parallel = calibrate_enforced_b(
            p, np.asarray([5.0]), np.asarray([4e4]), workers=2, **kwargs
        )
        assert (serial.b == parallel.b).all()
        assert serial.n_rounds == parallel.n_rounds


class TestValidation:
    def test_seed_in_kwargs_rejected(self, enforced_kwargs):
        bad = dict(enforced_kwargs, seed=1)
        with pytest.raises(SpecError):
            run_trials_parallel(EnforcedWaitsSimulator, bad, 2)

    def test_empty_seeds_rejected(self, enforced_kwargs):
        with pytest.raises(SpecError):
            run_trials_parallel(EnforcedWaitsSimulator, enforced_kwargs, 0)
        with pytest.raises(SpecError):
            run_trials_parallel(
                EnforcedWaitsSimulator, enforced_kwargs, []
            )

    def test_negative_workers_rejected(self, enforced_kwargs):
        with pytest.raises(SpecError):
            run_trials_parallel(
                EnforcedWaitsSimulator, enforced_kwargs, 2, workers=-1
            )
