"""Tests for the parallel campaign runner."""

import os

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.errors import CampaignError, SpecError
from repro.sim.campaign import run_trials_parallel
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.faults import FaultPlan, InjectedFault
from repro.sim.metrics import SimMetrics
from repro.sim.monolithic import MonolithicSimulator
from repro.sim.runner import run_trials


def _dummy_metrics(seed: int) -> SimMetrics:
    return SimMetrics(
        strategy="dummy",
        n_items=1,
        makespan=1.0,
        active_time_per_node=np.ones(1),
        active_fraction=0.5 + seed * 0.01,
        missed_items=0,
        miss_rate=0.0,
        outputs=1,
        mean_latency=1.0,
        max_latency=1.0,
        queue_hwm_vectors=np.ones(1),
        firings=np.ones(1),
        empty_firings=np.zeros(1),
        mean_occupancy=np.ones(1),
    )


class FastSim:
    """A trivial picklable simulator that finishes instantly."""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed

    def run(self) -> SimMetrics:
        return _dummy_metrics(self.seed)


class CrashingSim:
    """Raises inside run() — the classic crashing trial."""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed

    def run(self) -> SimMetrics:
        raise RuntimeError(f"boom from seed {self.seed}")


class DyingSim:
    """Kills its worker process outright (no exception to catch)."""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed

    def run(self) -> SimMetrics:
        os._exit(17)


class NotMetricsSim:
    """run() returns the wrong type."""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed

    def run(self) -> dict:
        return {"not": "metrics"}


@pytest.fixture(scope="module")
def enforced_kwargs():
    from repro.apps.blast.pipeline import blast_pipeline
    from repro.core.enforced_waits import solve_enforced_waits
    from repro.core.model import RealTimeProblem

    blast = blast_pipeline()
    sol = solve_enforced_waits(
        RealTimeProblem(blast, 20.0, 2e5), np.asarray([1.0, 3.0, 9.0, 6.0])
    )
    return dict(
        pipeline=blast,
        waits=sol.waits,
        arrivals=FixedRateArrivals(20.0),
        deadline=2e5,
        n_items=2000,
    )


class TestSerialEquivalence:
    def test_matches_serial_runner(self, enforced_kwargs):
        serial = run_trials(
            lambda seed: EnforcedWaitsSimulator(**enforced_kwargs, seed=seed),
            4,
        )
        parallel_serial = run_trials_parallel(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=1
        )
        assert [m.outputs for m in serial.metrics] == [
            m.outputs for m in parallel_serial.metrics
        ]
        assert serial.mean_active_fraction == pytest.approx(
            parallel_serial.mean_active_fraction, rel=1e-12
        )

    def test_workers_give_identical_results(self, enforced_kwargs):
        one = run_trials_parallel(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=1
        )
        many = run_trials_parallel(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=2
        )
        assert [m.outputs for m in one.metrics] == [
            m.outputs for m in many.metrics
        ]
        assert [m.mean_latency for m in one.metrics] == [
            m.mean_latency for m in many.metrics
        ]

    def test_monolithic_class_supported(self, enforced_kwargs):
        kwargs = dict(
            pipeline=enforced_kwargs["pipeline"],
            block_size=1000,
            arrivals=FixedRateArrivals(20.0),
            deadline=2e5,
            n_items=4000,
        )
        trials = run_trials_parallel(
            MonolithicSimulator, kwargs, [3, 7], workers=2
        )
        assert trials.seeds == (3, 7)
        assert trials.n_trials == 2


class TestCalibrationIntegration:
    def test_workers_do_not_change_calibration(self):
        from repro.apps.blast.pipeline import blast_pipeline
        from repro.core.calibration import calibrate_enforced_b

        p = blast_pipeline()
        kwargs = dict(n_trials=4, n_items=4000)
        serial = calibrate_enforced_b(
            p, np.asarray([5.0]), np.asarray([4e4]), **kwargs
        )
        parallel = calibrate_enforced_b(
            p, np.asarray([5.0]), np.asarray([4e4]), workers=2, **kwargs
        )
        assert (serial.b == parallel.b).all()
        assert serial.n_rounds == parallel.n_rounds


class TestValidation:
    def test_seed_in_kwargs_rejected(self, enforced_kwargs):
        bad = dict(enforced_kwargs, seed=1)
        with pytest.raises(SpecError):
            run_trials_parallel(EnforcedWaitsSimulator, bad, 2)

    def test_empty_seeds_rejected(self, enforced_kwargs):
        with pytest.raises(SpecError):
            run_trials_parallel(EnforcedWaitsSimulator, enforced_kwargs, 0)
        with pytest.raises(SpecError):
            run_trials_parallel(
                EnforcedWaitsSimulator, enforced_kwargs, []
            )

    def test_negative_workers_rejected(self, enforced_kwargs):
        with pytest.raises(SpecError):
            run_trials_parallel(
                EnforcedWaitsSimulator, enforced_kwargs, 2, workers=-1
            )

    def test_non_picklable_kwarg_gives_clear_error(self):
        with pytest.raises(SpecError, match="picklable"):
            run_trials_parallel(
                FastSim, {"callback": lambda x: x}, 2, workers=2
            )

    def test_wrong_metrics_type_names_both_classes(self):
        trials = run_trials_parallel(NotMetricsSim, {}, [0], workers=2)
        (outcome,) = trials.outcomes
        assert outcome.status == "failed"
        assert "NotMetricsSim" in outcome.error
        assert "dict" in outcome.error


class TestFailurePaths:
    def test_crashing_simulator_captured(self):
        trials = run_trials_parallel(CrashingSim, {}, [0, 1], workers=2)
        assert trials.n_attempted == 2
        assert trials.n_failed == 2
        assert trials.n_trials == 0
        for seed, outcome in zip((0, 1), trials.outcomes):
            assert outcome.seed == seed
            assert outcome.status == "failed"
            assert outcome.metrics is None
            assert "RuntimeError" in outcome.error
            assert f"boom from seed {seed}" in outcome.error

    def test_worker_death_detected(self):
        trials = run_trials_parallel(DyingSim, {}, [0], workers=2)
        (outcome,) = trials.outcomes
        assert outcome.status == "failed"
        assert "died without a result" in outcome.error
        assert "17" in outcome.error

    @pytest.mark.slow
    def test_hanging_trial_times_out(self):
        faults = FaultPlan(hang_seeds=(1,), hang_seconds=60.0)
        trials = run_trials_parallel(
            FastSim, {}, [0, 1, 2], workers=2, timeout=1.0, faults=faults
        )
        assert [o.status for o in trials.outcomes] == [
            "ok",
            "timed-out",
            "ok",
        ]
        assert trials.n_timed_out == 1
        timed_out = trials.outcomes[1]
        assert timed_out.metrics is None
        assert "timeout" in timed_out.error
        assert timed_out.duration >= 1.0

    def test_serial_path_captures_injected_crash(self):
        faults = FaultPlan(crash_seeds=(1,))
        trials = run_trials_parallel(
            FastSim, {}, [0, 1, 2], workers=1, faults=faults
        )
        assert [o.status for o in trials.outcomes] == ["ok", "failed", "ok"]
        assert "InjectedFault" in trials.outcomes[1].error

    def test_transient_crash_recovers_with_retries(self):
        faults = FaultPlan(transient_crashes={2: 2})
        trials = run_trials_parallel(
            FastSim,
            {},
            [0, 1, 2, 3],
            workers=2,
            retries=2,
            backoff=0.0,
            faults=faults,
        )
        assert trials.all_ok
        assert trials.outcomes[2].attempts == 3
        assert all(o.attempts == 1 for i, o in enumerate(trials.outcomes) if i != 2)

    def test_retries_exhausted_records_failure(self):
        faults = FaultPlan(transient_crashes={0: 5})
        trials = run_trials_parallel(
            FastSim, {}, [0], workers=2, retries=1, backoff=0.0, faults=faults
        )
        (outcome,) = trials.outcomes
        assert outcome.status == "failed"
        assert outcome.attempts == 2

    def test_strict_mode_raises_with_partial_results(self):
        faults = FaultPlan(crash_seeds=(1,))
        with pytest.raises(CampaignError) as excinfo:
            run_trials_parallel(
                FastSim, {}, [0, 1, 2], workers=2, faults=faults, strict=True
            )
        result = excinfo.value.result
        assert result.n_trials == 2
        assert result.n_failed == 1
        assert "seed 1" in str(excinfo.value)

    @pytest.mark.slow
    def test_acceptance_20_seed_campaign_with_injected_faults(self):
        """ISSUE acceptance: 20 seeds, 3 crashes + 1 hang -> 16 ok, in order."""
        faults = FaultPlan(
            crash_seeds=(2, 7, 11), hang_seeds=(15,), hang_seconds=60.0
        )
        trials = run_trials_parallel(
            FastSim, {}, 20, workers=4, timeout=1.5, faults=faults
        )
        assert trials.seeds == tuple(range(20))
        assert trials.n_attempted == 20
        assert trials.n_trials == 16
        assert trials.n_failed == 3
        assert trials.n_timed_out == 1
        assert [o.seed for o in trials.outcomes] == list(range(20))
        for o in trials.outcomes:
            if o.seed in (2, 7, 11):
                assert o.status == "failed" and "InjectedFault" in o.error
            elif o.seed == 15:
                assert o.status == "timed-out"
            else:
                assert o.ok and isinstance(o.metrics, SimMetrics)
        # The statistics run over the 16 survivors.
        assert len(trials.metrics) == 16
        assert trials.mean_active_fraction == pytest.approx(
            np.mean([0.5 + s * 0.01 for s in range(20) if s not in (2, 7, 11, 15)])
        )


class TestFaultPlan:
    def test_crash_seed_raises(self):
        with pytest.raises(InjectedFault, match="seed 3"):
            FaultPlan(crash_seeds=(3,)).apply(3)
        FaultPlan(crash_seeds=(3,)).apply(4)  # other seeds untouched

    def test_transient_threshold(self):
        plan = FaultPlan(transient_crashes={1: 2})
        with pytest.raises(InjectedFault):
            plan.apply(1, attempt=1)
        with pytest.raises(InjectedFault):
            plan.apply(1, attempt=2)
        plan.apply(1, attempt=3)  # recovered

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(hang_seconds=0.0)
        with pytest.raises(ValueError):
            FaultPlan(transient_crashes={0: 0})

    def test_plan_pickles(self):
        import pickle

        plan = FaultPlan(crash_seeds=(1,), transient_crashes={2: 1})
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_hang_sleeps_in_interruptible_slices(self, monkeypatch):
        """A hang must never block in one long uninterruptible sleep."""
        import repro.sim.faults as faults_mod

        clock = [0.0]
        slices = []

        def fake_monotonic():
            return clock[0]

        def fake_sleep(seconds):
            slices.append(seconds)
            clock[0] += seconds

        monkeypatch.setattr(faults_mod.time, "monotonic", fake_monotonic)
        monkeypatch.setattr(faults_mod.time, "sleep", fake_sleep)
        FaultPlan(hang_seeds=(5,), hang_seconds=0.35).apply(5)
        assert sum(slices) == pytest.approx(0.35)
        assert max(slices) <= 0.1  # reapable at every slice boundary
        assert len(slices) >= 4

    def test_hang_interrupt_propagates_at_slice_boundary(self, monkeypatch):
        """An interrupt delivered mid-hang escapes within one slice."""
        import repro.sim.faults as faults_mod

        calls = []

        def interrupting_sleep(seconds):
            calls.append(seconds)
            if len(calls) == 2:
                raise KeyboardInterrupt

        monkeypatch.setattr(faults_mod.time, "sleep", interrupting_sleep)
        with pytest.raises(KeyboardInterrupt):
            FaultPlan(hang_seeds=(5,), hang_seconds=3600.0).apply(5)
        assert len(calls) == 2


# -- sharded campaigns -------------------------------------------------------

from repro.sim.campaign import run_trials_sharded  # noqa: E402


class TestShardedCampaign:
    def test_matches_process_per_seed(self, enforced_kwargs):
        baseline = run_trials_parallel(
            EnforcedWaitsSimulator, enforced_kwargs, 6, workers=2
        )
        sharded = run_trials_sharded(
            EnforcedWaitsSimulator, enforced_kwargs, 6, workers=3
        )
        assert sharded.all_ok
        for a, b in zip(sharded.outcomes, baseline.outcomes):
            assert a.seed == b.seed
            assert a.metrics.outputs == b.metrics.outputs
            assert a.metrics.makespan == b.metrics.makespan
            assert a.metrics.active_fraction == b.metrics.active_fraction
            assert np.array_equal(
                a.metrics.queue_hwm_vectors, b.metrics.queue_hwm_vectors
            )

    def test_serial_path_matches_sharded(self, enforced_kwargs):
        serial = run_trials_sharded(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=0
        )
        sharded = run_trials_sharded(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=2
        )
        assert [o.metrics.outputs for o in serial.outcomes] == [
            o.metrics.outputs for o in sharded.outcomes
        ]

    def test_private_arrivals_match_shared(self, enforced_kwargs):
        shared = run_trials_sharded(
            EnforcedWaitsSimulator, enforced_kwargs, 4, workers=2
        )
        private = run_trials_sharded(
            EnforcedWaitsSimulator,
            enforced_kwargs,
            4,
            workers=2,
            share_arrivals=False,
        )
        for a, b in zip(shared.outcomes, private.outcomes):
            assert a.metrics.outputs == b.metrics.outputs
            assert a.metrics.makespan == b.metrics.makespan

    def test_explicit_seed_list_preserves_order(self):
        result = run_trials_sharded(FastSim, {}, [9, 3, 11], workers=2)
        assert [o.seed for o in result.outcomes] == [9, 3, 11]
        assert result.all_ok

    def test_seed_in_kwargs_rejected(self):
        with pytest.raises(SpecError, match="seeds argument"):
            run_trials_sharded(FastSim, {"seed": 1}, 2)

    def test_negative_workers_rejected(self):
        with pytest.raises(SpecError, match="workers"):
            run_trials_sharded(FastSim, {}, 2, workers=-1)

    def test_crash_is_contained_per_seed(self):
        result = run_trials_sharded(CrashingSim, {}, 4, workers=2)
        assert not result.all_ok
        assert len(result.failures) == 4
        for o in result.outcomes:
            assert o.status == "failed"
            assert "boom from seed" in o.error

    def test_dead_shard_seeds_recorded_as_failed(self):
        result = run_trials_sharded(DyingSim, {}, 4, workers=2)
        assert not result.all_ok
        for o in result.outcomes:
            assert o.status == "failed"
            assert "died without a result" in o.error

    def test_strict_raises_with_partial_result_attached(self):
        with pytest.raises(CampaignError) as exc_info:
            run_trials_sharded(CrashingSim, {}, 3, workers=2, strict=True)
        attached = exc_info.value.result
        assert len(attached.outcomes) == 3

    def test_unpicklable_kwargs_fail_early(self):
        with pytest.raises(SpecError, match="picklable"):
            run_trials_sharded(
                FastSim, {"cb": lambda: None}, 4, workers=2
            )
