"""Tests for projected gradient descent."""

import numpy as np
import pytest

from repro.solvers.kkt import waterfill_box_budget
from repro.solvers.projected_gradient import projected_gradient_min


def test_quadratic_in_box():
    center = np.asarray([1.0, 3.0])
    r = projected_gradient_min(
        f=lambda x: float(np.sum((x - center) ** 2)),
        grad=lambda x: 2 * (x - center),
        b=np.ones(2),
        lo=np.zeros(2),
        hi=np.full(2, 10.0),
        budget=100.0,
    )
    assert r.ok
    assert r.x == pytest.approx(center, abs=1e-5)


def test_budget_active():
    center = np.asarray([5.0, 5.0])
    r = projected_gradient_min(
        f=lambda x: float(np.sum((x - center) ** 2)),
        grad=lambda x: 2 * (x - center),
        b=np.ones(2),
        lo=np.zeros(2),
        hi=np.full(2, 10.0),
        budget=4.0,
    )
    assert r.ok
    assert r.x == pytest.approx(np.asarray([2.0, 2.0]), abs=1e-5)
    assert float(r.x.sum()) <= 4.0 + 1e-8


def test_agrees_with_waterfill_on_one_over_x():
    t = np.asarray([4.0, 1.0, 2.0])
    b = np.asarray([1.0, 1.0, 2.0])
    lo = np.full(3, 0.5)
    hi = np.full(3, 1e5)
    budget = 25.0
    wf = waterfill_box_budget(t, b, lo, hi, budget)
    r = projected_gradient_min(
        f=lambda x: float(np.sum(t / x)),
        grad=lambda x: -t / x**2,
        b=b,
        lo=lo,
        hi=hi,
        budget=budget,
        x0=lo * 2,
    )
    assert r.ok
    assert r.objective == pytest.approx(wf.objective, rel=1e-5)


def test_custom_start_projected_first():
    r = projected_gradient_min(
        f=lambda x: float(np.sum(x**2)),
        grad=lambda x: 2 * x,
        b=np.ones(1),
        lo=np.asarray([1.0]),
        hi=np.asarray([2.0]),
        budget=10.0,
        x0=np.asarray([100.0]),  # far outside
    )
    assert r.ok
    assert r.x[0] == pytest.approx(1.0, abs=1e-6)
