"""End-to-end integration tests: the paper's headline claims at small scale.

Each test exercises multiple subsystems together (optimizer + simulator +
application pipelines) and asserts the *shape* of the paper's results —
who wins where, and that the design actually meets deadlines in execution.
"""

import numpy as np
import pytest

from repro.apps.blast.pipeline import blast_pipeline
from repro.arrivals.fixed import FixedRateArrivals
from repro.core.enforced_waits import solve_enforced_waits
from repro.core.model import RealTimeProblem
from repro.core.monolithic import solve_monolithic
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.monolithic import MonolithicSimulator
from repro.sim.runner import run_trials

B = np.asarray([1.0, 3.0, 9.0, 6.0])


class TestHeadlineClaims:
    def test_enforced_wins_fast_arrivals_with_slack(self, blast):
        """Paper Sec 6.3: 'difference is particularly large — at least 0.4
        in absolute terms — in the region of the fastest arrival rates and
        sufficient deadline slack'."""
        prob = RealTimeProblem(blast, 10.0, 3.5e5)
        e = solve_enforced_waits(prob, B)
        m = solve_monolithic(prob)
        assert e.feasible and m.feasible
        assert m.active_fraction - e.active_fraction >= 0.4

    def test_monolithic_wins_slow_arrivals_tight_deadline(self, blast):
        prob = RealTimeProblem(blast, 100.0, 2.4e4)
        e = solve_enforced_waits(prob, B)
        m = solve_monolithic(prob)
        assert m.feasible
        # Enforced either infeasible or much worse here.
        if e.feasible:
            assert e.active_fraction - m.active_fraction >= 0.3

    def test_only_enforced_survives_fastest_feasible_rates(self, blast):
        """Between the two feasibility thresholds (~2.83 vs ~7.87 cycles)
        only enforced waits can run at all."""
        prob = RealTimeProblem(blast, 4.0, 3.5e5)
        assert solve_enforced_waits(prob, B).feasible
        assert not solve_monolithic(prob).feasible

    def test_neither_feasible_below_2e4(self, blast):
        """Paper: 'Values of D below 2e4 cycles resulted in no feasible
        realizations of the pipeline by either approach'. (With the
        calibrated b the enforced bound is ~2.3e4.)"""
        for tau0 in (10.0, 50.0, 100.0):
            prob = RealTimeProblem(blast, tau0, 1.9e4)
            assert not solve_enforced_waits(prob, B).feasible
        # Monolithic needs b*M*tau0 + Tbar <= D with Tbar >= sum(t) for
        # any block: at least 4397 cycles of service + accumulation.
        prob = RealTimeProblem(blast, 100.0, 4.4e3)
        assert not solve_monolithic(prob).feasible


class TestDesignExecutesCorrectly:
    def test_enforced_design_is_miss_free_in_simulation(self, blast):
        """Calibrated design simulates without misses in >= 95% of trials
        (the paper's acceptance criterion), at reduced scale."""
        tau0, deadline = 20.0, 2.0e5
        sol = solve_enforced_waits(
            RealTimeProblem(blast, tau0, deadline), B
        )
        trials = run_trials(
            lambda seed: EnforcedWaitsSimulator(
                blast,
                sol.waits,
                FixedRateArrivals(tau0),
                deadline,
                8000,
                seed=seed,
            ),
            8,
        )
        assert trials.miss_free_fraction >= 0.95
        # "active fractions measured closely matched those predicted".
        assert trials.mean_active_fraction == pytest.approx(
            sol.active_fraction, rel=0.05
        )

    def test_monolithic_design_is_miss_free(self, blast):
        tau0, deadline = 30.0, 2.0e5
        sol = solve_monolithic(RealTimeProblem(blast, tau0, deadline))
        trials = run_trials(
            lambda seed: MonolithicSimulator(
                blast,
                sol.block_size,
                FixedRateArrivals(tau0),
                deadline,
                6 * sol.block_size,
                seed=seed,
            ),
            8,
        )
        assert trials.miss_free_fraction >= 0.95

    def test_observed_queue_depths_within_assumed_b(self, blast):
        tau0, deadline = 20.0, 2.0e5
        sol = solve_enforced_waits(
            RealTimeProblem(blast, tau0, deadline), B
        )
        trials = run_trials(
            lambda seed: EnforcedWaitsSimulator(
                blast,
                sol.waits,
                FixedRateArrivals(tau0),
                deadline,
                8000,
                seed=seed,
            ),
            5,
        )
        assert (trials.observed_b() <= B).all()


class TestOtherApplications:
    """The motivating apps plug into the same optimization machinery."""

    @pytest.mark.parametrize("app", ["gamma", "nids", "cascade"])
    def test_full_workflow(self, app):
        from repro.core.feasibility import min_tau0_enforced

        if app == "gamma":
            from repro.apps.gamma import gamma_pipeline

            pipeline = gamma_pipeline(seed=1)
        elif app == "nids":
            from repro.apps.nids import nids_pipeline

            pipeline = nids_pipeline(seed=1)
        else:
            from repro.apps.cascade import cascade_pipeline

            pipeline = cascade_pipeline(seed=1)

        tau0 = 1.5 * min_tau0_enforced(pipeline)
        deadline = 60.0 * float(pipeline.service_times.sum())
        prob = RealTimeProblem(pipeline, tau0, deadline)
        sol = solve_enforced_waits(prob, np.full(pipeline.n_nodes, 4.0))
        assert sol.feasible
        metrics = EnforcedWaitsSimulator(
            pipeline,
            sol.waits,
            FixedRateArrivals(tau0),
            deadline,
            3000,
            seed=0,
        ).run()
        assert metrics.active_fraction == pytest.approx(
            sol.active_fraction, rel=0.1
        )
        assert metrics.miss_rate < 0.05
