"""Tests for the latency ledger and SimMetrics."""

import math

import numpy as np
import pytest

from repro.sim.metrics import LatencyLedger, SimMetrics


class TestLatencyLedger:
    def test_on_time_exit(self):
        led = LatencyLedger(deadline=100.0)
        led.record_exit(origin=10.0, exit_time=50.0)
        assert led.outputs == 1
        assert led.missed_items == 0
        assert led.latency.mean == pytest.approx(40.0)

    def test_late_exit_counts_item_once(self):
        led = LatencyLedger(deadline=100.0)
        led.record_exit(10.0, 150.0)  # late
        led.record_exit(10.0, 160.0)  # same item, late again
        assert led.late_outputs == 2
        assert led.missed_items == 1  # per origin item

    def test_any_late_output_marks_item(self):
        led = LatencyLedger(deadline=100.0)
        led.record_exit(0.0, 50.0)  # on time
        led.record_exit(0.0, 200.0)  # late
        assert led.missed_items == 1

    def test_boundary_is_not_a_miss(self):
        led = LatencyLedger(deadline=100.0)
        led.record_exit(0.0, 100.0)
        assert led.missed_items == 0

    def test_record_exits_batch(self):
        led = LatencyLedger(deadline=10.0)
        led.record_exits(np.asarray([0.0, 1.0, 5.0]), 12.0)
        assert led.outputs == 3
        assert led.missed_items == 2  # origins 0 and 1 are late

    def test_negative_latency_rejected(self):
        led = LatencyLedger(deadline=10.0)
        with pytest.raises(ValueError):
            led.record_exit(5.0, 4.0)

    def test_miss_rate(self):
        led = LatencyLedger(deadline=10.0)
        led.record_exit(0.0, 100.0)
        assert led.miss_rate(10) == pytest.approx(0.1)
        assert math.isnan(led.miss_rate(0))

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError):
            LatencyLedger(0.0)


class TestSimMetrics:
    def _metrics(self, missed=0):
        return SimMetrics(
            strategy="enforced",
            n_items=100,
            makespan=1000.0,
            active_time_per_node=np.asarray([10.0, 20.0]),
            active_fraction=0.015,
            missed_items=missed,
            miss_rate=missed / 100,
            outputs=50,
            mean_latency=5.0,
            max_latency=9.0,
            queue_hwm_vectors=np.asarray([1.0, 2.0]),
            firings=np.asarray([10, 5]),
            empty_firings=np.asarray([0, 1]),
            mean_occupancy=np.asarray([0.9, 0.7]),
        )

    def test_miss_free(self):
        assert self._metrics(0).miss_free
        assert not self._metrics(1).miss_free
