"""Tests for the waterfilling solver and box+budget projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solvers.kkt import project_box_budget, waterfill_box_budget
from repro.solvers.result import SolverStatus


class TestWaterfill:
    def test_budget_slack_goes_to_caps(self):
        r = waterfill_box_budget(
            t=np.asarray([1.0, 1.0]),
            b=np.asarray([1.0, 1.0]),
            lo=np.asarray([1.0, 1.0]),
            hi=np.asarray([5.0, 5.0]),
            budget=100.0,
        )
        assert r.ok
        assert r.x.tolist() == [5.0, 5.0]
        assert r.extra["lam"] == 0.0

    def test_symmetric_binding_budget(self):
        r = waterfill_box_budget(
            t=np.asarray([1.0, 1.0]),
            b=np.asarray([1.0, 1.0]),
            lo=np.asarray([0.1, 0.1]),
            hi=np.asarray([np.inf, np.inf]),
            budget=10.0,
        )
        assert r.ok
        assert r.x == pytest.approx(np.asarray([5.0, 5.0]))
        assert np.dot(r.x, [1, 1]) == pytest.approx(10.0)

    def test_asymmetric_waterfill_sqrt_rule(self):
        # Interior optimum: x_i proportional to sqrt(t_i/b_i).
        t = np.asarray([4.0, 1.0])
        b = np.asarray([1.0, 1.0])
        r = waterfill_box_budget(
            t, b, np.full(2, 1e-6), np.full(2, np.inf), budget=30.0
        )
        assert r.ok
        assert r.x[0] / r.x[1] == pytest.approx(2.0, rel=1e-6)

    def test_infeasible_budget(self):
        r = waterfill_box_budget(
            t=np.ones(2),
            b=np.ones(2),
            lo=np.asarray([5.0, 6.0]),
            hi=np.full(2, np.inf),
            budget=10.0,
        )
        assert r.status is SolverStatus.INFEASIBLE

    def test_zero_cost_variable_pinned_low(self):
        r = waterfill_box_budget(
            t=np.asarray([1.0, 0.0]),
            b=np.asarray([1.0, 1.0]),
            lo=np.asarray([0.5, 0.5]),
            hi=np.asarray([np.inf, 10.0]),
            budget=8.0,
        )
        assert r.ok
        assert r.x[1] == pytest.approx(0.5)  # frees budget for the costly var
        assert r.x[0] == pytest.approx(7.5)

    def test_validates_shapes_and_signs(self):
        with pytest.raises(SolverError):
            waterfill_box_budget(np.ones(2), np.ones(3), np.ones(2), np.ones(2), 1.0)
        with pytest.raises(SolverError):
            waterfill_box_budget(
                np.ones(2), np.zeros(2), np.ones(2), np.full(2, 2.0), 10.0
            )
        with pytest.raises(SolverError):
            waterfill_box_budget(
                np.ones(2), np.ones(2), np.zeros(2), np.full(2, 2.0), 10.0
            )

    @settings(max_examples=40, deadline=None)
    @given(
        t=st.lists(st.floats(0.1, 100), min_size=2, max_size=6),
        b=st.lists(st.floats(0.1, 10), min_size=2, max_size=6),
        budget_factor=st.floats(1.05, 10.0),
    )
    def test_property_matches_slsqp(self, t, b, budget_factor):
        """Waterfilling agrees with scipy SLSQP on random instances."""
        n = min(len(t), len(b))
        t = np.asarray(t[:n])
        b = np.asarray(b[:n])
        lo = np.full(n, 0.5)
        hi = np.full(n, 1e6)
        budget = float(np.dot(b, lo)) * budget_factor
        r = waterfill_box_budget(t, b, lo, hi, budget)
        assert r.ok

        from scipy.optimize import minimize

        res = minimize(
            lambda x: float(np.sum(t / x)),
            r.x * 1.01,
            jac=lambda x: -t / x**2,
            bounds=[(lo[i], hi[i]) for i in range(n)],
            constraints=[
                {
                    "type": "ineq",
                    "fun": lambda x: budget - float(np.dot(b, x)),
                }
            ],
            method="SLSQP",
            options={"maxiter": 300, "ftol": 1e-12},
        )
        if res.success:
            assert r.objective <= float(res.fun) * (1 + 1e-6)


class TestProjection:
    def test_identity_inside(self):
        y = np.asarray([1.0, 1.0])
        out = project_box_budget(
            y, np.ones(2), np.zeros(2) + 0.1, np.full(2, 5.0), 10.0
        )
        assert out == pytest.approx(y)

    def test_clamps_to_box(self):
        out = project_box_budget(
            np.asarray([10.0, -10.0]),
            np.ones(2),
            np.asarray([0.0, 0.0]),
            np.asarray([2.0, 2.0]),
            100.0,
        )
        assert out.tolist() == [2.0, 0.0]

    def test_budget_projection_on_simplex(self):
        out = project_box_budget(
            np.asarray([2.0, 2.0]),
            np.ones(2),
            np.zeros(2),
            np.full(2, 10.0),
            2.0,
        )
        assert out == pytest.approx(np.asarray([1.0, 1.0]))

    def test_empty_set_rejected(self):
        with pytest.raises(SolverError, match="empty"):
            project_box_budget(
                np.ones(2), np.ones(2), np.full(2, 5.0), np.full(2, 9.0), 1.0
            )

    @settings(max_examples=40, deadline=None)
    @given(
        y=st.lists(st.floats(-50, 50), min_size=2, max_size=5),
        budget=st.floats(1.0, 40.0),
    )
    def test_property_projection_is_feasible_and_optimal(self, y, budget):
        n = len(y)
        y = np.asarray(y)
        b = np.ones(n)
        lo = np.zeros(n)
        hi = np.full(n, 20.0)
        out = project_box_budget(y, b, lo, hi, budget)
        assert (out >= lo - 1e-9).all() and (out <= hi + 1e-9).all()
        assert float(b @ out) <= budget * (1 + 1e-9)
        # Projection optimality: no feasible point is closer (spot-check
        # against random feasible candidates).
        rng = np.random.default_rng(0)
        for _ in range(20):
            cand = rng.uniform(lo, np.minimum(hi, budget))
            if float(b @ cand) <= budget:
                assert np.linalg.norm(y - out) <= np.linalg.norm(y - cand) + 1e-6
