"""Tests for the SIMD device model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.simd.device import SimdDevice


class TestFirings:
    def test_zero_items_zero_firings(self):
        assert SimdDevice(128).firings_for(0) == 0

    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (128, 1), (129, 2), (300, 3)]
    )
    def test_counts(self, n, expected):
        assert SimdDevice(128).firings_for(n) == expected

    def test_rejects_negative(self):
        with pytest.raises(SpecError):
            SimdDevice(8).firings_for(-1)

    def test_rejects_bad_width(self):
        with pytest.raises(SpecError):
            SimdDevice(0)


class TestBusyTime:
    def test_matches_paper_term(self):
        # ceil(M*G/v)*t for M*G = 300 items, v=128, t=287
        assert SimdDevice(128).busy_time(300, 287.0) == 3 * 287.0

    def test_zero_items_free(self):
        assert SimdDevice(128).busy_time(0, 287.0) == 0.0


class TestOccupancy:
    def test_full_vector(self):
        assert SimdDevice(4).mean_occupancy(8) == 1.0

    def test_partial_tail(self):
        # 5 items in 2 firings of 4 lanes -> 5/8.
        assert SimdDevice(4).mean_occupancy(5) == pytest.approx(5 / 8)

    def test_zero(self):
        assert SimdDevice(4).mean_occupancy(0) == 0.0

    @given(n=st.integers(0, 10_000), v=st.integers(1, 256))
    def test_property_occupancy_bounds(self, n, v):
        occ = SimdDevice(v).mean_occupancy(n)
        assert 0.0 <= occ <= 1.0
        if n > 0:
            # Occupancy can never fall below 1/v per firing... more
            # precisely n/(ceil(n/v)*v) > (n/(n+v-1)) * something; check
            # the exact identity instead.
            f = SimdDevice(v).firings_for(n)
            assert occ == pytest.approx(n / (f * v))
