"""Edge cases cutting across optimizer and simulator.

Zero-gain (stream-killing) nodes, non-default SIMD widths, and the
same-mean property of the bursty gain variant used by ablations A3/A6.
"""

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.core.enforced_waits import solve_enforced_waits
from repro.core.model import RealTimeProblem
from repro.core.monolithic import solve_monolithic
from repro.dataflow.gains import BernoulliGain, DeterministicGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.sim.enforced import EnforcedWaitsSimulator


class TestZeroGainNode:
    """A node that annihilates the stream mid-pipeline."""

    @pytest.fixture
    def killer_pipeline(self):
        return PipelineSpec(
            (
                NodeSpec("head", 5.0, BernoulliGain(0.5)),
                NodeSpec("killer", 7.0, DeterministicGain(0)),
                NodeSpec("starved", 3.0, DeterministicGain(1)),
            ),
            vector_width=4,
        )

    def test_optimizer_handles_zero_gain(self, killer_pipeline):
        sol = solve_enforced_waits(
            RealTimeProblem(killer_pipeline, 10.0, 1e4), np.ones(3)
        )
        assert sol.feasible
        # The starved node has no chain cap (g=0 disables it); its period
        # is limited only by the deadline budget.
        assert sol.periods[2] > killer_pipeline.service_times[2]

    def test_monolithic_handles_zero_gain(self, killer_pipeline):
        sol = solve_monolithic(RealTimeProblem(killer_pipeline, 10.0, 1e4))
        assert sol.feasible
        # G = (1, 0.5, 0): the starved stage contributes no firings.
        assert killer_pipeline.total_gains[2] == 0.0

    def test_simulation_drains_with_no_outputs(self, killer_pipeline):
        metrics = EnforcedWaitsSimulator(
            killer_pipeline,
            np.zeros(3),
            FixedRateArrivals(5.0),
            1e6,
            500,
            seed=0,
        ).run()
        assert metrics.outputs == 0
        assert metrics.missed_items == 0  # no outputs -> nothing late
        assert metrics.firings[2] > 0  # starved node still fires (empty)
        assert metrics.empty_firings[2] == metrics.firings[2]


class TestNonDefaultWidth:
    """Nothing may hardcode v = 128."""

    @pytest.mark.parametrize("v", [8, 32])
    def test_prediction_matches_simulation(self, v):
        pipeline = PipelineSpec.from_arrays(
            [40.0, 90.0, 25.0], [0.6, 1.7, 0.4], v
        )
        tau0 = 3.0 * pipeline.service_times[0] / v * 4
        deadline = 60.0 * float(pipeline.service_times.sum())
        sol = solve_enforced_waits(
            RealTimeProblem(pipeline, tau0, deadline), np.full(3, 3.0)
        )
        assert sol.feasible
        metrics = EnforcedWaitsSimulator(
            pipeline,
            sol.waits,
            FixedRateArrivals(tau0),
            deadline,
            4000,
            seed=1,
        ).run()
        assert metrics.active_fraction == pytest.approx(
            sol.active_fraction, rel=0.08
        )
        assert metrics.miss_rate < 0.02

    def test_head_cap_uses_actual_width(self):
        pipeline = PipelineSpec.from_arrays([50.0], [1.0], 8)
        # x_0 <= 8 * tau0 and x_0 >= 50 -> infeasible below tau0 = 6.25.
        assert not solve_enforced_waits(
            RealTimeProblem(pipeline, 6.0, 1e4), np.ones(1)
        ).feasible
        assert solve_enforced_waits(
            RealTimeProblem(pipeline, 6.5, 1e4), np.ones(1)
        ).feasible


class TestBurstyVariant:
    """The A3/A6 bursty mixture must preserve every node's mean gain."""

    def test_means_preserved(self, blast):
        from repro.experiments.ablations import _bursty_variant

        bursty = _bursty_variant(blast)
        # Nominal means are preserved exactly; the loud Poisson component
        # loses a hair of realized mean to censoring at u=16 (<0.1%).
        assert np.allclose(
            bursty.mean_gains, blast.mean_gains, rtol=1e-3
        )

    def test_variance_not_decreased(self, blast):
        from repro.experiments.ablations import _bursty_variant

        bursty = _bursty_variant(blast)
        for orig, burst in zip(blast.nodes, bursty.nodes):
            assert burst.gain.variance >= orig.gain.variance - 1e-12

    def test_expander_censoring_limit_kept(self, blast):
        from repro.experiments.ablations import _bursty_variant

        bursty = _bursty_variant(blast)
        assert bursty.nodes[1].gain.max_outputs <= 16
