"""Tests for the DAG-generalized enforced-waits optimization
(repro.core.dag)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dag import (
    DagEnforcedWaitsProblem,
    DagEnforcedWaitsSolution,
    DagRealTimeProblem,
    dag_optimistic_b,
    solve_enforced_waits_dag,
)
from repro.core.enforced_waits import (
    EnforcedWaitsProblem,
    optimistic_b,
    solve_enforced_waits,
)
from repro.core.model import RealTimeProblem
from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
)
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SolverError, SpecError


def _chain() -> PipelineSpec:
    return PipelineSpec(
        nodes=(
            NodeSpec("a", service_time=2.0, gain=CensoredPoissonGain(1.4, 6)),
            NodeSpec("b", service_time=1.0, gain=BernoulliGain(0.7)),
            NodeSpec("c", service_time=1.5, gain=DeterministicGain(1)),
        ),
        vector_width=16,
    )


def _diamond() -> DataflowGraph:
    """Branching diamond: s splits 0.6/0.4 to l/r which merge into t."""
    g = DataflowGraph(16)
    g.add_node(NodeSpec("s", 1.5, DeterministicGain(1)))
    g.add_node(NodeSpec("l", 1.0, BernoulliGain(0.8)))
    g.add_node(NodeSpec("r", 2.0, CensoredPoissonGain(1.3, 6)))
    g.add_node(NodeSpec("t", 1.2, DeterministicGain(1)))
    g.add_edge("s", "l", BernoulliGain(0.6))
    g.add_edge("s", "r", BernoulliGain(0.4))
    g.add_edge("l", "t")
    g.add_edge("r", "t")
    return g


class TestProblemSpec:
    def test_rejects_non_graph(self):
        with pytest.raises(SpecError, match="DataflowGraph"):
            DagRealTimeProblem("nope", 1.0, 10.0)

    def test_rejects_nonpositive_parameters(self):
        g = _diamond()
        with pytest.raises(SpecError):
            DagRealTimeProblem(g, 0.0, 10.0)
        with pytest.raises(SpecError):
            DagRealTimeProblem(g, 1.0, -1.0)

    def test_validates_graph_shape(self):
        g = DataflowGraph(8)
        with pytest.raises(SpecError, match="empty"):
            DagRealTimeProblem(g, 1.0, 10.0)

    def test_as_chain_problem(self):
        g = DataflowGraph.from_pipeline(_chain())
        p = DagRealTimeProblem(g, 0.5, 200.0).as_chain_problem()
        assert isinstance(p, RealTimeProblem)
        assert p.tau0 == 0.5 and p.deadline == 200.0


class TestOptimisticB:
    def test_chain_matches_paper_rule(self):
        pipe = _chain()
        g = DataflowGraph.from_pipeline(pipe)
        np.testing.assert_array_equal(dag_optimistic_b(g), optimistic_b(pipe))

    def test_diamond_uses_max_out_edge_gain(self):
        b = dag_optimistic_b(_diamond())
        # s: max(0.6, 0.4) -> 1; l: 0.8 -> 1; r: 1.3 -> ceil = 2;
        # t (sink): its own gain 1 -> 1.
        np.testing.assert_array_equal(b, [1.0, 1.0, 2.0, 1.0])


class TestChainDelegation:
    def test_chain_graph_waterfill_failure_delegates_too(self):
        """This operating point makes the waterfill relaxation violate
        the chain constraints; the DAG wrapper must surface the exact
        same SolverError the chain path raises."""
        with pytest.raises(SolverError, match="waterfill relaxation"):
            solve_enforced_waits(
                RealTimeProblem(_chain(), 0.5, 200.0), method="waterfill"
            )
        with pytest.raises(SolverError, match="waterfill relaxation"):
            solve_enforced_waits_dag(
                DagRealTimeProblem(
                    DataflowGraph.from_pipeline(_chain()), 0.5, 200.0
                ),
                method="waterfill",
            )

    @pytest.mark.parametrize("method", ["auto", "interior", "fallback"])
    def test_chain_graph_solves_bit_identical(self, method):
        pipe = _chain()
        chain_sol = solve_enforced_waits(
            RealTimeProblem(pipe, 0.5, 200.0), method=method
        )
        dag_sol = solve_enforced_waits_dag(
            DagRealTimeProblem(
                DataflowGraph.from_pipeline(pipe), 0.5, 200.0
            ),
            method=method,
        )
        assert isinstance(dag_sol, DagEnforcedWaitsSolution)
        assert dag_sol.method == chain_sol.method
        np.testing.assert_array_equal(dag_sol.periods, chain_sol.periods)
        np.testing.assert_array_equal(dag_sol.waits, chain_sol.waits)
        assert dag_sol.active_fraction == chain_sol.active_fraction
        assert dag_sol.binding == chain_sol.binding
        assert dag_sol.order == ("a", "b", "c")

    def test_chain_b_matches(self):
        pipe = _chain()
        dewp = DagEnforcedWaitsProblem(
            DagRealTimeProblem(DataflowGraph.from_pipeline(pipe), 0.5, 200.0)
        )
        ewp = EnforcedWaitsProblem(RealTimeProblem(pipe, 0.5, 200.0))
        assert dewp.is_chain
        np.testing.assert_array_equal(dewp.b, ewp.b)

    def test_infeasible_chain_diagnosis_matches(self):
        pipe = _chain()
        chain_sol = solve_enforced_waits(RealTimeProblem(pipe, 0.5, 1.0))
        dag_sol = solve_enforced_waits_dag(
            DagRealTimeProblem(DataflowGraph.from_pipeline(pipe), 0.5, 1.0)
        )
        assert not chain_sol.feasible and not dag_sol.feasible
        assert dag_sol.diagnosis == chain_sol.diagnosis
        assert dag_sol.waits_by_name == {}


class TestConstraintSystem:
    def test_diamond_rows_and_labels(self):
        dewp = DagEnforcedWaitsProblem(
            DagRealTimeProblem(_diamond(), 0.6, 300.0)
        )
        A, c, labels = dewp.constraint_system()
        assert labels[0] == "head_rate"
        np.testing.assert_array_equal(A[0], [1.0, 0.0, 0.0, 0.0])
        assert c[0] == pytest.approx(16 * 0.6)

        # Edge rows: in-degree-1 edges carry raw chain coefficients.
        i = labels.index("edge_s->l")
        np.testing.assert_allclose(A[i], [-1.0, 0.6, 0.0, 0.0])
        assert c[i] == 0.0
        i = labels.index("edge_s->r")
        np.testing.assert_allclose(A[i], [-1.0, 0.0, 0.4, 0.0])

        # Fan-in edges split t's budget by expected-flow share alpha_e.
        gains = _diamond().total_gains()
        g_lt = 0.8
        g_rt = CensoredPoissonGain(1.3, 6).mean
        alpha_lt = g_lt * gains["l"] / gains["t"]
        alpha_rt = g_rt * gains["r"] / gains["t"]
        assert alpha_lt + alpha_rt == pytest.approx(1.0)
        i = labels.index("edge_l->t")
        np.testing.assert_allclose(A[i], [0.0, -alpha_lt, 0.0, g_lt])
        i = labels.index("edge_r->t")
        np.testing.assert_allclose(A[i], [0.0, 0.0, -alpha_rt, g_rt])

        # One deadline row per source->sink path, b-weighted.
        i = labels.index("deadline[s->l->t]")
        np.testing.assert_allclose(A[i], dewp.b * [1.0, 1.0, 0.0, 1.0])
        assert c[i] == 300.0
        i = labels.index("deadline[s->r->t]")
        np.testing.assert_allclose(A[i], dewp.b * [1.0, 0.0, 1.0, 1.0])

        for name in ("s", "l", "r", "t"):
            assert f"wait_nonneg_{name}" in labels

    def test_zero_flow_edge_carries_no_row(self):
        g = DataflowGraph(8)
        g.add_node(NodeSpec("s", 1.0, DeterministicGain(1)))
        g.add_node(NodeSpec("l", 1.0, DeterministicGain(1)))
        g.add_node(NodeSpec("r", 1.0, DeterministicGain(1)))
        g.add_node(NodeSpec("t", 1.0, DeterministicGain(1)))
        g.add_edge("s", "l", DeterministicGain(1))
        g.add_edge("s", "r", DeterministicGain(0))  # dead branch
        g.add_edge("l", "t")
        g.add_edge("r", "t")
        dewp = DagEnforcedWaitsProblem(DagRealTimeProblem(g, 1.0, 100.0))
        _, _, labels = dewp.constraint_system()
        assert "edge_r->t" not in labels
        assert "edge_s->r" in labels  # in-degree-1: kept as a chain row


class TestFeasibility:
    def test_head_overload_diagnosed(self):
        dewp = DagEnforcedWaitsProblem(
            DagRealTimeProblem(_diamond(), 0.01, 300.0)
        )
        feas = dewp.feasibility()
        assert not feas.feasible
        assert "cannot keep up" in feas.diagnosis

    def test_tight_deadline_names_offending_path(self):
        dewp = DagEnforcedWaitsProblem(
            DagRealTimeProblem(_diamond(), 0.6, 5.0)
        )
        feas = dewp.feasibility()
        assert not feas.feasible
        assert "deadline too tight on path s->" in feas.diagnosis

    def test_minimal_periods_respect_edges(self):
        dewp = DagEnforcedWaitsProblem(
            DagRealTimeProblem(_diamond(), 0.6, 300.0)
        )
        x = dewp.minimal_periods()
        assert (x >= dewp.t).all()
        for e in dewp.edges:
            assert e.gain * x[e.dst] <= e.coeff_u * x[e.src] * (1 + 1e-9)


class TestSolve:
    def test_diamond_solution_satisfies_all_constraints(self):
        dewp = DagEnforcedWaitsProblem(
            DagRealTimeProblem(_diamond(), 0.6, 300.0)
        )
        sol = dewp.solve()
        assert sol.feasible and sol.method == "dag-interior"
        A, c, _ = dewp.constraint_system()
        assert (A @ sol.periods <= c + 1e-6).all()
        assert (sol.waits >= 0).all()
        assert set(sol.waits_by_name) == {"s", "l", "r", "t"}
        assert 0 < sol.active_fraction < 1

    def test_interior_and_slsqp_agree(self):
        prob = DagRealTimeProblem(_diamond(), 0.6, 300.0)
        a = solve_enforced_waits_dag(prob, method="interior")
        b = solve_enforced_waits_dag(prob, method="slsqp")
        assert a.feasible and b.feasible
        assert a.active_fraction == pytest.approx(
            b.active_fraction, rel=1e-4
        )

    def test_chain_only_methods_rejected_on_branching_graphs(self):
        prob = DagRealTimeProblem(_diamond(), 0.6, 300.0)
        for method in ("waterfill", "fallback"):
            with pytest.raises(SolverError, match="chain-shaped"):
                solve_enforced_waits_dag(prob, method=method)

    def test_unknown_method_rejected(self):
        with pytest.raises(SpecError, match="unknown method"):
            solve_enforced_waits_dag(
                DagRealTimeProblem(_diamond(), 0.6, 300.0), method="zzz"
            )

    def test_infeasible_diamond_reports_diagnosis(self):
        sol = solve_enforced_waits_dag(
            DagRealTimeProblem(_diamond(), 0.6, 5.0)
        )
        assert not sol.feasible
        assert "deadline too tight" in sol.diagnosis
        assert sol.periods_by_name == {}

    def test_bad_b_rejected(self):
        prob = DagRealTimeProblem(_diamond(), 0.6, 300.0)
        with pytest.raises(SpecError, match="length"):
            DagEnforcedWaitsProblem(prob, np.ones(3))
        with pytest.raises(SpecError, match="> 0"):
            DagEnforcedWaitsProblem(prob, np.asarray([1.0, 1.0, -1.0, 1.0]))
