"""Tests for the occupancy tracker."""

import math

import pytest

from repro.simd.occupancy import OccupancyTracker


def test_initial_state():
    tr = OccupancyTracker("n0", 4)
    assert tr.firings == 0
    assert math.isnan(tr.mean_occupancy)


def test_record_and_aggregate():
    tr = OccupancyTracker("n0", 4)
    tr.record_firing(4, 10.0)
    tr.record_firing(2, 10.0)
    tr.record_firing(0, 10.0)
    assert tr.firings == 3
    assert tr.empty_firings == 1
    assert tr.items_consumed == 6
    assert tr.active_time == 30.0
    assert tr.mean_occupancy == pytest.approx(6 / 12)
    assert tr.mean_occupancy_nonempty == pytest.approx(6 / 8)


def test_histogram():
    tr = OccupancyTracker("n0", 2)
    tr.record_firing(0, 1.0)
    tr.record_firing(2, 1.0)
    tr.record_firing(2, 1.0)
    assert tr.histogram().tolist() == [1, 0, 2]


def test_vacation_charge_zero_allowed():
    tr = OccupancyTracker("n0", 4)
    tr.record_firing(0, 0.0)
    assert tr.active_time == 0.0


def test_rejects_out_of_range():
    tr = OccupancyTracker("n0", 4)
    with pytest.raises(ValueError):
        tr.record_firing(5, 1.0)
    with pytest.raises(ValueError):
        tr.record_firing(-1, 1.0)
    with pytest.raises(ValueError):
        tr.record_firing(1, -1.0)


def test_all_empty_nonempty_occupancy_nan():
    tr = OccupancyTracker("n0", 4)
    tr.record_firing(0, 1.0)
    assert math.isnan(tr.mean_occupancy_nonempty)


def test_record_firings_bit_identical_to_loop():
    """The batched path must match per-firing recording bit-for-bit.

    Sequential float accumulation of active time is order-dependent, so
    the vectorized path reproduces the exact rounding sequence.
    """
    import numpy as np

    consumed = np.asarray([4, 4, 4, 2, 0, 3, 4, 1] * 40, dtype=np.int64)
    a = OccupancyTracker("a", 4)
    b = OccupancyTracker("b", 4)
    for c in consumed:
        a.record_firing(int(c), 0.1)  # 0.1 is not exactly representable
    b.record_firings(consumed, 0.1)
    assert a.firings == b.firings
    assert a.empty_firings == b.empty_firings
    assert a.items_consumed == b.items_consumed
    assert a.active_time == b.active_time  # bitwise
    assert a.mean_occupancy == b.mean_occupancy
    assert np.array_equal(a.histogram(), b.histogram())


def test_record_firings_rejects_out_of_range():
    import numpy as np

    tr = OccupancyTracker("n0", 4)
    with pytest.raises(ValueError):
        tr.record_firings(np.asarray([1, 5]), 1.0)
    with pytest.raises(ValueError):
        tr.record_firings(np.asarray([-1]), 1.0)


def test_record_firings_empty_is_noop():
    import numpy as np

    tr = OccupancyTracker("n0", 4)
    tr.record_firings(np.asarray([], dtype=np.int64), 1.0)
    assert tr.firings == 0
