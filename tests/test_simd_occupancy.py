"""Tests for the occupancy tracker."""

import math

import pytest

from repro.simd.occupancy import OccupancyTracker


def test_initial_state():
    tr = OccupancyTracker("n0", 4)
    assert tr.firings == 0
    assert math.isnan(tr.mean_occupancy)


def test_record_and_aggregate():
    tr = OccupancyTracker("n0", 4)
    tr.record_firing(4, 10.0)
    tr.record_firing(2, 10.0)
    tr.record_firing(0, 10.0)
    assert tr.firings == 3
    assert tr.empty_firings == 1
    assert tr.items_consumed == 6
    assert tr.active_time == 30.0
    assert tr.mean_occupancy == pytest.approx(6 / 12)
    assert tr.mean_occupancy_nonempty == pytest.approx(6 / 8)


def test_histogram():
    tr = OccupancyTracker("n0", 2)
    tr.record_firing(0, 1.0)
    tr.record_firing(2, 1.0)
    tr.record_firing(2, 1.0)
    assert tr.histogram().tolist() == [1, 0, 2]


def test_vacation_charge_zero_allowed():
    tr = OccupancyTracker("n0", 4)
    tr.record_firing(0, 0.0)
    assert tr.active_time == 0.0


def test_rejects_out_of_range():
    tr = OccupancyTracker("n0", 4)
    with pytest.raises(ValueError):
        tr.record_firing(5, 1.0)
    with pytest.raises(ValueError):
        tr.record_firing(-1, 1.0)
    with pytest.raises(ValueError):
        tr.record_firing(1, -1.0)


def test_all_empty_nonempty_occupancy_nan():
    tr = OccupancyTracker("n0", 4)
    tr.record_firing(0, 1.0)
    assert math.isnan(tr.mean_occupancy_nonempty)
