"""Tests for the run telemetry layer (repro.obs)."""

import math
import pickle

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.obs import (
    EngineTelemetry,
    NodeTelemetry,
    RunTelemetry,
    TelemetryCollector,
)
from repro.sim.adaptive import AdaptiveWaitsSimulator
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.monolithic import MonolithicSimulator
from repro.sim.report import summarize_telemetry


class TestCollector:
    def test_rejects_bad_vector_width(self):
        with pytest.raises(ValueError):
            TelemetryCollector(["a"], 0)

    def test_hooks_aggregate_into_node_telemetry(self):
        col = TelemetryCollector(["a", "b"], vector_width=4)
        # Node a: two firings, one empty, over a makespan of 10.
        col.on_enqueue(0, 0.0, pushed=4, qlen=4)
        col.on_fire(0, 1.0, consumed=4, qlen=0)
        col.on_complete(0, 3.0, duration=2.0)
        col.on_fire(0, 5.0, consumed=0, qlen=0)
        col.on_complete(0, 6.0, duration=1.0)
        tel = col.finalize(
            strategy="unit", makespan=10.0, events_processed=7, wall_time=0.5
        )
        assert tel.strategy == "unit"
        a = tel.nodes[0]
        assert a.firings == 2
        assert a.empty_firings == 1
        assert a.items_consumed == 4
        assert a.mean_occupancy == pytest.approx(0.5)  # (1.0 + 0.0) / 2
        assert a.service_time == pytest.approx(3.0)
        assert a.wait_time == pytest.approx(7.0)
        assert a.queue_hwm == 4
        assert a.queue_hwm_vectors == pytest.approx(1.0)
        assert a.queue_pushed == 4
        assert a.queue_popped == 4
        # Queue held 4 items over [0,1), empty afterwards.
        assert a.queue_time_avg == pytest.approx(4.0 * 1.0 / 10.0)
        # Node b never fired.
        b = tel.nodes[1]
        assert b.firings == 0
        assert math.isnan(b.mean_occupancy)
        assert b.service_time == 0.0

    def test_finalize_with_zero_makespan(self):
        col = TelemetryCollector(["a"], vector_width=2)
        tel = col.finalize(
            strategy="unit", makespan=0.0, events_processed=0, wall_time=0.0
        )
        assert math.isnan(tel.nodes[0].wait_time)
        assert math.isnan(tel.nodes[0].queue_time_avg)


class TestEngineTelemetry:
    def test_derived_rates(self):
        eng = EngineTelemetry(events_processed=100, sim_time=50.0, wall_time=2.0)
        assert eng.events_per_wall_second == pytest.approx(50.0)
        assert eng.wall_time_per_sim_second == pytest.approx(0.04)

    def test_rates_nan_on_zero_denominator(self):
        eng = EngineTelemetry(events_processed=0, sim_time=0.0, wall_time=0.0)
        assert math.isnan(eng.events_per_wall_second)
        assert math.isnan(eng.wall_time_per_sim_second)


class TestRender:
    def _telemetry(self):
        node = NodeTelemetry(
            name="scan",
            firings=10,
            empty_firings=1,
            items_consumed=36,
            mean_occupancy=0.9,
            service_time=40.0,
            wait_time=60.0,
            queue_hwm=12,
            queue_hwm_vectors=3.0,
            queue_time_avg=2.5,
            queue_pushed=36,
            queue_popped=36,
        )
        eng = EngineTelemetry(events_processed=50, sim_time=100.0, wall_time=0.1)
        return RunTelemetry(strategy="enforced", nodes=(node,), engine=eng)

    def test_render_mentions_nodes_and_engine(self):
        text = self._telemetry().render()
        assert "run telemetry (enforced)" in text
        assert "scan" in text
        assert "engine: 50 events" in text

    def test_summarize_telemetry_delegates(self):
        tel = self._telemetry()
        assert summarize_telemetry(tel) == tel.render()


class TestSimulatorIntegration:
    def _enforced(self, pipeline, *, telemetry, seed=3):
        return EnforcedWaitsSimulator(
            pipeline,
            np.zeros(pipeline.n_nodes),
            FixedRateArrivals(10.0),
            1e6,
            300,
            seed=seed,
            telemetry=telemetry,
        )

    def test_enforced_attaches_telemetry(self, tiny_pipeline):
        m = self._enforced(tiny_pipeline, telemetry=True).run()
        tel = m.extra["telemetry"]
        assert isinstance(tel, RunTelemetry)
        assert tel.strategy == "enforced"
        assert [n.name for n in tel.nodes] == ["a", "b"]
        # Telemetry cross-checks against the metrics' own aggregates.
        assert [n.firings for n in tel.nodes] == list(m.firings)
        assert [n.empty_firings for n in tel.nodes] == list(m.empty_firings)
        np.testing.assert_allclose(
            [n.queue_hwm_vectors for n in tel.nodes], m.queue_hwm_vectors
        )
        assert tel.engine.sim_time == pytest.approx(m.makespan)
        assert tel.engine.events_processed > 0
        assert tel.engine.wall_time > 0

    def test_enforced_off_by_default(self, tiny_pipeline):
        m = self._enforced(tiny_pipeline, telemetry=False).run()
        assert "telemetry" not in m.extra

    def test_telemetry_is_passive(self, tiny_pipeline):
        """Collection must not perturb the simulation (no RNG, no queue)."""
        plain = self._enforced(tiny_pipeline, telemetry=False).run()
        observed = self._enforced(tiny_pipeline, telemetry=True).run()
        assert plain.outputs == observed.outputs
        assert plain.makespan == observed.makespan
        assert plain.mean_latency == observed.mean_latency
        assert plain.active_fraction == observed.active_fraction
        np.testing.assert_array_equal(plain.firings, observed.firings)

    def test_adaptive_attaches_telemetry(self, tiny_pipeline):
        m = AdaptiveWaitsSimulator(
            tiny_pipeline,
            np.zeros(tiny_pipeline.n_nodes),
            FixedRateArrivals(10.0),
            1e6,
            200,
            seed=1,
            telemetry=True,
        ).run()
        tel = m.extra["telemetry"]
        assert tel.strategy.startswith("adaptive:")
        assert [n.firings for n in tel.nodes] == list(m.firings)

    def test_monolithic_attaches_telemetry(self, tiny_pipeline):
        m = MonolithicSimulator(
            tiny_pipeline,
            8,
            FixedRateArrivals(10.0),
            1e6,
            200,
            seed=1,
            telemetry=True,
        ).run()
        tel = m.extra["telemetry"]
        assert tel.strategy == "monolithic"
        assert tel.nodes[0].queue_hwm >= 0
        assert tel.engine.sim_time == pytest.approx(m.makespan)

    def test_telemetry_pickles(self, tiny_pipeline):
        tel = self._enforced(tiny_pipeline, telemetry=True).run().extra[
            "telemetry"
        ]
        clone = pickle.loads(pickle.dumps(tel))
        assert clone == tel


class TestExport:
    def _telemetry(self, tiny_pipeline):
        sim = EnforcedWaitsSimulator(
            tiny_pipeline,
            np.zeros(tiny_pipeline.n_nodes),
            FixedRateArrivals(10.0),
            1e6,
            200,
            seed=0,
            telemetry=True,
        )
        return sim.run()

    def test_telemetry_to_dict_schema(self, tiny_pipeline):
        from repro.experiments.export import telemetry_to_dict

        tel = self._telemetry(tiny_pipeline).extra["telemetry"]
        d = telemetry_to_dict(tel)
        assert d["strategy"] == "enforced"
        assert {n["name"] for n in d["nodes"]} == {"a", "b"}
        for rec in d["nodes"]:
            assert {"firings", "queue_hwm", "service_time"} <= set(rec)
        assert d["engine"]["events_processed"] > 0
        assert "events_per_wall_second" in d["engine"]

    def test_telemetry_json_and_csv_roundtrip(self, tiny_pipeline, tmp_path):
        import csv
        import json

        from repro.experiments.export import (
            save_json,
            telemetry_to_csv,
            telemetry_to_dict,
        )

        tel = self._telemetry(tiny_pipeline).extra["telemetry"]
        jpath = save_json(telemetry_to_dict(tel), tmp_path / "t.json")
        loaded = json.loads(jpath.read_text())
        assert loaded["nodes"][0]["firings"] == tel.nodes[0].firings
        cpath = telemetry_to_csv(tel, tmp_path / "t.csv")
        with cpath.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert int(rows[0]["firings"]) == tel.nodes[0].firings

    def test_metrics_to_dict_embeds_telemetry(self, tiny_pipeline):
        from repro.experiments.export import metrics_to_dict

        m = self._telemetry(tiny_pipeline)
        d = metrics_to_dict(m)
        assert isinstance(d["extra"]["telemetry"], dict)
        assert d["extra"]["telemetry"]["strategy"] == "enforced"

    def test_trials_to_dict_records_outcomes(self, tiny_pipeline):
        from repro.experiments.export import trials_to_dict
        from repro.sim.runner import run_trials

        def factory(seed):
            if seed == 1:
                raise RuntimeError("nope")
            return EnforcedWaitsSimulator(
                tiny_pipeline,
                np.zeros(tiny_pipeline.n_nodes),
                FixedRateArrivals(10.0),
                1e6,
                200,
                seed=seed,
            )

        trials = run_trials(factory, 3, catch_failures=True)
        d = trials_to_dict(trials)
        assert d["n_ok"] == 2
        assert d["n_failed"] == 1
        statuses = [o["status"] for o in d["outcomes"]]
        assert statuses == ["ok", "failed", "ok"]
        assert d["outcomes"][1]["metrics"] is None
        assert "RuntimeError" in d["outcomes"][1]["error"]
