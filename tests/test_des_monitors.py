"""Tests for statistics monitors."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des.monitors import Accumulator, Counter, TimeWeighted


class TestCounter:
    def test_counts(self):
        c = Counter("items")
        c.increment()
        c.increment(5)
        assert c.count == 6

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestAccumulator:
    def test_empty_stats_are_nan(self):
        acc = Accumulator("x")
        assert math.isnan(acc.mean)
        assert math.isnan(acc.min)
        assert math.isnan(acc.variance)

    def test_basic_moments(self):
        acc = Accumulator("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            acc.add(v)
        assert acc.n == 4
        assert acc.mean == pytest.approx(2.5)
        assert acc.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert acc.min == 1.0 and acc.max == 4.0
        assert acc.total == pytest.approx(10.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_welford_matches_numpy(self, xs):
        acc = Accumulator("x")
        for v in xs:
            acc.add(v)
        assert acc.mean == pytest.approx(float(np.mean(xs)), abs=1e-6, rel=1e-9)
        assert acc.variance == pytest.approx(
            float(np.var(xs, ddof=1)), abs=1e-4, rel=1e-6
        )

    @given(st.lists(st.floats(-1e6, 1e6), max_size=200))
    def test_add_many_bit_identical_to_add(self, xs):
        """add_many must reproduce repeated add() bit-for-bit.

        Welford's recurrence is order-dependent, so the batch path keeps
        the exact sequential update; seed-for-seed simulator equivalence
        relies on this.
        """
        a = Accumulator("a")
        b = Accumulator("b")
        for v in xs:
            a.add(v)
        b.add_many(np.asarray(xs))
        assert a.n == b.n
        if xs:
            assert a.mean == b.mean  # bitwise, no approx
            assert a.min == b.min
            assert a.max == b.max
        if len(xs) >= 2:  # sample variance is NaN below n=2
            assert a.variance == b.variance

    def test_add_many_split_batches_match_single_batch(self):
        xs = np.linspace(0.0, 1.0, 101) ** 2
        a = Accumulator("a")
        b = Accumulator("b")
        a.add_many(xs)
        b.add_many(xs[:40])
        b.add_many(xs[40:])
        assert a.mean == b.mean
        assert a.variance == b.variance

    def test_add_many_extends_kept_samples(self):
        acc = Accumulator("x", keep_samples=True)
        acc.add(5.0)
        acc.add_many(np.asarray([1.0, 9.0]))
        assert acc.quantile(0.5) == 5.0
        assert acc.n == 3

    def test_add_many_empty_is_noop(self):
        acc = Accumulator("x")
        acc.add_many(np.asarray([]))
        assert acc.n == 0
        assert math.isnan(acc.mean)

    def test_quantile_requires_samples(self):
        acc = Accumulator("x")
        acc.add(1.0)
        with pytest.raises(ValueError, match="keep_samples"):
            acc.quantile(0.5)

    def test_quantile_interpolates(self):
        acc = Accumulator("x", keep_samples=True)
        for v in (0.0, 10.0):
            acc.add(v)
        assert acc.quantile(0.5) == pytest.approx(5.0)
        assert acc.quantile(0.0) == 0.0
        assert acc.quantile(1.0) == 10.0

    def test_quantile_range_checked(self):
        acc = Accumulator("x", keep_samples=True)
        with pytest.raises(ValueError):
            acc.quantile(1.5)

    def test_quantile_cache_invalidated_by_interleaved_adds(self):
        # Regression: the sorted view is cached between queries and must
        # be rebuilt after add(), not reused stale.
        rng = np.random.default_rng(7)
        acc = Accumulator("x", keep_samples=True)
        reference: list[float] = []
        for batch in range(5):
            for v in rng.normal(size=20):
                acc.add(float(v))
                reference.append(float(v))
            for q in (0.0, 0.25, 0.5, 0.9, 1.0):
                expected = float(np.quantile(reference, q))
                # Repeated queries (cache hits) must agree with each
                # other and with the freshly-computed reference.
                first = acc.quantile(q)
                assert acc.quantile(q) == first
                assert first == pytest.approx(expected, rel=1e-12, abs=1e-12)

    def test_quantile_cache_not_shared_across_instances(self):
        a = Accumulator("a", keep_samples=True)
        b = Accumulator("b", keep_samples=True)
        a.add(1.0)
        b.add(100.0)
        assert a.quantile(0.5) == 1.0
        assert b.quantile(0.5) == 100.0


class TestTimeWeighted:
    def test_time_average_of_step_signal(self):
        tw = TimeWeighted("q", initial=0.0)
        tw.update(10.0, 4.0)  # 0 over [0,10)
        tw.update(20.0, 0.0)  # 4 over [10,20)
        assert tw.time_average(20.0) == pytest.approx(2.0)

    def test_average_extends_current_value(self):
        tw = TimeWeighted("q", initial=2.0)
        assert tw.time_average(10.0) == pytest.approx(2.0)

    def test_max_tracked(self):
        tw = TimeWeighted("q")
        tw.update(1.0, 7.0)
        tw.update(2.0, 3.0)
        assert tw.max == 7.0

    def test_time_cannot_reverse(self):
        tw = TimeWeighted("q")
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 2.0)

    def test_zero_span_average_is_nan(self):
        assert math.isnan(TimeWeighted("q").time_average(0.0))
