"""Seed-for-seed equivalence of the vectorized simulators vs references.

The vectorized hot path (chunked arrival scheduling, ring-buffer queues,
batched ledger/tracker recording) is an *optimization*, not a model
change: for every seed it must produce bit-identical
:class:`~repro.sim.metrics.SimMetrics` — including telemetry extras — to
the frozen pre-change implementations in :mod:`repro.sim.reference`.

Legitimate divergences, excluded from comparison:

- ``engine.events_processed`` (chunked arrivals schedule fewer events);
- ``wall_time`` fields (nondeterministic);
- trace record *order* within a timestamp (timestamps themselves agree).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.arrivals.poisson import PoissonArrivals
from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
)
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.sim.adaptive import AdaptiveWaitsSimulator
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.monolithic import MonolithicSimulator
from repro.sim.reference import (
    ReferenceAdaptiveSimulator,
    ReferenceEnforcedSimulator,
    ReferenceMonolithicSimulator,
)

SEEDS = [0, 1, 7]
QUEUES = ["heap", "calendar"]

_SCALAR_FIELDS = (
    "strategy",
    "n_items",
    "makespan",
    "active_fraction",
    "missed_items",
    "miss_rate",
    "outputs",
    "mean_latency",
    "max_latency",
)
_ARRAY_FIELDS = (
    "active_time_per_node",
    "queue_hwm_vectors",
    "firings",
    "empty_firings",
    "mean_occupancy",
)


def _pipeline() -> PipelineSpec:
    """A three-node pipeline exercising growth, filtering and fan-out."""
    return PipelineSpec(
        nodes=(
            NodeSpec("a", service_time=1.0, gain=CensoredPoissonGain(1.2, 4)),
            NodeSpec("b", service_time=0.7, gain=BernoulliGain(0.8)),
            NodeSpec("c", service_time=0.5, gain=DeterministicGain(2)),
        ),
        vector_width=8,
    )


def _assert_bitwise_equal(sim_new, sim_ref, m_new, m_ref) -> None:
    for f in _SCALAR_FIELDS:
        a, b = getattr(m_new, f), getattr(m_ref, f)
        if isinstance(a, float) and math.isnan(a) and math.isnan(b):
            continue
        assert a == b, f"{f}: {a!r} != {b!r}"
    for f in _ARRAY_FIELDS:
        a, b = getattr(m_new, f), getattr(m_ref, f)
        assert np.array_equal(a, b, equal_nan=True), f"{f}: {a!r} != {b!r}"

    # Telemetry extras: every per-node counter/statistic, bitwise.
    ta = m_new.extra.get("telemetry")
    tb = m_ref.extra.get("telemetry")
    assert (ta is None) == (tb is None)
    if ta is not None:
        assert len(ta.nodes) == len(tb.nodes)
        for na, nb in zip(ta.nodes, tb.nodes):
            assert na == nb, f"node telemetry differs: {na!r} != {nb!r}"
        # events_processed legitimately differs (fewer arrival events);
        # wall_time is nondeterministic.  sim_time must agree exactly.
        assert ta.engine.sim_time == tb.engine.sim_time

    # Ledger internals, including the order-sensitive Welford moments.
    la, lb = sim_new.ledger, sim_ref.ledger
    assert la.outputs == lb.outputs
    assert la.late_outputs == lb.late_outputs
    assert la.missed_items == lb.missed_items
    assert la.items_with_output == lb.items_with_output
    if la.outputs:
        assert la.latency.mean == lb.latency.mean
        assert la.latency.std == lb.latency.std
        assert la.latency.min == lb.latency.min
        assert la.latency.max == lb.latency.max


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine_queue", QUEUES)
def test_enforced_bitwise_equivalent(seed, engine_queue):
    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=1500,
        seed=seed,
        telemetry=True,
    )
    s1 = EnforcedWaitsSimulator(
        _pipeline(), waits, **kw, engine_queue=engine_queue
    )
    s2 = ReferenceEnforcedSimulator(
        _pipeline(), waits, **kw, engine_queue=engine_queue
    )
    _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine_queue", QUEUES)
def test_adaptive_bitwise_equivalent(seed, engine_queue):
    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=1500,
        seed=seed,
        telemetry=True,
    )
    s1 = AdaptiveWaitsSimulator(
        _pipeline(), waits, **kw, engine_queue=engine_queue
    )
    s2 = ReferenceAdaptiveSimulator(
        _pipeline(), waits, **kw, engine_queue=engine_queue
    )
    _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


@pytest.mark.parametrize("seed", SEEDS)
def test_monolithic_bitwise_equivalent(seed):
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=80.0,
        n_items=1500,
        seed=seed,
        telemetry=True,
    )
    s1 = MonolithicSimulator(_pipeline(), 16, **kw)
    s2 = ReferenceMonolithicSimulator(_pipeline(), 16, **kw)
    _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


def test_enforced_saturated_regime_equivalent():
    """Overloaded pipeline: queues grow, drains span many items at once."""
    waits = np.asarray([0.0, 0.0, 0.0])
    kw = dict(
        arrivals=PoissonArrivals(0.2),  # 5 items per cycle: saturating
        deadline=10.0,
        n_items=800,
        seed=3,
        telemetry=True,
    )
    s1 = EnforcedWaitsSimulator(_pipeline(), waits, **kw)
    s2 = ReferenceEnforcedSimulator(_pipeline(), waits, **kw)
    _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


def test_enforced_gps_timing_equivalent():
    """GPS timing keeps the per-completion path; must still match."""
    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=80.0,
        n_items=600,
        seed=5,
        timing="gps",
        telemetry=True,
    )
    s1 = EnforcedWaitsSimulator(_pipeline(), waits, **kw)
    s2 = ReferenceEnforcedSimulator(_pipeline(), waits, **kw)
    _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


def test_enforced_disabled_resilience_kwargs_equivalent():
    """Resilience kwargs in their disabled states must stay bit-identical.

    An empty fault plan, no watchdog, and an unreachable queue bound all
    normalize to the plain fast path; the reference simulator has no such
    kwargs at all, so any residual behavioural coupling shows up here.
    """
    from repro.resilience import RuntimeFaultPlan

    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=1500,
        seed=2,
        telemetry=True,
    )
    for resilience_kw in (
        dict(runtime_faults=RuntimeFaultPlan(), watchdog=None),
        dict(queue_capacity=10**6),  # bounded but never overflows
        dict(
            runtime_faults=RuntimeFaultPlan(),
            queue_capacity=10**6,
            shed_policy="deadline-aware",
        ),
    ):
        s1 = EnforcedWaitsSimulator(_pipeline(), waits, **kw, **resilience_kw)
        s2 = ReferenceEnforcedSimulator(_pipeline(), waits, **kw)
        _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


def test_adaptive_disabled_resilience_kwargs_equivalent():
    from repro.resilience import RuntimeFaultPlan

    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=1500,
        seed=2,
        telemetry=True,
    )
    for resilience_kw in (
        dict(runtime_faults=RuntimeFaultPlan(), watchdog=None),
        dict(queue_capacity=10**6, shed_policy="drop-oldest"),
    ):
        s1 = AdaptiveWaitsSimulator(_pipeline(), waits, **kw, **resilience_kw)
        s2 = ReferenceAdaptiveSimulator(_pipeline(), waits, **kw)
        _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


def test_monolithic_empty_fault_plan_equivalent():
    from repro.resilience import RuntimeFaultPlan

    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=80.0,
        n_items=1500,
        seed=2,
        telemetry=True,
    )
    s1 = MonolithicSimulator(
        _pipeline(), 16, **kw, runtime_faults=RuntimeFaultPlan()
    )
    s2 = ReferenceMonolithicSimulator(_pipeline(), 16, **kw)
    _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


def test_adaptive_policies_equivalent():
    """Both early-fire policies must survive the chunked-arrival change."""
    waits = np.asarray([3.0, 2.0, 1.5])
    for policy in ("full-vector", "slack"):
        kw = dict(
            arrivals=PoissonArrivals(1.4),
            deadline=40.0,
            n_items=1000,
            seed=11,
            policy=policy,
            telemetry=True,
        )
        s1 = AdaptiveWaitsSimulator(_pipeline(), waits, **kw)
        s2 = ReferenceAdaptiveSimulator(_pipeline(), waits, **kw)
        _assert_bitwise_equal(s1, s2, s1.run(), s2.run())


# -- execution-backend matrix ------------------------------------------------
#
# The closed-form fast path (repro.sim.fastpath) replaces the event loop
# entirely when no observer needs per-event granularity.  Every
# available backend x engine queue x seed must stay bit-identical to
# the frozen reference — and the fast path must *actually* engage
# (events_processed == 0 is the tell; a silently-falling-back backend
# would vacuously pass the equality check).

from repro.simd.backend import available_backends, use_backend  # noqa: E402

BACKENDS = list(available_backends())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine_queue", QUEUES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_enforced_backend_matrix_bitwise_equivalent(
    seed, engine_queue, backend
):
    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=1500,
        seed=seed,
    )
    with use_backend(backend) as be:
        s1 = EnforcedWaitsSimulator(
            _pipeline(), waits, **kw, engine_queue=engine_queue
        )
        m1 = s1.run()
        assert (s1.engine.events_processed == 0) == be.fastpath
    s2 = ReferenceEnforcedSimulator(
        _pipeline(), waits, **kw, engine_queue=engine_queue
    )
    _assert_bitwise_equal(s1, s2, m1, s2.run())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine_queue", QUEUES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_dag_chain_backend_matrix_bitwise_equivalent(
    seed, engine_queue, backend
):
    """A chain-shaped DataflowGraph through the DAG simulator must stay
    bit-identical to the frozen chain reference on every backend —
    the DAG generalization is an extension, not a model change."""
    from repro.dataflow.graph import DataflowGraph
    from repro.sim.dag import DagEnforcedWaitsSimulator

    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=1500,
        seed=seed,
    )
    with use_backend(backend) as be:
        s1 = DagEnforcedWaitsSimulator(
            DataflowGraph.from_pipeline(_pipeline()),
            waits,
            **kw,
            engine_queue=engine_queue,
        )
        m1 = s1.run()
        assert (s1.engine.events_processed == 0) == be.fastpath
    s2 = ReferenceEnforcedSimulator(
        _pipeline(), waits, **kw, engine_queue=engine_queue
    )
    _assert_bitwise_equal(s1, s2, m1, s2.run())


@pytest.mark.parametrize("backend", BACKENDS)
def test_dag_chain_backend_matrix_queue_stats_agree(backend):
    from repro.dataflow.graph import DataflowGraph
    from repro.sim.dag import DagEnforcedWaitsSimulator

    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=800,
        seed=1,
    )
    with use_backend(backend):
        s1 = DagEnforcedWaitsSimulator(
            DataflowGraph.from_pipeline(_pipeline()), waits, **kw
        )
        s1.run()
    s2 = ReferenceEnforcedSimulator(_pipeline(), waits, **kw)
    s2.run()
    for q1, q2 in zip(s1.queues, s2.queues):
        assert q1.max_depth == q2.max_depth
        assert q1.total_pushed == q2.total_pushed
        assert q1.total_popped == q2.total_popped
        assert len(q1) == len(q2)


@pytest.mark.parametrize("backend", BACKENDS)
def test_enforced_backend_matrix_queue_stats_agree(backend):
    """Queue occupancy stats are read off the queue objects directly
    (e.g. by the overload capacity calibration), so the fast path must
    leave them exactly as the event loop would."""
    waits = np.asarray([3.0, 2.0, 1.5])
    kw = dict(
        arrivals=PoissonArrivals(1.4),
        deadline=40.0,
        n_items=800,
        seed=1,
    )
    with use_backend(backend):
        s1 = EnforcedWaitsSimulator(_pipeline(), waits, **kw)
        s1.run()
    s2 = ReferenceEnforcedSimulator(_pipeline(), waits, **kw)
    s2.run()
    for q1, q2 in zip(s1.queues, s2.queues):
        assert q1.max_depth == q2.max_depth
        assert q1.total_pushed == q2.total_pushed
        assert q1.total_popped == q2.total_popped
        assert len(q1) == len(q2)
