"""Tests for the bursty-arrival stress experiment (S1)."""

import numpy as np
import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.stress import _bursty_for, run_bursty_stress


def test_registered():
    assert "bursty-stress" in EXPERIMENTS


def test_bursty_stream_preserves_mean_rate():
    for intensity in (0.2, 0.5, 0.8):
        proc = _bursty_for(20.0, intensity)
        assert proc.mean_rate == pytest.approx(1 / 20.0, rel=1e-9)


class TestStress:
    @pytest.fixture(scope="class")
    def result(self):
        return run_bursty_stress(
            intensities=(0.0, 0.6), n_trials=4, n_items=6000
        )

    def test_fixed_rate_needs_no_inflation(self, result):
        assert result.required_s(0.0) == 1.0

    def test_strong_bursts_raise_required_s(self, result):
        assert result.required_s(0.6) >= result.required_s(0.0)

    def test_enforced_design_reported(self, result):
        for _i, _s, e_mf, _m in result.rows:
            assert 0.0 <= e_mf <= 1.0

    def test_render(self, result):
        text = result.render()
        assert "S1" in text and "burst intensity" in text

    def test_unknown_intensity_raises(self, result):
        with pytest.raises(KeyError):
            result.required_s(0.123)
