"""Certificate-derived ingest admission (repro.serving.admission)."""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.model import RealTimeProblem
from repro.dataflow.spec import PipelineSpec
from repro.errors import SpecError
from repro.serving import (
    AdmissionBudget,
    AdmissionController,
    budget_from_plan,
    inflight_budget,
)


def _fake_plan(tau0=20.0, deadline=500.0, v=8):
    pipeline = PipelineSpec.from_arrays([10.0, 20.0], [0.5, 1.0], v)
    problem = RealTimeProblem(pipeline, tau0, deadline)
    return SimpleNamespace(
        problem=problem,
        pipeline=pipeline,
        b=np.array([1.0, 1.0]),
        workload=SimpleNamespace(name="fake"),
    )


class TestInflightBudget:
    def test_littles_law_plus_slack(self):
        budget = inflight_budget(20.0, 500.0, 8, slack_vectors=2.0)
        assert budget == math.ceil(500.0 / 20.0) + 16

    def test_floor_is_one_vector(self):
        # Absurdly tight deadline still admits one full vector.
        assert inflight_budget(10.0, 1.0, 32, slack_vectors=0.0) == 32

    @pytest.mark.parametrize(
        "args",
        [(0.0, 1.0, 8), (1.0, 0.0, 8), (1.0, 1.0, 0)],
    )
    def test_validation(self, args):
        with pytest.raises(SpecError):
            inflight_budget(*args)

    def test_negative_slack_rejected(self):
        with pytest.raises(SpecError):
            inflight_budget(1.0, 1.0, 8, slack_vectors=-1.0)


class TestBudgetFromPlan:
    def test_feasible_plan_gets_certificate_budget(self):
        budget = budget_from_plan(_fake_plan())
        assert budget.source == "certificate"
        assert budget.feasible
        assert budget.budget == inflight_budget(20.0, 500.0, 8)
        assert 0.0 < budget.active_fraction <= 1.0
        assert "certificate" in budget.render()

    def test_over_capacity_plan_gets_zero_budget(self):
        budget = budget_from_plan(_fake_plan(), capacity=1e-6)
        assert budget.source == "infeasible"
        assert budget.budget == 0

    def test_slack_vectors_flow_through(self):
        tight = budget_from_plan(_fake_plan(), slack_vectors=0.0)
        loose = budget_from_plan(_fake_plan(), slack_vectors=4.0)
        assert loose.budget - tight.budget == 32


class TestAdmissionController:
    def test_admit_until_budget(self):
        ctl = AdmissionController(10)
        assert ctl.admit(4, in_flight=0)
        assert ctl.admit(6, in_flight=4)
        assert not ctl.admit(1, in_flight=10)
        stats = ctl.stats()
        assert stats["admitted_items"] == 10
        assert stats["rejected_items"] == 1
        assert stats["rejections"] == 1

    def test_overload_response_contract(self):
        ctl = AdmissionController(5)
        resp = ctl.overload_response(3, in_flight=4)
        assert resp["ok"] is False
        assert resp["retriable"] is True
        assert resp["budget"] == 5
        assert resp["in_flight"] == 4
        assert "error" in resp

    def test_budget_provenance_preserved(self):
        budget = AdmissionBudget(
            budget=7,
            feasible=True,
            active_fraction=0.5,
            headroom=0.5,
            source="explicit",
        )
        ctl = AdmissionController(budget)
        assert ctl.budget == 7
        assert ctl.provenance is budget

    def test_zero_budget_rejects_everything(self):
        ctl = AdmissionController(0)
        assert not ctl.admit(1, in_flight=0)

    def test_validation(self):
        with pytest.raises(SpecError):
            AdmissionController(-1)
        with pytest.raises(SpecError):
            AdmissionController(4).admit(-1, in_flight=0)
