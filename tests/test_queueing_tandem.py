"""Tests for the tandem decomposition and b estimation."""

import numpy as np
import pytest

from repro.core.enforced_waits import solve_enforced_waits
from repro.core.model import RealTimeProblem
from repro.errors import SolverError, SpecError
from repro.queueing.estimate_b import estimate_b
from repro.queueing.tandem import analyze_tandem


@pytest.fixture(scope="module")
def stable_point():
    """Deadline-binding solution (chain slack -> stable decomposition)."""
    from repro.apps.blast.pipeline import blast_pipeline

    blast = blast_pipeline()
    sol = solve_enforced_waits(
        RealTimeProblem(blast, 50.0, 2.0e5), np.asarray([1.0, 3.0, 9.0, 6.0])
    )
    return blast, sol


class TestAnalyzeTandem:
    def test_stable_point_all_nodes_resolved(self, stable_point):
        blast, sol = stable_point
        approx = analyze_tandem(blast, sol.periods, 50.0)
        assert len(approx.stationaries) == 4
        assert all(s is not None for s in approx.stationaries)
        q95 = approx.queue_quantiles(0.95)
        assert (q95 >= 0).all()
        assert np.isfinite(q95).all()

    def test_mean_inputs_consistent_with_rates(self, stable_point):
        blast, sol = stable_point
        approx = analyze_tandem(blast, sol.periods, 50.0)
        # Node 0 mean inputs per period = rate * x_0.
        assert approx.mean_inputs_per_period[0] == pytest.approx(
            sol.periods[0] / 50.0
        )
        # Downstream means scale with total gain and period ratio.
        G = blast.total_gains
        for i in range(1, 4):
            expected = G[i] * sol.periods[i] / 50.0
            assert approx.mean_inputs_per_period[i] == pytest.approx(
                expected, rel=0.05
            )

    @pytest.mark.slow
    def test_critical_chain_binding_raises_or_none(self):
        from repro.apps.blast.pipeline import blast_pipeline

        blast = blast_pipeline()
        sol = solve_enforced_waits(
            RealTimeProblem(blast, 10.0, 3.5e5),
            np.asarray([1.0, 3.0, 9.0, 6.0]),
        )
        with pytest.raises(SolverError):
            analyze_tandem(blast, sol.periods, 10.0, on_unstable="raise")
        approx = analyze_tandem(
            blast, sol.periods, 10.0, on_unstable="none"
        )
        assert any(s is None for s in approx.stationaries)
        assert np.isinf(approx.queue_quantiles(0.9)).any()

    def test_validation(self, stable_point):
        blast, sol = stable_point
        with pytest.raises(SpecError):
            analyze_tandem(blast, sol.periods[:2], 50.0)
        with pytest.raises(SpecError):
            analyze_tandem(blast, sol.periods, 50.0, arrival_kind="weird")
        with pytest.raises(SpecError):
            analyze_tandem(blast, sol.periods, 50.0, on_unstable="maybe")


class TestEstimateB:
    def test_stable_point_close_to_paper(self, stable_point):
        """The headline F1 result: a-priori estimates land near the
        paper's empirically calibrated (1, 3, 9, 6)."""
        blast, sol = stable_point
        b = estimate_b(blast, sol.periods, 50.0, epsilon=1e-4)
        assert b[0] == 1.0
        assert b[1] == pytest.approx(3.0, abs=1.0)
        assert b[2] == pytest.approx(9.0, abs=2.0)
        assert (b >= 1).all()

    def test_smaller_epsilon_larger_b(self, stable_point):
        blast, sol = stable_point
        loose = estimate_b(blast, sol.periods, 50.0, epsilon=1e-2)
        tight = estimate_b(blast, sol.periods, 50.0, epsilon=1e-6)
        assert (tight >= loose).all()

    @pytest.mark.slow
    def test_critical_point_strict_raises(self):
        from repro.apps.blast.pipeline import blast_pipeline

        blast = blast_pipeline()
        sol = solve_enforced_waits(
            RealTimeProblem(blast, 10.0, 3.5e5),
            np.asarray([1.0, 3.0, 9.0, 6.0]),
        )
        with pytest.raises((SolverError, SpecError)):
            estimate_b(blast, sol.periods, 10.0, strict=True)
        b = estimate_b(blast, sol.periods, 10.0, strict=False)
        assert np.isinf(b).any()

    def test_epsilon_validated(self, stable_point):
        blast, sol = stable_point
        with pytest.raises(SpecError):
            estimate_b(blast, sol.periods, 50.0, epsilon=0.0)


class TestMixCounts:
    """Properties of the fractional-count compound distribution."""

    def test_integer_count_is_plain_convolution(self):
        from repro.queueing.tandem import _mix_counts

        base = np.asarray([0.5, 0.5])  # fair coin
        pmf = _mix_counts(base, 2.0, cap=16)
        assert pmf == pytest.approx(np.asarray([0.25, 0.5, 0.25]))

    def test_fractional_count_mixes_floor_ceil(self):
        from repro.queueing.tandem import _mix_counts

        base = np.asarray([0.0, 1.0])  # always 1 output
        pmf = _mix_counts(base, 2.5, cap=16)
        # Sum of 2 or 3 deterministic ones, weighted 50/50.
        assert pmf[2] == pytest.approx(0.5)
        assert pmf[3] == pytest.approx(0.5)

    def test_zero_count_is_point_mass_at_zero(self):
        from repro.queueing.tandem import _mix_counts

        pmf = _mix_counts(np.asarray([0.3, 0.7]), 0.0, cap=8)
        assert pmf.tolist() == [1.0]

    def test_mean_scales_linearly(self):
        from repro.queueing.tandem import _mix_counts

        base = np.asarray([0.25, 0.5, 0.25])  # mean 1
        for count in (1.0, 2.7, 5.25):
            pmf = _mix_counts(base, count, cap=64)
            mean = float(np.dot(np.arange(pmf.size), pmf))
            assert mean == pytest.approx(count, rel=1e-9)

    def test_always_a_valid_pmf(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.queueing.tandem import _mix_counts

        @settings(max_examples=30, deadline=None)
        @given(
            weights=st.lists(st.floats(0.01, 1.0), min_size=1, max_size=6),
            count=st.floats(0.0, 12.0),
        )
        def run(weights, count):
            base = np.asarray(weights)
            base = base / base.sum()
            pmf = _mix_counts(base, count, cap=128)
            assert (pmf >= -1e-12).all()
            assert pmf.sum() == pytest.approx(1.0)

        run()
