"""Tests for the ASCII heatmap renderer."""

import numpy as np
import pytest

from repro.utils.heatmap import ascii_heatmap


def test_extremes_use_ramp_ends():
    m = np.asarray([[0.0, 1.0]])
    out = ascii_heatmap(m, ramp=" @")
    row = [l for l in out.splitlines() if l.startswith("|")][0]
    assert row == "| @|"


def test_nan_rendered_specially():
    m = np.asarray([[np.nan, 1.0]])
    out = ascii_heatmap(m, nan_char="?")
    assert "?" in out


def test_labels_and_title():
    m = np.zeros((2, 3))
    out = ascii_heatmap(
        m,
        row_labels=["a", "bb"],
        col_labels=["1", "2", "3"],
        title="T",
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].strip().startswith("a")
    assert "scale:" in lines[-1]


def test_fixed_scale_shared_between_maps():
    a = ascii_heatmap(np.asarray([[0.5]]), vmin=0.0, vmax=1.0, ramp=" .@")
    b = ascii_heatmap(np.asarray([[0.5]]), vmin=0.0, vmax=2.0, ramp=" .@")
    cell_a = [l for l in a.splitlines() if l.startswith("|")][0]
    cell_b = [l for l in b.splitlines() if l.startswith("|")][0]
    assert cell_a != cell_b  # same value shades differently per scale


def test_constant_matrix_ok():
    out = ascii_heatmap(np.full((2, 2), 3.0))
    assert "|" in out


def test_validation():
    with pytest.raises(ValueError):
        ascii_heatmap(np.zeros(3))
    with pytest.raises(ValueError):
        ascii_heatmap(np.zeros((2, 2)), ramp="x")
    with pytest.raises(ValueError):
        ascii_heatmap(np.zeros((2, 2)), row_labels=["only-one"])
    with pytest.raises(ValueError):
        ascii_heatmap(np.zeros((2, 2)), col_labels=["only-one"])
