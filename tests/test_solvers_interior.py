"""Tests for the log-barrier interior-point solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solvers.interior_point import barrier_solve
from repro.solvers.result import SolverStatus


def _quadratic(center):
    center = np.asarray(center, dtype=float)
    f = lambda x: float(np.sum((x - center) ** 2))
    grad = lambda x: 2.0 * (x - center)
    hess = lambda x: 2.0 * np.eye(center.size)
    return f, grad, hess


class TestQuadratic:
    def test_unconstrained_interior_minimum(self):
        f, g, h = _quadratic([1.0, 2.0])
        # Box 0 <= x <= 10 written as Ax <= c.
        A = np.vstack([np.eye(2), -np.eye(2)])
        c = np.asarray([10.0, 10.0, 0.0, 0.0])
        r = barrier_solve(f, g, h, A, c, np.asarray([5.0, 5.0]))
        assert r.ok
        assert r.x == pytest.approx(np.asarray([1.0, 2.0]), abs=1e-5)

    def test_active_constraint(self):
        f, g, h = _quadratic([5.0])
        A = np.asarray([[1.0]])
        c = np.asarray([2.0])  # x <= 2, optimum at boundary
        r = barrier_solve(f, g, h, A, c, np.asarray([0.0]))
        assert r.ok
        assert r.x[0] == pytest.approx(2.0, abs=1e-5)

    def test_requires_strict_feasibility(self):
        f, g, h = _quadratic([0.0])
        with pytest.raises(SolverError, match="strictly feasible"):
            barrier_solve(
                f, g, h, np.asarray([[1.0]]), np.asarray([1.0]), np.asarray([1.0])
            )

    def test_shape_mismatch(self):
        f, g, h = _quadratic([0.0])
        with pytest.raises(SolverError, match="shape"):
            barrier_solve(
                f, g, h, np.eye(2), np.ones(2), np.zeros(3)
            )


class TestEnforcedWaitsShape:
    """The 1/x objective family the enforced-waits problem uses."""

    def _one_over_x(self, t):
        t = np.asarray(t, dtype=float)
        f = lambda x: float(np.sum(t / x)) if (x > 0).all() else float("inf")
        grad = lambda x: -t / x**2
        hess = lambda x: np.diag(2 * t / x**3)
        return f, grad, hess

    def test_matches_waterfill_on_budget_only(self):
        from repro.solvers.kkt import waterfill_box_budget

        t = np.asarray([4.0, 1.0, 9.0])
        b = np.asarray([1.0, 2.0, 1.0])
        lo = np.full(3, 0.5)
        budget = 30.0
        wf = waterfill_box_budget(t, b, lo, np.full(3, np.inf), budget)
        f, g, h = self._one_over_x(t)
        A = np.vstack([b, -np.eye(3)])
        c = np.concatenate([[budget], -lo])
        r = barrier_solve(f, g, h, A, c, np.full(3, 1.0))
        assert r.ok
        assert r.objective == pytest.approx(wf.objective, rel=1e-6)
        assert r.x == pytest.approx(wf.x, rel=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(
        t=st.lists(st.floats(0.5, 50), min_size=2, max_size=4),
        budget_factor=st.floats(1.5, 8.0),
    )
    def test_property_kkt_residual_small(self, t, budget_factor):
        t_arr = np.asarray(t)
        n = t_arr.size
        lo = np.full(n, 0.2)
        budget = float(lo.sum()) * budget_factor
        f, g, h = self._one_over_x(t_arr)
        A = np.vstack([np.ones(n), -np.eye(n)])
        c = np.concatenate([[budget], -lo])
        x0 = np.full(n, budget / (n + 1) * 0.9)
        x0 = np.maximum(x0, lo * 1.01)
        if float(np.sum(x0)) >= budget:
            x0 = lo * 1.01 + (budget - float((lo * 1.01).sum())) / (2 * n)
        r = barrier_solve(f, g, h, A, c, x0)
        assert r.status in (SolverStatus.OPTIMAL, SolverStatus.MAX_ITER)
        if r.ok:
            # Strongest check available: the waterfilling solver is exact
            # on this box+budget geometry.
            from repro.solvers.kkt import waterfill_box_budget

            wf = waterfill_box_budget(
                t_arr, np.ones(n), lo, np.full(n, np.inf), budget
            )
            assert r.objective == pytest.approx(wf.objective, rel=1e-5)
