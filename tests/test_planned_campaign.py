"""`run_planned_trials_parallel`: campaigns resolved through the plan cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.core.model import RealTimeProblem
from repro.dataflow.spec import PipelineSpec
from repro.errors import SpecError
from repro.planning.cache import PlanCache
from repro.sim.campaign import run_planned_trials_parallel
from repro.sim.enforced import EnforcedWaitsSimulator


@pytest.fixture
def problem() -> RealTimeProblem:
    pipeline = PipelineSpec.from_arrays([10.0, 20.0], [0.5, 1.0], 8)
    return RealTimeProblem(pipeline, 20.0, 800.0)


def _kwargs(problem) -> dict:
    return dict(arrivals=FixedRateArrivals(problem.tau0), n_items=100)


def test_campaign_uses_planned_waits(problem):
    cache = PlanCache()
    result, outcome = run_planned_trials_parallel(
        EnforcedWaitsSimulator,
        problem,
        _kwargs(problem),
        seeds=3,
        cache=cache,
        workers=0,
    )
    assert outcome.source == "cold"
    assert outcome.solution.feasible
    assert result.n_trials == 3
    assert result.all_ok
    # A second campaign at the same design point is an exact cache hit
    # and runs the same waits, so metrics are reproducible.
    result2, outcome2 = run_planned_trials_parallel(
        EnforcedWaitsSimulator,
        problem,
        _kwargs(problem),
        seeds=3,
        cache=cache,
        workers=0,
    )
    assert outcome2.source == "hit"
    assert np.array_equal(outcome2.solution.waits, outcome.solution.waits)
    for a, b in zip(result.metrics, result2.metrics):
        assert a.active_fraction == b.active_fraction
        assert a.missed_items == b.missed_items


def test_reserved_kwargs_rejected(problem):
    for reserved, value in (
        ("pipeline", problem.pipeline),
        ("waits", np.zeros(2)),
        ("deadline", 800.0),
    ):
        with pytest.raises(SpecError, match="supplied by the planner"):
            run_planned_trials_parallel(
                EnforcedWaitsSimulator,
                problem,
                dict(_kwargs(problem), **{reserved: value}),
                seeds=1,
                cache=PlanCache(),
                workers=0,
            )


def test_infeasible_design_point_raises(problem):
    with pytest.raises(SpecError, match="infeasible design point"):
        run_planned_trials_parallel(
            EnforcedWaitsSimulator,
            problem.with_deadline(1.0),
            _kwargs(problem),
            seeds=1,
            cache=PlanCache(),
            workers=0,
        )
