"""Tests for phase offsets and the deadline/utilization frontier."""

import numpy as np
import pytest

from repro.core.offsets import aligned_offsets
from repro.core.pareto import deadline_frontier, min_deadline_for_af
from repro.errors import SpecError


class TestAlignedOffsets:
    def test_prefix_sums_of_service_times(self, blast):
        periods = blast.service_times * 2
        offsets = aligned_offsets(blast, periods)
        t = blast.service_times
        assert offsets[0] == 0.0
        assert offsets[1] == t[0]
        assert offsets[2] == t[0] + t[1]
        assert offsets[3] == t[0] + t[1] + t[2]

    def test_epsilon_added_per_stage(self, blast):
        periods = blast.service_times * 2
        offsets = aligned_offsets(blast, periods, epsilon=1.0)
        assert offsets[1] == blast.service_times[0] + 1.0
        assert offsets[3] == float(blast.service_times[:3].sum()) + 3.0

    def test_validation(self, blast):
        with pytest.raises(SpecError):
            aligned_offsets(blast, blast.service_times[:2])
        with pytest.raises(SpecError):
            aligned_offsets(blast, blast.service_times * 0.5)
        with pytest.raises(SpecError):
            aligned_offsets(blast, blast.service_times, epsilon=-1.0)

    def test_aligned_offsets_cut_passthrough_latency(self, passthrough_pipeline):
        """With equal periods, alignment removes per-stage phase waits."""
        from repro.arrivals.fixed import FixedRateArrivals
        from repro.sim.enforced import EnforcedWaitsSimulator

        p = passthrough_pipeline
        period = 10.0
        waits = period - p.service_times  # equal periods everywhere
        offsets = aligned_offsets(p, np.full(3, period))
        base = EnforcedWaitsSimulator(
            p, waits, FixedRateArrivals(10.0), 1e6, 500, seed=0
        ).run()
        aligned = EnforcedWaitsSimulator(
            p,
            waits,
            FixedRateArrivals(10.0),
            1e6,
            500,
            seed=0,
            start_offsets=offsets,
        ).run()
        assert aligned.mean_latency < base.mean_latency
        assert aligned.outputs == base.outputs


class TestDeadlineFrontier:
    @pytest.fixture(scope="class")
    def frontier(self):
        from repro.apps.blast.pipeline import blast_pipeline

        return deadline_frontier(
            blast_pipeline(),
            tau0=30.0,
            deadlines=np.geomspace(2e4, 3.5e5, 8),
            b_enforced=np.asarray([1.0, 3.0, 9.0, 6.0]),
        )

    def test_enforced_af_nonincreasing(self, frontier):
        vals = frontier.enforced_af[~np.isnan(frontier.enforced_af)]
        assert (np.diff(vals) <= 1e-12).all()

    def test_monolithic_nearly_flat(self, frontier):
        vals = frontier.monolithic_af[~np.isnan(frontier.monolithic_af)]
        assert vals.max() - vals.min() < 0.35  # falls early, then flat

    def test_crossover_exists(self, frontier):
        d_cross = frontier.crossover_deadline()
        assert np.isfinite(d_cross)
        # Before the crossover monolithic wins, after it enforced wins.
        j = int(np.where(frontier.deadlines == d_cross)[0][0])
        e = np.where(np.isnan(frontier.enforced_af), 1.0, frontier.enforced_af)
        m = np.where(
            np.isnan(frontier.monolithic_af), 1.0, frontier.monolithic_af
        )
        assert e[j] < m[j]
        if j > 0:
            assert e[j - 1] >= m[j - 1]

    def test_validation(self):
        from repro.apps.blast.pipeline import blast_pipeline

        with pytest.raises(SpecError):
            deadline_frontier(
                blast_pipeline(),
                30.0,
                np.asarray([]),
                b_enforced=np.ones(4),
            )


class TestMinDeadlineForAf:
    def test_inverse_of_forward_solve(self, blast, calibrated_b):
        from repro.core.enforced_waits import solve_enforced_waits
        from repro.core.model import RealTimeProblem

        tau0 = 50.0
        target = 0.15
        d_star = min_deadline_for_af(blast, tau0, target, calibrated_b)
        assert np.isfinite(d_star)
        # Forward solve at d_star achieves the target (within bisection tol);
        # slightly below it does not.
        sol = solve_enforced_waits(
            RealTimeProblem(blast, tau0, d_star * 1.001), calibrated_b
        )
        assert sol.active_fraction <= target * 1.01
        sol_below = solve_enforced_waits(
            RealTimeProblem(blast, tau0, d_star * 0.9), calibrated_b
        )
        assert (not sol_below.feasible) or sol_below.active_fraction > target

    def test_unachievable_target_is_inf(self, blast, calibrated_b):
        # At tau0=10 the caps floor the AF around 0.19; 0.01 is impossible.
        assert min_deadline_for_af(
            blast, 10.0, 0.01, calibrated_b
        ) == float("inf")

    def test_trivial_target_returns_min_deadline(self, blast, calibrated_b):
        from repro.core.feasibility import min_deadline_enforced

        d = min_deadline_for_af(blast, 50.0, 1.0, calibrated_b)
        assert d == pytest.approx(
            min_deadline_enforced(blast, calibrated_b)
        )

    def test_target_validated(self, blast, calibrated_b):
        with pytest.raises(SpecError):
            min_deadline_for_af(blast, 50.0, 0.0, calibrated_b)
