"""Tests for the control environment (repro.control.env)."""

import numpy as np
import pytest

from repro.control import (
    ControlAction,
    ControlEnvConfig,
    DriftSchedule,
    PipelineControlEnv,
    Regime,
)
from repro.errors import SpecError


def _config(**overrides):
    n = 3
    defaults = dict(
        service_times=(0.08, 0.1, 0.06),
        mean_gains=(0.9, 2.0, 0.7),
        vector_width=8,
        tau0=0.05,
        deadline=5.0,
        n_items=500,
        segment_time=5.0,
        schedule=DriftSchedule.stationary(n),
        arrival="fixed",
        rate_scale=1.0,
    )
    defaults.update(overrides)
    return ControlEnvConfig(**defaults)


class TestRegime:
    def test_nominal_is_all_ones(self):
        r = Regime.nominal(3)
        assert np.array_equal(r.service_scale, np.ones(3))
        assert np.array_equal(r.gain_scale, np.ones(3))

    def test_scaled_params(self):
        r = Regime("slow", np.array([2.0, 1.0]), np.array([1.0, 0.5]))
        t, g = r.scaled_params(np.array([0.1, 0.2]), np.array([1.0, 2.0]))
        assert np.allclose(t, [0.2, 0.2])
        assert np.allclose(g, [1.0, 1.0])


class TestDriftSchedule:
    def test_stationary_single_regime(self):
        s = DriftSchedule.stationary(3)
        assert s.regime_index_at(0.0) == 0
        assert s.regime_index_at(1e9) == 0

    def test_seeded_is_deterministic(self):
        regimes = (Regime.nominal(2), Regime("x", np.array([1.5, 1.0]), np.ones(2)))
        a = DriftSchedule.seeded(3, regimes, horizon=100.0, mean_dwell=20.0)
        b = DriftSchedule.seeded(3, regimes, horizon=100.0, mean_dwell=20.0)
        assert np.array_equal(a.breakpoints, b.breakpoints)
        assert np.array_equal(a.regime_ids, b.regime_ids)

    def test_seeded_switches_regimes(self):
        regimes = (Regime.nominal(2), Regime("x", np.array([1.5, 1.0]), np.ones(2)))
        s = DriftSchedule.seeded(3, regimes, horizon=400.0, mean_dwell=40.0)
        # Consecutive epochs always change regime.
        for a, b in zip(s.regime_ids, s.regime_ids[1:]):
            assert a != b

    def test_regime_index_at_breakpoints(self):
        regimes = (Regime.nominal(1), Regime("x", np.array([2.0]), np.ones(1)))
        s = DriftSchedule(
            breakpoints=np.array([0.0, 10.0]),
            regime_ids=np.array([0, 1]),
            regimes=regimes,
        )
        assert s.regime_index_at(9.999) == 0
        assert s.regime_index_at(10.0) == 1


class TestEnvEpisodes:
    def test_reset_returns_observation(self):
        env = PipelineControlEnv(_config())
        obs = env.reset(0)
        assert obs.shape == (3 * 3 + 3,)
        assert np.isfinite(obs).all()

    def test_episode_terminates_and_conserves_items(self):
        env = PipelineControlEnv(_config())
        env.reset(0)
        done = False
        arrivals = 0
        steps = 0
        while not done and steps < 200:
            _, _, done, info = env.step(None)
            arrivals += info["arrivals"]
            steps += 1
        assert done
        assert arrivals == env.config.n_items
        assert info["in_flight"] == 0

    def test_bit_reproducible_given_seed(self):
        cfg = _config(arrival="poisson", rate_scale=1.15)
        env = PipelineControlEnv(cfg)

        def trace(seed):
            obs = env.reset(seed)
            arrival_times = env._times.copy()
            rewards, done = [obs.copy()], False
            while not done:
                obs, r, done, _ = env.step(None)
                rewards.append(r)
            return arrival_times, np.asarray(rewards[1:])

        t_a, a = trace(7)
        t_b, b = trace(7)
        assert np.array_equal(t_a, t_b)
        assert np.array_equal(a, b)
        # Different seed -> different Poisson arrival times.  (Rewards
        # may still coincide: at the planned point the firing clock, and
        # thus the charged active fraction, is deterministic.)
        t_c, _ = trace(8)
        assert not np.array_equal(t_a, t_c)

    def test_step_accepts_wait_vector_and_action(self):
        env = PipelineControlEnv(_config())
        env.reset(0)
        w = np.array([0.01, 0.02, 0.03])
        _, _, _, info1 = env.step(w)
        assert np.allclose(info1["waits"], w)
        w2 = np.array([0.02, 0.01, 0.0])
        _, _, _, info2 = env.step(ControlAction(waits=w2))
        assert np.allclose(info2["waits"], w2)

    def test_step_before_reset_raises(self):
        from repro.errors import SimulationError

        env = PipelineControlEnv(_config())
        with pytest.raises(SimulationError):
            env.step(None)

    def test_planned_point_stationary_zero_misses(self):
        env = PipelineControlEnv(_config())
        env.reset(0)
        done, misses = False, 0
        while not done:
            _, _, done, info = env.step(None)
            misses += info["misses"]
        assert misses == 0

    def test_drifted_regime_scales_service(self):
        # Running the *planned* waits (critical load) through a 1.4x head
        # slowdown must show up as misses or queue growth.
        from repro.planning.warmstart import solve_plan

        n = 3
        slow = Regime("slow", np.array([1.4, 1.0, 1.0]), np.ones(n))
        sched = DriftSchedule(
            breakpoints=np.array([0.0]),
            regime_ids=np.array([1]),
            regimes=(Regime.nominal(n), slow),
        )
        cfg = _config(schedule=sched, n_items=1500)
        waits = np.asarray(solve_plan(cfg.problem()).solution.waits)
        env = PipelineControlEnv(cfg)
        env.reset(0)
        done, misses = False, 0
        depth_hwm = 0
        while not done:
            _, _, done, info = env.step(waits)
            misses += info["misses"]
            depth_hwm = max(depth_hwm, info["queue_depth"])
        assert misses > 0 or depth_hwm > 3 * env.config.vector_width

    def test_invalid_config_rejected(self):
        with pytest.raises(SpecError):
            _config(rate_scale=0.0)
        with pytest.raises(SpecError):
            _config(segment_time=-1.0)
        with pytest.raises(SpecError):
            _config(arrival="nope").build_arrivals()
