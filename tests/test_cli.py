"""Tests for the CLI entry point."""

import pytest

from repro.cli import main


def test_list_prints_all(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "fig3" in out
    assert "Figure 4" in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "done in" in out


def test_run_unknown_id(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


@pytest.mark.slow
def test_run_multiple(capsys):
    assert main(["run", "table1", "queueing-b"]) == 0
    out = capsys.readouterr().out
    assert out.count("==") >= 4


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_export_writes_artifacts(tmp_path, capsys):
    assert main(["run", "table1", "--export", str(tmp_path)]) == 0
    assert (tmp_path / "table1.txt").exists()
    assert "exported" in capsys.readouterr().out


def test_export_sweep_json_csv(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.35")
    assert main(["run", "fig3", "--export", str(tmp_path)]) == 0
    assert (tmp_path / "fig3.txt").exists()
    assert (tmp_path / "fig3.json").exists()
    assert (tmp_path / "fig3.csv").exists()


@pytest.mark.slow
def test_telemetry_flag_exports_json_csv(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_SCALE", "0.2")
    assert main(
        ["run", "calibration", "--telemetry", "--export", str(tmp_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "run telemetry" in out
    jpath = tmp_path / "calibration.telemetry.json"
    assert jpath.exists()
    assert (tmp_path / "calibration.telemetry.csv").exists()
    data = json.loads(jpath.read_text())
    assert all(n["firings"] >= 0 for n in data["nodes"])
    assert all("queue_hwm" in n for n in data["nodes"])


def test_telemetry_flag_on_unsupporting_experiment(capsys):
    assert main(["run", "table1", "--telemetry"]) == 0
    out = capsys.readouterr().out
    assert "does not collect telemetry" in out
