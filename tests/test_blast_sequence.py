"""Tests for synthetic DNA sequence utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.blast.sequence import (
    from_string,
    mutate,
    plant_homologies,
    random_dna,
    to_string,
)
from repro.errors import SpecError


class TestEncoding:
    def test_round_trip(self):
        s = "ACGTACGT"
        assert to_string(from_string(s)) == s

    def test_case_insensitive(self):
        assert from_string("acgt").tolist() == [0, 1, 2, 3]

    def test_invalid_char_rejected(self):
        with pytest.raises(SpecError):
            from_string("ACGX")

    def test_invalid_codes_rejected(self):
        with pytest.raises(SpecError):
            to_string(np.asarray([0, 5], dtype=np.uint8))


class TestRandomDna:
    def test_length_and_range(self, rng):
        seq = random_dna(1000, rng)
        assert seq.size == 1000
        assert seq.dtype == np.uint8
        assert set(np.unique(seq)) <= {0, 1, 2, 3}

    def test_roughly_uniform(self, rng):
        seq = random_dna(100_000, rng)
        counts = np.bincount(seq, minlength=4) / seq.size
        assert np.allclose(counts, 0.25, atol=0.01)

    def test_negative_rejected(self, rng):
        with pytest.raises(SpecError):
            random_dna(-1, rng)


class TestMutate:
    def test_zero_rate_identity(self, rng):
        seq = random_dna(500, rng)
        assert (mutate(seq, 0.0, rng) == seq).all()

    def test_rate_one_changes_everything(self, rng):
        seq = random_dna(500, rng)
        out = mutate(seq, 1.0, rng)
        assert (out != seq).all()  # mutation always picks a different base

    def test_rate_is_substitution_probability(self, rng):
        seq = random_dna(100_000, rng)
        out = mutate(seq, 0.1, rng)
        assert (out != seq).mean() == pytest.approx(0.1, abs=0.01)

    def test_original_untouched(self, rng):
        seq = random_dna(100, rng)
        copy = seq.copy()
        mutate(seq, 0.5, rng)
        assert (seq == copy).all()

    def test_bad_rate(self, rng):
        with pytest.raises(SpecError):
            mutate(random_dna(10, rng), 1.5, rng)


class TestPlantHomologies:
    def test_planted_fragment_matches_query_closely(self, rng):
        query = random_dna(500, rng)
        db = random_dna(10_000, rng)
        out = plant_homologies(
            db, query, 20, rng, fragment_len=64, mutation_rate=0.0
        )
        # With zero mutations, at least one exact 64-mer of the query
        # appears in the planted database.
        q_str = to_string(query)
        out_str = to_string(out)
        assert any(
            q_str[i : i + 64] in out_str for i in range(0, 500 - 64, 16)
        )

    def test_zero_sites_identity(self, rng):
        db = random_dna(1000, rng)
        out = plant_homologies(db, random_dna(200, rng), 0, rng)
        assert (out == db).all()

    def test_fragment_longer_than_query_rejected(self, rng):
        with pytest.raises(SpecError):
            plant_homologies(
                random_dna(1000, rng),
                random_dna(10, rng),
                1,
                rng,
                fragment_len=64,
            )

    @settings(max_examples=10)
    @given(n_sites=st.integers(0, 10))
    def test_property_output_is_valid_dna(self, n_sites):
        rng = np.random.default_rng(1)
        out = plant_homologies(
            random_dna(2000, rng), random_dna(300, rng), n_sites, rng
        )
        assert out.size == 2000
        assert set(np.unique(out)) <= {0, 1, 2, 3}
