"""Tests for the trace recorder."""

from repro.des.trace import TraceRecorder


def test_records_in_order():
    tr = TraceRecorder()
    tr.record(1.0, "fire", "n0", consumed=3)
    tr.record(2.0, "complete", "n0", produced=1)
    assert len(tr) == 2
    records = list(tr)
    assert records[0].kind == "fire"
    assert records[0].detail == {"consumed": 3}


def test_kind_filter():
    tr = TraceRecorder(kinds={"fire"})
    tr.record(1.0, "fire", "n0")
    tr.record(1.0, "complete", "n0")
    assert len(tr) == 1
    assert tr.of_kind("complete") == []


def test_capacity_cap():
    tr = TraceRecorder(capacity=2)
    for i in range(5):
        tr.record(float(i), "fire", "n0")
    assert len(tr) == 2


def test_of_kind_selects():
    tr = TraceRecorder()
    tr.record(1.0, "a", "s")
    tr.record(2.0, "b", "s")
    tr.record(3.0, "a", "s")
    assert [r.time for r in tr.of_kind("a")] == [1.0, 3.0]


def test_clear():
    tr = TraceRecorder()
    tr.record(1.0, "a", "s")
    tr.clear()
    assert len(tr) == 0
