"""Tests for the SIMD width sweep (extension W1)."""

import numpy as np
import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.width_sweep import run_width_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_width_sweep(widths=(32, 64, 128, 256))


def test_registered():
    assert "width-sweep" in EXPERIMENTS


def test_wider_device_never_hurts_enforced(sweep):
    afs = [sweep.enforced_af(w) for w in (32, 64, 128, 256)]
    finite = [a for a in afs if not np.isnan(a)]
    assert all(a >= b - 1e-12 for a, b in zip(finite, finite[1:]))


def test_wider_device_never_hurts_monolithic(sweep):
    afs = [sweep.monolithic_af(w) for w in (64, 128, 256)]
    finite = [a for a in afs if not np.isnan(a)]
    assert all(a >= b - 1e-12 for a, b in zip(finite, finite[1:]))


def test_feasibility_thresholds_scale_inversely(sweep):
    rows = {w: (te, tm) for w, _e, _m, te, tm in sweep.rows}
    te32, tm32 = rows[32]
    te128, tm128 = rows[128]
    assert te32 == pytest.approx(4 * te128, rel=1e-9)
    assert tm32 == pytest.approx(4 * tm128, rel=1e-9)


def test_narrow_devices_infeasible_at_point(sweep):
    # At tau0=20 a 32-lane device cannot sustain the monolithic strategy.
    assert np.isnan(sweep.monolithic_af(32))
    assert not np.isnan(sweep.enforced_af(32))


def test_render(sweep):
    text = sweep.render()
    assert "W1" in text and "128" in text


def test_unknown_width_raises(sweep):
    with pytest.raises(KeyError):
        sweep.enforced_af(7)
