"""Tests for control policies, training, and head-to-head evaluation."""

import numpy as np
import pytest

from repro.control import (
    ControlEnvConfig,
    DriftSchedule,
    LearnedPolicy,
    OraclePolicy,
    PipelineControlEnv,
    Regime,
    ReplanPolicy,
    head_to_head,
    run_episode,
    train_cross_entropy,
)
from repro.core.enforced_waits import EnforcedWaitsProblem
from repro.errors import SpecError
from repro.planning.cache import PlanCache
from repro.runtime.drift import DriftConfig


def _drifting_config(n_items=1500):
    n = 3
    nominal = Regime.nominal(n)
    slow = Regime("slow", np.array([1.4, 1.0, 1.0]), np.ones(n))
    gainy = Regime("gainy", np.ones(n), np.array([1.0, 1.3, 1.0]))
    schedule = DriftSchedule.seeded(
        7, (nominal, slow, gainy), horizon=400.0, mean_dwell=80.0
    )
    return ControlEnvConfig(
        service_times=(0.08, 0.1, 0.06),
        mean_gains=(0.9, 2.0, 0.7),
        vector_width=8,
        tau0=0.05,
        deadline=5.0,
        n_items=n_items,
        segment_time=5.0,
        schedule=schedule,
        arrival="fixed",
        rate_scale=1.0,
    )


def _stationary_config(n_items=800):
    cfg = _drifting_config(n_items)
    return ControlEnvConfig(
        **{
            **{f: getattr(cfg, f) for f in cfg.__dataclass_fields__},
            "schedule": DriftSchedule.stationary(3),
        }
    )


class TestOraclePolicy:
    def test_zero_misses_under_drift(self):
        cfg = _drifting_config()
        env = PipelineControlEnv(cfg)
        result = run_episode(env, OraclePolicy(cfg), seed=0)
        assert result.total_misses == 0

    def test_switches_waits_at_breakpoints(self):
        cfg = _drifting_config()
        policy = OraclePolicy(cfg)
        waits = [tuple(np.round(w, 6)) for w in policy._waits]
        assert len(set(waits)) > 1


class TestReplanPolicy:
    def test_replans_under_drift_and_recovers(self):
        cfg = _drifting_config(n_items=3000)
        policy = ReplanPolicy(
            cfg,
            cache=PlanCache(capacity=8),
            drift=DriftConfig(
                service_rtol=0.2, gain_rtol=0.15, sustain_checks=2
            ),
            pessimism=1.1,
        )
        env = PipelineControlEnv(cfg)
        result = run_episode(env, policy, seed=0)
        assert policy.replans >= 1
        assert sum(policy.solve_sources.values()) >= policy.replans
        # Stationary (nominal) segments never miss; transient misses are
        # the detector's structural sustain+EWMA latency, and bounded.
        assert result.misses_in_regime(0) == 0
        assert result.total_misses < 0.1 * result.total_arrivals

    def test_rejects_bad_pessimism(self):
        with pytest.raises(SpecError):
            ReplanPolicy(_stationary_config(), pessimism=0.9)


class TestLearnedPolicy:
    def test_zero_params_near_nominal_plan(self):
        cfg = _stationary_config()
        policy = LearnedPolicy(cfg)
        obs = np.zeros(policy.n_features)
        waits = policy.propose(obs)
        # sigmoid(3.0) ~ 0.95: proposal starts near the planned waits.
        assert np.all(waits <= policy._base_waits + 1e-12)
        assert np.all(waits >= 0.8 * policy._base_waits)

    def test_projection_always_feasible(self):
        cfg = _stationary_config()
        policy = LearnedPolicy(cfg)
        ewp = EnforcedWaitsProblem(cfg.problem())
        A, c, _ = ewp.constraint_system()
        rng = np.random.default_rng(0)
        for _ in range(50):
            policy.set_params(rng.normal(scale=3.0, size=policy.n_params))
            obs = rng.normal(scale=1.0, size=policy.n_features)
            waits = policy.propose(obs)
            x = ewp.t + waits
            assert (A @ x <= c + 1e-6).all()

    def test_stationary_zero_misses_any_params(self):
        # The CI floor as a property: random parameters, planned point,
        # zero misses -- feasibility projection does the work.
        cfg = _stationary_config()
        env = PipelineControlEnv(cfg)
        rng = np.random.default_rng(1)
        for k in range(3):
            policy = LearnedPolicy(cfg)
            policy.set_params(
                rng.normal(scale=2.0, size=policy.n_params)
            )
            result = run_episode(env, policy, seed=k)
            assert result.total_misses == 0, f"params draw {k} missed"

    def test_param_shape_checked(self):
        policy = LearnedPolicy(_stationary_config())
        with pytest.raises(SpecError):
            policy.set_params(np.zeros(policy.n_params + 1))


class TestTraining:
    def test_cross_entropy_improves_and_is_deterministic(self):
        cfg = _drifting_config(n_items=800)
        p1, log1 = train_cross_entropy(
            cfg, seed=0, iterations=2, population=6, episode_seeds=(0,)
        )
        p2, log2 = train_cross_entropy(
            cfg, seed=0, iterations=2, population=6, episode_seeds=(0,)
        )
        assert log1.best_return == log2.best_return
        assert np.array_equal(p1.params, p2.params)
        assert log1.iterations == 2
        assert log1.episodes == 2 * 6
        # Elite mean at the last iteration beats the first population mean.
        assert log1.elite_return[-1] >= log1.mean_return[0]

    def test_rejects_degenerate_search(self):
        with pytest.raises(SpecError):
            train_cross_entropy(
                _stationary_config(), iterations=0, population=6
            )


class TestHeadToHead:
    def test_gate_properties_small(self):
        # A scaled-down version of the BENCH_control gate: the bandit's
        # regret beats the cold re-solve path's, with zero stationary
        # misses.
        from repro.control import BanditPolicy, PlanLibrary

        cfg = _drifting_config(n_items=3000)
        lib = PlanLibrary(cfg)
        bandit = BanditPolicy(lib, alpha=0.4)
        env = PipelineControlEnv(cfg)
        for seed in (100, 101, 102, 103, 104, 105):
            run_episode(env, bandit, seed=seed)
        bandit.linucb.alpha = 0.05
        replan = ReplanPolicy(
            cfg,
            cache=PlanCache(capacity=8),
            drift=DriftConfig(
                service_rtol=0.2, gain_rtol=0.15, sustain_checks=2
            ),
            pessimism=1.1,
        )
        out = head_to_head(
            cfg, {"bandit": bandit, "replan": replan}, seeds=(0,)
        )
        assert out["oracle"].cumulative_regret == 0.0
        assert (
            out["bandit"].cumulative_regret
            < out["replan"].cumulative_regret
        )
        assert out["bandit"].stationary_misses == 0

    def test_requires_seeds(self):
        with pytest.raises(SpecError):
            head_to_head(_stationary_config(), {}, seeds=())

    def test_as_dict_round_trip(self):
        cfg = _stationary_config()
        out = head_to_head(cfg, {}, seeds=(0,))
        d = out["oracle"].as_dict()
        assert d["policy"] == "oracle"
        assert d["total_misses"] == 0
        assert isinstance(d["miss_rate"], float)
