"""Resilient client: retry policy, circuit breaker, live retries."""

from __future__ import annotations

import random
import socket
import threading

import pytest

from repro.errors import CircuitOpenError, ServingError, SpecError
from repro.serving import (
    CircuitBreaker,
    JsonLinesServer,
    ResilientClient,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay(a, rng) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_shrinks_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        rng = random.Random(7)
        for _ in range(20):
            d = policy.delay(0, rng)
            assert 0.5 <= d <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SpecError):
            RetryPolicy(**kwargs)


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        return CircuitBreaker(now=lambda: clock[0], **kwargs)

    def test_opens_after_threshold(self):
        clock = [0.0]
        br = self._breaker(clock, failure_threshold=3, reset_timeout=10.0)
        assert br.state == "closed"
        for _ in range(3):
            assert br.allow()
            br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.opens == 1

    def test_half_open_probe_closes_on_success(self):
        clock = [0.0]
        br = self._breaker(clock, failure_threshold=1, reset_timeout=5.0)
        br.record_failure()
        assert br.state == "open"
        clock[0] = 6.0
        assert br.state == "half-open"
        assert br.allow()  # the single probe
        assert not br.allow()  # second concurrent probe denied
        br.record_success()
        assert br.state == "closed"
        assert br.allow()

    def test_failed_probe_reopens(self):
        clock = [0.0]
        br = self._breaker(clock, failure_threshold=1, reset_timeout=5.0)
        br.record_failure()
        clock[0] = 6.0
        assert br.allow()
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.opens == 2
        # A fresh cooldown starts from the failed probe.
        clock[0] = 12.0
        assert br.state == "half-open"

    def test_success_resets_failure_streak(self):
        clock = [0.0]
        br = self._breaker(clock, failure_threshold=2, reset_timeout=5.0)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"


@pytest.mark.slow
class TestResilientClient:
    def _server(self, handler):
        server = JsonLinesServer(handler, port=0, name="client-test")
        server.start()
        return server

    def test_plain_request(self):
        async def handler(obj):
            return {"ok": True, "v": obj["v"]}

        server = self._server(handler)
        try:
            with ResilientClient(server.host, server.port, seed=0) as client:
                assert client.request({"v": 1}) == {"ok": True, "v": 1}
                assert client.request({"v": 2}) == {"ok": True, "v": 2}
                assert client.requests == 2
                assert client.retries == 0
        finally:
            server.stop()

    def test_retriable_response_retried_until_success(self):
        calls = [0]

        async def handler(obj):
            calls[0] += 1
            if calls[0] < 3:
                return {"ok": False, "retriable": True, "error": "busy"}
            return {"ok": True}

        server = self._server(handler)
        try:
            sleeps = []
            with ResilientClient(
                server.host,
                server.port,
                retry=RetryPolicy(max_attempts=4, base_delay=0.01),
                seed=0,
                sleep=sleeps.append,
            ) as client:
                reply = client.request({"op": "try"})
            assert reply == {"ok": True}
            assert calls[0] == 3
            assert client.retries == 2
            assert client.retriable_responses == 2
            assert len(sleeps) == 2
            assert sleeps[1] > sleeps[0] * 0.5  # backoff grew (pre-jitter 2x)
        finally:
            server.stop()

    def test_exhausted_retries_return_last_retriable_reply(self):
        async def handler(obj):
            return {"ok": False, "retriable": True, "error": "still busy"}

        server = self._server(handler)
        try:
            with ResilientClient(
                server.host,
                server.port,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                seed=0,
                sleep=lambda s: None,
            ) as client:
                reply = client.request({"op": "try"})
            assert reply["ok"] is False
            assert reply["error"] == "still busy"
        finally:
            server.stop()

    def test_transport_failure_retried_after_reconnect(self):
        # First connection dies mid-request; the retry lands on a live
        # server and succeeds.
        accepted = [0]
        ready = threading.Event()
        killer = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        killer.bind(("127.0.0.1", 0))
        killer.listen(8)
        kport = killer.getsockname()[1]

        async def handler(obj):
            return {"ok": True}

        server = self._server(handler)

        def kill_first_then_proxy():
            ready.set()
            conn, _ = killer.accept()
            accepted[0] += 1
            conn.close()  # hang up on the first attempt

        threading.Thread(target=kill_first_then_proxy, daemon=True).start()
        ready.wait(timeout=5.0)
        try:
            client = ResilientClient(
                "127.0.0.1",
                kport,
                retry=RetryPolicy(max_attempts=3, base_delay=0.0),
                seed=0,
                sleep=lambda s: None,
                timeout=5.0,
            )
            # Redirect the client to the real server after the failure.
            original_close = client.close

            def close_and_redirect():
                original_close()
                client.port = server.port

            client.close = close_and_redirect
            reply = client.request({"op": "go"})
            assert reply == {"ok": True}
            assert client.transport_failures >= 1
            client.close()
        finally:
            server.stop()
            killer.close()

    def test_breaker_opens_and_fails_fast(self):
        # Nothing is listening on this port: every attempt fails.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        client = ResilientClient(
            "127.0.0.1",
            dead_port,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            breaker=CircuitBreaker(failure_threshold=2, reset_timeout=60.0),
            seed=0,
            sleep=lambda s: None,
            timeout=1.0,
        )
        with pytest.raises(ServingError):
            client.request({"op": "go"})
        assert client.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.request({"op": "go"})
