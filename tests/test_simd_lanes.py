"""Tests for lane-assignment arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.simd.lanes import lane_occupancies, split_into_vectors, vectors_needed


def test_vectors_needed_basic():
    assert vectors_needed(0, 128) == 0
    assert vectors_needed(300, 128) == 3


def test_split_example():
    assert split_into_vectors(300, 128).tolist() == [128, 128, 44]


def test_split_empty():
    assert split_into_vectors(0, 128).size == 0


def test_occupancies():
    occ = lane_occupancies(300, 128)
    assert occ[:2].tolist() == [1.0, 1.0]
    assert occ[2] == pytest.approx(44 / 128)


def test_rejects_bad_args():
    with pytest.raises(SpecError):
        vectors_needed(-1, 4)
    with pytest.raises(SpecError):
        vectors_needed(1, 0)


@given(n=st.integers(0, 100_000), v=st.integers(1, 512))
def test_property_split_conserves_items(n, v):
    counts = split_into_vectors(n, v)
    assert int(counts.sum()) == n
    if counts.size:
        assert (counts[:-1] == v).all()  # dense compaction
        assert 1 <= counts[-1] <= v
