"""Tests for the calendar queue, including equivalence with the heap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.calendar_queue import CalendarQueue
from repro.des.engine import Engine
from repro.des.events import Event
from repro.errors import SimulationError


def _event(time, priority=0, seq=0):
    return Event(time=time, priority=priority, seq=seq, fn=lambda: None)


class TestBasics:
    def test_push_pop_sorted(self):
        q = CalendarQueue()
        for i, t in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
            q.push(_event(t, seq=i))
        out = [q.pop().time for _ in range(5)]
        assert out == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert len(q) == 0

    def test_priority_and_seq_tiebreak(self):
        q = CalendarQueue()
        q.push(_event(1.0, priority=1, seq=0))
        q.push(_event(1.0, priority=-1, seq=1))
        q.push(_event(1.0, priority=-1, seq=2))
        assert q.pop().seq == 1
        assert q.pop().seq == 2
        assert q.pop().seq == 0

    def test_peek_does_not_remove(self):
        q = CalendarQueue()
        q.push(_event(2.0))
        assert q.peek().time == 2.0
        assert len(q) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()
        with pytest.raises(IndexError):
            CalendarQueue().peek()

    def test_clear(self):
        q = CalendarQueue()
        q.push(_event(1.0))
        q.clear()
        assert len(q) == 0

    def test_far_future_events(self):
        # Events many "years" apart exercise the full-scan fallback.
        q = CalendarQueue(n_buckets=4, bucket_width=1.0)
        q.push(_event(1e9, seq=0))
        q.push(_event(0.5, seq=1))
        assert q.pop().time == 0.5
        assert q.pop().time == 1e9

    def test_resize_preserves_order(self):
        q = CalendarQueue(n_buckets=4, bucket_width=1.0)
        times = list(np.linspace(0, 1000, 200))
        rng = np.random.default_rng(0)
        rng.shuffle(times)
        for i, t in enumerate(times):
            q.push(_event(float(t), seq=i))
        out = [q.pop().time for _ in range(len(times))]
        assert out == sorted(times)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CalendarQueue(n_buckets=0)
        with pytest.raises(ValueError):
            CalendarQueue(bucket_width=0.0)

    def test_zero_span_resize_keeps_width(self):
        # Regression: a resize while every queued event shares one
        # timestamp used to collapse the bucket width to 1e-9, scattering
        # all later events astronomically far from the cursor and forcing
        # the full-scan fallback on every subsequent pop.
        q = CalendarQueue(n_buckets=4, bucket_width=1.0)
        for i in range(64):  # well past the 2*n resize threshold
            q.push(_event(5.0, seq=i))
        assert q._width == 1.0
        q.push(_event(7.25, seq=64))
        q.push(_event(6.5, seq=65))
        assert [q.pop().time for _ in range(64)] == [5.0] * 64
        assert q.pop().time == 6.5
        assert q.pop().time == 7.25


@settings(max_examples=40, deadline=None)
@given(
    times=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=150),
    priorities=st.lists(st.integers(-2, 2), min_size=1, max_size=150),
)
def test_property_matches_heap_order(times, priorities):
    """The calendar queue dequeues in exactly the heap's total order."""
    import heapq

    n = min(len(times), len(priorities))
    cal = CalendarQueue()
    heap: list[Event] = []
    for k in range(n):
        e = _event(times[k], priorities[k], seq=k)
        cal.push(e)
        heapq.heappush(heap, e)
    cal_order = [(cal.pop().seq) for _ in range(n)]
    heap_order = [heapq.heappop(heap).seq for _ in range(n)]
    assert cal_order == heap_order


@settings(max_examples=40, deadline=None)
@given(
    shared=st.floats(0.0, 1e6),
    n_shared=st.integers(40, 120),  # enough volume to trigger resizes
    later=st.lists(st.floats(0.0, 1e6), min_size=0, max_size=40),
    priorities=st.lists(st.integers(-2, 2), min_size=160, max_size=160),
)
def test_property_zero_span_population_matches_heap(
    shared, n_shared, later, priorities
):
    """Resizing with all events at one timestamp keeps heap-identical order.

    Regression for the degenerate-width resize: the identical-timestamp
    population forces span == 0 at resize time, and the trailing pushes
    verify the surviving geometry still orders correctly.
    """
    import heapq

    cal = CalendarQueue(n_buckets=4, bucket_width=1.0)
    heap: list[Event] = []
    events = [shared] * n_shared + later
    for k, t in enumerate(events):
        e = _event(t, priorities[k % len(priorities)], seq=k)
        cal.push(e)
        heapq.heappush(heap, e)
    cal_order = [cal.pop().seq for _ in range(len(events))]
    heap_order = [heapq.heappop(heap).seq for _ in range(len(events))]
    assert cal_order == heap_order


class TestEngineIntegration:
    def test_engine_accepts_calendar(self):
        eng = Engine(queue="calendar")
        fired = []
        eng.schedule(3.0, lambda: fired.append("b"))
        eng.schedule(1.0, lambda: fired.append("a"))
        eng.run()
        assert fired == ["a", "b"]

    def test_engine_rejects_unknown_queue(self):
        with pytest.raises(SimulationError):
            Engine(queue="skiplist")

    def test_simulation_identical_across_queues(self, blast, calibrated_b):
        """A full pipeline simulation is bit-identical on both queues."""
        from repro.arrivals.fixed import FixedRateArrivals
        from repro.core.enforced_waits import solve_enforced_waits
        from repro.core.model import RealTimeProblem
        from repro.sim.enforced import EnforcedWaitsSimulator

        sol = solve_enforced_waits(
            RealTimeProblem(blast, 20.0, 2e5), calibrated_b
        )

        def run(queue_kind):
            sim = EnforcedWaitsSimulator(
                blast,
                sol.waits,
                FixedRateArrivals(20.0),
                2e5,
                2000,
                seed=5,
            )
            sim.engine = Engine(queue=queue_kind)
            return sim.run()

        heap_m = run("heap")
        cal_m = run("calendar")
        assert heap_m.outputs == cal_m.outputs
        assert heap_m.mean_latency == cal_m.mean_latency
        assert heap_m.active_fraction == cal_m.active_fraction
