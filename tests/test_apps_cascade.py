"""Tests for the decision-cascade application."""

import numpy as np
import pytest

from repro.apps.cascade.cascade import (
    CascadeStage,
    cascade_pipeline,
    default_cascade,
    measure_cascade_gains,
    synth_windows,
)
from repro.errors import SpecError


class TestStages:
    def test_default_cascade_shape(self):
        stages = default_cascade()
        costs = [s.service_time for s in stages]
        feats = [s.n_features for s in stages]
        assert costs == sorted(costs)  # deeper stages cost more
        assert feats == sorted(feats)

    def test_stage_validation(self):
        with pytest.raises(SpecError):
            CascadeStage(n_features=0, threshold=0.0, service_time=1.0)
        with pytest.raises(SpecError):
            CascadeStage(n_features=1, threshold=0.0, service_time=0.0)


class TestWindows:
    def test_shapes_and_labels(self, rng):
        feats, is_obj = synth_windows(500, 16, 0.1, rng)
        assert feats.shape == (500, 16)
        assert is_obj.shape == (500,)
        assert 0.02 < is_obj.mean() < 0.2

    def test_objects_shifted(self, rng):
        feats, is_obj = synth_windows(20_000, 8, 0.5, rng)
        assert feats[is_obj].mean() > feats[~is_obj].mean()

    def test_validation(self, rng):
        with pytest.raises(SpecError):
            synth_windows(0, 4, 0.1, rng)
        with pytest.raises(SpecError):
            synth_windows(10, 4, 1.5, rng)


class TestGains:
    @pytest.fixture(scope="class")
    def trace(self):
        return measure_cascade_gains(n_windows=10_000, seed=1)

    def test_all_stages_filter(self, trace):
        g = trace.mean_gains
        assert ((g > 0.0) & (g <= 1.0)).all()

    def test_survival_shrinks_down_cascade(self, trace):
        sizes = [c.size for c in trace.stage_counts]
        assert sizes == sorted(sizes, reverse=True)

    def test_detection_enriches_objects(self):
        # Higher object fraction -> more detections.
        low = measure_cascade_gains(
            n_windows=10_000, object_fraction=0.0, seed=1
        )
        high = measure_cascade_gains(
            n_windows=10_000, object_fraction=0.2, seed=1
        )
        assert high.n_detections > low.n_detections

    def test_pipeline_constructs_and_solves(self, trace):
        from repro.core.enforced_waits import solve_enforced_waits
        from repro.core.feasibility import min_tau0_enforced
        from repro.core.model import RealTimeProblem

        p = cascade_pipeline(trace)
        tau0 = 2.0 * min_tau0_enforced(p)
        sol = solve_enforced_waits(
            RealTimeProblem(p, tau0, 1e5), np.full(4, 2.0)
        )
        assert sol.feasible

    def test_depth_mismatch_rejected(self, trace):
        with pytest.raises(SpecError):
            cascade_pipeline(trace, stages=default_cascade()[:2])
