"""Tests for the enforced-waits optimization (Figure 1) — the paper's core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enforced_waits import (
    EnforcedWaitsProblem,
    optimistic_b,
    solve_enforced_waits,
)
from repro.core.model import RealTimeProblem
from repro.dataflow.spec import PipelineSpec
from repro.errors import SpecError


class TestOptimisticB:
    def test_blast_values(self, blast):
        # Paper: b_i = ceil(g_i), clamped at 1.
        assert optimistic_b(blast).tolist() == [1.0, 2.0, 1.0, 1.0]


class TestFeasibilityHandling:
    def test_infeasible_returns_diagnosis(self, blast, calibrated_b):
        sol = solve_enforced_waits(
            RealTimeProblem(blast, 1.0, 3.5e5), calibrated_b
        )
        assert not sol.feasible
        assert np.isnan(sol.active_fraction)
        assert sol.diagnosis is not None

    def test_b_validation(self, blast):
        prob = RealTimeProblem(blast, 50.0, 2e5)
        with pytest.raises(SpecError):
            EnforcedWaitsProblem(prob, np.ones(2))


class TestSolutionProperties:
    @pytest.mark.parametrize(
        "tau0,deadline",
        [(5.0, 3.0e5), (10.0, 3.5e5), (20.0, 1.0e5), (50.0, 2.0e5), (100.0, 3.0e4), (100.0, 3.5e5)],
    )
    def test_solution_is_feasible_point(self, blast, calibrated_b, tau0, deadline):
        prob = RealTimeProblem(blast, tau0, deadline)
        sol = solve_enforced_waits(prob, calibrated_b)
        assert sol.feasible
        x = sol.periods
        t = blast.service_times
        g = blast.mean_gains
        assert (x >= t * (1 - 1e-9)).all()
        assert x[0] <= 128 * tau0 * (1 + 1e-9)
        for i in range(1, 4):
            assert g[i - 1] * x[i] <= x[i - 1] * (1 + 1e-8)
        assert float(np.dot(calibrated_b, x)) <= deadline * (1 + 1e-8)
        assert 0.0 < sol.active_fraction <= 1.0
        assert sol.waits == pytest.approx(x - t)
        assert sol.node_utilizations == pytest.approx(t / x)

    def test_paper_point_regression(self, blast, calibrated_b):
        """Regression anchor at (tau0=10, D=3.5e5): chain-binding regime."""
        sol = solve_enforced_waits(
            RealTimeProblem(blast, 10.0, 3.5e5), calibrated_b
        )
        assert sol.active_fraction == pytest.approx(0.1969, abs=2e-3)
        assert sol.periods[0] == pytest.approx(1280.0, rel=1e-6)  # head cap
        assert "chain_0->1" in sol.binding

    def test_deadline_binding_regression(self, blast, calibrated_b):
        sol = solve_enforced_waits(
            RealTimeProblem(blast, 50.0, 2.0e5), calibrated_b
        )
        assert sol.active_fraction == pytest.approx(0.08696, abs=1e-3)
        assert "deadline" in sol.binding
        assert sol.method == "waterfill"  # chain slack -> fast path

    def test_af_decreases_with_deadline(self, blast, calibrated_b):
        afs = []
        for d in (5e4, 1e5, 2e5, 3.5e5):
            sol = solve_enforced_waits(
                RealTimeProblem(blast, 50.0, d), calibrated_b
            )
            afs.append(sol.active_fraction)
        assert all(a >= b - 1e-12 for a, b in zip(afs, afs[1:]))

    def test_af_nonincreasing_with_tau0(self, blast, calibrated_b):
        afs = []
        for tau0 in (5.0, 10.0, 30.0, 100.0):
            sol = solve_enforced_waits(
                RealTimeProblem(blast, tau0, 3.5e5), calibrated_b
            )
            afs.append(sol.active_fraction)
        assert all(a >= b - 1e-12 for a, b in zip(afs, afs[1:]))


class TestSolverAgreement:
    @pytest.mark.parametrize(
        "tau0,deadline",
        [(5.0, 3.0e5), (10.0, 3.5e5), (50.0, 2.0e5), (100.0, 3.0e4)],
    )
    def test_auto_matches_slsqp(self, blast, calibrated_b, tau0, deadline):
        prob = RealTimeProblem(blast, tau0, deadline)
        auto = EnforcedWaitsProblem(prob, calibrated_b).solve("auto")
        slsqp = EnforcedWaitsProblem(prob, calibrated_b).solve("slsqp")
        # SLSQP's own tolerance limits the agreement achievable.
        assert auto.active_fraction == pytest.approx(
            slsqp.active_fraction, rel=1e-3
        )
        # Our solver should never be worse than the cross-check.
        assert auto.active_fraction <= slsqp.active_fraction * (1 + 1e-6)

    def test_interior_matches_auto_when_chain_binds(self, blast, calibrated_b):
        prob = RealTimeProblem(blast, 10.0, 3.5e5)
        auto = EnforcedWaitsProblem(prob, calibrated_b).solve("auto")
        interior = EnforcedWaitsProblem(prob, calibrated_b).solve("interior")
        assert auto.active_fraction == pytest.approx(
            interior.active_fraction, rel=1e-6
        )

    def test_unknown_method_rejected(self, blast, calibrated_b):
        prob = RealTimeProblem(blast, 50.0, 2e5)
        with pytest.raises(SpecError):
            EnforcedWaitsProblem(prob, calibrated_b).solve("magic")


class TestEdgeCases:
    def test_single_node_pipeline(self):
        from repro.dataflow.gains import DeterministicGain
        from repro.dataflow.spec import NodeSpec

        p = PipelineSpec((NodeSpec("only", 10.0, DeterministicGain(1)),), 4)
        sol = solve_enforced_waits(
            RealTimeProblem(p, 10.0, 100.0), np.asarray([1.0])
        )
        assert sol.feasible
        # Budget allows x=40 (v*tau0) vs deadline 100 -> cap binds at 40.
        assert sol.periods[0] == pytest.approx(40.0, rel=1e-6)

    def test_degenerate_deadline_equals_minimum(self, blast, calibrated_b):
        from repro.core.feasibility import min_deadline_enforced, minimal_periods

        d_min = min_deadline_enforced(blast, calibrated_b)
        sol = solve_enforced_waits(
            RealTimeProblem(blast, 50.0, d_min), calibrated_b
        )
        assert sol.feasible
        # The only feasible point is the minimal one (chain floors force
        # x >= x_min componentwise and the budget is exactly at x_min's).
        x_min = minimal_periods(blast)
        expected_af = float(np.mean(blast.service_times / x_min))
        assert sol.active_fraction == pytest.approx(expected_af, rel=1e-4)
        assert sol.periods == pytest.approx(x_min, rel=1e-4)

    def test_head_cap_pinned(self, blast, calibrated_b):
        # tau0 exactly at the enforced-waits feasibility edge.
        from repro.core.feasibility import min_tau0_enforced

        tau0 = min_tau0_enforced(blast)
        sol = solve_enforced_waits(
            RealTimeProblem(blast, tau0, 3.5e5), calibrated_b
        )
        assert sol.feasible
        assert sol.periods[0] == pytest.approx(128 * tau0, rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        tau0=st.floats(3.0, 100.0),
        deadline=st.floats(3e4, 3.5e5),
    )
    def test_property_solution_always_feasible_point(self, tau0, deadline):
        from repro.apps.blast.pipeline import blast_pipeline

        blast = blast_pipeline()
        b = np.asarray([1.0, 3.0, 9.0, 6.0])
        sol = solve_enforced_waits(RealTimeProblem(blast, tau0, deadline), b)
        if not sol.feasible:
            return
        x = sol.periods
        assert (x >= blast.service_times * (1 - 1e-9)).all()
        assert x[0] <= 128 * tau0 * (1 + 1e-8)
        g = blast.mean_gains
        for i in range(1, 4):
            assert g[i - 1] * x[i] <= x[i - 1] * (1 + 1e-7)
        assert float(np.dot(b, x)) <= deadline * (1 + 1e-7)
