"""Tests for parameter sweeps and the Figure 3/4 analysis."""

import numpy as np
import pytest

from repro.core.analysis import (
    difference_surface,
    dominance_regions,
    sensitivity_profile,
)
from repro.core.sweep import paper_grid, sweep_strategies
from repro.errors import SpecError


@pytest.fixture(scope="module")
def small_sweep():
    from repro.apps.blast.pipeline import blast_pipeline

    tau0s = np.asarray([3.16, 10.0, 31.6, 100.0])
    ds = np.asarray([2e4, 4e4, 1e5, 3.5e5])
    return sweep_strategies(
        blast_pipeline(), tau0s, ds, b_enforced=np.asarray([1.0, 3.0, 9.0, 6.0])
    )


class TestPaperGrid:
    def test_ranges_match_section_6_1(self):
        tau0s, ds = paper_grid(5, 7)
        assert tau0s[0] == pytest.approx(1.0)
        assert tau0s[-1] == pytest.approx(100.0)
        assert ds[0] == pytest.approx(2e4)
        assert ds[-1] == pytest.approx(3.5e5)
        assert tau0s.size == 5 and ds.size == 7


class TestSweep:
    def test_shapes(self, small_sweep):
        assert small_sweep.shape == (4, 4)
        assert small_sweep.enforced_af.shape == (4, 4)
        assert small_sweep.enforced_periods.shape == (4, 4, 4)

    def test_feasibility_masks_consistent(self, small_sweep):
        e_mask = small_sweep.enforced_feasible_mask()
        assert e_mask.dtype == bool
        # Wherever feasible, periods are recorded.
        assert not np.isnan(
            small_sweep.enforced_periods[e_mask]
        ).any()

    def test_known_regime_values(self, small_sweep):
        # (tau0=10, D=3.5e5) regression anchors.
        i, j = 1, 3
        assert small_sweep.enforced_af[i, j] == pytest.approx(0.197, abs=5e-3)
        assert small_sweep.monolithic_af[i, j] == pytest.approx(0.789, abs=5e-3)

    def test_monolithic_infeasible_fast_arrivals(self, small_sweep):
        assert np.isnan(small_sweep.monolithic_af[0]).all()  # tau0=3.16

    def test_row_accessor(self, small_sweep):
        row = small_sweep.row(1, 3)
        assert row["tau0"] == pytest.approx(10.0)
        assert row["monolithic_block"] > 0

    def test_grid_validation(self):
        from repro.apps.blast.pipeline import blast_pipeline

        with pytest.raises(SpecError):
            sweep_strategies(
                blast_pipeline(),
                np.asarray([-1.0]),
                np.asarray([1e5]),
                b_enforced=np.ones(4),
            )


class TestDifference:
    def test_nan_mode_propagates(self, small_sweep):
        diff = difference_surface(small_sweep, infeasible="nan")
        assert np.isnan(diff[0]).all()  # monolithic infeasible row

    def test_one_mode_scores_infeasible(self, small_sweep):
        diff = difference_surface(small_sweep, infeasible="one")
        assert not np.isnan(diff).any()
        # tau0=3.16, D=3.5e5: mono infeasible (1.0) vs enforced ~0.62.
        assert diff[0, 3] == pytest.approx(1.0 - small_sweep.enforced_af[0, 3])

    def test_mode_validation(self, small_sweep):
        with pytest.raises(SpecError):
            difference_surface(small_sweep, infeasible="zero")


class TestDominance:
    def test_paper_claims(self, small_sweep):
        regions = dominance_regions(small_sweep)
        # Enforced wins by >= 0.4 somewhere (fast arrivals + slack).
        assert regions.max_enforced_margin >= 0.4
        # Monolithic wins by a similar amount somewhere (slow + tight).
        assert regions.max_monolithic_margin >= 0.3
        # Both regions non-trivial.
        assert regions.enforced_wins.any()
        assert regions.monolithic_wins.any()
        assert "wins" in regions.describe()

    def test_win_masks_disjoint(self, small_sweep):
        regions = dominance_regions(small_sweep)
        assert not (regions.enforced_wins & regions.monolithic_wins).any()


class TestCrossoverCurve:
    def test_increases_with_tau0(self, small_sweep):
        from repro.core.analysis import crossover_curve

        curve = crossover_curve(small_sweep)
        # Fast arrivals: enforced wins everywhere tested (-inf); as tau0
        # grows the break-even deadline grows (paper's diagonal).
        finite = curve[np.isfinite(curve)]
        assert finite.size >= 2
        assert (np.diff(finite) >= -1e-9).all()
        # Fastest feasible row wins at every deadline.
        assert np.isneginf(curve[0]) or np.isfinite(curve[0])

    def test_values_bracket_the_sign_change(self, small_sweep):
        from repro.core.analysis import (
            crossover_curve,
            difference_surface,
        )

        curve = crossover_curve(small_sweep)
        diff = difference_surface(small_sweep, infeasible="one")
        ds = small_sweep.deadline_values
        for i, d_star in enumerate(curve):
            if not np.isfinite(d_star):
                continue
            after = diff[i, ds >= d_star]
            assert after.size == 0 or after[0] >= -1e-9


class TestSensitivity:
    def test_complementary_shape(self, small_sweep):
        prof = sensitivity_profile(small_sweep)
        # Paper Section 6.3: enforced tracks D, monolithic tracks tau0.
        assert (
            prof.monolithic_tau0_sensitivity
            > prof.monolithic_deadline_sensitivity
        )
        assert (
            prof.enforced_deadline_sensitivity
            > 0.5 * prof.enforced_tau0_sensitivity
        )
        # Monolithic is much more tau0-sensitive than enforced at scale.
        assert (
            prof.monolithic_tau0_sensitivity
            > prof.enforced_tau0_sensitivity
        )
