"""Tests for the solver fallback chain (repro.solvers.fallback).

Unit tests drive solve_with_fallback with synthetic rungs; the
integration tests run EnforcedWaitsProblem with method="fallback" on the
paper pipeline, including the ISSUE acceptance case of a sabotaged
interior-point rung falling through to a certified backup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.enforced_waits import EnforcedWaitsProblem
from repro.core.model import RealTimeProblem
from repro.errors import SolverError
from repro.solvers.fallback import (
    FallbackRung,
    FeasibilityCertificate,
    certify_linear,
    perturbation_scale,
    solve_with_fallback,
)
from repro.solvers.result import SolverResult, SolverStatus

import repro.core.enforced_waits as ew


class TestCertifyLinear:
    A = np.asarray([[1.0, 0.0], [0.0, 1.0], [-1.0, -1.0]])
    c = np.asarray([2.0, 3.0, -1.0])
    labels = ["x0_cap", "x1_cap", "sum_floor"]

    def test_feasible_point_passes(self):
        cert = certify_linear(self.A, self.c, np.asarray([1.0, 1.0]))
        assert cert.satisfied
        assert cert.max_violation < 0  # strictly feasible

    def test_violation_scaled_by_rhs_magnitude(self):
        # x0 = 4 violates row 0 (c=2) by 2, scaled by max(|2|,1) = 2.
        cert = certify_linear(self.A, self.c, np.asarray([4.0, 1.0]))
        assert not cert.satisfied
        assert cert.max_violation == pytest.approx(1.0)

    def test_worst_constraint_labelled(self):
        cert = certify_linear(
            self.A, self.c, np.asarray([4.0, 1.0]), labels=self.labels
        )
        assert cert.worst_constraint == "x0_cap"

    def test_default_row_labels(self):
        cert = certify_linear(self.A, self.c, np.asarray([4.0, 1.0]))
        assert cert.worst_constraint == "row_0"

    def test_small_rhs_not_inflated(self):
        """|c| < 1 rows scale by 1, not by the tiny |c|."""
        cert = certify_linear(
            np.asarray([[1.0]]), np.asarray([1e-6]), np.asarray([0.5])
        )
        assert cert.max_violation == pytest.approx(0.5 - 1e-6)

    def test_nonfinite_iterate_fails_with_inf(self):
        cert = certify_linear(self.A, self.c, np.asarray([np.nan, 1.0]))
        assert not cert.satisfied
        assert cert.max_violation == float("inf")
        assert "non-finite" in cert.worst_constraint

    def test_tolerance_respected(self):
        x = np.asarray([2.0 + 5e-10, 1.0])
        assert certify_linear(self.A, self.c, x, tol=1e-9).satisfied
        assert not certify_linear(self.A, self.c, x, tol=1e-12).satisfied

    def test_repr_states_verdict(self):
        good = certify_linear(self.A, self.c, np.asarray([1.0, 1.0]))
        bad = certify_linear(self.A, self.c, np.asarray([9.0, 9.0]))
        assert "feasible" in repr(good)
        assert "INFEASIBLE" in repr(bad)


class TestPerturbationScale:
    def test_attempt_zero_is_unperturbed(self):
        assert perturbation_scale(0) == 0.0

    def test_doubles_per_retry(self):
        assert perturbation_scale(1) == 1e-3
        assert perturbation_scale(2) == 2e-3
        assert perturbation_scale(3) == 4e-3

    def test_custom_base(self):
        assert perturbation_scale(2, base=0.5) == 1.0


def _ok(x, objective=1.0, status=SolverStatus.OPTIMAL, message=""):
    return SolverResult(
        x=np.asarray(x, dtype=float),
        objective=objective,
        status=status,
        iterations=1,
        message=message,
    )


class TestSolveWithFallback:
    def test_rejects_empty_chain(self):
        with pytest.raises(SolverError, match="at least one rung"):
            solve_with_fallback([])

    def test_rejects_nonpositive_attempts(self):
        rung = FallbackRung("r", lambda a: _ok([0.0]))
        with pytest.raises(SolverError, match="attempts"):
            solve_with_fallback([rung], attempts=0)

    def test_first_rung_success_short_circuits(self):
        calls = []

        def second(attempt):
            calls.append(attempt)
            return _ok([0.0])

        result = solve_with_fallback(
            [
                FallbackRung("first", lambda a: _ok([1.0])),
                FallbackRung("second", second),
            ]
        )
        assert calls == []
        fb = result.extra["fallback"]
        assert fb["rung"] == "first"
        assert fb["rung_index"] == 0
        assert fb["attempt"] == 0
        assert fb["trail"] == ()

    def test_raising_rung_retried_with_growing_attempts(self):
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 2:
                raise SolverError("singular system")
            return _ok([1.0])

        result = solve_with_fallback([FallbackRung("flaky", flaky)])
        assert attempts == [0, 1, 2]
        fb = result.extra["fallback"]
        assert fb["attempt"] == 2
        assert len(fb["trail"]) == 2
        assert "singular system" in fb["trail"][0]

    def test_linalgerror_counts_as_failed_attempt(self):
        def bad(attempt):
            raise np.linalg.LinAlgError("not positive definite")

        result = solve_with_fallback(
            [
                FallbackRung("bad", bad),
                FallbackRung("good", lambda a: _ok([1.0])),
            ]
        )
        assert result.extra["fallback"]["rung"] == "good"
        assert len(result.extra["fallback"]["trail"]) == 3

    def test_certificate_rejection_advances_the_chain(self):
        A = np.asarray([[1.0]])
        c = np.asarray([1.0])

        def certify(x):
            return certify_linear(A, c, x)

        result = solve_with_fallback(
            [
                FallbackRung("cheats", lambda a: _ok([5.0])),  # infeasible
                FallbackRung("honest", lambda a: _ok([0.5])),
            ],
            certify=certify,
        )
        fb = result.extra["fallback"]
        assert fb["rung"] == "honest"
        assert any("certificate failed" in s for s in fb["trail"])
        assert result.extra["certificate"].satisfied

    def test_certified_nonoptimal_kept_as_last_resort(self):
        maxiter = _ok(
            [0.5], objective=3.0, status=SolverStatus.MAX_ITER,
            message="hit iteration cap",
        )
        result = solve_with_fallback(
            [FallbackRung("only", lambda a: maxiter)],
            certify=lambda x: certify_linear(
                np.asarray([[1.0]]), np.asarray([1.0]), x
            ),
        )
        assert result.status is SolverStatus.MAX_ITER
        assert result.extra["fallback"]["rung"] == "only"
        assert result.extra["certificate"].satisfied

    def test_best_last_resort_wins_by_objective(self):
        worse = _ok([0.1], objective=5.0, status=SolverStatus.MAX_ITER)
        better = _ok([0.2], objective=2.0, status=SolverStatus.MAX_ITER)
        result = solve_with_fallback(
            [
                FallbackRung("worse", lambda a: worse),
                FallbackRung("better", lambda a: better),
            ],
        )
        assert result.objective == 2.0
        assert result.extra["fallback"]["rung"] == "better"

    def test_total_failure_raises_with_trail(self):
        def bad(attempt):
            raise SolverError("boom")

        with pytest.raises(SolverError, match="all fallback rungs failed"):
            solve_with_fallback([FallbackRung("bad", bad)], attempts=2)


class TestEnforcedWaitsFallback:
    """method='fallback' on the paper pipeline, healthy and sabotaged."""

    @pytest.fixture
    def problem(self, blast, calibrated_b):
        return EnforcedWaitsProblem(
            RealTimeProblem(blast, 20.0, 6.0e4), calibrated_b
        )

    def test_healthy_chain_matches_auto(self, problem):
        auto = problem.solve("auto")
        fb = problem.solve("fallback")
        assert fb.feasible
        assert fb.method == "fallback:interior-point"
        assert fb.active_fraction == pytest.approx(
            auto.active_fraction, rel=1e-6
        )
        np.testing.assert_allclose(fb.waits, auto.waits, rtol=1e-5, atol=1e-6)

    def test_forced_interior_failure_falls_through(
        self, problem, monkeypatch
    ):
        """ISSUE acceptance: sabotage interior point, get a certified
        result from a lower rung with the failures on the trail."""

        def sabotaged(*args, **kwargs):
            raise SolverError("injected interior-point failure")

        monkeypatch.setattr(ew, "barrier_solve", sabotaged)
        sol = problem.solve("fallback")
        assert sol.feasible
        rung = sol.method.removeprefix("fallback:")
        assert rung in ("projected-gradient", "grid")

        result = sol.solver_result
        cert = result.extra["certificate"]
        assert cert.satisfied
        assert cert.max_violation <= 1e-9
        trail = result.extra["fallback"]["trail"]
        interior_failures = [s for s in trail if "interior-point" in s]
        assert len(interior_failures) == 3  # all retries exhausted
        assert all("injected" in s for s in interior_failures)

    def test_fallback_on_infeasible_point_reports_infeasible(self, blast):
        # Deadline far too tight for any wait assignment.
        problem = EnforcedWaitsProblem(
            RealTimeProblem(blast, 20.0, 1.0),
            np.asarray([1.0, 3.0, 9.0, 6.0]),
        )
        sol = problem.solve("fallback")
        assert not sol.feasible
        assert sol.diagnosis
