"""Tests for simulation-backed experiments (validation, ablations, calibration).

These run at deliberately small scale; the full-scale numbers live in
EXPERIMENTS.md and the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_ablation_gain_models,
    run_ablation_timing,
    run_ablation_vacation,
    run_poisson_arrivals,
)
from repro.experiments.calibration_exp import run_calibration
from repro.experiments.queueing_exp import run_queueing_b
from repro.experiments.sim_validation import run_sim_validation


class TestSimValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sim_validation(
            points=((20.0, 1.0e5), (50.0, 2.0e5)), n_items=8000
        )

    def test_prediction_matches_measurement(self, result):
        """The paper's 'closely matched' claim (Section 6.2)."""
        assert result.rows, "no feasible points tested"
        assert result.max_rel_error < 0.08

    def test_both_strategies_covered(self, result):
        strategies = {r.strategy for r in result.rows}
        assert strategies == {"enforced", "monolithic"}

    def test_no_misses_with_calibrated_params(self, result):
        assert all(r.miss_rate <= 0.01 for r in result.rows)

    def test_render(self, result):
        assert "predicted AF" in result.render()


class TestAblations:
    def test_timing(self):
        r = run_ablation_timing(n_trials=3, n_items=2000)
        ideal = r.variant("idealized")
        capped = r.variant("gps-capped")
        gps = r.variant("gps")
        assert capped[1] == pytest.approx(ideal[1], rel=0.05)
        assert gps[1] < ideal[1]  # work conservation only helps
        assert "A1" in r.render()

    def test_vacation(self):
        r = run_ablation_vacation(n_trials=3, n_items=2000)
        charged = r.variant("charged (paper)")
        vacation = r.variant("vacation")
        assert vacation[1] < charged[1]
        # Accounting change does not affect deadline behaviour.
        assert vacation[3] == pytest.approx(charged[3], abs=1e-9)

    def test_gain_models(self):
        r = run_ablation_gain_models(n_trials=3, n_items=2000)
        names = [row[0] for row in r.rows]
        assert "paper model" in names
        assert any("bursty" in n for n in names)
        assert any("mini-BLAST" in n for n in names)

    def test_poisson_arrivals(self):
        r = run_poisson_arrivals(n_trials=3, n_items=2000)
        fixed = r.variant("fixed rate (paper)")
        poisson = r.variant("Poisson (Section 7)")
        # Same mean rate: similar active fraction.
        assert poisson[1] == pytest.approx(fixed[1], rel=0.1)


class TestCalibration:
    @pytest.mark.slow
    def test_small_campaign(self):
        r = run_calibration(n_trials=6, n_items=8000)
        assert r.calibration.passed
        b = r.calibration.b
        # Shape matches the paper: small at the head (our event ordering
        # enqueues a same-instant arrival before the firing, so the head
        # can observe depth v+1 and calibrate to 2), larger after the
        # expander.
        assert b[0] <= 2.0
        assert b[1] >= 2.0
        assert b.max() >= 2.0
        assert r.monolithic_b == 1
        assert r.monolithic_s >= 1.0
        assert "calibration" in r.render().lower()


class TestQueueingB:
    @pytest.mark.slow
    def test_both_regimes(self):
        r = run_queueing_b(epsilon=1e-3)
        # Stable (deadline-binding) regime: finite, near paper's values.
        assert np.isfinite(r.b_estimated_stable).all()
        assert r.b_estimated_stable[0] == 1.0
        # Critical (chain-binding) regime: approximation degenerates.
        assert np.isinf(r.b_estimated_critical).any()
        assert "F1" in r.render()
