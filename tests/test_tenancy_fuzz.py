"""Differential fuzzing: co-scheduled tenants vs their solo runs.

Randomized (seeded, reproducible-by-index) groups of K small pipelines
are run twice: co-scheduled through
:class:`~repro.tenancy.sim.MultiTenantSimulator` and solo through
:class:`~repro.sim.enforced.EnforcedWaitsSimulator`.  Two contracts:

- **Undersubscribed is exact**: with device capacity covering the total
  demand every tenant is fully funded, and its co-scheduled metrics must
  be *bit-identical* to the solo run (same seed, same private RNG
  registry, same event order within the tenant).
- **Contention only hurts**: with capacity below demand a tenant runs
  on stretched service times, and its co-scheduled metrics must be
  bit-identical to a *solo* run of the same pipeline with the stretch
  applied — co-residency introduces zero interference beyond the
  capacity model (no cross-tenant RNG or queue leaks).  Against the
  unstretched solo baseline, no item may disappear (outputs exactly
  equal, queues unbounded here) and deadline misses never decrease;
  mean latency and makespan carry a small tolerance because stretching
  shifts vector-batching boundaries (fuller, fewer firings can complete
  a given item slightly *earlier* even though every firing is slower —
  observed worst case ~5% over 231 fuzzed tenant-runs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals.fixed import FixedRateArrivals
from repro.arrivals.poisson import PoissonArrivals
from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
)
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.tenancy.sim import MultiTenantSimulator, SimTenant
from tests.test_sim_differential_fuzz import assert_metrics_bit_identical

_QOS = ("gold", "silver", "best-effort")


def _random_tenant(name: str, rng: np.random.Generator) -> SimTenant:
    """One random small tenant (everything drawn from ``rng``)."""
    n_nodes = int(rng.integers(1, 4))
    nodes = []
    for i in range(n_nodes):
        kind = int(rng.integers(0, 3))
        if kind == 0:
            gain = DeterministicGain(int(rng.integers(1, 3)))
        elif kind == 1:
            gain = BernoulliGain(float(rng.uniform(0.3, 1.0)))
        else:
            gain = CensoredPoissonGain(
                float(rng.uniform(0.5, 2.0)), int(rng.integers(2, 6))
            )
        nodes.append(NodeSpec(f"{name}-f{i}", float(rng.uniform(0.5, 3.0)), gain))
    pipeline = PipelineSpec(tuple(nodes), int(rng.choice([2, 4])))
    waits = rng.uniform(0.0, 3.0, size=n_nodes)
    tau0 = float(rng.uniform(1.0, 5.0))
    arrivals = (
        FixedRateArrivals(tau0)
        if rng.random() < 0.5
        else PoissonArrivals(1.0 / tau0)
    )
    return SimTenant(
        name=name,
        pipeline=pipeline,
        waits=waits,
        arrivals=arrivals,
        deadline=float(rng.uniform(20.0, 120.0)),
        n_items=int(rng.integers(20, 120)),
        qos=_QOS[int(rng.integers(0, 3))],
        seed=int(rng.integers(0, 2**31)),
    )


def _case(case_index: int) -> list[SimTenant]:
    rng = np.random.default_rng(5000 + case_index)
    k = int(rng.integers(2, 5))
    return [_random_tenant(f"t{i}", rng) for i in range(k)]


def _solo(tenant: SimTenant, scale: float = 1.0):
    pipeline = tenant.pipeline
    if scale != 1.0:
        pipeline = PipelineSpec(
            tuple(
                NodeSpec(n.name, n.service_time * scale, n.gain)
                for n in pipeline.nodes
            ),
            pipeline.vector_width,
        )
    return EnforcedWaitsSimulator(
        pipeline,
        tenant.waits,
        tenant.arrivals,
        tenant.deadline,
        tenant.n_items,
        seed=tenant.seed,
    ).run()


# Vector-batching boundary slack for latency/makespan comparisons
# against the unstretched baseline (see module docstring).
_BATCHING_TOL = 0.94


@pytest.mark.parametrize("case_index", range(10))
def test_undersubscribed_cosim_is_bit_identical(case_index):
    tenants = _case(case_index)
    # Size the device to the case's demand so every tenant is fully
    # funded — the simulated-capacity analogue of an uncontended device.
    capacity = 1.01 * sum(t.active_fraction() for t in tenants)
    result = MultiTenantSimulator(
        tenants, capacity=capacity, qos_queues=False
    ).run()
    assert all(s == 1.0 for s in result.scales.values())
    for tenant in tenants:
        assert_metrics_bit_identical(result.metrics(tenant.name), _solo(tenant))
    assert result.conserves()


@pytest.mark.parametrize("case_index", range(10))
def test_contention_never_improves_any_tenant(case_index):
    tenants = _case(case_index)
    solo = {t.name: _solo(t) for t in tenants}
    demand = sum(t.active_fraction() for t in tenants)
    # Squeeze to half the demand so at least one tenant is defunded.
    capacity = min(1.0, demand / 2.0)
    result = MultiTenantSimulator(
        tenants, capacity=capacity, qos_queues=False
    ).run()
    assert any(s > 1.0 for s in result.scales.values())
    for tenant in tenants:
        co = result.metrics(tenant.name)
        ref = solo[tenant.name]
        # Exact isolation: the co-run equals a solo run at the granted
        # share — contention is *only* the capacity stretch, never a
        # cross-tenant leak.  (Scale 1.0 makes this plain solo identity.)
        assert_metrics_bit_identical(
            co, _solo(tenant, scale=result.scales[tenant.name])
        )
        # Unbounded queues: contention may delay but never lose items.
        assert co.n_items == ref.n_items
        assert co.outputs == ref.outputs
        # Degradation vs the unstretched baseline is monotone up to
        # batching slack; misses and item counts are exactly monotone.
        assert co.missed_items >= ref.missed_items
        assert co.makespan >= _BATCHING_TOL * ref.makespan
        if np.isfinite(ref.mean_latency) and np.isfinite(co.mean_latency):
            assert co.mean_latency >= _BATCHING_TOL * ref.mean_latency
    assert result.conserves()


@pytest.mark.slow
@pytest.mark.parametrize("case_index", range(10, 30))
def test_contention_never_improves_extended(case_index):
    test_contention_never_improves_any_tenant(case_index)
