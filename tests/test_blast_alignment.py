"""Tests for banded Smith-Waterman."""

import numpy as np
import pytest

from repro.apps.blast.alignment import banded_smith_waterman
from repro.apps.blast.sequence import from_string, random_dna
from repro.errors import SpecError


class TestPerfectMatches:
    def test_identical_sequences(self):
        seq = from_string("ACGTACGTAC")
        r = banded_smith_waterman(seq, seq, diagonal=0)
        assert r.score == 2 * seq.size  # match=+2 each
        assert r.q_end == seq.size
        assert r.d_end == seq.size

    def test_shifted_match_via_diagonal(self):
        query = from_string("ACGTACGT")
        database = np.concatenate([from_string("TTTT"), query])
        r = banded_smith_waterman(query, database, diagonal=4)
        assert r.score == 2 * query.size
        assert r.d_end == database.size


class TestLocality:
    def test_local_alignment_ignores_prefix_noise(self):
        query = from_string("CCCC" + "ACGTACGTACGT")
        database = from_string("GGGG" + "ACGTACGTACGT")
        r = banded_smith_waterman(query, database, diagonal=0)
        assert r.score == 2 * 12  # the shared 12-mer only

    def test_empty_inputs(self):
        assert banded_smith_waterman(
            np.asarray([], dtype=np.uint8), from_string("ACGT"), 0
        ).score == 0


class TestGapsAndMismatches:
    def test_single_mismatch_costs(self):
        a = from_string("AAAAAAAAAA")
        b = a.copy()
        b[5] = 1  # C
        r = banded_smith_waterman(a, b, diagonal=0)
        # Either align through the mismatch (20 - 2 - 3 = 15) or take the
        # best clean run (5 * 2 = 10): through wins.
        assert r.score == 2 * 10 - 2 - 3

    def test_gap_bridges_insertion(self):
        query = from_string("ACGTACGTACGT")
        database = np.concatenate(
            [query[:6], from_string("G"), query[6:]]
        )
        r = banded_smith_waterman(query, database, diagonal=0, band=4)
        # Full alignment with one gap: 12*2 - 5 = 19; beats the best
        # ungapped half (6*2 + ... <= 14ish).
        assert r.score == 2 * 12 - 5

    def test_band_limits_reachable_cells(self):
        query = from_string("ACGTACGT")
        database = np.concatenate([from_string("TTTTTTTTTT"), query])
        # True alignment lives on diagonal 10; a narrow band at 0 misses it.
        narrow = banded_smith_waterman(query, database, diagonal=0, band=2)
        wide = banded_smith_waterman(query, database, diagonal=0, band=10)
        assert wide.score > narrow.score


class TestAgainstFullDP:
    def _full_sw(self, a, b, match=2, mismatch=-3, gap=-5):
        h = np.zeros((a.size + 1, b.size + 1), dtype=np.int64)
        best = 0
        for i in range(1, a.size + 1):
            for j in range(1, b.size + 1):
                sub = match if a[i - 1] == b[j - 1] else mismatch
                h[i, j] = max(
                    0,
                    h[i - 1, j - 1] + sub,
                    h[i - 1, j] + gap,
                    h[i, j - 1] + gap,
                )
                best = max(best, int(h[i, j]))
        return best

    def test_wide_band_equals_full_dp(self, rng):
        for _ in range(5):
            a = random_dna(18, rng)
            b = random_dna(18, rng)
            full = self._full_sw(a, b)
            banded = banded_smith_waterman(a, b, diagonal=0, band=18)
            assert banded.score == full


class TestValidation:
    def test_bad_band(self):
        seq = from_string("ACGT")
        with pytest.raises(SpecError):
            banded_smith_waterman(seq, seq, 0, band=0)

    def test_bad_penalties(self):
        seq = from_string("ACGT")
        with pytest.raises(SpecError):
            banded_smith_waterman(seq, seq, 0, gap=1)
        with pytest.raises(SpecError):
            banded_smith_waterman(seq, seq, 0, match=0)
