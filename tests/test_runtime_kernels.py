"""Tests for the runtime kernels and wall-clock planning (repro.runtime.kernels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow.gains import BernoulliGain, DeterministicGain, EmpiricalGain
from repro.errors import SpecError
from repro.planning.cache import PlanCache
from repro.runtime.kernels import (
    SpinKernel,
    build_workload,
    calibrate_service_times,
    measure_runtime_gains,
    plan_runtime,
    suggest_tau0,
)


class TestSpinKernel:
    def test_counts_match_output_rows(self):
        k = SpinKernel("s", BernoulliGain(0.5), seed=1)
        payload = np.arange(16.0)
        counts, outputs = k.fire(payload)
        assert counts.size == 16
        assert outputs.shape[0] == counts.sum()

    def test_outputs_repeat_inputs_in_order(self):
        k = SpinKernel("s", DeterministicGain(2), seed=1)
        counts, outputs = k.fire(np.asarray([7.0, 9.0]))
        assert counts.tolist() == [2, 2]
        assert outputs.tolist() == [7.0, 7.0, 9.0, 9.0]

    def test_reproducible_per_seed(self):
        a = SpinKernel("s", BernoulliGain(0.5), seed=3)
        b = SpinKernel("s", BernoulliGain(0.5), seed=3)
        pay = np.arange(32.0)
        assert a.fire(pay)[0].tolist() == b.fire(pay)[0].tolist()

    def test_rejects_non_distribution_gain(self):
        with pytest.raises(SpecError, match="GainDistribution"):
            SpinKernel("s", 0.5)

    def test_rejects_empty_name(self):
        with pytest.raises(SpecError, match="name"):
            SpinKernel("", BernoulliGain(0.5))


@pytest.mark.parametrize("app", ["blast", "nids", "gamma", "synthetic"])
class TestBuildWorkload:
    def test_three_stage_chain_runs(self, app):
        wl = build_workload(app, seed=0)
        assert wl.n_nodes == 3
        rng = np.random.default_rng(0)
        payload = wl.sample_payload(64, rng)
        assert len(payload) == 64
        for kernel in wl.kernels:
            counts, outputs = kernel.fire(payload)
            assert counts.size == len(payload)
            assert (counts >= 0).all()
            assert len(outputs) == counts.sum()
            if len(outputs) == 0:
                break
            payload = outputs

    def test_gain_measurement_yields_distributions(self, app):
        wl = build_workload(app, seed=0)
        dists = measure_runtime_gains(wl, n_items=256, seed=0)
        assert len(dists) == 3
        for d in dists:
            assert isinstance(d, EmpiricalGain)
            assert d.mean >= 0


class TestBuildWorkloadErrors:
    def test_unknown_app_rejected(self):
        with pytest.raises(SpecError, match="unknown"):
            build_workload("quantum")


class TestServiceCalibration:
    def test_sets_nominal_at_or_above_floor(self):
        wl = build_workload("synthetic", seed=0)
        calibrate_service_times(wl, floor=0.004, seed=0)
        for k in wl.kernels:
            assert k.nominal_service >= 0.004

    def test_preexisting_nominal_service_kept(self):
        wl = build_workload("synthetic", seed=0)
        wl.kernels[0].nominal_service = 0.123
        calibrate_service_times(wl, floor=0.004, seed=0)
        assert wl.kernels[0].nominal_service == 0.123


class TestPlanRuntime:
    def test_feasible_plan_in_seconds(self):
        wl = build_workload("synthetic", seed=0)
        plan = plan_runtime(wl, vector_width=8, seed=0, n_gain_items=256)
        assert plan.feasible
        assert plan.waits.shape == (3,)
        assert (plan.waits >= -1e-12).all()
        # Wall-clock scale: every service time is in [1 ms, 1 s].
        assert (plan.pipeline.service_times > 1e-3).all()
        assert (plan.pipeline.service_times < 1.0).all()
        assert 0 < plan.planned_active_fraction <= 1.0

    def test_suggest_tau0_positive(self):
        wl = build_workload("synthetic", seed=0)
        plan = plan_runtime(wl, vector_width=8, seed=0, n_gain_items=256)
        assert suggest_tau0(plan.pipeline) > 0

    def test_calibrated_b_covers_optimistic(self):
        from repro.core.enforced_waits import optimistic_b

        wl = build_workload("synthetic", seed=0)
        plan = plan_runtime(wl, vector_width=8, seed=0, n_gain_items=256)
        assert (plan.b >= optimistic_b(plan.pipeline) - 1e-12).all()

    def test_plan_cache_hit_on_identical_request(self):
        cache = PlanCache()
        wl = build_workload("synthetic", seed=0)
        plan_runtime(wl, vector_width=8, seed=0, n_gain_items=256, cache=cache)
        wl2 = build_workload("synthetic", seed=0)
        plan2 = plan_runtime(
            wl2, vector_width=8, seed=0, n_gain_items=256, cache=cache
        )
        assert plan2.outcome.source == "hit"

    def test_explicit_b_skips_calibration(self):
        wl = build_workload("synthetic", seed=0)
        b = np.asarray([1.0, 4.0, 2.0])
        plan = plan_runtime(
            wl, vector_width=8, seed=0, n_gain_items=256, b=b
        )
        assert plan.b.tolist() == b.tolist()


class TestGammaPairExpand:
    """The vectorized ragged gather vs the append-per-item loop it replaced."""

    def _kernel(self):
        from repro.runtime.kernels import _GammaPairExpand

        offsets = np.asarray([0, 0, 2, 2, 5, 6], dtype=np.int64)
        flat = np.asarray([10, 11, 20, 21, 22, 30], dtype=np.int64)
        return _GammaPairExpand(offsets, flat), offsets, flat

    def _loop_fire(self, offsets, flat, payload):
        counts, rows = [], []
        for i in np.asarray(payload, dtype=np.int64):
            partners = flat[offsets[i] : offsets[i + 1]]
            counts.append(len(partners))
            for p in partners:
                rows.append((int(i), int(p)))
        pairs = np.asarray(rows, dtype=np.int64).reshape(len(rows), 2)
        return np.asarray(counts, dtype=np.int64), pairs

    def test_matches_loop_reference(self):
        kernel, offsets, flat = self._kernel()
        payload = np.asarray([3, 0, 1, 3, 4, 2], dtype=np.int64)
        counts, pairs = kernel.fire(payload)
        ref_counts, ref_pairs = self._loop_fire(offsets, flat, payload)
        assert np.array_equal(counts, ref_counts)
        assert np.array_equal(pairs, ref_pairs)

    def test_all_empty_segments(self):
        kernel, offsets, flat = self._kernel()
        counts, pairs = kernel.fire(np.asarray([0, 2], dtype=np.int64))
        assert np.array_equal(counts, [0, 0])
        assert pairs.shape == (0, 2)

    def test_empty_payload(self):
        kernel, _, _ = self._kernel()
        counts, pairs = kernel.fire(np.empty(0, dtype=np.int64))
        assert counts.size == 0
        assert pairs.shape == (0, 2)

    def test_gamma_workload_end_to_end_counts_conserve(self):
        from repro.runtime.kernels import build_workload

        wl = build_workload("gamma", seed=4)
        rng = np.random.default_rng(0)
        payload = wl.sample_payload(64, rng)
        for kernel in wl.kernels:
            counts, payload = kernel.fire(payload)
            assert int(counts.sum()) == len(payload)
