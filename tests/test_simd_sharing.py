"""Tests for processor-sharing timing models, especially the GPS fluid engine."""

import pytest

from repro.errors import SimulationError
from repro.simd.sharing import (
    GpsProcessor,
    IdealizedSharing,
    WorkConservingSharing,
)


class TestIdealized:
    def test_fixed_duration(self):
        model = IdealizedSharing()
        assert model.begin_firing(10.0, 0, 287.0) == 297.0

    def test_static_flag(self):
        assert IdealizedSharing.static is True


class TestGpsSingleJob:
    def test_lone_job_gets_full_processor(self):
        gps = GpsProcessor()
        gps.submit(0.0, 4.0, "a")
        t, tag = gps.next_completion()
        assert t == pytest.approx(4.0)
        assert tag == "a"
        done = gps.advance(4.0)
        assert done == [(4.0, "a")]
        assert gps.active_jobs == 0

    def test_share_cap_limits_lone_job(self):
        gps = GpsProcessor(share_cap=0.25)
        gps.submit(0.0, 1.0, "a")
        t, _ = gps.next_completion()
        assert t == pytest.approx(4.0)  # work 1 at rate 1/4

    def test_partial_advance_preserves_remaining(self):
        gps = GpsProcessor()
        gps.submit(0.0, 4.0, "a")
        assert gps.advance(2.0) == []
        t, _ = gps.next_completion()
        assert t == pytest.approx(4.0)


class TestGpsTwoJobs:
    def test_equal_sharing(self):
        gps = GpsProcessor()
        gps.submit(0.0, 1.0, "a")
        gps.submit(0.0, 1.0, "b")
        done = gps.advance(10.0)
        # Both share rate 1/2 until a completes at t=2; b also done at 2.
        assert [d[1] for d in done] == ["a", "b"]
        assert done[0][0] == pytest.approx(2.0)
        assert done[1][0] == pytest.approx(2.0)

    def test_rate_speedup_after_completion(self):
        gps = GpsProcessor()
        gps.submit(0.0, 1.0, "short")
        gps.submit(0.0, 2.0, "long")
        done = gps.advance(10.0)
        # short finishes at t=2 (rate 1/2); long has 1 work left, now at
        # rate 1 -> finishes at t=3.
        assert done == [
            (pytest.approx(2.0), "short"),
            (pytest.approx(3.0), "long"),
        ]

    def test_capped_rates_do_not_speed_up(self):
        gps = GpsProcessor(share_cap=0.5)
        gps.submit(0.0, 1.0, "short")
        gps.submit(0.0, 2.0, "long")
        done = gps.advance(10.0)
        # long stays at rate 1/2 even once alone: finishes at t=4.
        assert done[1][0] == pytest.approx(4.0)

    def test_fifo_tiebreak_on_equal_work(self):
        gps = GpsProcessor()
        gps.submit(0.0, 1.0, "first")
        gps.submit(0.0, 1.0, "second")
        done = gps.advance(5.0)
        assert [d[1] for d in done] == ["first", "second"]


class TestGpsErrors:
    def test_clock_cannot_reverse(self):
        gps = GpsProcessor()
        gps.advance(5.0)
        with pytest.raises(SimulationError):
            gps.advance(4.0)

    def test_zero_work_rejected(self):
        with pytest.raises(SimulationError):
            GpsProcessor().submit(0.0, 0.0, "a")

    def test_bad_cap_rejected(self):
        with pytest.raises(SimulationError):
            GpsProcessor(share_cap=0.0)
        with pytest.raises(SimulationError):
            GpsProcessor(share_cap=1.5)

    def test_submit_past_completion_rejected(self):
        gps = GpsProcessor()
        gps.submit(0.0, 1.0, "a")
        with pytest.raises(SimulationError, match="advance"):
            gps.submit(5.0, 1.0, "b")  # "a" completed inside the gap

    def test_reset(self):
        gps = GpsProcessor()
        gps.submit(0.0, 1.0, "a")
        gps.reset()
        assert gps.active_jobs == 0
        assert gps.now == 0.0


class TestWorkConservingSharing:
    def test_work_scaled_by_n_nodes(self):
        # t_i measured at share 1/N -> full-processor work t_i/N.
        model = WorkConservingSharing(4)
        tag = model.begin_firing(0.0, 2, 955.0)
        t, done_tag = model.next_completion(0.0)
        assert done_tag == tag
        assert t == pytest.approx(955.0 / 4)  # lone job, full processor

    def test_capped_matches_idealized_duration(self):
        model = WorkConservingSharing(4, capped=True)
        model.begin_firing(0.0, 0, 955.0)
        t, _ = model.next_completion(0.0)
        assert t == pytest.approx(955.0)  # rate capped at 1/4

    def test_dynamic_flag(self):
        assert WorkConservingSharing(2).static is False

    def test_rejects_bad_n(self):
        with pytest.raises(SimulationError):
            WorkConservingSharing(0)
