"""Tests for ItemQueue, including FIFO property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.queues import ItemQueue
from repro.errors import SimulationError
from repro.resilience.shedding import DropNewest, DropOldest, ShedPolicy


class TestBasics:
    def test_fifo_order(self):
        q = ItemQueue("q")
        q.push_many([1.0, 2.0, 3.0])
        assert q.pop_up_to(2).tolist() == [1.0, 2.0]
        assert q.pop_up_to(5).tolist() == [3.0]

    def test_pop_from_empty_is_empty_array(self):
        q = ItemQueue("q")
        out = q.pop_up_to(4)
        assert out.size == 0
        assert out.dtype == float

    def test_pop_negative_rejected(self):
        with pytest.raises(SimulationError):
            ItemQueue("q").pop_up_to(-1)

    def test_len_and_counts(self):
        q = ItemQueue("q")
        q.push_many([0.0, 1.0, 2.0])
        q.pop_up_to(2)
        assert len(q) == 1
        assert q.total_pushed == 3
        assert q.total_popped == 2

    def test_peek_oldest(self):
        q = ItemQueue("q")
        q.push(42.0)
        assert q.peek_oldest() == 42.0
        assert len(q) == 1  # peek does not consume

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError, match="empty"):
            ItemQueue("q").peek_oldest()

    def test_clear_retains_stats(self):
        q = ItemQueue("q")
        q.push_many([1.0, 2.0])
        q.clear()
        assert len(q) == 0
        assert q.max_depth == 2

    def test_clear_counts_drops_not_pops(self):
        """clear() drops items; total_popped is throughput only."""
        q = ItemQueue("q")
        q.push_many([1.0, 2.0, 3.0])
        q.pop_up_to(1)
        q.clear()
        assert q.total_popped == 1
        assert q.total_dropped == 2
        assert q.total_pushed == 3
        # Conservation: every pushed item was either popped or dropped.
        assert q.total_popped + q.total_dropped + len(q) == q.total_pushed

    def test_clear_empty_is_noop_for_drops(self):
        q = ItemQueue("q")
        q.clear()
        assert q.total_dropped == 0


class TestRingBuffer:
    """Exercise wraparound and growth of the ring-buffer backing store."""

    def test_wraparound_preserves_fifo(self):
        q = ItemQueue("q")
        # Interleave pushes and pops so head walks around the buffer
        # repeatedly (initial capacity is small).
        expect = []
        value = 0.0
        for _ in range(50):
            batch = [value + k for k in range(7)]
            value += 7
            q.push_many(batch)
            expect.extend(batch)
            got = q.pop_up_to(5).tolist()
            want, expect = expect[:5], expect[5:]
            assert got == want
        assert q.pop_up_to(len(q)).tolist() == expect

    def test_growth_across_wrap_boundary(self):
        q = ItemQueue("q")
        q.push_many(np.arange(12.0))
        q.pop_up_to(10)  # head deep into the buffer
        q.push_many(np.arange(100.0))  # forces growth while wrapped
        assert q.pop_up_to(2).tolist() == [10.0, 11.0]
        assert q.pop_up_to(100).tolist() == list(np.arange(100.0))

    def test_integer_dtype(self):
        q = ItemQueue("q", dtype=np.int64)
        q.push_many(np.arange(5, dtype=np.int64))
        out = q.pop_up_to(3)
        assert out.dtype == np.int64
        assert out.tolist() == [0, 1, 2]
        assert q.peek_oldest() == 3
        assert isinstance(q.peek_oldest(), int)

    def test_pop_empty_respects_dtype(self):
        q = ItemQueue("q", dtype=np.int64)
        out = q.pop_up_to(4)
        assert out.size == 0
        assert out.dtype == np.int64

    def test_pop_returns_copy(self):
        """Popped arrays must not alias the internal buffer."""
        q = ItemQueue("q")
        q.push_many([1.0, 2.0, 3.0])
        out = q.pop_up_to(3)
        out[:] = -1.0
        q.push_many([4.0, 5.0])
        assert q.pop_up_to(2).tolist() == [4.0, 5.0]

    def test_overflow_rejected_before_partial_push(self):
        """A too-large push_many must not partially enqueue."""
        q = ItemQueue("q", capacity=4)
        q.push_many([1.0, 2.0])
        with pytest.raises(SimulationError, match="overflow"):
            q.push_many([3.0, 4.0, 5.0])
        assert len(q) == 2
        assert q.total_pushed == 2

    def test_push_many_empty_is_noop(self):
        q = ItemQueue("q")
        q.push_many(np.asarray([]))
        assert len(q) == 0
        assert q.total_pushed == 0


class TestHighWaterMark:
    def test_tracks_max_depth(self):
        q = ItemQueue("q")
        q.push_many([1.0, 2.0, 3.0])
        q.pop_up_to(3)
        q.push(4.0)
        assert q.max_depth == 3

    def test_capacity_enforced(self):
        q = ItemQueue("q", capacity=2)
        q.push_many([1.0, 2.0])
        with pytest.raises(SimulationError, match="overflow"):
            q.push(3.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            ItemQueue("q", capacity=0)


class TestOverflowContract:
    """The push_many overflow contract: check-then-copy, exact boundaries."""

    def test_push_many_fills_to_exact_capacity(self):
        q = ItemQueue("q", capacity=4)
        assert q.push_many([1.0, 2.0, 3.0, 4.0]) is None
        assert len(q) == 4
        assert q.max_depth == 4

    def test_one_past_capacity_raises(self):
        q = ItemQueue("q", capacity=4)
        q.push_many([1.0, 2.0, 3.0])
        q.push(4.0)  # exactly full is fine
        with pytest.raises(SimulationError, match="overflow"):
            q.push(5.0)
        assert len(q) == 4

    def test_error_reports_depth_capacity_and_attempt(self):
        q = ItemQueue("deep", capacity=4)
        q.push_many([1.0, 2.0, 3.0])
        with pytest.raises(
            SimulationError,
            match=r"'deep' overflowed: depth 3 \+ push 2 exceeds capacity 4",
        ):
            q.push_many([4.0, 5.0])
        # Nothing was partially enqueued.
        assert len(q) == 3
        assert q.total_pushed == 3

    def test_boundary_after_pops(self):
        """Capacity is on current depth, not cumulative pushes."""
        q = ItemQueue("q", capacity=3)
        q.push_many([1.0, 2.0, 3.0])
        q.pop_up_to(2)
        assert q.push_many([4.0, 5.0]) is None  # refilled to exactly 3
        with pytest.raises(SimulationError, match="depth 3 \\+ push 1"):
            q.push(6.0)

    def test_unknown_on_overflow_string_rejected(self):
        with pytest.raises(SimulationError, match="on_overflow"):
            ItemQueue("q", capacity=2, on_overflow="drop")


class TestShedding:
    """Shed-policy overflow: provenance accounting and buffer surgery."""

    def test_drop_newest_keeps_queued_items(self):
        q = ItemQueue("q", capacity=3, on_overflow=DropNewest())
        q.push_many([1.0, 2.0])
        dropped = q.push_many([3.0, 4.0, 5.0])
        assert dropped.tolist() == [4.0, 5.0]
        assert q.pop_up_to(3).tolist() == [1.0, 2.0, 3.0]

    def test_drop_oldest_evicts_queued_items(self):
        q = ItemQueue("q", capacity=3, on_overflow=DropOldest())
        q.push_many([1.0, 2.0])
        dropped = q.push_many([3.0, 4.0, 5.0])
        assert dropped.tolist() == [1.0, 2.0]
        assert q.pop_up_to(3).tolist() == [3.0, 4.0, 5.0]

    def test_shed_vs_clear_provenance(self):
        """total_dropped = dropped_by_clear + total_shed, separately tracked."""
        q = ItemQueue("q", capacity=2, on_overflow=DropNewest())
        q.push_many([1.0, 2.0])
        q.push(3.0)  # shed: 3.0 dropped
        assert q.total_shed == 1
        assert q.dropped_by_clear == 0
        q.clear()  # drops the 2 held items
        assert q.dropped_by_clear == 2
        assert q.total_shed == 1
        assert q.total_dropped == 3
        # Conservation holds across both drop flavours.
        assert q.total_popped + q.total_dropped + len(q) == q.total_pushed

    def test_shed_counts_incoming_as_pushed(self):
        q = ItemQueue("q", capacity=2, on_overflow=DropNewest())
        q.push_many([1.0, 2.0])
        q.push_many([3.0, 4.0])
        assert q.total_pushed == 4
        assert q.total_shed == 2
        assert len(q) == 2

    def test_shed_sets_max_depth_to_capacity(self):
        q = ItemQueue("q", capacity=5, on_overflow=DropNewest())
        q.push(1.0)
        q.push_many(np.arange(2.0, 12.0))
        assert q.max_depth == 5

    def test_wraparound_with_capacity_and_shedding(self):
        """Head deep in the ring: shed rebuild still sees oldest-first."""
        q = ItemQueue("q", capacity=4, on_overflow=DropOldest())
        # Walk the head around the (power-of-two) backing buffer.
        for base in range(0, 40, 4):
            q.push_many(np.arange(base, base + 4, dtype=float))
            q.pop_up_to(4)
        q.push_many([100.0, 101.0, 102.0])
        dropped = q.push_many([103.0, 104.0])
        assert dropped.tolist() == [100.0]
        assert q.pop_up_to(4).tolist() == [101.0, 102.0, 103.0, 104.0]
        assert q.total_popped + q.total_dropped + len(q) == q.total_pushed

    def test_push_after_shed_continues_normally(self):
        q = ItemQueue("q", capacity=3, on_overflow=DropNewest())
        q.push_many([1.0, 2.0, 3.0, 4.0])  # sheds 4.0
        q.pop_up_to(2)
        assert q.push(5.0) is None
        assert q.pop_up_to(3).tolist() == [3.0, 5.0]

    def test_malformed_policy_mask_rejected(self):
        class BadPolicy(ShedPolicy):
            name = "bad"

            def keep_mask(self, combined, capacity, now):
                return np.ones(combined.size, dtype=bool)  # keeps too many

        q = ItemQueue("q", capacity=2, on_overflow=BadPolicy())
        q.push_many([1.0, 2.0])
        with pytest.raises(SimulationError, match="must keep exactly"):
            q.push(3.0)


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.one_of(
            st.floats(0, 1e6),  # push this origin
            st.integers(0, 10),  # pop up to this many
        ),
        max_size=200,
    )
)
def test_property_fifo_matches_reference(ops):
    """Queue behaves exactly like a reference list under arbitrary op mixes."""
    q = ItemQueue("q")
    reference: list[float] = []
    max_depth = 0
    for op in ops:
        if isinstance(op, float):
            q.push(op)
            reference.append(op)
            max_depth = max(max_depth, len(reference))
        else:
            got = q.pop_up_to(op).tolist()
            want, reference = reference[:op], reference[op:]
            assert got == want
    assert len(q) == len(reference)
    assert q.max_depth == max_depth
