"""Tests for ItemQueue, including FIFO property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.queues import ItemQueue
from repro.errors import SimulationError


class TestBasics:
    def test_fifo_order(self):
        q = ItemQueue("q")
        q.push_many([1.0, 2.0, 3.0])
        assert q.pop_up_to(2).tolist() == [1.0, 2.0]
        assert q.pop_up_to(5).tolist() == [3.0]

    def test_pop_from_empty_is_empty_array(self):
        q = ItemQueue("q")
        out = q.pop_up_to(4)
        assert out.size == 0
        assert out.dtype == float

    def test_pop_negative_rejected(self):
        with pytest.raises(SimulationError):
            ItemQueue("q").pop_up_to(-1)

    def test_len_and_counts(self):
        q = ItemQueue("q")
        q.push_many([0.0, 1.0, 2.0])
        q.pop_up_to(2)
        assert len(q) == 1
        assert q.total_pushed == 3
        assert q.total_popped == 2

    def test_peek_oldest(self):
        q = ItemQueue("q")
        q.push(42.0)
        assert q.peek_oldest() == 42.0
        assert len(q) == 1  # peek does not consume

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError, match="empty"):
            ItemQueue("q").peek_oldest()

    def test_clear_retains_stats(self):
        q = ItemQueue("q")
        q.push_many([1.0, 2.0])
        q.clear()
        assert len(q) == 0
        assert q.max_depth == 2


class TestHighWaterMark:
    def test_tracks_max_depth(self):
        q = ItemQueue("q")
        q.push_many([1.0, 2.0, 3.0])
        q.pop_up_to(3)
        q.push(4.0)
        assert q.max_depth == 3

    def test_capacity_enforced(self):
        q = ItemQueue("q", capacity=2)
        q.push_many([1.0, 2.0])
        with pytest.raises(SimulationError, match="overflow"):
            q.push(3.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            ItemQueue("q", capacity=0)


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.one_of(
            st.floats(0, 1e6),  # push this origin
            st.integers(0, 10),  # pop up to this many
        ),
        max_size=200,
    )
)
def test_property_fifo_matches_reference(ops):
    """Queue behaves exactly like a reference list under arbitrary op mixes."""
    q = ItemQueue("q")
    reference: list[float] = []
    max_depth = 0
    for op in ops:
        if isinstance(op, float):
            q.push(op)
            reference.append(op)
            max_depth = max(max_depth, len(reference))
        else:
            got = q.pop_up_to(op).tolist()
            want, reference = reference[:op], reference[op:]
            assert got == want
    assert len(q) == len(reference)
    assert q.max_depth == max_depth
