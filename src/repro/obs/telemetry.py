"""Per-run telemetry: node-level and engine-level observability.

:class:`TelemetryCollector` is the live object a simulator feeds from
its event handlers; it is built entirely from the existing monitor
primitives (:class:`~repro.des.monitors.Counter`,
:class:`~repro.des.monitors.Accumulator`,
:class:`~repro.des.monitors.TimeWeighted`), so collection costs stay
O(1) per event and nothing here can perturb simulation determinism
(telemetry never touches the RNG or the event queue).

:meth:`TelemetryCollector.finalize` freezes the collector into a
:class:`RunTelemetry` — plain dataclasses of plain numbers — which
travels in ``SimMetrics.extra["telemetry"]``, pickles across campaign
worker processes, renders as a table (:meth:`RunTelemetry.render`), and
serializes via :func:`repro.experiments.export.telemetry_to_dict`.

Telemetry schema
----------------
Per node (:class:`NodeTelemetry`):

- ``firings`` / ``empty_firings`` — vector firings, and those that
  consumed zero items;
- ``items_consumed`` — total items consumed;
- ``mean_occupancy`` — mean consumed/v over firings (NaN if none);
- ``service_time`` — total time the node spent in firings;
- ``wait_time`` — makespan minus service time (enforced waits + idle);
- ``queue_hwm`` / ``queue_hwm_vectors`` — input-queue high-water mark,
  in items and in vector-width units (the empirical ``b_i``);
- ``queue_time_avg`` — time-average input-queue length;
- ``queue_pushed`` / ``queue_popped`` — total items through the queue;
- ``queue_shed`` — items dropped by the queue's overflow shed policy
  (0 unless degraded-mode shedding is enabled; see
  :mod:`repro.resilience.shedding`).

Per engine (:class:`EngineTelemetry`):

- ``events_processed`` — callbacks executed by the event loop;
- ``sim_time`` — virtual makespan of the run;
- ``wall_time`` — wall-clock seconds inside the event loop;
- ``events_per_wall_second`` / ``wall_time_per_sim_second`` — derived
  rates (NaN when a denominator is zero).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.des.monitors import Accumulator, Counter, TimeWeighted
from repro.utils.tables import render_table

__all__ = [
    "NodeTelemetry",
    "EngineTelemetry",
    "PlanCacheTelemetry",
    "RunTelemetry",
    "LiveNodeTelemetry",
    "RuntimeTelemetry",
    "TelemetryCollector",
    "TenantLedgerTelemetry",
    "DeviceTelemetry",
]


def _rate(num: float, den: float) -> float:
    return num / den if den > 0 else math.nan


@dataclass(frozen=True)
class NodeTelemetry:
    """One node's frozen per-run telemetry (see module docstring)."""

    name: str
    firings: int
    empty_firings: int
    items_consumed: int
    mean_occupancy: float
    service_time: float
    wait_time: float
    queue_hwm: int
    queue_hwm_vectors: float
    queue_time_avg: float
    queue_pushed: int
    queue_popped: int
    queue_shed: int = 0


@dataclass(frozen=True)
class EngineTelemetry:
    """Event-loop statistics of one run."""

    events_processed: int
    sim_time: float
    wall_time: float

    @property
    def events_per_wall_second(self) -> float:
        return _rate(self.events_processed, self.wall_time)

    @property
    def wall_time_per_sim_second(self) -> float:
        return _rate(self.wall_time, self.sim_time)


@dataclass(frozen=True)
class RunTelemetry:
    """A complete run's telemetry: one entry per node plus engine stats.

    ``degraded_intervals`` holds the deadline watchdog's ``(enter,
    exit)`` virtual-time pairs (empty unless a watchdog was attached and
    triggered — see :mod:`repro.resilience.watchdog`).
    """

    strategy: str
    nodes: tuple[NodeTelemetry, ...]
    engine: EngineTelemetry
    degraded_intervals: tuple[tuple[float, float], ...] = ()

    @property
    def total_shed(self) -> int:
        """Items dropped by shed policies across all node queues."""
        return sum(n.queue_shed for n in self.nodes)

    def render(self) -> str:
        """The telemetry as aligned tables (node table + engine line)."""
        rows = [
            (
                n.name,
                n.firings,
                n.empty_firings,
                f"{n.mean_occupancy:.3f}",
                f"{n.service_time:.4g}",
                f"{n.wait_time:.4g}",
                n.queue_hwm,
                f"{n.queue_time_avg:.3f}",
                n.queue_shed,
            )
            for n in self.nodes
        ]
        table = render_table(
            [
                "node",
                "firings",
                "empty",
                "occupancy",
                "service",
                "wait",
                "q hwm",
                "q avg",
                "shed",
            ],
            rows,
            title=f"run telemetry ({self.strategy})",
        )
        eng = self.engine
        line = (
            f"engine: {eng.events_processed} events in "
            f"{eng.wall_time:.3f}s wall ({eng.events_per_wall_second:.0f} "
            f"ev/s, {eng.wall_time_per_sim_second:.3g} wall-s per sim-s "
            f"over {eng.sim_time:.4g} sim-s)"
        )
        if self.degraded_intervals:
            spans = ", ".join(
                f"[{a:.4g}, {b:.4g}]" for a, b in self.degraded_intervals
            )
            line += f"\ndegraded intervals: {spans}"
        return table + "\n" + line


@dataclass(frozen=True)
class PlanCacheTelemetry:
    """Frozen counters of a :class:`repro.planning.cache.PlanCache`.

    ``coalesced`` counts requests that the async planning service
    deduplicated onto an identical in-flight solve (single-flight);
    ``warm_hits``/``warm_rejects`` count near-miss warm starts accepted
    (certified) vs rejected back to the cold path.
    """

    entries: int
    capacity: int
    requests: int
    hits: int
    misses: int
    warm_hits: int
    warm_rejects: int
    stores: int
    evictions: int
    coalesced: int
    disk_entries_loaded: int
    disk_load_errors: int

    @property
    def hit_rate(self) -> float:
        return _rate(self.hits, self.requests)

    def render(self) -> str:
        """The counters as one aligned table."""
        rows = [
            ("entries", f"{self.entries}/{self.capacity}"),
            ("requests", self.requests),
            ("hits", self.hits),
            ("misses", self.misses),
            ("hit rate", f"{self.hit_rate:.3f}" if self.requests else "n/a"),
            ("warm hits", self.warm_hits),
            ("warm rejects", self.warm_rejects),
            ("stores", self.stores),
            ("evictions", self.evictions),
            ("coalesced (single-flight)", self.coalesced),
            ("disk entries loaded", self.disk_entries_loaded),
            ("disk load errors", self.disk_load_errors),
        ]
        return render_table(
            ["counter", "value"], rows, title="plan cache telemetry"
        )


@dataclass(frozen=True)
class LiveNodeTelemetry:
    """One live-executor node's telemetry (wall-clock seconds).

    The counters mirror :class:`NodeTelemetry` so runtime numbers line up
    column-for-column with simulator output, plus the live-only fields:
    current queue depth, the node's busy fraction of wall time, and the
    online EWMA estimates of service time and gain next to their planned
    values (the drift detector's inputs).
    """

    name: str
    firings: int
    empty_firings: int
    items_consumed: int
    items_produced: int
    mean_occupancy: float
    busy_time: float
    wait_time: float
    queue_depth: int
    queue_hwm: int
    queue_pushed: int
    queue_popped: int
    queue_shed: int
    planned_service: float
    planned_wait: float
    ewma_service: float
    ewma_gain: float
    #: Cumulative seconds slept *past* requested sleep deadlines (service
    #: padding and enforced waits).  Nonzero residue is expected — the OS
    #: scheduler wakes sleepers late — but it should be micro-, not
    #: milli-seconds per firing; a large value means enforced waits ran
    #: systematically long and measured activity is biased low.
    oversleep_time: float = 0.0

    @property
    def busy_fraction(self) -> float:
        """Busy time over busy+wait time — the node's measured ``t_i/x_i``."""
        return _rate(self.busy_time, self.busy_time + self.wait_time)


@dataclass(frozen=True)
class RuntimeTelemetry:
    """A live executor run's telemetry snapshot (or final report).

    ``measured_active_fraction`` is the mean of per-node busy fractions —
    the wall-clock realization of the paper's objective ``T(x) = (1/N)
    Σ t_i/x_i`` — directly comparable to the solver's planned value and
    to ``SimMetrics.mean_active_fraction``.
    """

    strategy: str
    nodes: tuple[LiveNodeTelemetry, ...]
    elapsed: float
    items_ingested: int
    outputs: int
    in_flight: int
    missed_items: int
    deadline: float
    latency_mean: float
    latency_p99: float
    latency_max: float
    planned_active_fraction: float
    replans: int
    degraded_time: float
    degraded_intervals: tuple[tuple[float, float], ...] = ()
    #: Node-thread deaths observed by the executor's supervisor, and how
    #: many of them were recovered by a thread restart (see
    #: :class:`repro.runtime.executor.NodeFailure`).
    node_failures: int = 0
    node_restarts: int = 0
    #: Grid-neighbor snap provenance of re-plans (see
    #: :meth:`repro.runtime.replan.Replanner._snap_to_cached`): how many
    #: re-plan attempts were snapped to an adjacent cached grid point
    #: versus solved at the nearest one, and the largest relative
    #: distance such a snap moved the operating point.
    replan_snap_hits: int = 0
    replan_snap_misses: int = 0
    replan_max_snap_distance: float = 0.0

    @property
    def measured_active_fraction(self) -> float:
        if not self.nodes:
            return math.nan
        fracs = [n.busy_fraction for n in self.nodes]
        return sum(fracs) / len(fracs)

    @property
    def miss_rate(self) -> float:
        return _rate(self.missed_items, self.outputs + self.missed_items)

    @property
    def total_shed(self) -> int:
        return sum(n.queue_shed for n in self.nodes)

    @property
    def total_oversleep(self) -> float:
        """Seconds slept past sleep deadlines, summed over nodes."""
        return sum(n.oversleep_time for n in self.nodes)

    def render(self) -> str:
        """The snapshot as aligned tables (node table + run summary)."""
        rows = [
            (
                n.name,
                n.firings,
                n.empty_firings,
                f"{n.mean_occupancy:.3f}",
                f"{n.busy_fraction:.3f}",
                f"{n.planned_service * 1e3:.3g}",
                f"{n.ewma_service * 1e3:.3g}",
                f"{n.planned_wait * 1e3:.3g}",
                f"{n.ewma_gain:.3f}",
                n.queue_depth,
                n.queue_hwm,
                n.queue_shed,
            )
            for n in self.nodes
        ]
        table = render_table(
            [
                "node",
                "firings",
                "empty",
                "occupancy",
                "busy frac",
                "t plan (ms)",
                "t ewma (ms)",
                "w (ms)",
                "g ewma",
                "q depth",
                "q hwm",
                "shed",
            ],
            rows,
            title=f"runtime telemetry ({self.strategy})",
        )
        lines = [
            table,
            (
                f"run: {self.elapsed:.3f}s elapsed, "
                f"{self.items_ingested} in / {self.outputs} out "
                f"({self.in_flight} in flight), "
                f"misses {self.missed_items} ({self.miss_rate:.4f}), "
                f"latency mean/p99/max "
                f"{self.latency_mean * 1e3:.3g}/"
                f"{self.latency_p99 * 1e3:.3g}/"
                f"{self.latency_max * 1e3:.3g} ms vs D="
                f"{self.deadline * 1e3:.3g} ms"
            ),
            (
                f"active fraction: measured "
                f"{self.measured_active_fraction:.4f} vs planned "
                f"{self.planned_active_fraction:.4f}; "
                f"replans {self.replans}, degraded "
                f"{self.degraded_time:.3f}s"
            ),
        ]
        if self.degraded_intervals:
            spans = ", ".join(
                f"[{a:.4g}, {b:.4g}]" for a, b in self.degraded_intervals
            )
            lines.append(f"degraded intervals: {spans}")
        if self.node_failures:
            lines.append(
                f"node failures: {self.node_failures} "
                f"({self.node_restarts} recovered by restart)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class TenantLedgerTelemetry:
    """One tenant's device-time ledger on a shared device.

    ``busy_seconds`` is the device time charged to the tenant (the sum
    of its firing durations granted by the arbiter, or the work-rate
    charge in the DES); ``grants`` counts firings.  ``share`` is the
    busy fraction of the reference horizon the snapshot was taken over.
    """

    name: str
    qos: str
    weight: float
    busy_seconds: float
    grants: int
    share: float


@dataclass(frozen=True)
class DeviceTelemetry:
    """A shared device's per-tenant busy-time ledger snapshot.

    The conservation contract (pinned by the tenancy test battery): with
    ``slots`` concurrent firing slots over ``elapsed`` seconds the
    device offered ``slots * elapsed`` device-seconds, so the
    per-tenant busy times plus the idle remainder must reproduce that
    total — :meth:`conserves` checks ``sum(busy) + idle == slots *
    elapsed`` within tolerance (idle is derived, so the real content is
    ``0 <= sum(busy) <= slots * elapsed + tol`` and every per-tenant
    entry nonnegative).
    """

    elapsed: float
    slots: int
    capacity: float
    tenants: tuple[TenantLedgerTelemetry, ...]

    @property
    def busy_seconds(self) -> float:
        return sum(t.busy_seconds for t in self.tenants)

    @property
    def idle_seconds(self) -> float:
        return self.slots * self.elapsed - self.busy_seconds

    def conserves(self, *, tol: float = 1e-6) -> bool:
        """Does ``sum(per-tenant busy) + idle == slots * elapsed``?"""
        total = self.slots * self.elapsed
        if any(t.busy_seconds < -tol for t in self.tenants):
            return False
        if self.busy_seconds > total + tol:
            return False
        return abs(self.busy_seconds + self.idle_seconds - total) <= tol

    def render(self) -> str:
        rows = [
            (
                t.name,
                t.qos,
                f"{t.weight:g}",
                f"{t.busy_seconds:.4f}",
                t.grants,
                f"{t.share:.4f}",
            )
            for t in self.tenants
        ]
        table = render_table(
            ["tenant", "qos", "weight", "busy s", "grants", "share"],
            rows,
            title=f"device ledger ({self.slots} slot(s))",
        )
        return table + (
            f"\ndevice: {self.elapsed:.3f}s elapsed, "
            f"{self.busy_seconds:.3f}s busy, "
            f"{self.idle_seconds:.3f}s idle"
        )


class TelemetryCollector:
    """Live telemetry collection for one simulation run.

    The simulators call the ``on_*`` hooks from their event handlers;
    every hook is O(1) and built on the standard monitor types.  The
    collector is single-use, like the simulators that feed it.
    """

    def __init__(self, node_names: list[str], vector_width: int) -> None:
        if vector_width < 1:
            raise ValueError(f"vector_width must be >= 1, got {vector_width}")
        self.vector_width = int(vector_width)
        self.node_names = list(node_names)
        n = len(self.node_names)
        self._firings = [Counter(f"{nm}.firings") for nm in node_names]
        self._empty = [Counter(f"{nm}.empty_firings") for nm in node_names]
        self._items = [Counter(f"{nm}.items") for nm in node_names]
        self._pushed = [Counter(f"{nm}.queue_pushed") for nm in node_names]
        self._popped = [Counter(f"{nm}.queue_popped") for nm in node_names]
        self._shed = [Counter(f"{nm}.queue_shed") for nm in node_names]
        self._occupancy = [
            Accumulator(f"{nm}.occupancy") for nm in node_names
        ]
        self._service = [Accumulator(f"{nm}.service") for nm in node_names]
        self._qlen = [TimeWeighted(f"{nm}.queue_len") for nm in node_names]
        self._busy = [TimeWeighted(f"{nm}.busy") for nm in node_names]
        self._n = n

    # -- hooks (called by simulators) ------------------------------------

    def on_enqueue(self, i: int, t: float, pushed: int, qlen: int) -> None:
        """``pushed`` items entered node ``i``'s input queue at ``t``."""
        self._pushed[i].increment(pushed)
        self._qlen[i].update(t, float(qlen))

    def on_fire(self, i: int, t: float, consumed: int, qlen: int) -> None:
        """Node ``i`` started a firing at ``t`` consuming ``consumed``."""
        self._firings[i].increment()
        if consumed == 0:
            self._empty[i].increment()
        self._items[i].increment(consumed)
        self._popped[i].increment(consumed)
        self._occupancy[i].add(consumed / self.vector_width)
        self._qlen[i].update(t, float(qlen))
        self._busy[i].update(t, 1.0)

    def on_complete(self, i: int, t: float, duration: float) -> None:
        """Node ``i``'s firing finished at ``t`` after ``duration``."""
        self._service[i].add(duration)
        self._busy[i].update(t, 0.0)

    def on_shed(self, i: int, t: float, dropped: int, qlen: int) -> None:
        """``dropped`` items were shed from node ``i``'s queue at ``t``."""
        self._shed[i].increment(dropped)
        self._qlen[i].update(t, float(qlen))

    # -- finalization -----------------------------------------------------

    def finalize(
        self,
        *,
        strategy: str,
        makespan: float,
        events_processed: int,
        wall_time: float,
        degraded_intervals: tuple[tuple[float, float], ...] = (),
    ) -> RunTelemetry:
        """Freeze the collected statistics into a :class:`RunTelemetry`."""
        span = makespan if makespan > 0 and not math.isnan(makespan) else 0.0
        nodes = []
        for i, name in enumerate(self.node_names):
            service = self._service[i].total if self._service[i].n else 0.0
            hwm = int(self._qlen[i].max)
            nodes.append(
                NodeTelemetry(
                    name=name,
                    firings=self._firings[i].count,
                    empty_firings=self._empty[i].count,
                    items_consumed=self._items[i].count,
                    mean_occupancy=self._occupancy[i].mean,
                    service_time=service,
                    wait_time=(span - service) if span else math.nan,
                    queue_hwm=hwm,
                    queue_hwm_vectors=hwm / self.vector_width,
                    queue_time_avg=(
                        self._qlen[i].time_average(span) if span else math.nan
                    ),
                    queue_pushed=self._pushed[i].count,
                    queue_popped=self._popped[i].count,
                    queue_shed=self._shed[i].count,
                )
            )
        engine = EngineTelemetry(
            events_processed=int(events_processed),
            sim_time=float(makespan),
            wall_time=float(wall_time),
        )
        return RunTelemetry(
            strategy=strategy,
            nodes=tuple(nodes),
            engine=engine,
            degraded_intervals=tuple(degraded_intervals),
        )
