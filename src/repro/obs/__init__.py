"""Run observability: structured telemetry for simulation runs.

Irregular-rate pipelines are exactly the workloads where aggregate
metrics hide the interesting behaviour — which node's queue spiked, how
much of a node's life was service vs. enforced wait, how hard the event
loop worked per simulated second.  This package collects those per-node
and per-engine facts during a run (via the existing
:mod:`repro.des.monitors` collector types) and exposes them as a
structured, exportable :class:`RunTelemetry` value.

Enable collection with ``telemetry=True`` on any simulator, or
``repro-experiments run <id> --telemetry`` on the CLI; export as
JSON/CSV through :mod:`repro.experiments.export`.
"""

from repro.obs.telemetry import (
    EngineTelemetry,
    NodeTelemetry,
    PlanCacheTelemetry,
    RunTelemetry,
    TelemetryCollector,
)

__all__ = [
    "EngineTelemetry",
    "NodeTelemetry",
    "PlanCacheTelemetry",
    "RunTelemetry",
    "TelemetryCollector",
]
