"""A Viola-Jones-style detection cascade on synthetic feature windows.

Each stream item is a detection window carrying a feature vector.  Windows
are either background or (rarely) true objects; each cascade stage scores
a window with a linear classifier over a prefix of the features and passes
it iff the score clears the stage threshold.  Stage costs grow down the
cascade (more features), while pass rates shrink — giving a pure-filter
pipeline whose gains we measure empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.gains import EmpiricalGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError

__all__ = [
    "CascadeStage",
    "default_cascade",
    "synth_windows",
    "CascadeGainTrace",
    "measure_cascade_gains",
    "cascade_pipeline",
]

DEFAULT_VECTOR_WIDTH: int = 128


@dataclass(frozen=True)
class CascadeStage:
    """One cascade stage: evaluate ``n_features`` features, threshold."""

    n_features: int
    threshold: float
    service_time: float

    def __post_init__(self) -> None:
        if self.n_features < 1:
            raise SpecError("n_features must be >= 1")
        if self.service_time <= 0:
            raise SpecError("service_time must be > 0")


def default_cascade() -> tuple[CascadeStage, ...]:
    """A four-stage cascade with growing cost and tightening thresholds."""
    return (
        CascadeStage(n_features=2, threshold=0.0, service_time=90.0),
        CascadeStage(n_features=8, threshold=1.2, service_time=340.0),
        CascadeStage(n_features=24, threshold=2.8, service_time=900.0),
        CascadeStage(n_features=64, threshold=4.5, service_time=2400.0),
    )


def synth_windows(
    n: int,
    n_features: int,
    object_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic feature windows.

    Background features are standard normal; object windows get a positive
    mean shift so deeper (more-feature) stages separate them better.
    Returns ``(features, is_object)``.
    """
    if n < 1 or n_features < 1:
        raise SpecError("n and n_features must be >= 1")
    if not 0.0 <= object_fraction <= 1.0:
        raise SpecError("object_fraction must be in [0, 1]")
    features = rng.standard_normal((n, n_features))
    is_object = rng.random(n) < object_fraction
    features[is_object] += 0.45  # per-feature signal shift
    return features, is_object


@dataclass
class CascadeGainTrace:
    """Per-item pass/fail counts at each cascade stage."""

    stage_counts: tuple[np.ndarray, ...]
    n_objects: int
    n_detections: int

    @property
    def mean_gains(self) -> np.ndarray:
        return np.asarray(
            [float(np.mean(c)) if c.size else 0.0 for c in self.stage_counts]
        )

    def distributions(self) -> list[EmpiricalGain]:
        out = []
        for i, counts in enumerate(self.stage_counts):
            if counts.size == 0:
                raise SpecError(f"stage {i} saw no items; enlarge the stream")
            out.append(EmpiricalGain(counts))
        return out


def measure_cascade_gains(
    *,
    stages: tuple[CascadeStage, ...] | None = None,
    n_windows: int = 20_000,
    object_fraction: float = 0.01,
    seed: int = 0,
) -> CascadeGainTrace:
    """Run the cascade over synthetic windows, recording per-stage gains."""
    if stages is None:
        stages = default_cascade()
    rng = np.random.default_rng(seed)
    max_features = max(s.n_features for s in stages)
    features, is_object = synth_windows(
        n_windows, max_features, object_fraction, rng
    )

    counts: list[list[int]] = [[] for _ in stages]
    surviving = np.arange(n_windows)
    detections = 0
    for i, stage in enumerate(stages):
        scores = features[surviving, : stage.n_features].mean(axis=1) * np.sqrt(
            stage.n_features
        )
        passed = scores >= stage.threshold / np.sqrt(stage.n_features)
        for p in passed:
            counts[i].append(1 if p else 0)
        surviving = surviving[passed]
        if i == len(stages) - 1:
            detections = int(surviving.size)
    return CascadeGainTrace(
        stage_counts=tuple(np.asarray(c, dtype=np.int64) for c in counts),
        n_objects=int(is_object.sum()),
        n_detections=detections,
    )


def cascade_pipeline(
    trace: CascadeGainTrace | None = None,
    *,
    stages: tuple[CascadeStage, ...] | None = None,
    vector_width: int = DEFAULT_VECTOR_WIDTH,
    seed: int = 0,
) -> PipelineSpec:
    """A cascade pipeline with measured empirical pass-rate gains."""
    if stages is None:
        stages = default_cascade()
    if trace is None:
        trace = measure_cascade_gains(stages=stages, seed=seed)
    if len(trace.stage_counts) != len(stages):
        raise SpecError("trace and stages disagree on cascade depth")
    dists = trace.distributions()
    nodes = tuple(
        NodeSpec(f"stage{i}", stage.service_time, dists[i])
        for i, stage in enumerate(stages)
    )
    return PipelineSpec(nodes, vector_width)
