"""Decision-cascade pipeline (Viola-Jones style, per the paper's intro).

The introduction cites "decision cascades in machine learning
[Viola-Jones]" as an irregular streaming workload: a chain of
progressively more expensive classifiers where each stage rejects most of
its input, so later (costly) stages see a thin, data-dependent trickle —
exactly the paper's filter-node irregularity.
"""

from repro.apps.cascade.cascade import (
    CascadeStage,
    CascadeGainTrace,
    cascade_pipeline,
    default_cascade,
    measure_cascade_gains,
    synth_windows,
)

__all__ = [
    "CascadeStage",
    "CascadeGainTrace",
    "default_cascade",
    "synth_windows",
    "measure_cascade_gains",
    "cascade_pipeline",
]
