"""Synthetic packet streams and detection rules."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SpecError

__all__ = ["Rule", "PacketStreamConfig", "synth_packets", "Packet"]


@dataclass(frozen=True)
class Rule:
    """A content rule: match ``pattern`` on ``port`` within a payload range.

    ``max_offset`` of None means "anywhere"; otherwise the match must start
    at or before that byte offset (a common Snort rule option).
    """

    pattern: bytes
    port: int
    max_offset: int | None = None

    def __post_init__(self) -> None:
        if not self.pattern:
            raise SpecError("rule pattern must be non-empty")
        if not 0 <= self.port <= 65535:
            raise SpecError(f"invalid port {self.port}")
        if self.max_offset is not None and self.max_offset < 0:
            raise SpecError("max_offset must be >= 0")


@dataclass(frozen=True)
class Packet:
    """One synthetic packet: destination port + payload bytes."""

    port: int
    payload: bytes
    is_malicious: bool = False


DEFAULT_RULES: tuple[Rule, ...] = (
    Rule(b"GET /admin", 80, max_offset=0),
    Rule(b"/etc/passwd", 80),
    Rule(b"\x90\x90\x90\x90\x90\x90", 445),
    Rule(b"USER anonymous", 21, max_offset=4),
    Rule(b"SELECT * FROM", 3306),
    Rule(b"xp_cmdshell", 1433),
    Rule(b"\xde\xad\xbe\xef", 445),
    Rule(b"wget http", 23),
)


@dataclass(frozen=True)
class PacketStreamConfig:
    """Synthetic traffic parameters."""

    n_packets: int = 5000
    payload_len: int = 256
    monitored_port_fraction: float = 0.35
    malicious_fraction: float = 0.02
    #: Fraction of monitored-port packets carrying a *decoy*: some rule's
    #: pattern planted on the wrong port (a benign occurrence of a
    #: suspicious string).  Decoys survive the content scan (stage 1) but
    #: are rejected by rule evaluation (stage 2), exercising that filter.
    decoy_fraction: float = 0.06
    rules: tuple[Rule, ...] = field(default=DEFAULT_RULES)

    def __post_init__(self) -> None:
        if self.n_packets < 1 or self.payload_len < 8:
            raise SpecError("need n_packets >= 1 and payload_len >= 8")
        for name in (
            "monitored_port_fraction",
            "malicious_fraction",
            "decoy_fraction",
        ):
            val = getattr(self, name)
            if not 0.0 <= val <= 1.0:
                raise SpecError(f"{name} must be in [0,1], got {val}")
        if not self.rules:
            raise SpecError("need at least one rule")


def synth_packets(
    config: PacketStreamConfig, rng: np.random.Generator
) -> list[Packet]:
    """Generate a packet stream with planted rule-matching payloads.

    Monitored-port packets carry mostly ASCII-ish payloads (so benign
    accidental substring matches occur at a realistic low rate); a
    ``malicious_fraction`` of them embed one rule's pattern at a random
    (or rule-constrained) offset.
    """
    monitored_ports = sorted({r.port for r in config.rules})
    packets: list[Packet] = []
    for _ in range(config.n_packets):
        monitored = rng.random() < config.monitored_port_fraction
        if monitored:
            port = int(monitored_ports[rng.integers(0, len(monitored_ports))])
        else:
            port = int(rng.integers(1024, 65536))
        payload = bytes(rng.integers(32, 127, size=config.payload_len, dtype=np.uint8))
        malicious = monitored and rng.random() < config.malicious_fraction
        if malicious:
            candidates = [r for r in config.rules if r.port == port]
            rule = candidates[int(rng.integers(0, len(candidates)))]
            max_start = config.payload_len - len(rule.pattern)
            if rule.max_offset is not None:
                max_start = min(max_start, rule.max_offset)
            start = int(rng.integers(0, max_start + 1))
            payload = (
                payload[:start]
                + rule.pattern
                + payload[start + len(rule.pattern) :]
            )
        elif monitored and rng.random() < config.decoy_fraction:
            others = [r for r in config.rules if r.port != port]
            if others:
                rule = others[int(rng.integers(0, len(others)))]
                max_start = config.payload_len - len(rule.pattern)
                start = int(rng.integers(0, max_start + 1))
                payload = (
                    payload[:start]
                    + rule.pattern
                    + payload[start + len(rule.pattern) :]
                )
        packets.append(Packet(port=port, payload=payload, is_malicious=malicious))
    return packets
