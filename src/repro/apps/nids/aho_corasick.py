"""Aho-Corasick multi-pattern string matching.

A from-scratch implementation of the classic automaton: a trie over the
pattern set with BFS-computed failure links and output merging.  Matching a
text of length ``n`` reports every occurrence of every pattern in
``O(n + matches)`` automaton steps — this is the core of stage 1 of the
NIDS pipeline (Snort's content scanner is the canonical user).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.errors import SpecError

__all__ = ["AhoCorasick"]


class AhoCorasick:
    """Multi-pattern matcher over byte strings.

    >>> ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
    >>> sorted(ac.find(b"ushers"))
    [(1, 1), (2, 0), (2, 3)]

    Matches are ``(start_index, pattern_index)`` pairs.
    """

    def __init__(self, patterns: Sequence[bytes]) -> None:
        if not patterns:
            raise SpecError("AhoCorasick needs at least one pattern")
        pats: list[bytes] = []
        for i, p in enumerate(patterns):
            if not isinstance(p, (bytes, bytearray)) or len(p) == 0:
                raise SpecError(
                    f"pattern {i} must be a non-empty bytes object, got {p!r}"
                )
            pats.append(bytes(p))
        self.patterns: tuple[bytes, ...] = tuple(pats)

        # Trie: nodes as dicts byte -> state; state 0 is the root.
        self._next: list[dict[int, int]] = [{}]
        self._fail: list[int] = [0]
        self._out: list[list[int]] = [[]]
        for idx, pattern in enumerate(self.patterns):
            state = 0
            for byte in pattern:
                nxt = self._next[state].get(byte)
                if nxt is None:
                    self._next.append({})
                    self._fail.append(0)
                    self._out.append([])
                    nxt = len(self._next) - 1
                    self._next[state][byte] = nxt
                state = nxt
            self._out[state].append(idx)
        self._build_failure_links()

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for state in self._next[0].values():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, child in self._next[state].items():
                queue.append(child)
                fallback = self._fail[state]
                while fallback and byte not in self._next[fallback]:
                    fallback = self._fail[fallback]
                self._fail[child] = self._next[fallback].get(byte, 0)
                if self._fail[child] == child:
                    self._fail[child] = 0
                self._out[child] = self._out[child] + self._out[self._fail[child]]

    @property
    def n_states(self) -> int:
        return len(self._next)

    def _step(self, state: int, byte: int) -> int:
        while state and byte not in self._next[state]:
            state = self._fail[state]
        return self._next[state].get(byte, 0)

    def find(self, text: bytes) -> list[tuple[int, int]]:
        """All matches as ``(start_index, pattern_index)`` pairs."""
        state = 0
        matches: list[tuple[int, int]] = []
        for pos, byte in enumerate(text):
            state = self._step(state, byte)
            for pat_idx in self._out[state]:
                start = pos - len(self.patterns[pat_idx]) + 1
                matches.append((start, pat_idx))
        return matches

    def count(self, text: bytes) -> int:
        """Number of matches (cheaper than materializing them)."""
        state = 0
        total = 0
        for byte in text:
            state = self._step(state, byte)
            total += len(self._out[state])
        return total

    def contains_any(self, text: bytes) -> bool:
        """Does any pattern occur in ``text``?"""
        state = 0
        for byte in text:
            state = self._step(state, byte)
            if self._out[state]:
                return True
        return False

    @staticmethod
    def from_strings(patterns: Iterable[str]) -> "AhoCorasick":
        """Build from UTF-8 strings."""
        return AhoCorasick([p.encode("utf-8") for p in patterns])
