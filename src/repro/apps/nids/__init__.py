"""Network intrusion detection pipeline (Snort-like, per the paper's intro).

The introduction lists "network intrusion detection [Snort]" among the
irregular streaming applications with latency constraints.  We model a
four-stage packet-inspection pipeline:

- stage 0: header prefilter (protocol/port mask) — cheap filter;
- stage 1: multi-pattern content scan with a from-scratch Aho-Corasick
  automaton — one packet fans out into up to ``u`` pattern matches;
- stage 2: rule-predicate evaluation (offset/length checks per match);
- stage 3: alert formatting/logging.
"""

from repro.apps.nids.aho_corasick import AhoCorasick
from repro.apps.nids.packets import PacketStreamConfig, Rule, synth_packets
from repro.apps.nids.inspector import (
    NidsGainTrace,
    measure_nids_gains,
    nids_pipeline,
)
from repro.apps.nids.trace_gains import (
    calibrated_nids_b,
    empirical_nids_pipeline,
    measure_gains,
)

__all__ = [
    "AhoCorasick",
    "Rule",
    "PacketStreamConfig",
    "synth_packets",
    "NidsGainTrace",
    "measure_nids_gains",
    "nids_pipeline",
    "measure_gains",
    "empirical_nids_pipeline",
    "calibrated_nids_b",
]
