"""The NIDS inspection stages and gain measurement."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.nids.aho_corasick import AhoCorasick
from repro.apps.nids.packets import PacketStreamConfig, synth_packets
from repro.dataflow.gains import EmpiricalGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError

__all__ = ["NidsGainTrace", "measure_nids_gains", "nids_pipeline"]

#: Plausible relative stage costs: the content scan (stage 1) and the alert
#: path (stage 3) dominate, the header prefilter is nearly free.
DEFAULT_SERVICE_TIMES: tuple[float, ...] = (45.0, 880.0, 260.0, 1500.0)

DEFAULT_VECTOR_WIDTH: int = 128


@dataclass
class NidsGainTrace:
    """Per-item output counts at each inspection stage."""

    stage_counts: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    n_malicious: int
    n_alerts: int

    @property
    def mean_gains(self) -> np.ndarray:
        return np.asarray(
            [float(np.mean(c)) if c.size else 0.0 for c in self.stage_counts]
        )

    def distributions(self) -> list[EmpiricalGain]:
        out = []
        for i, counts in enumerate(self.stage_counts):
            if counts.size == 0:
                raise SpecError(f"stage {i} saw no items; enlarge the stream")
            out.append(EmpiricalGain(counts))
        return out


def measure_nids_gains(
    *,
    config: PacketStreamConfig | None = None,
    match_limit: int = 16,
    seed: int = 0,
) -> NidsGainTrace:
    """Run the inspection stages over synthetic traffic, recording gains.

    - stage 0 passes packets on monitored ports;
    - stage 1 emits up to ``match_limit`` pattern matches per packet
      (Aho-Corasick over the full rule set);
    - stage 2 keeps matches whose rule constraints hold (right port,
      offset bound);
    - stage 3 emits one alert per surviving match.
    """
    if config is None:
        config = PacketStreamConfig()
    rng = np.random.default_rng(seed)
    packets = synth_packets(config, rng)
    rules = config.rules
    matcher = AhoCorasick([r.pattern for r in rules])
    monitored = {r.port for r in rules}

    s0: list[int] = []
    s1: list[int] = []
    s2: list[int] = []
    s3: list[int] = []
    n_alerts = 0
    for pkt in packets:
        passed = pkt.port in monitored
        s0.append(1 if passed else 0)
        if not passed:
            continue
        matches = matcher.find(pkt.payload)[:match_limit]
        s1.append(len(matches))
        for start, pat_idx in matches:
            rule = rules[pat_idx]
            ok = rule.port == pkt.port and (
                rule.max_offset is None or start <= rule.max_offset
            )
            s2.append(1 if ok else 0)
            if ok:
                s3.append(1)
                n_alerts += 1
    return NidsGainTrace(
        stage_counts=(
            np.asarray(s0, dtype=np.int64),
            np.asarray(s1, dtype=np.int64),
            np.asarray(s2, dtype=np.int64),
            np.asarray(s3, dtype=np.int64),
        ),
        n_malicious=sum(p.is_malicious for p in packets),
        n_alerts=n_alerts,
    )


def nids_pipeline(
    trace: NidsGainTrace | None = None,
    *,
    service_times: tuple[float, ...] = DEFAULT_SERVICE_TIMES,
    vector_width: int = DEFAULT_VECTOR_WIDTH,
    seed: int = 0,
) -> PipelineSpec:
    """An intrusion-detection pipeline with measured empirical gains."""
    if trace is None:
        trace = measure_nids_gains(seed=seed)
    if len(service_times) != 4:
        raise SpecError("expected 4 service times")
    names = ("header_filter", "content_scan", "rule_eval", "alert")
    dists = trace.distributions()
    nodes = tuple(
        NodeSpec(names[i], float(service_times[i]), dists[i]) for i in range(4)
    )
    return PipelineSpec(nodes, vector_width)
