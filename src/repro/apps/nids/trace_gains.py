"""Empirical gain extraction for the NIDS app, blast-parity interface.

:mod:`repro.apps.blast.trace_gains` established the pattern: run the real
stage implementations over a synthetic workload, record per-item output
counts, and build a pipeline whose gains are the measured distributions.
This module gives the intrusion-detection app the same three entry
points — :func:`measure_gains`, :func:`empirical_nids_pipeline`, and
:func:`calibrated_nids_b` — so it can feed the offline calibration loop
(:func:`repro.core.calibration.calibrate_enforced_b`) and the live
runtime exactly like BLAST does.

The underlying stage logic lives in
:mod:`repro.apps.nids.inspector`; this module is the calibration-facing
facade over it.
"""

from __future__ import annotations

import numpy as np

from repro.apps.nids.inspector import (
    DEFAULT_SERVICE_TIMES,
    DEFAULT_VECTOR_WIDTH,
    NidsGainTrace,
    measure_nids_gains,
    nids_pipeline,
)
from repro.apps.nids.packets import PacketStreamConfig
from repro.dataflow.spec import PipelineSpec

__all__ = [
    "NidsGainTrace",
    "measure_gains",
    "empirical_nids_pipeline",
    "calibrated_nids_b",
]


def measure_gains(
    *,
    config: PacketStreamConfig | None = None,
    match_limit: int = 16,
    seed: int = 0,
) -> NidsGainTrace:
    """Run the inspection stages over synthetic traffic, recording gains.

    Blast-parity name for :func:`~repro.apps.nids.inspector.measure_nids_gains`.
    """
    return measure_nids_gains(config=config, match_limit=match_limit, seed=seed)


def empirical_nids_pipeline(
    trace: NidsGainTrace | None = None,
    *,
    service_times: tuple[float, ...] = DEFAULT_SERVICE_TIMES,
    vector_width: int = DEFAULT_VECTOR_WIDTH,
    seed: int = 0,
) -> PipelineSpec:
    """A NIDS pipeline whose gains are the measured distributions.

    Service times stay at the plausible device-cycle defaults — as with
    BLAST, the optimizations only need the ``(t_i, gain)`` pairs.
    """
    return nids_pipeline(
        trace,
        service_times=service_times,
        vector_width=vector_width,
        seed=seed,
    )


def calibrated_nids_b(
    *,
    tau0: float,
    deadline: float,
    trace: NidsGainTrace | None = None,
    pipeline: PipelineSpec | None = None,
    n_trials: int = 8,
    n_items: int = 3000,
    seed: int = 0,
) -> np.ndarray:
    """Simulator-calibrated worst-case multipliers ``b`` at one operating point.

    The paper calibrates BLAST's ``b = (1, 3, 9, 6)`` through simulation
    (Section 6.2); this runs the same raise-and-retry loop over the
    empirical NIDS pipeline so its enforced-waits plans get honest
    deadline budgets too.  ``tau0`` and ``deadline`` are in the
    pipeline's service-time units (device cycles by default).
    """
    from repro.core.calibration import calibrate_enforced_b

    if pipeline is None:
        pipeline = empirical_nids_pipeline(trace, seed=seed)
    result = calibrate_enforced_b(
        pipeline,
        np.asarray([float(tau0)]),
        np.asarray([float(deadline)]),
        n_trials=n_trials,
        n_items=n_items,
        seed_base=seed,
    )
    return result.b
