"""Applications: the paper's BLAST test pipeline and the motivating
irregular streaming applications from its introduction."""
