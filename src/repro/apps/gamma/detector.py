"""The burst-detection pipeline stages and gain measurement."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.apps.gamma.photons import PhotonStreamConfig, synth_photon_stream
from repro.dataflow.gains import EmpiricalGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError

__all__ = ["GammaGainTrace", "measure_gamma_gains", "gamma_pipeline"]

#: Plausible relative service times for the four stages (device cycles).
#: Stage 3 (burst scoring over accumulated pair sets) dominates, as the
#: report stage does in BLAST.
DEFAULT_SERVICE_TIMES: tuple[float, ...] = (120.0, 640.0, 310.0, 1900.0)

DEFAULT_VECTOR_WIDTH: int = 128


@dataclass
class GammaGainTrace:
    """Per-item output counts at each detection stage."""

    stage_counts: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    n_true_burst_photons: int
    n_detected_pairs: int

    @property
    def mean_gains(self) -> np.ndarray:
        return np.asarray(
            [float(np.mean(c)) if c.size else 0.0 for c in self.stage_counts]
        )

    def distributions(self) -> list[EmpiricalGain]:
        out = []
        for i, counts in enumerate(self.stage_counts):
            if counts.size == 0:
                raise SpecError(f"stage {i} saw no items; enlarge the stream")
            out.append(EmpiricalGain(counts))
        return out


def measure_gamma_gains(
    *,
    config: PhotonStreamConfig | None = None,
    energy_threshold: float = 1.8,
    pair_window: float = 5.0,
    pair_limit: int = 16,
    coincidence_radius: float = 0.05,
    seed: int = 0,
) -> GammaGainTrace:
    """Run the detection stages over a synthetic stream, recording gains.

    - stage 0 passes photons with ``energy >= energy_threshold``;
    - stage 1 pairs each passing photon with up to ``pair_limit`` passing
      photons from the trailing ``pair_window`` time units;
    - stage 2 keeps pairs within ``coincidence_radius`` on the detector;
    - stage 3 emits one alert contribution per coincident pair.
    """
    if config is None:
        config = PhotonStreamConfig()
    rng = np.random.default_rng(seed)
    events = synth_photon_stream(config, rng)

    s0: list[int] = []
    s1: list[int] = []
    s2: list[int] = []
    s3: list[int] = []
    recent: deque[tuple[float, float, float]] = deque()
    detected_pairs = 0
    for ev in events:
        passed = ev["energy"] >= energy_threshold
        s0.append(1 if passed else 0)
        if not passed:
            continue
        t, x, y = float(ev["time"]), float(ev["x"]), float(ev["y"])
        while recent and recent[0][0] < t - pair_window:
            recent.popleft()
        partners = list(recent)[-pair_limit:]
        s1.append(len(partners))
        for _, px, py in partners:
            hit = (x - px) ** 2 + (y - py) ** 2 <= coincidence_radius**2
            s2.append(1 if hit else 0)
            if hit:
                s3.append(1)
                detected_pairs += 1
        recent.append((t, x, y))

    return GammaGainTrace(
        stage_counts=(
            np.asarray(s0, dtype=np.int64),
            np.asarray(s1, dtype=np.int64),
            np.asarray(s2, dtype=np.int64),
            np.asarray(s3, dtype=np.int64),
        ),
        n_true_burst_photons=int(events["is_burst"].sum()),
        n_detected_pairs=detected_pairs,
    )


def gamma_pipeline(
    trace: GammaGainTrace | None = None,
    *,
    service_times: tuple[float, ...] = DEFAULT_SERVICE_TIMES,
    vector_width: int = DEFAULT_VECTOR_WIDTH,
    seed: int = 0,
) -> PipelineSpec:
    """A burst-detection pipeline with measured empirical gains.

    When ``trace`` is None a default synthetic stream is measured first.
    """
    if trace is None:
        trace = measure_gamma_gains(seed=seed)
    if len(service_times) != 4:
        raise SpecError("expected 4 service times")
    names = ("energy_filter", "pair_expand", "coincidence", "burst_score")
    dists = trace.distributions()
    nodes = tuple(
        NodeSpec(names[i], float(service_times[i]), dists[i]) for i in range(4)
    )
    return PipelineSpec(nodes, vector_width)
