"""Gamma-ray burst detection pipeline (the paper's motivating application).

The introduction motivates latency-bounded irregular streaming with "an
orbiting gamma-ray telescope [that] might process a stream of incoming
photons and must alert ground-based instruments when it detects a
gamma-ray burst" (citing the APT instrument).  Section 7 names this the
next validation target.  We model it as a four-stage pipeline structurally
parallel to BLAST:

- stage 0: energy/quality filter on raw photon events;
- stage 1: coincidence-candidate expansion — each accepted photon pairs
  with recent photons nearby in time (irregular fan-out);
- stage 2: spatial-coincidence filter on candidate pairs;
- stage 3: burst scoring / alert generation.
"""

from repro.apps.gamma.photons import PhotonStreamConfig, synth_photon_stream
from repro.apps.gamma.detector import (
    GammaGainTrace,
    gamma_pipeline,
    measure_gamma_gains,
)
from repro.apps.gamma.trace_gains import (
    calibrated_gamma_b,
    empirical_gamma_pipeline,
    measure_gains,
)

__all__ = [
    "PhotonStreamConfig",
    "synth_photon_stream",
    "GammaGainTrace",
    "measure_gamma_gains",
    "gamma_pipeline",
    "measure_gains",
    "empirical_gamma_pipeline",
    "calibrated_gamma_b",
]
