"""Synthetic photon event streams with injected bursts.

A photon event is (time, x, y, energy).  Background photons arrive as a
Poisson process, uniform on the detector plane with a power-law-ish energy
spectrum; bursts inject temporally and spatially clustered photons — the
signal the downstream pipeline must catch within its deadline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpecError

__all__ = ["PhotonStreamConfig", "synth_photon_stream"]


@dataclass(frozen=True)
class PhotonStreamConfig:
    """Parameters of the synthetic photon stream.

    ``background_rate`` is photons per time unit; each of ``n_bursts``
    injects ``burst_photons`` photons over ``burst_duration`` within a
    disc of ``burst_radius`` on the unit-square detector.
    """

    duration: float = 10_000.0
    background_rate: float = 0.5
    n_bursts: int = 5
    burst_photons: int = 40
    burst_duration: float = 20.0
    burst_radius: float = 0.02
    min_energy: float = 1.0
    energy_index: float = 2.0  # power-law spectral index

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.background_rate < 0:
            raise SpecError("duration must be > 0 and background_rate >= 0")
        if self.n_bursts < 0 or self.burst_photons < 0:
            raise SpecError("burst counts must be >= 0")
        if not 0 < self.burst_radius < 0.5:
            raise SpecError("burst_radius must be in (0, 0.5)")
        if self.energy_index <= 1.0:
            raise SpecError("energy_index must be > 1 for a proper spectrum")


def _powerlaw_energies(
    n: int, e_min: float, index: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw energies from a Pareto(index-1) power law above ``e_min``."""
    u = rng.random(n)
    return e_min * (1.0 - u) ** (-1.0 / (index - 1.0))


def synth_photon_stream(
    config: PhotonStreamConfig, rng: np.random.Generator
) -> np.ndarray:
    """Generate a time-sorted structured array of photon events.

    Returns a structured array with fields ``time, x, y, energy, is_burst``
    (``is_burst`` is ground truth used only to validate detection, never
    by the pipeline itself).
    """
    n_bg = rng.poisson(config.background_rate * config.duration)
    t_bg = np.sort(rng.random(n_bg)) * config.duration
    x_bg = rng.random(n_bg)
    y_bg = rng.random(n_bg)
    e_bg = _powerlaw_energies(n_bg, config.min_energy, config.energy_index, rng)

    parts_t = [t_bg]
    parts_x = [x_bg]
    parts_y = [y_bg]
    parts_e = [e_bg]
    parts_b = [np.zeros(n_bg, dtype=bool)]
    for _ in range(config.n_bursts):
        t0 = rng.random() * max(config.duration - config.burst_duration, 0.0)
        cx, cy = rng.random(2) * (1 - 2 * config.burst_radius) + config.burst_radius
        n_b = config.burst_photons
        t_b = t0 + np.sort(rng.random(n_b)) * config.burst_duration
        ang = rng.random(n_b) * 2 * np.pi
        rad = config.burst_radius * np.sqrt(rng.random(n_b))
        parts_t.append(t_b)
        parts_x.append(cx + rad * np.cos(ang))
        parts_y.append(cy + rad * np.sin(ang))
        # Bursts skew slightly harder than background.
        parts_e.append(
            _powerlaw_energies(
                n_b, config.min_energy * 1.5, config.energy_index, rng
            )
        )
        parts_b.append(np.ones(n_b, dtype=bool))

    events = np.empty(
        sum(a.size for a in parts_t),
        dtype=[
            ("time", float),
            ("x", float),
            ("y", float),
            ("energy", float),
            ("is_burst", bool),
        ],
    )
    events["time"] = np.concatenate(parts_t)
    events["x"] = np.concatenate(parts_x)
    events["y"] = np.concatenate(parts_y)
    events["energy"] = np.concatenate(parts_e)
    events["is_burst"] = np.concatenate(parts_b)
    events.sort(order="time")
    return events
