"""Empirical gain extraction for the gamma-ray app, blast-parity interface.

:mod:`repro.apps.blast.trace_gains` established the pattern: run the real
stage implementations over a synthetic workload, record per-item output
counts, and build a pipeline whose gains are the measured distributions.
This module gives the burst-detection app the same three entry points —
:func:`measure_gains`, :func:`empirical_gamma_pipeline`, and
:func:`calibrated_gamma_b` — so it can feed the offline calibration loop
(:func:`repro.core.calibration.calibrate_enforced_b`) and the live
runtime exactly like BLAST does.

The underlying stage logic lives in
:mod:`repro.apps.gamma.detector`; this module is the calibration-facing
facade over it.
"""

from __future__ import annotations

import numpy as np

from repro.apps.gamma.detector import (
    DEFAULT_SERVICE_TIMES,
    DEFAULT_VECTOR_WIDTH,
    GammaGainTrace,
    gamma_pipeline,
    measure_gamma_gains,
)
from repro.apps.gamma.photons import PhotonStreamConfig
from repro.dataflow.spec import PipelineSpec

__all__ = [
    "GammaGainTrace",
    "measure_gains",
    "empirical_gamma_pipeline",
    "calibrated_gamma_b",
]


def measure_gains(
    *,
    config: PhotonStreamConfig | None = None,
    energy_threshold: float = 1.8,
    pair_window: float = 5.0,
    pair_limit: int = 16,
    coincidence_radius: float = 0.05,
    seed: int = 0,
) -> GammaGainTrace:
    """Run the detection stages over a synthetic stream, recording gains.

    Blast-parity name for :func:`~repro.apps.gamma.detector.measure_gamma_gains`.
    """
    return measure_gamma_gains(
        config=config,
        energy_threshold=energy_threshold,
        pair_window=pair_window,
        pair_limit=pair_limit,
        coincidence_radius=coincidence_radius,
        seed=seed,
    )


def empirical_gamma_pipeline(
    trace: GammaGainTrace | None = None,
    *,
    service_times: tuple[float, ...] = DEFAULT_SERVICE_TIMES,
    vector_width: int = DEFAULT_VECTOR_WIDTH,
    seed: int = 0,
) -> PipelineSpec:
    """A burst-detection pipeline whose gains are the measured distributions.

    Service times stay at the plausible device-cycle defaults — as with
    BLAST, the optimizations only need the ``(t_i, gain)`` pairs.
    """
    return gamma_pipeline(
        trace,
        service_times=service_times,
        vector_width=vector_width,
        seed=seed,
    )


def calibrated_gamma_b(
    *,
    tau0: float,
    deadline: float,
    trace: GammaGainTrace | None = None,
    pipeline: PipelineSpec | None = None,
    n_trials: int = 8,
    n_items: int = 3000,
    seed: int = 0,
) -> np.ndarray:
    """Simulator-calibrated worst-case multipliers ``b`` at one operating point.

    The paper calibrates BLAST's ``b = (1, 3, 9, 6)`` through simulation
    (Section 6.2); this runs the same raise-and-retry loop over the
    empirical burst-detection pipeline so its enforced-waits plans get
    honest deadline budgets too.  ``tau0`` and ``deadline`` are in the
    pipeline's service-time units (device cycles by default).
    """
    from repro.core.calibration import calibrate_enforced_b

    if pipeline is None:
        pipeline = empirical_gamma_pipeline(trace, seed=seed)
    result = calibrate_enforced_b(
        pipeline,
        np.asarray([float(tau0)]),
        np.asarray([float(deadline)]),
        n_trials=n_trials,
        n_items=n_items,
        seed_base=seed,
    )
    return result.b
