"""Ungapped X-drop seed extension: BLAST's stage 2.

From a seed match, extend left and right accumulating +match/-mismatch
scores, stopping a direction when the running score drops more than
``xdrop`` below its running maximum; the extension's score is the sum of
the two directions' best scores plus the seed itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpecError

__all__ = ["ExtensionResult", "ungapped_extend"]


@dataclass(frozen=True)
class ExtensionResult:
    """Outcome of one ungapped extension.

    ``q_start/q_end`` and ``d_start/d_end`` delimit the half-open aligned
    ranges; ``score`` uses the +match/-mismatch scheme.
    """

    score: int
    q_start: int
    q_end: int
    d_start: int
    d_end: int

    @property
    def length(self) -> int:
        return self.q_end - self.q_start


def _extend_dir(
    query: np.ndarray,
    database: np.ndarray,
    qpos: int,
    dpos: int,
    step: int,
    match: int,
    mismatch: int,
    xdrop: int,
) -> tuple[int, int]:
    """Best score and extent in one direction; returns (best_score, steps)."""
    score = 0
    best = 0
    best_steps = 0
    steps = 0
    q, d = qpos, dpos
    nq, nd = query.size, database.size
    while 0 <= q < nq and 0 <= d < nd:
        score += match if query[q] == database[d] else mismatch
        steps += 1
        if score > best:
            best = score
            best_steps = steps
        elif best - score > xdrop:
            break
        q += step
        d += step
    return best, best_steps


def ungapped_extend(
    query: np.ndarray,
    database: np.ndarray,
    qpos: int,
    dpos: int,
    k: int,
    *,
    match: int = 1,
    mismatch: int = -2,
    xdrop: int = 12,
) -> ExtensionResult:
    """Extend the exact seed ``query[qpos:qpos+k] == database[dpos:dpos+k]``.

    The seed contributes ``k * match``; left extension starts just before
    the seed and right extension just after it.
    """
    query = np.asarray(query, dtype=np.uint8)
    database = np.asarray(database, dtype=np.uint8)
    if k < 1:
        raise SpecError(f"k must be >= 1, got {k}")
    if not 0 <= qpos <= query.size - k:
        raise SpecError(f"qpos {qpos} with k={k} outside query")
    if not 0 <= dpos <= database.size - k:
        raise SpecError(f"dpos {dpos} with k={k} outside database")
    left_score, left_steps = _extend_dir(
        query, database, qpos - 1, dpos - 1, -1, match, mismatch, xdrop
    )
    right_score, right_steps = _extend_dir(
        query, database, qpos + k, dpos + k, +1, match, mismatch, xdrop
    )
    return ExtensionResult(
        score=k * match + left_score + right_score,
        q_start=qpos - left_steps,
        q_end=qpos + k + right_steps,
        d_start=dpos - left_steps,
        d_end=dpos + k + right_steps,
    )
