"""Synthetic DNA sequences for the mini-BLAST workload.

Sequences are NumPy ``uint8`` arrays of base codes 0..3 (A, C, G, T).
The generator can plant mutated copies of query fragments into a database
sequence so that the seeding/extension stages see realistic homologies
rather than only random-match noise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpecError

__all__ = [
    "ALPHABET",
    "random_dna",
    "to_string",
    "from_string",
    "mutate",
    "plant_homologies",
]

ALPHABET = "ACGT"
_CODE = {c: i for i, c in enumerate(ALPHABET)}


def random_dna(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random sequence of length ``n`` (codes 0..3)."""
    if n < 0:
        raise SpecError(f"sequence length must be >= 0, got {n}")
    return rng.integers(0, 4, size=n, dtype=np.uint8)


def to_string(seq: np.ndarray) -> str:
    """Decode a code array to an ACGT string."""
    arr = np.asarray(seq)
    if arr.size and int(arr.max()) > 3:
        raise SpecError("sequence codes must be in 0..3")
    return "".join(ALPHABET[int(c)] for c in arr)


def from_string(s: str) -> np.ndarray:
    """Encode an ACGT string (case-insensitive) to codes."""
    try:
        return np.asarray([_CODE[c] for c in s.upper()], dtype=np.uint8)
    except KeyError as exc:
        raise SpecError(f"invalid DNA character {exc.args[0]!r}") from exc


def mutate(
    seq: np.ndarray, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Point-mutate each base independently with probability ``rate``.

    A mutated base is replaced by one of the *other* three bases uniformly
    (so ``rate`` is the true substitution probability).
    """
    if not 0.0 <= rate <= 1.0:
        raise SpecError(f"mutation rate must be in [0, 1], got {rate}")
    seq = np.asarray(seq, dtype=np.uint8)
    out = seq.copy()
    mask = rng.random(seq.size) < rate
    n_mut = int(mask.sum())
    if n_mut:
        # Shift by 1..3 mod 4 guarantees a different base.
        out[mask] = (out[mask] + rng.integers(1, 4, size=n_mut)) % 4
    return out


def plant_homologies(
    database: np.ndarray,
    query: np.ndarray,
    n_sites: int,
    rng: np.random.Generator,
    *,
    fragment_len: int = 64,
    mutation_rate: float = 0.05,
) -> np.ndarray:
    """Copy mutated query fragments into random database positions.

    Returns a new database array; the original is not modified.  Fragments
    are drawn uniformly from the query and substituted (with point
    mutations) at non-wrapping random offsets.
    """
    database = np.asarray(database, dtype=np.uint8).copy()
    query = np.asarray(query, dtype=np.uint8)
    if fragment_len < 1:
        raise SpecError(f"fragment_len must be >= 1, got {fragment_len}")
    if fragment_len > query.size:
        raise SpecError(
            f"fragment_len {fragment_len} exceeds query length {query.size}"
        )
    if fragment_len > database.size:
        raise SpecError(
            f"fragment_len {fragment_len} exceeds database length "
            f"{database.size}"
        )
    for _ in range(n_sites):
        qstart = int(rng.integers(0, query.size - fragment_len + 1))
        dstart = int(rng.integers(0, database.size - fragment_len + 1))
        fragment = mutate(
            query[qstart : qstart + fragment_len], mutation_rate, rng
        )
        database[dstart : dstart + fragment_len] = fragment
    return database
