"""k-mer seeding: BLAST's first two stages.

A :class:`KmerIndex` hashes every k-mer of the query.  Streaming database
*windows* are the pipeline's input items: stage 0 asks "does this window
contain any seed?" (a filter) and stage 1 enumerates the individual seed
matches in a hit window (the expander — one window can fan out into many
query/database position pairs, which is precisely the irregularity the
paper's expander node models).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpecError

__all__ = ["KmerIndex", "pack_kmers"]


def pack_kmers(seq: np.ndarray, k: int) -> np.ndarray:
    """Base-4 packed integer codes of every k-mer of ``seq``.

    Returns an int64 array of length ``len(seq) - k + 1`` (empty when the
    sequence is shorter than ``k``).  k is limited to 31 to fit int64.
    """
    if not 1 <= k <= 31:
        raise SpecError(f"k must be in [1, 31], got {k}")
    seq = np.asarray(seq, dtype=np.int64)
    if seq.size < k:
        return np.empty(0, dtype=np.int64)
    weights = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(seq, k)
    return windows @ weights


class KmerIndex:
    """Exact-match k-mer index of a query sequence."""

    def __init__(self, query: np.ndarray, k: int = 11) -> None:
        query = np.asarray(query, dtype=np.uint8)
        if query.size < k:
            raise SpecError(
                f"query of length {query.size} is shorter than k={k}"
            )
        self.k = int(k)
        self.query_length = int(query.size)
        codes = pack_kmers(query, k)
        index: dict[int, list[int]] = {}
        for pos, code in enumerate(codes):
            index.setdefault(int(code), []).append(pos)
        self._index = index

    @property
    def distinct_kmers(self) -> int:
        return len(self._index)

    def lookup(self, code: int) -> list[int]:
        """Query positions whose k-mer has this packed code."""
        return self._index.get(int(code), [])

    def window_seeds(
        self, database: np.ndarray, start: int, length: int
    ) -> list[tuple[int, int]]:
        """All seed matches ``(query_pos, db_pos)`` in a database window.

        The window is ``database[start : start + length]``; k-mers
        straddling the window end are attributed to the window containing
        their first base, so consecutive windows tile the database without
        double counting.
        """
        database = np.asarray(database, dtype=np.uint8)
        if not 0 <= start < database.size:
            raise SpecError(
                f"window start {start} outside database of length "
                f"{database.size}"
            )
        end = min(start + length, database.size - self.k + 1)
        if end <= start:
            return []
        codes = pack_kmers(database[start : end + self.k - 1], self.k)
        seeds: list[tuple[int, int]] = []
        for offset, code in enumerate(codes):
            for qpos in self._index.get(int(code), ()):
                seeds.append((qpos, start + offset))
        return seeds

    def has_seed(self, database: np.ndarray, start: int, length: int) -> bool:
        """Stage-0 predicate: does the window contain any seed?"""
        database = np.asarray(database, dtype=np.uint8)
        end = min(start + length, database.size - self.k + 1)
        if end <= start:
            return False
        codes = pack_kmers(database[start : end + self.k - 1], self.k)
        return any(int(c) in self._index for c in codes)
