"""Banded gapped alignment: the real work of BLAST's report stage.

Stage 3 of the BLAST pipeline ("report", t = 2753 cycles — by far the
most expensive stage in Table 1) corresponds to gapped alignment and
reporting of surviving extensions.  For completeness of the mini-BLAST
substrate we implement banded Smith-Waterman: local alignment restricted
to a diagonal band around the seed diagonal, which is how BLAST bounds
the quadratic cost of gapped extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpecError

__all__ = ["BandedAlignment", "banded_smith_waterman"]


@dataclass(frozen=True)
class BandedAlignment:
    """Result of a banded local alignment.

    ``q_end``/``d_end`` are exclusive ends of the best local alignment;
    the start coordinates require traceback, which the pipeline does not
    need (only scores gate reporting), so they are not computed.
    """

    score: int
    q_end: int
    d_end: int


def banded_smith_waterman(
    query: np.ndarray,
    database: np.ndarray,
    diagonal: int,
    *,
    band: int = 8,
    match: int = 2,
    mismatch: int = -3,
    gap: int = -5,
) -> BandedAlignment:
    """Local alignment within ``|(d - q) - diagonal| <= band``.

    ``diagonal`` is the seed diagonal ``d_pos - q_pos``; cells outside
    the band are unreachable (treated as score 0 / local restart).
    Linear gap penalty; O(len(query) * band) time and O(band) memory.
    """
    query = np.asarray(query, dtype=np.int16)
    database = np.asarray(database, dtype=np.int16)
    if band < 1:
        raise SpecError(f"band must be >= 1, got {band}")
    if gap >= 0 or mismatch >= 0:
        raise SpecError("gap and mismatch penalties must be negative")
    if match <= 0:
        raise SpecError("match score must be positive")
    nq, nd = query.size, database.size
    if nq == 0 or nd == 0:
        return BandedAlignment(0, 0, 0)

    width = 2 * band + 1
    # prev[k] = H(i-1, j) where j = i + diagonal + (k - band).
    prev = np.zeros(width, dtype=np.int64)
    best = 0
    best_q = 0
    best_d = 0
    for i in range(nq):
        curr = np.zeros(width, dtype=np.int64)
        j_center = i + diagonal
        for k in range(width):
            j = j_center + (k - band)
            if j < 0 or j >= nd:
                continue
            sub = match if query[i] == database[j] else mismatch
            h_diag = prev[k]  # (i-1, j-1) lands at the same offset k
            h_up = prev[k + 1] if k + 1 < width else 0  # (i-1, j)
            h_left = curr[k - 1] if k - 1 >= 0 else 0  # (i, j-1)
            h = max(0, h_diag + sub, h_up + gap, h_left + gap)
            curr[k] = h
            if h > best:
                best = int(h)
                best_q = i + 1
                best_d = j + 1
        prev = curr
    return BandedAlignment(score=best, q_end=best_q, d_end=best_d)
