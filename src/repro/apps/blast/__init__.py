"""The NCBI-BLAST-derived streaming pipeline (Section 6.1).

- :func:`~repro.apps.blast.pipeline.blast_pipeline` — the paper's Table 1
  pipeline (service times measured on a GTX 2080 in the MERCATOR
  implementation; we take them as constants, exactly as the paper's own
  simulation study did).
- :mod:`~repro.apps.blast.sequence` / :mod:`~repro.apps.blast.seeding` /
  :mod:`~repro.apps.blast.extension` — a from-scratch mini-BLAST
  (synthetic DNA, k-mer seeding, ungapped X-drop extension) whose measured
  per-stage gains provide an independent, genuinely data-driven gain trace
  (:mod:`~repro.apps.blast.trace_gains`).
"""

from repro.apps.blast.pipeline import (
    CALIBRATED_B,
    EXPANDER_LIMIT,
    PAPER_GAINS,
    PAPER_SERVICE_TIMES,
    VECTOR_WIDTH,
    blast_pipeline,
)
from repro.apps.blast.sequence import mutate, plant_homologies, random_dna
from repro.apps.blast.seeding import KmerIndex
from repro.apps.blast.extension import ungapped_extend
from repro.apps.blast.alignment import BandedAlignment, banded_smith_waterman
from repro.apps.blast.trace_gains import (
    BlastGainTrace,
    measure_gains,
    empirical_blast_pipeline,
)

__all__ = [
    "blast_pipeline",
    "PAPER_SERVICE_TIMES",
    "PAPER_GAINS",
    "CALIBRATED_B",
    "EXPANDER_LIMIT",
    "VECTOR_WIDTH",
    "random_dna",
    "mutate",
    "plant_homologies",
    "KmerIndex",
    "ungapped_extend",
    "BandedAlignment",
    "banded_smith_waterman",
    "BlastGainTrace",
    "measure_gains",
    "empirical_blast_pipeline",
]
