"""Measure per-stage gains by actually running mini-BLAST.

The paper took Table 1's gains from the MERCATOR implementation on a real
genome comparison.  We cannot rerun that, but we *can* run our from-scratch
mini-BLAST on synthetic sequences with planted homologies and record, for
every item entering each stage, how many outputs it produced — yielding
empirical gain distributions (ablation A3 in DESIGN.md) with the same
pipeline structure:

- stage 0 (filter): window -> window if it contains any seed;
- stage 1 (expander): hit window -> its individual seed matches, censored
  at the paper's limit u;
- stage 2 (filter): seed match -> passing ungapped extension;
- stage 3 (report): passing extension -> one report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.blast.extension import ungapped_extend
from repro.apps.blast.pipeline import (
    EXPANDER_LIMIT,
    PAPER_SERVICE_TIMES,
    VECTOR_WIDTH,
)
from repro.apps.blast.seeding import KmerIndex
from repro.apps.blast.sequence import plant_homologies, random_dna
from repro.dataflow.gains import EmpiricalGain
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.errors import SpecError

__all__ = ["BlastGainTrace", "measure_gains", "empirical_blast_pipeline"]


@dataclass
class BlastGainTrace:
    """Per-item output counts observed at each stage."""

    stage_counts: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    k: int
    window: int
    score_threshold: int

    @property
    def mean_gains(self) -> np.ndarray:
        """Observed average gain per stage."""
        return np.asarray(
            [float(np.mean(c)) if c.size else 0.0 for c in self.stage_counts]
        )

    def distributions(self) -> list[EmpiricalGain]:
        """Empirical gain distributions, one per stage with observations."""
        out = []
        for i, counts in enumerate(self.stage_counts):
            if counts.size == 0:
                raise SpecError(
                    f"stage {i} saw no items; enlarge the workload"
                )
            out.append(EmpiricalGain(counts))
        return out


def measure_gains(
    *,
    query_len: int = 2048,
    db_len: int = 200_000,
    n_homologies: int = 60,
    k: int = 10,
    window: int = 32,
    score_threshold: int = 24,
    xdrop: int = 12,
    expander_limit: int = EXPANDER_LIMIT,
    mutation_rate: float = 0.05,
    gapped_threshold: int | None = None,
    seed: int = 0,
) -> BlastGainTrace:
    """Run mini-BLAST over a synthetic comparison and record stage gains.

    The database is tiled into consecutive ``window``-base items (the
    stream); seeds are found with a ``k``-mer index; extensions are
    ungapped X-drop with a +1/-2 scheme.

    With ``gapped_threshold`` set, stage 3 performs banded Smith-Waterman
    around each passing extension's diagonal and reports only alignments
    scoring at least the threshold (real BLAST's gapped-verification
    behaviour); by default stage 3 reports every passing extension,
    matching the paper's "gain N/A" final stage.
    """
    rng = np.random.default_rng(seed)
    query = random_dna(query_len, rng)
    database = random_dna(db_len, rng)
    database = plant_homologies(
        database,
        query,
        n_homologies,
        rng,
        fragment_len=min(64, query_len),
        mutation_rate=mutation_rate,
    )
    index = KmerIndex(query, k)

    s0: list[int] = []
    s1: list[int] = []
    s2: list[int] = []
    s3: list[int] = []
    for start in range(0, db_len - window + 1, window):
        seeds = index.window_seeds(database, start, window)
        s0.append(1 if seeds else 0)
        if not seeds:
            continue
        kept = seeds[:expander_limit]
        s1.append(len(kept))
        for qpos, dpos in kept:
            ext = ungapped_extend(
                query, database, qpos, dpos, k, xdrop=xdrop
            )
            passed = 1 if ext.score >= score_threshold else 0
            s2.append(passed)
            if passed:
                if gapped_threshold is None:
                    s3.append(1)
                else:
                    from repro.apps.blast.alignment import (
                        banded_smith_waterman,
                    )

                    aln = banded_smith_waterman(
                        query, database, dpos - qpos
                    )
                    s3.append(1 if aln.score >= gapped_threshold else 0)
    return BlastGainTrace(
        stage_counts=(
            np.asarray(s0, dtype=np.int64),
            np.asarray(s1, dtype=np.int64),
            np.asarray(s2, dtype=np.int64),
            np.asarray(s3, dtype=np.int64),
        ),
        k=k,
        window=window,
        score_threshold=score_threshold,
    )


def empirical_blast_pipeline(
    trace: BlastGainTrace,
    *,
    service_times: tuple[float, ...] = PAPER_SERVICE_TIMES,
    vector_width: int = VECTOR_WIDTH,
) -> PipelineSpec:
    """A BLAST pipeline whose gains are the measured distributions.

    Service times stay at the paper's Table 1 values — we have no way to
    measure GPU cycles, and the optimizations only need the (t_i, gain)
    pairs.
    """
    dists = trace.distributions()
    names = ("seed_filter", "seed_expand", "extend_filter", "report")
    if len(service_times) != 4:
        raise SpecError("expected 4 service times for the BLAST pipeline")
    nodes = tuple(
        NodeSpec(names[i], float(service_times[i]), dists[i])
        for i in range(4)
    )
    return PipelineSpec(nodes, vector_width)
