"""The paper's Table 1 BLAST pipeline.

| node | t_i (cycles) | g_i    | stochastic model             |
|------|--------------|--------|------------------------------|
| 0    | 287          | 0.379  | Bernoulli(g)                 |
| 1    | 955          | 1.920  | Poisson(g) censored at u=16  |
| 2    | 402          | 0.0332 | Bernoulli(g)                 |
| 3    | 2753         | n/a    | pass-through (outputs exit)  |

Vector width v = 128 (the MERCATOR configuration).  Service times were
measured on an NVidia GTX 2080 on a human-genome vs 64-kb-query
comparison; as in the paper's own evaluation, they enter our study as
constants of the simulated device.

The paper's prose attributes the Poisson model to "node 2", but Table 1
and the description of "stage 1" (expansion factor up to u = 16, gain
1.92 > 1) identify node 1 as the expander; we follow Table 1.

``CALIBRATED_B = (1, 3, 9, 6)`` is the paper's empirically calibrated
worst-case multiplier vector for the enforced-waits strategy (Section
6.2); the monolithic strategy needed no inflation (b = 1, S = 1).
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.gains import BernoulliGain, CensoredPoissonGain
from repro.dataflow.spec import NodeSpec, PipelineSpec

__all__ = [
    "PAPER_SERVICE_TIMES",
    "PAPER_GAINS",
    "CALIBRATED_B",
    "EXPANDER_LIMIT",
    "VECTOR_WIDTH",
    "blast_pipeline",
]

#: Table 1 service times, in device cycles.
PAPER_SERVICE_TIMES: tuple[float, ...] = (287.0, 955.0, 402.0, 2753.0)

#: Table 1 average gains; the final stage's gain does not affect the
#: optimizations (its outputs leave the pipeline) and is modelled as 1.
PAPER_GAINS: tuple[float, ...] = (0.379, 1.920, 0.0332, 1.0)

#: The expander's censoring limit u (Section 6.1).
EXPANDER_LIMIT: int = 16

#: SIMD vector width v of the MERCATOR implementation.
VECTOR_WIDTH: int = 128

#: Paper-calibrated worst-case multipliers for enforced waits.
CALIBRATED_B: tuple[float, ...] = (1.0, 3.0, 9.0, 6.0)

_STAGE_NAMES = ("seed_filter", "seed_expand", "extend_filter", "report")


def blast_pipeline(
    *,
    vector_width: int = VECTOR_WIDTH,
    expander_limit: int = EXPANDER_LIMIT,
) -> PipelineSpec:
    """The Table 1 pipeline with the paper's stochastic gain models."""
    t = PAPER_SERVICE_TIMES
    g = PAPER_GAINS
    nodes = (
        NodeSpec(_STAGE_NAMES[0], t[0], BernoulliGain(g[0])),
        NodeSpec(
            _STAGE_NAMES[1], t[1], CensoredPoissonGain(g[1], expander_limit)
        ),
        NodeSpec(_STAGE_NAMES[2], t[2], BernoulliGain(g[2])),
        NodeSpec(_STAGE_NAMES[3], t[3], BernoulliGain(1.0)),
    )
    return PipelineSpec(nodes, vector_width)


def calibrated_b() -> np.ndarray:
    """The paper's calibrated ``b`` vector as an array."""
    return np.asarray(CALIBRATED_B, dtype=float)
