"""The DES event loop and virtual clock."""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable

from repro.des.events import Event, EventHandle
from repro.errors import SimulationError

__all__ = ["Engine"]


class _HeapQueue:
    """Binary-heap event queue (the default)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        return self._heap[0]

    def clear(self) -> None:
        self._heap.clear()

    def __iter__(self):
        return iter(self._heap)


class Engine:
    """Discrete-event simulation engine.

    The engine owns a virtual clock (``now``) and an event queue — a
    binary heap by default, or a calendar queue
    (:class:`~repro.des.calendar_queue.CalendarQueue`) with
    ``Engine(queue="calendar")`` for O(1)-amortized operation at large
    event populations.  Callbacks scheduled with :meth:`schedule` run in
    nondecreasing time order; ties break by ``priority`` then scheduling
    order, so execution is fully deterministic (and identical across
    queue implementations).

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [5.0]
    """

    def __init__(self, *, queue: str = "heap") -> None:
        self._now = 0.0
        if queue == "heap":
            self._queue: Any = _HeapQueue()
        elif queue == "calendar":
            from repro.des.calendar_queue import CalendarQueue

            self._queue = CalendarQueue()
        else:
            raise SimulationError(
                f"queue must be 'heap' or 'calendar', got {queue!r}"
            )
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._wall_time = 0.0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far."""
        return self._events_processed

    @property
    def wall_time(self) -> float:
        """Wall-clock seconds spent inside :meth:`run` so far."""
        return self._wall_time

    def schedule(
        self,
        time: float,
        fn: Callable[[], Any],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn`` to run at virtual time ``time``.

        ``time`` must not precede the current clock (no time travel).
        Returns a handle usable to cancel the event.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at time NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time=time, priority=priority, seq=self._seq, fn=fn)
        self._seq += 1
        self._queue.push(event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: float,
        fn: Callable[[], Any],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` time units from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, fn, priority=priority)

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while len(self._queue):
            event = self._queue.pop()
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn()
            return True
        return False

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is advanced to ``until``.  ``None`` runs to exhaustion.
        max_events:
            Safety valve: raise :class:`SimulationError` after this many
            callbacks (guards against runaway self-scheduling processes).
        """
        if self._running:
            raise SimulationError("Engine.run is not reentrant")
        self._running = True
        budget = math.inf if max_events is None else max_events
        wall_start = time.perf_counter()
        # The loop body is inlined (rather than delegating to step(),
        # which would re-scan past cancelled events) and hoists the
        # queue's bound methods: this loop is the simulator's innermost
        # hot path.
        queue = self._queue
        peek = queue.peek
        pop = queue.pop
        try:
            while len(queue):
                top = peek()
                if top.cancelled:
                    pop()
                    continue
                if until is not None and top.time > until:
                    break
                if self._events_processed >= budget:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at t={self._now}"
                    )
                pop()
                self._now = top.time
                self._events_processed += 1
                top.fn()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._wall_time += time.perf_counter() - wall_start
            self._running = False

    def clear(self) -> None:
        """Cancel all pending events (the clock is left unchanged)."""
        for event in self._queue:
            event.cancelled = True
        self._queue.clear()
