"""Reproducible named random streams.

Every stochastic component of a simulation (each node's gain draws, the
arrival process, ...) pulls from its own named stream derived from one root
seed via :class:`numpy.random.SeedSequence`.  Adding or removing a consumer
therefore never perturbs the draws seen by other consumers, which keeps
regression tests meaningful.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngRegistry"]


def _stable_key(name: str) -> list[int]:
    """Map a stream name to a deterministic integer key sequence.

    ``hash(str)`` is salted per-process, so we fold the UTF-8 bytes instead.
    """
    data = name.encode("utf-8")
    # Split into 4-byte little-endian words; pad the tail.
    words = [
        int.from_bytes(data[i : i + 4].ljust(4, b"\0"), "little")
        for i in range(0, max(len(data), 1), 4)
    ]
    words.append(len(data))
    return words


class RngRegistry:
    """Factory of named :class:`numpy.random.Generator` streams.

    Example
    -------
    >>> reg = RngRegistry(seed=42)
    >>> g1 = reg.stream("node0.gain")
    >>> g2 = reg.stream("node1.gain")
    >>> reg2 = RngRegistry(seed=42)
    >>> bool((g1.random(4) == reg2.stream("node0.gain").random(4)).all())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object
        (so draws continue, not restart).
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, *_stable_key(name)])
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *restarted* generator for ``name`` (same initial state)."""
        self._streams.pop(name, None)
        return self.stream(name)

    @property
    def names(self) -> list[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)
