"""Discrete-event simulation (DES) kernel.

A small, dependency-free event-driven simulation engine:

- :class:`~repro.des.engine.Engine` — the virtual clock and event loop.
- :class:`~repro.des.events.Event` — a scheduled callback with priority.
- :class:`~repro.des.process.Process` — a periodic/stateful actor helper.
- :class:`~repro.des.rng.RngRegistry` — named, reproducible random streams.
- :mod:`~repro.des.monitors` — time-series and counter statistics.
- :mod:`~repro.des.trace` — optional structured execution traces.

The engine is deliberately minimal: the pipeline simulators in
:mod:`repro.sim` build the paper's execution model (Section 2) on top of it.
"""

from repro.des.engine import Engine
from repro.des.events import Event, EventHandle
from repro.des.process import PeriodicProcess, Process
from repro.des.rng import RngRegistry
from repro.des.monitors import Accumulator, Counter, TimeWeighted
from repro.des.trace import TraceRecorder, TraceRecord

__all__ = [
    "Engine",
    "Event",
    "EventHandle",
    "Process",
    "PeriodicProcess",
    "RngRegistry",
    "Accumulator",
    "Counter",
    "TimeWeighted",
    "TraceRecorder",
    "TraceRecord",
]
