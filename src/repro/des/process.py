"""Process helpers layered on the DES engine.

A :class:`Process` is a stateful actor bound to an engine.  The most
important subclass here is :class:`PeriodicProcess`, which models the
paper's node behaviour: an action repeated with a fixed period (service
time plus enforced wait), optionally with a start offset.
"""

from __future__ import annotations

from typing import Callable

from repro.des.engine import Engine
from repro.des.events import EventHandle
from repro.errors import SimulationError

__all__ = ["Process", "PeriodicProcess"]


class Process:
    """Base class for engine-bound actors with a name and lifecycle."""

    def __init__(self, engine: Engine, name: str) -> None:
        self.engine = engine
        self.name = name
        self._started = False
        self._stopped = False

    @property
    def started(self) -> bool:
        return self._started

    @property
    def stopped(self) -> bool:
        return self._stopped

    def start(self) -> None:
        """Begin operation; idempotence is an error (call exactly once)."""
        if self._started:
            raise SimulationError(f"process {self.name!r} already started")
        self._started = True
        self._on_start()

    def stop(self) -> None:
        """Cease scheduling further work (safe to call more than once)."""
        self._stopped = True
        self._on_stop()

    def _on_start(self) -> None:  # pragma: no cover - overridden
        pass

    def _on_stop(self) -> None:
        pass


class PeriodicProcess(Process):
    """Invoke ``action`` every ``period`` time units, starting at ``offset``.

    The action receives the invocation index (0, 1, 2, ...).  The period may
    be changed between invocations via :attr:`period`; the new value applies
    from the next rescheduling, which supports adaptive-wait extensions.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        period: float,
        action: Callable[[int], None],
        *,
        offset: float = 0.0,
        priority: int = 0,
    ) -> None:
        super().__init__(engine, name)
        if period <= 0:
            raise SimulationError(
                f"period for {name!r} must be positive, got {period}"
            )
        if offset < 0:
            raise SimulationError(
                f"offset for {name!r} must be >= 0, got {offset}"
            )
        self.period = period
        self.offset = offset
        self.priority = priority
        self._action = action
        self._count = 0
        self._handle: EventHandle | None = None

    @property
    def invocations(self) -> int:
        """Number of completed action invocations."""
        return self._count

    def _on_start(self) -> None:
        self._handle = self.engine.schedule_after(
            self.offset, self._fire, priority=self.priority
        )

    def _on_stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if self._stopped:
            return
        index = self._count
        self._count += 1
        self._action(index)
        if not self._stopped:
            self._handle = self.engine.schedule_after(
                self.period, self._fire, priority=self.priority
            )
