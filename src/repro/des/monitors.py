"""Statistics monitors for simulations.

Four collector types cover what the pipeline simulators need:

- :class:`Counter` — monotone event counts (items produced, misses, ...).
- :class:`Accumulator` — scalar samples with mean/variance/extremes
  (per-item latencies, occupancy per firing, ...), using Welford's online
  algorithm so memory stays O(1) unless sample retention is requested.
- :class:`TimeWeighted` — a piecewise-constant signal integrated over time
  (queue length, number of active nodes), for time-average statistics.
- :class:`Ewma` — an exponentially weighted moving average of a sampled
  signal (deadline slack of exiting items), for trend detection by the
  degraded-mode watchdog (:mod:`repro.resilience.watchdog`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Counter", "Accumulator", "TimeWeighted", "Ewma"]


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "_count")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"Counter {self.name!r} cannot decrease (by={by})")
        self._count += by

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, count={self._count})"


class Accumulator:
    """Online mean/variance/min/max of scalar samples (Welford).

    With ``keep_samples=True`` all samples are also retained for quantile
    queries; the pipeline simulators enable this only for latency audits.
    """

    def __init__(self, name: str, *, keep_samples: bool = False) -> None:
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: list[float] | None = [] if keep_samples else None
        self._sorted: list[float] | None = None  # cache; invalidated by add()

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Sample (n-1 denominator) variance."""
        if self._n < 2:
            return math.nan
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    @property
    def min(self) -> float:
        return self._min if self._n else math.nan

    @property
    def max(self) -> float:
        return self._max if self._n else math.nan

    @property
    def total(self) -> float:
        return self._mean * self._n

    def add(self, x: float) -> None:
        """Record one sample."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        if self._samples is not None:
            self._samples.append(x)
            self._sorted = None

    def add_many(self, values) -> None:
        """Record a batch of samples, bit-identical to repeated :meth:`add`.

        The Welford mean/M2 recurrence is order-dependent, so the batch
        path keeps the exact per-sample update sequence (with hoisted
        locals, which is several times faster than calling :meth:`add`
        per element); min/max are order-independent and use vectorized
        reductions.  Callers on the simulator hot path (the latency
        ledger) rely on this equivalence for seed-for-seed reproducibility
        against the per-item reference implementation.
        """
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        xs = arr.tolist()
        n = self._n
        mean = self._mean
        m2 = self._m2
        for x in xs:
            n += 1
            delta = x - mean
            mean += delta / n
            m2 += delta * (x - mean)
        self._n = n
        self._mean = mean
        self._m2 = m2
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self._min:
            self._min = lo
        if hi > self._max:
            self._max = hi
        if self._samples is not None:
            self._samples.extend(xs)
            self._sorted = None

    def quantile(self, q: float) -> float:
        """Empirical quantile; requires ``keep_samples=True``."""
        if self._samples is None:
            raise ValueError(
                f"Accumulator {self.name!r} was created without keep_samples"
            )
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        if not self._samples:
            return math.nan
        # Sorting the full sample list on every call makes repeated
        # quantile queries O(n log n) each; cache the sorted view and
        # rebuild it only after new samples arrive.
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        data = self._sorted
        idx = q * (len(data) - 1)
        lo = int(math.floor(idx))
        hi = int(math.ceil(idx))
        if lo == hi:
            return data[lo]
        frac = idx - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def __repr__(self) -> str:
        return (
            f"Accumulator({self.name!r}, n={self._n}, mean={self.mean:.6g})"
        )


class Ewma:
    """Exponentially weighted moving average of scalar samples.

    ``value`` after k samples is ``(1-alpha)*value + alpha*x_k``, seeded
    with the first sample (so a single observation is reported exactly,
    without a warm-up bias toward zero).  Smaller ``alpha`` smooths
    harder; the degraded-mode watchdog uses this to detect *sustained*
    slack erosion without reacting to a single late item.
    """

    __slots__ = ("name", "alpha", "_value", "_n")

    def __init__(self, name: str, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(
                f"Ewma {name!r}: alpha must be in (0, 1], got {alpha}"
            )
        self.name = name
        self.alpha = alpha
        self._value = math.nan
        self._n = 0

    @property
    def n(self) -> int:
        return self._n

    @property
    def value(self) -> float:
        """Current average; NaN before the first sample."""
        return self._value

    def add(self, x: float) -> float:
        """Fold in one sample and return the updated average."""
        if self._n == 0:
            self._value = float(x)
        else:
            self._value += self.alpha * (float(x) - self._value)
        self._n += 1
        return self._value

    def __repr__(self) -> str:
        return f"Ewma({self.name!r}, alpha={self.alpha}, value={self._value:.6g})"


class TimeWeighted:
    """Integrate a piecewise-constant signal over virtual time.

    Call :meth:`update` whenever the signal changes; the previous value is
    weighted by the elapsed interval.  :meth:`time_average` closes the
    current interval at the query time.
    """

    def __init__(self, name: str, *, initial: float = 0.0, t0: float = 0.0) -> None:
        self.name = name
        self._value = initial
        self._last_t = t0
        self._area = 0.0
        self._t0 = t0
        self._max = initial

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max

    def update(self, t: float, value: float) -> None:
        """Set the signal to ``value`` at time ``t`` (t must not go backwards)."""
        if t < self._last_t:
            raise ValueError(
                f"TimeWeighted {self.name!r}: time moved backwards "
                f"({t} < {self._last_t})"
            )
        self._area += self._value * (t - self._last_t)
        self._last_t = t
        self._value = value
        if value > self._max:
            self._max = value

    def time_average(self, t: float) -> float:
        """Time-average of the signal over [t0, t]."""
        if t < self._last_t:
            raise ValueError("query time precedes last update")
        span = t - self._t0
        if span <= 0:
            return math.nan
        area = self._area + self._value * (t - self._last_t)
        return area / span

    def __repr__(self) -> str:
        return f"TimeWeighted({self.name!r}, value={self._value})"
