"""Optional structured execution traces.

A :class:`TraceRecorder` collects typed records (node firings, item moves,
deadline misses) during a simulation.  Tracing is off by default because it
costs memory proportional to event count; tests and debugging enable it to
assert fine-grained ordering properties of the execution model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: time, event kind, subject, and free-form detail."""

    time: float
    kind: str
    subject: str
    detail: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceRecord` entries with optional kind filtering."""

    def __init__(self, *, kinds: set[str] | None = None, capacity: int | None = None) -> None:
        self._records: list[TraceRecord] = []
        self._kinds = kinds
        self._capacity = capacity

    def record(self, time: float, kind: str, subject: str, **detail: Any) -> None:
        """Append a record unless filtered out or over capacity."""
        if self._kinds is not None and kind not in self._kinds:
            return
        if self._capacity is not None and len(self._records) >= self._capacity:
            return
        self._records.append(TraceRecord(time, kind, subject, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self._records if r.kind == kind]

    def clear(self) -> None:
        self._records.clear()
