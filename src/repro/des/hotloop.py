"""Backend-dispatched primitives of the DES/kernel hot loops.

Three small kernels carry most of the per-event work of the
enforced-waits simulator and the runtime app kernels:

- :func:`firing_schedule` — a node's firing-start and completion times.
  Under idealized timing the event loop computes the strict recurrence
  ``c_k = f_k + t``, ``f_{k+1} = c_k + w`` one float add at a time;
  ``np.add.accumulate`` over the interleaved step array ``[f0, t, w, t,
  w, ...]`` performs *the same adds in the same order*, so the arrays
  are bit-identical to the loop — not merely close.
- :func:`consumed_scan` — cumulative items consumed by a width-``v``
  node given how many inputs are available at each firing.  The queue
  recurrence ``C_k = C_{k-1} + min(v, A_k - C_{k-1})`` has the closed
  form ``C_k = min(v*(k+1), v*k + min_{j<=k}(A_j - v*j))`` (a Lindley
  recursion), evaluated with one ``np.minimum.accumulate`` in exact
  int64 arithmetic.
- :func:`ragged_gather` — gather variable-length segments
  ``flat[offsets[i]:offsets[i+1]]`` for a batch of indices (the runtime
  pair-expansion kernels' inner loop).

Each primitive has a NumPy implementation and, when the active
:mod:`repro.simd.backend` is ``numba``, a JIT-compiled twin performing
the identical arithmetic (sequential adds, exact integer scans) so
results never depend on the backend.  A numba import/compile failure
demotes the backend to ``vector`` and keeps going.
"""

from __future__ import annotations

import numpy as np

from repro.simd.backend import demote_backend, get_backend

__all__ = ["firing_schedule", "consumed_scan", "ragged_gather"]


# -- NumPy implementations ---------------------------------------------------


def _firing_schedule_np(
    f0: float, t: float, w: float, k: int
) -> tuple[np.ndarray, np.ndarray]:
    steps = np.empty(2 * k, dtype=np.float64)
    steps[0] = f0
    steps[1::2] = t
    steps[2::2] = w
    acc = np.add.accumulate(steps)
    return np.ascontiguousarray(acc[0::2]), np.ascontiguousarray(acc[1::2])


def _consumed_scan_np(avail: np.ndarray, v: int) -> np.ndarray:
    k = avail.shape[0]
    idx = np.arange(k, dtype=np.int64)
    slack = np.minimum.accumulate(avail - v * idx)
    return np.minimum(v * (idx + 1), v * idx + slack)


def _gather_positions_np(begins: np.ndarray, counts: np.ndarray) -> np.ndarray:
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - seg_starts + np.repeat(
        begins, counts
    )


# -- numba twins -------------------------------------------------------------

_numba_impls: dict | None = None


def _build_numba() -> dict:
    import numba  # deferred: optional dependency

    @numba.njit(cache=False)
    def firing_schedule_nb(f0, t, w, k):  # pragma: no cover — needs numba
        fires = np.empty(k, dtype=np.float64)
        comps = np.empty(k, dtype=np.float64)
        f = f0
        for i in range(k):
            fires[i] = f
            c = f + t
            comps[i] = c
            f = c + w
        return fires, comps

    @numba.njit(cache=False)
    def consumed_scan_nb(avail, v):  # pragma: no cover — needs numba
        k = avail.shape[0]
        out = np.empty(k, dtype=np.int64)
        c = np.int64(0)
        for i in range(k):
            take = avail[i] - c
            if take > v:
                take = v
            if take < 0:
                take = 0
            c += take
            out[i] = c
        return out

    @numba.njit(cache=False)
    def gather_positions_nb(begins, counts):  # pragma: no cover — needs numba
        total = np.int64(0)
        for i in range(counts.shape[0]):
            total += counts[i]
        pos = np.empty(total, dtype=np.int64)
        o = 0
        for i in range(counts.shape[0]):
            b = begins[i]
            for j in range(counts[i]):
                pos[o] = b + j
                o += 1
        return pos

    # Warm the compile on trivial inputs so a compilation failure
    # surfaces here (where the caller can demote) and not mid-run.
    firing_schedule_nb(0.0, 1.0, 1.0, 1)
    consumed_scan_nb(np.zeros(1, dtype=np.int64), 1)
    gather_positions_nb(np.zeros(1, dtype=np.int64), np.ones(1, dtype=np.int64))
    return {
        "firing_schedule": firing_schedule_nb,
        "consumed_scan": consumed_scan_nb,
        "gather_positions": gather_positions_nb,
    }


def _impls() -> dict | None:
    """The numba kernel table when the numba backend is active, else None."""
    global _numba_impls
    if not get_backend().compiled:
        return None
    if _numba_impls is None:
        try:
            _numba_impls = _build_numba()
        except Exception as exc:  # pragma: no cover — needs broken numba
            demote_backend(f"numba kernel compilation failed: {exc!r}")
            return None
    return _numba_impls


# -- public dispatchers ------------------------------------------------------


def firing_schedule(
    f0: float, t: float, w: float, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """First ``k`` firing starts and completions of one node.

    ``fires[0] = f0``; ``comps[i] = fires[i] + t``;
    ``fires[i+1] = comps[i] + w``.  Bit-identical to the event loop's
    one-add-at-a-time recurrence (see module docstring).
    """
    if k <= 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy()
    nb = _impls()
    if nb is not None:
        return nb["firing_schedule"](float(f0), float(t), float(w), int(k))
    return _firing_schedule_np(float(f0), float(t), float(w), int(k))


def consumed_scan(avail: np.ndarray, v: int) -> np.ndarray:
    """Cumulative consumption ``C_k`` of a width-``v`` node.

    ``avail[k]`` is the number of inputs that have *ever* been available
    by firing ``k`` (a nondecreasing int64 array); the node pops
    ``min(v, avail[k] - C_{k-1})`` at each firing.
    """
    avail = np.ascontiguousarray(avail, dtype=np.int64)
    if avail.size == 0:
        return np.empty(0, dtype=np.int64)
    nb = _impls()
    if nb is not None:
        return nb["consumed_scan"](avail, np.int64(v))
    return _consumed_scan_np(avail, int(v))


def ragged_gather(
    offsets: np.ndarray, flat: np.ndarray, idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather segments ``flat[offsets[i]:offsets[i+1]]`` for ``i`` in ``idx``.

    Returns ``(counts, owners, values)``: per-index segment lengths, the
    index repeated per element, and the concatenated segment values —
    the vectorized form of the append-per-item loop the runtime
    pair-expansion kernels previously ran.
    """
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    idx = np.ascontiguousarray(idx, dtype=np.int64)
    begins = offsets[idx]
    counts = offsets[idx + 1] - begins
    owners = np.repeat(idx, counts)
    nb = _impls()
    if nb is not None:
        pos = nb["gather_positions"](begins, counts)
    else:
        pos = _gather_positions_np(begins, counts)
    values = np.asarray(flat)[pos]
    return counts, owners, values
