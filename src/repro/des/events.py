"""Event objects for the DES engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same
time with the same priority fire in scheduling order, which is essential for
reproducible simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventHandle"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    priority:
        Tie-breaker at equal time; lower fires first.  The pipeline
        simulators use priorities to guarantee, e.g., that item arrivals at
        time ``t`` are enqueued before a node firing at the same ``t``
        inspects its queue.
    seq:
        Monotonic sequence number assigned by the engine; makes ordering
        total.
    fn:
        Zero-argument callable invoked when the event fires.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; allows cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This is O(1) and is the standard approach for binary-heap event
    queues.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True
