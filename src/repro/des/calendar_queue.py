"""Calendar queue: an O(1)-amortized event queue for DES engines.

The classic structure of R. Brown (CACM 1988): events are hashed into
time buckets ("days") of width ``delta``; dequeue scans forward from the
current day, wrapping across the "year" (the bucket array).  When the
event population drifts outside a band, the calendar resizes and
re-buckets, keeping enqueue/dequeue O(1) amortized for the
quasi-stationary event horizons typical of simulations — versus the
binary heap's O(log n).

Implementation note: the dequeue cursor is an *integer day index* and an
event belongs to day ``int(time / width)`` — the same function used for
bucketing — so day membership is exact.  (A float ``day_start``
accumulated by repeated addition drifts away from the bucket boundaries
and can skip an event sitting exactly on one.)

For the modest event counts of this package's pipelines the heap is
plenty fast; the calendar queue exists as the scalable substrate (and is
property-tested to order exactly like the heap).  Select it with
``Engine(queue="calendar")``.
"""

from __future__ import annotations

from repro.des.events import Event

__all__ = ["CalendarQueue"]


class CalendarQueue:
    """Priority queue of :class:`Event` ordered by (time, priority, seq).

    API mirrors the subset of heapq usage in :class:`~repro.des.engine.Engine`:
    ``push(event)``, ``pop() -> Event``, ``peek() -> Event``, ``__len__``,
    ``__iter__``, ``clear()``.  Cancelled events are the caller's concern
    (as with the heap, they are skipped at pop time by the engine).
    """

    def __init__(
        self,
        *,
        n_buckets: int = 16,
        bucket_width: float = 1.0,
        min_buckets: int = 4,
    ) -> None:
        if n_buckets < 1 or bucket_width <= 0 or min_buckets < 1:
            raise ValueError("invalid calendar geometry")
        self._min_buckets = min_buckets
        self._size = 0
        self._init_calendar(n_buckets, bucket_width, start_day=0)

    def _init_calendar(
        self, n_buckets: int, width: float, start_day: int
    ) -> None:
        self._n = n_buckets
        self._width = width
        self._buckets: list[list[Event]] = [[] for _ in range(n_buckets)]
        self._cursor_day = start_day  # integer day index

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        for bucket in self._buckets:
            yield from bucket

    def _day_of(self, time: float) -> int:
        return int(time / self._width)

    @staticmethod
    def _key(e: Event) -> tuple[float, int, int]:
        return (e.time, e.priority, e.seq)

    def push(self, event: Event) -> None:
        day = self._day_of(event.time)
        if day < self._cursor_day:
            # An event earlier than the current day (a resize may have
            # advanced the cursor to the then-minimum event): rewind so
            # the forward scan cannot skip it.  DES engines never push
            # into the past, so this stays off the hot path.
            self._cursor_day = day
        self._buckets[day % self._n].append(event)
        self._size += 1
        if self._size > 2 * self._n and self._n < 1 << 20:
            self._resize(2 * self._n)

    def _resize(self, n_buckets: int) -> None:
        events = [e for bucket in self._buckets for e in bucket]
        if events:
            # Re-derive the width from the current population spread so
            # events distribute across the year.  A zero-span population
            # (all queued events at one timestamp) carries no spread
            # information: keep the current width rather than collapsing
            # to a degenerate sliver, which would scatter later events
            # billions of days past the cursor and degrade every
            # subsequent pop to the full-scan fallback.
            times = sorted(e.time for e in events)
            span = times[-1] - times[0]
            if span > 0:
                width = max(span / len(events), 1e-9)
            else:
                width = self._width
            start_day = int(times[0] / width)
        else:
            width = self._width
            start_day = self._cursor_day
        self._init_calendar(
            max(n_buckets, self._min_buckets), width, start_day
        )
        for e in events:
            self._buckets[self._day_of(e.time) % self._n].append(e)

    def _min_event(self) -> Event:
        """Full scan fallback (used when a year passes without a hit)."""
        best: Event | None = None
        for bucket in self._buckets:
            for e in bucket:
                if best is None or self._key(e) < self._key(best):
                    best = e
        assert best is not None
        return best

    def _scan(self) -> tuple[Event, int] | None:
        """Next event within one year of the cursor, with its day."""
        day = self._cursor_day
        for _ in range(self._n):
            bucket = self._buckets[day % self._n]
            candidates = [e for e in bucket if self._day_of(e.time) == day]
            if candidates:
                return min(candidates, key=self._key), day
            day += 1
        return None

    def peek(self) -> Event:
        if self._size == 0:
            raise IndexError("peek from empty CalendarQueue")
        found = self._scan()
        return found[0] if found is not None else self._min_event()

    def pop(self) -> Event:
        if self._size == 0:
            raise IndexError("pop from empty CalendarQueue")
        found = self._scan()
        if found is not None:
            event, day = found
        else:
            event = self._min_event()
            day = self._day_of(event.time)
        self._buckets[self._day_of(event.time) % self._n].remove(event)
        self._size -= 1
        self._cursor_day = day
        return event

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0
