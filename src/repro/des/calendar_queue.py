"""Calendar queue: an O(1)-amortized event queue for DES engines.

The classic structure of R. Brown (CACM 1988): events are hashed into
time buckets ("days") of width ``delta``; dequeue scans forward from the
current day, wrapping across the "year" (the bucket array).  When the
event population drifts outside a band, the calendar resizes and
re-buckets, keeping enqueue/dequeue O(1) amortized for the
quasi-stationary event horizons typical of simulations — versus the
binary heap's O(log n).

Implementation notes
--------------------
- The dequeue cursor is an *integer day index* and an event belongs to
  day ``int(time / width)`` — the same function used for bucketing — so
  day membership is exact.  (A float ``day_start`` accumulated by
  repeated addition drifts away from the bucket boundaries and can skip
  an event sitting exactly on one.)
- Buckets are kept **sorted** (:class:`~repro.des.events.Event` carries
  its own ``(time, priority, seq)`` ordering), pushed with
  ``bisect.insort``.  That turns the per-day probe into an O(1) head
  check — the historical implementation re-filtered and re-minimized
  whole buckets on *every* probe, which is what collapsed its
  throughput to ~3.5x below the heap on the engine benchmark — and the
  one-year-miss fallback into a min over bucket heads instead of a min
  over every queued event.
- The scan's head check ``day_of(bucket[0]) == day`` is sound: events
  of an earlier day aliasing to the same bucket would have to sit a
  whole year (``n`` days) behind the scan, which the cursor invariant
  (push rewinds the cursor to any earlier day) excludes from the scan's
  one-year window, so the events of the probed day — if any — are
  exactly a prefix of the sorted bucket.
- ``peek`` memoizes the bucket it found; the engine's peek→pop idiom
  then pops in O(1) without rescanning.  The hint is invalidated by
  any intervening push/resize/clear.
- The calendar resizes both ways with hysteresis — grow at
  ``size > 2n``, shrink at ``size < n/2`` (never below
  ``min_buckets``) — so a drained queue stops paying empty-bucket scan
  costs.  The historical version only ever grew.
"""

from __future__ import annotations

from bisect import insort

from repro.des.events import Event

__all__ = ["CalendarQueue"]

#: Bucket-count ceiling: beyond this, growth stops (scan cost is already
#: amortized; unbounded growth would just burn memory).
_MAX_BUCKETS = 1 << 20


class CalendarQueue:
    """Priority queue of :class:`Event` ordered by (time, priority, seq).

    API mirrors the subset of heapq usage in :class:`~repro.des.engine.Engine`:
    ``push(event)``, ``pop() -> Event``, ``peek() -> Event``, ``__len__``,
    ``__iter__``, ``clear()``.  Cancelled events are the caller's concern
    (as with the heap, they are skipped at pop time by the engine).
    """

    __slots__ = (
        "_min_buckets",
        "_size",
        "_n",
        "_width",
        "_buckets",
        "_cursor_day",
        "_hint_bucket",
        "_hint_day",
    )

    def __init__(
        self,
        *,
        n_buckets: int = 16,
        bucket_width: float = 1.0,
        min_buckets: int = 4,
    ) -> None:
        if n_buckets < 1 or bucket_width <= 0 or min_buckets < 1:
            raise ValueError("invalid calendar geometry")
        self._min_buckets = min_buckets
        self._size = 0
        self._init_calendar(n_buckets, bucket_width, start_day=0)

    def _init_calendar(
        self, n_buckets: int, width: float, start_day: int
    ) -> None:
        self._n = n_buckets
        self._width = width
        self._buckets: list[list[Event]] = [[] for _ in range(n_buckets)]
        self._cursor_day = start_day  # integer day index
        # Bucket (and its day) holding the global minimum, found by the
        # last peek or maintained by push; consumed by pop.  Two slots
        # instead of a tuple: the hint is retargeted on every push that
        # sets a new minimum, and a tuple allocation there is measurable
        # on the engine hot path.
        self._hint_bucket: list[Event] | None = None
        self._hint_day = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        for bucket in self._buckets:
            yield from bucket

    def _day_of(self, time: float) -> int:
        return int(time / self._width)

    def push(self, event: Event) -> None:
        day = int(event.time / self._width)
        if day < self._cursor_day:
            # An event earlier than the current day (a resize may have
            # advanced the cursor to the then-minimum event): rewind so
            # the forward scan cannot skip it.  DES engines never push
            # into the past, so this stays off the hot path.
            self._cursor_day = day
        bucket = self._buckets[day % self._n]
        hb = self._hint_bucket
        if self._size == 0 or (hb is not None and event < hb[0]):
            # The pushed event *is* the new global minimum: retarget the
            # hint instead of dropping it, so the engine's pop→push→peek
            # cycle never rescans.  Decided before the insert — after
            # it, an event landing at the hinted bucket's head would
            # compare against itself and keep a stale day.  A push >=
            # the hinted minimum leaves any existing hint valid.
            self._hint_bucket = bucket
            self._hint_day = day
        insort(bucket, event)
        self._size += 1
        if self._size > 2 * self._n and self._n < _MAX_BUCKETS:
            self._resize(2 * self._n)

    def _resize(self, n_buckets: int) -> None:
        events = [e for bucket in self._buckets for e in bucket]
        if events:
            # Re-derive the width from the current population spread so
            # events distribute across the year.  A zero-span population
            # (all queued events at one timestamp) carries no spread
            # information: keep the current width rather than collapsing
            # to a degenerate sliver, which would scatter later events
            # billions of days past the cursor and degrade every
            # subsequent pop to the full-scan fallback.
            lo = min(e.time for e in events)
            hi = max(e.time for e in events)
            span = hi - lo
            if span > 0:
                width = max(span / len(events), 1e-9)
            else:
                width = self._width
            start_day = int(lo / width)
        else:
            width = self._width
            start_day = self._cursor_day
        self._init_calendar(
            max(n_buckets, self._min_buckets), width, start_day
        )
        buckets = self._buckets
        n = self._n
        day_of = self._day_of
        for e in events:
            buckets[day_of(e.time) % n].append(e)
        for bucket in buckets:
            if len(bucket) > 1:
                bucket.sort()

    def _min_over_heads(self) -> tuple[list[Event], int]:
        """Fallback when a year passes without a hit.

        Buckets are sorted, so the global minimum is one of the bucket
        heads — O(n_buckets), not O(events).
        """
        best_bucket: list[Event] | None = None
        for bucket in self._buckets:
            if bucket and (
                best_bucket is None or bucket[0] < best_bucket[0]
            ):
                best_bucket = bucket
        assert best_bucket is not None
        return best_bucket, self._day_of(best_bucket[0].time)

    def _find_min(self) -> tuple[list[Event], int]:
        """Bucket holding the global minimum event, and its day.

        Scans at most one year forward from the cursor (O(1) per day:
        a single head comparison), then falls back to the head scan.
        Advancing the cursor here is sound — the returned event is the
        global minimum, so no event lives on any day the scan passed.
        """
        # Shrink with hysteresis (grow at size > 2n, shrink at size <
        # n/2) — checked here rather than on every pop because the scan
        # below is the only cost empty buckets impose; hint-served pops
        # never pay it.
        if self._size < self._n // 2 and self._n > self._min_buckets:
            self._resize(max(self._n // 2, self._min_buckets))
        day = self._cursor_day
        n = self._n
        buckets = self._buckets
        width = self._width
        for _ in range(n):
            bucket = buckets[day % n]
            if bucket and int(bucket[0].time / width) == day:
                self._cursor_day = day
                return bucket, day
            day += 1
        return self._min_over_heads()

    def peek(self) -> Event:
        if self._size == 0:
            raise IndexError("peek from empty CalendarQueue")
        hb = self._hint_bucket
        if hb is None:
            hb, self._hint_day = self._find_min()
            self._hint_bucket = hb
        return hb[0]

    def pop(self) -> Event:
        if self._size == 0:
            raise IndexError("pop from empty CalendarQueue")
        bucket = self._hint_bucket
        if bucket is None:
            bucket, day = self._find_min()
        else:
            day = self._hint_day
            self._hint_bucket = None
        event = bucket.pop(0)
        self._size -= 1
        self._cursor_day = day
        return event

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0
        self._hint_bucket = None
