"""Thread-safe inter-node queues and item identity for the live executor.

The simulator's :class:`~repro.dataflow.queues.ItemQueue` carries bare
scalar tokens and is single-threaded by construction.  The live executor
needs two more things: *payload rows* must travel with the item ids (the
kernels operate on real data, not tokens), and pushes/pops happen from
different node threads concurrently.  :class:`LiveQueue` provides both
while keeping the simulator's accounting contract — conservation
(``popped + shed + depth == pushed``), a high-water mark, and the same
:class:`~repro.resilience.shedding.ShedPolicy` overflow protocol, so the
degraded-mode policies work unchanged against live queues.

:class:`OriginStore` assigns monotonically increasing int64 item ids and
records each item's origin (ingest) wall-clock time; deadline accounting
and the deadline-aware shed policy look origins up by id, exactly like
the simulators thread ids through their queues.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover — typing-only import
    from repro.resilience.shedding import ShedPolicy

__all__ = ["LiveQueue", "OriginStore"]


class OriginStore:
    """Monotone item-id allocator with origin-timestamp lookup.

    ``append(origin, k)`` assigns ``k`` fresh consecutive ids recorded at
    ``origin`` (a wall-clock ``perf_counter`` reading) and returns them;
    ``lookup(ids)`` vectorizes id -> origin.  Thread-safe: ingest threads
    append while node threads look up.
    """

    def __init__(self, initial_capacity: int = 1024) -> None:
        self._origins = np.empty(max(16, initial_capacity), dtype=float)
        self._n = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._n

    def append(self, origin: float, k: int = 1) -> np.ndarray:
        """Allocate ``k`` ids with the given origin time; returns the ids."""
        if k < 1:
            raise SimulationError(f"cannot allocate {k} ids")
        with self._lock:
            n = self._n
            if n + k > self._origins.size:
                cap = self._origins.size
                while cap < n + k:
                    cap *= 2
                grown = np.empty(cap, dtype=float)
                grown[:n] = self._origins[:n]
                self._origins = grown
            self._origins[n : n + k] = origin
            self._n = n + k
            return np.arange(n, n + k, dtype=np.int64)

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Origin timestamps of the given ids (a copy)."""
        ids = np.asarray(ids, dtype=np.int64)
        with self._lock:
            if ids.size and (ids.min() < 0 or ids.max() >= self._n):
                raise SimulationError(
                    f"unknown item id in lookup (allocated {self._n})"
                )
            return self._origins[ids].copy()


class LiveQueue:
    """Bounded thread-safe FIFO of ``(ids, payload rows)`` batches.

    Items are stored as pushed batches (chunks) — ``push``/``pop_up_to``
    are O(1) amortized slice operations, and the O(depth) combined view
    is materialized only on an actual overflow, mirroring
    :class:`~repro.dataflow.queues.ItemQueue`.

    Parameters
    ----------
    name:
        Diagnostic label (the consuming node's name).
    capacity:
        Optional bound in items.  Without a shed policy an overflowing
        push raises :class:`~repro.errors.SimulationError` (fail-fast);
        with one, the policy chooses which of (queued + incoming) items
        survive and the dropped ids are returned to the pusher.
    shed_policy:
        Optional :class:`~repro.resilience.shedding.ShedPolicy`, the
        *same* objects the simulators use: ``keep_mask`` runs over the
        combined id array and the mask is applied to ids and payload rows
        alike, so kept items stay aligned.
    """

    def __init__(
        self,
        name: str,
        *,
        capacity: int | None = None,
        shed_policy: Union["ShedPolicy", None] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        if shed_policy is not None and capacity is None:
            raise SimulationError("shed_policy requires a capacity")
        self.name = name
        self.capacity = capacity
        self.shed_policy = shed_policy
        self._chunks: deque[tuple[np.ndarray, np.ndarray | None]] = deque()
        self._size = 0
        self._pushed = 0
        self._popped = 0
        self._shed = 0
        self._max_depth = 0
        self._lock = threading.Lock()

    # -- statistics (reads are safe without the lock: ints only) ----------

    def __len__(self) -> int:
        return self._size

    @property
    def depth(self) -> int:
        return self._size

    @property
    def max_depth(self) -> int:
        """High-water mark; an overflowed bounded queue reports capacity."""
        return self._max_depth

    @property
    def total_pushed(self) -> int:
        return self._pushed

    @property
    def total_popped(self) -> int:
        return self._popped

    @property
    def total_shed(self) -> int:
        return self._shed

    # -- operations --------------------------------------------------------

    def push(
        self,
        ids: np.ndarray,
        payload: np.ndarray | None,
        *,
        now: float = 0.0,
    ) -> np.ndarray | None:
        """Append a batch; returns shed ids on overflow (else None).

        ``payload`` rows must match ``ids`` one-to-one along axis 0
        (``None`` for payload-less streams).  With ``capacity`` set and
        no shed policy the capacity check runs *before* anything is
        stored: there is no partial enqueue.
        """
        ids = np.asarray(ids, dtype=np.int64)
        k = int(ids.size)
        if k == 0:
            return None
        if payload is not None and len(payload) != k:
            raise SimulationError(
                f"queue {self.name!r}: payload rows ({len(payload)}) != "
                f"ids ({k})"
            )
        with self._lock:
            if self.capacity is not None and self._size + k > self.capacity:
                if self.shed_policy is None:
                    raise SimulationError(
                        f"queue {self.name!r} overflowed: depth {self._size}"
                        f" + push {k} exceeds capacity {self.capacity}"
                    )
                return self._shed_push(ids, payload, now)
            self._chunks.append((ids, payload))
            self._size += k
            self._pushed += k
            if self._size > self._max_depth:
                self._max_depth = self._size
            return None

    def _shed_push(
        self, ids: np.ndarray, payload: np.ndarray | None, now: float
    ) -> np.ndarray:
        """Overflow under a shed policy; caller holds the lock."""
        held_ids = [c[0] for c in self._chunks]
        held_pay = [c[1] for c in self._chunks]
        combined_ids = (
            np.concatenate(held_ids + [ids]) if held_ids else ids.copy()
        )
        if payload is not None:
            combined_pay: np.ndarray | None = (
                np.concatenate(held_pay + [payload], axis=0)
                if held_pay
                else payload.copy()
            )
        else:
            combined_pay = None
        cap = self.capacity
        mask = np.asarray(
            self.shed_policy.keep_mask(combined_ids, cap, now), dtype=bool
        )
        if mask.shape != combined_ids.shape:
            raise SimulationError(
                f"shed policy {self.shed_policy!r} returned mask shape "
                f"{mask.shape} for {combined_ids.size} items on queue "
                f"{self.name!r}"
            )
        kept_ids = combined_ids[mask]
        if kept_ids.size != cap:
            raise SimulationError(
                f"shed policy {self.shed_policy!r} kept {kept_ids.size} of "
                f"{combined_ids.size} items on queue {self.name!r}; must "
                f"keep exactly the capacity ({cap})"
            )
        kept_pay = combined_pay[mask] if combined_pay is not None else None
        dropped = combined_ids[~mask]
        self._chunks.clear()
        self._chunks.append((kept_ids, kept_pay))
        self._size = int(kept_ids.size)
        self._pushed += int(ids.size)
        self._shed += int(dropped.size)
        if cap > self._max_depth:
            self._max_depth = cap
        return dropped

    def pop_up_to(self, k: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Remove and return up to ``k`` oldest items, FIFO order.

        Returns ``(ids, payload)``; payload is None when the queue is
        empty or the stream carries no payload.
        """
        if k < 0:
            raise SimulationError(f"cannot pop a negative count ({k})")
        with self._lock:
            if self._size == 0 or k == 0:
                return np.empty(0, dtype=np.int64), None
            out_ids: list[np.ndarray] = []
            out_pay: list[np.ndarray] = []
            need = min(k, self._size)
            taken = 0
            while taken < need:
                ids, pay = self._chunks[0]
                take = min(need - taken, int(ids.size))
                if take == int(ids.size):
                    self._chunks.popleft()
                    out_ids.append(ids)
                    if pay is not None:
                        out_pay.append(pay)
                else:
                    out_ids.append(ids[:take])
                    if pay is not None:
                        out_pay.append(pay[:take])
                        self._chunks[0] = (ids[take:], pay[take:])
                    else:
                        self._chunks[0] = (ids[take:], None)
                taken += take
            self._size -= taken
            self._popped += taken
            ids_arr = (
                out_ids[0] if len(out_ids) == 1 else np.concatenate(out_ids)
            )
            pay_arr = None
            if out_pay:
                pay_arr = (
                    out_pay[0]
                    if len(out_pay) == 1
                    else np.concatenate(out_pay, axis=0)
                )
            return ids_arr, pay_arr

    def __repr__(self) -> str:
        return (
            f"LiveQueue({self.name!r}, depth={self._size}, "
            f"pushed={self._pushed}, popped={self._popped}, "
            f"shed={self._shed})"
        )
