"""Re-solve the enforced-waits plan from live estimates, cache-warm.

When the :class:`~repro.runtime.drift.DriftDetector` trips, the
:class:`Replanner` turns the current calibration snapshot into a fresh
:class:`~repro.core.model.RealTimeProblem` and solves it through
:func:`repro.planning.warmstart.solve_plan`, so the plan cache and warm
starts apply.  Two details make the round-trip cheap and reproducible:

- Estimates are snapped to a relative grid
  (:func:`~repro.runtime.calibration.quantize_relative`) before keying,
  so a pipeline that drifts *back* to a previously seen regime — or two
  runs drifting to the same regime — produce identical cache keys and
  the re-plan is an exact hit rather than a fresh solve.
- The batch sizes ``b`` are recomputed deterministically from the
  quantized spec (:func:`~repro.core.enforced_waits.optimistic_b`), so
  the key is a pure function of the quantized estimates.

The executor adopts the new waits only when the solution is feasible;
an infeasible re-plan is recorded and the current waits stay in force
(the watchdog remains the backstop).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.model import RealTimeProblem
from repro.dataflow.spec import PipelineSpec
from repro.errors import SpecError
from repro.runtime.calibration import CalibrationSnapshot, quantize_relative

__all__ = ["ReplanEvent", "Replanner"]


@dataclass(frozen=True)
class ReplanEvent:
    """One re-planning round-trip (adopted or not).

    ``snapped`` records grid-neighbor snap provenance: True when the
    solved operating point is not the nearest grid point to the raw
    estimates but an adjacent one chosen because its plan was already
    cached (see :meth:`Replanner._snap_to_cached`), and
    ``snap_distance`` is the relative distance moved (``|alt/q - 1|``
    on the snapped dimension, at most one quantization step).
    """

    time: float
    services: np.ndarray
    gains: np.ndarray
    waits: np.ndarray | None
    active_fraction: float
    feasible: bool
    source: str
    solve_seconds: float
    adopted: bool
    snapped: bool = False
    snap_distance: float = 0.0


class Replanner:
    """Solve fresh plans from quantized live estimates via the plan cache."""

    def __init__(
        self,
        *,
        tau0: float,
        deadline: float,
        vector_width: int,
        cache=None,
        method: str = "auto",
        quantize_step: float = 0.05,
        min_interval: float = 0.25,
        expander_limit: int = 16,
    ) -> None:
        if min_interval < 0:
            raise SpecError(
                f"min_interval must be >= 0, got {min_interval}"
            )
        self.tau0 = float(tau0)
        self.deadline = float(deadline)
        self.vector_width = int(vector_width)
        self.cache = cache
        self.method = method
        self.quantize_step = float(quantize_step)
        self.min_interval = float(min_interval)
        self.expander_limit = int(expander_limit)
        self.events: list[ReplanEvent] = []
        self._last_attempt: float | None = None

    def ready(self, now: float) -> bool:
        """Whether the rate limit allows another attempt at ``now``."""
        return (
            self._last_attempt is None
            or now - self._last_attempt >= self.min_interval
        )

    def _problem_for(
        self, services: np.ndarray, gains: np.ndarray
    ) -> RealTimeProblem:
        spec = PipelineSpec.from_arrays(
            services,
            gains,
            self.vector_width,
            expander_limit=self.expander_limit,
        )
        return RealTimeProblem(spec, self.tau0, self.deadline)

    def _snap_to_cached(
        self,
        services: np.ndarray,
        raw_services: np.ndarray,
        service_mask: np.ndarray | None,
        gains: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, RealTimeProblem, bool, float]:
        """Prefer an adjacent grid point whose plan is already cached.

        An estimate sitting near a quantization boundary lands on either
        neighboring grid point run to run (EWMA noise decides).  When the
        nearest point has no cached plan but an adjacent one (for a
        drifted service dimension) does, re-planning at the neighbor —
        one step, at most ``quantize_step`` away, inside the estimator's
        own noise — turns a boundary coin-flip into a cache hit.

        Returns ``(services, gains, problem, snapped, snap_distance)``;
        the last two are the provenance recorded on the
        :class:`ReplanEvent` (snap distance is the relative move on the
        snapped dimension, 0.0 when no snap happened).
        """
        from repro.core.enforced_waits import EnforcedWaitsProblem
        from repro.planning.cache import plan_key

        problem = self._problem_for(services, gains)
        if self.cache is None:
            return services, gains, problem, False, 0.0
        key = plan_key(
            problem, EnforcedWaitsProblem(problem).b, method=self.method
        )
        if key in self.cache:
            return services, gains, problem, False, 0.0
        dims = (
            np.flatnonzero(service_mask)
            if service_mask is not None
            else range(len(services))
        )
        for i in dims:
            alt = services.copy()
            toward = raw_services[i] > services[i]
            alt[i] *= (1 + self.quantize_step) if toward else 1 / (
                1 + self.quantize_step
            )
            # Re-quantize: the multiplicative step lands within one ULP
            # of the adjacent grid point, not *on* it, and cache keys
            # hash exact float bits — without this the neighbor key can
            # never match.
            alt = quantize_relative(alt, step=self.quantize_step)
            alt_problem = self._problem_for(alt, gains)
            alt_key = plan_key(
                alt_problem,
                EnforcedWaitsProblem(alt_problem).b,
                method=self.method,
            )
            if alt_key in self.cache:
                distance = float(abs(alt[i] / services[i] - 1.0))
                return alt, gains, alt_problem, True, distance
        return services, gains, problem, False, 0.0

    def replan(
        self,
        snapshot: CalibrationSnapshot,
        now: float,
        *,
        service_mask: np.ndarray | None = None,
        gain_mask: np.ndarray | None = None,
    ) -> ReplanEvent:
        """Solve for the snapshot's quantized estimates; record the event.

        ``service_mask`` / ``gain_mask`` (from the drift detector's
        per-dimension suspect flags) select a *minimal update*: only the
        masked dimensions take the live estimate, the rest keep their
        planned values.  Estimates within tolerance are indistinguishable
        from noise, and folding them in anyway would bake each run's
        noise realization into the cache key — two runs drifting the
        same way would then never share a plan.  With both masks None
        every dimension uses its estimate (full update).
        """
        from repro.planning.warmstart import solve_plan

        self._last_attempt = now
        raw_services = snapshot.services
        raw_gains = snapshot.gains
        if service_mask is not None:
            raw_services = np.where(
                service_mask, raw_services, snapshot.planned_services
            )
        if gain_mask is not None:
            raw_gains = np.where(gain_mask, raw_gains, snapshot.planned_gains)
        services = quantize_relative(raw_services, step=self.quantize_step)
        gains = quantize_relative(raw_gains, step=self.quantize_step)
        services, gains, problem, snapped, snap_distance = (
            self._snap_to_cached(services, raw_services, service_mask, gains)
        )
        t0 = time.perf_counter()
        outcome = solve_plan(
            problem, method=self.method, cache=self.cache
        )
        solve_seconds = time.perf_counter() - t0
        sol = outcome.solution
        event = ReplanEvent(
            time=now,
            services=services,
            gains=gains,
            waits=sol.waits.copy() if sol.feasible else None,
            active_fraction=sol.active_fraction if sol.feasible else float("nan"),
            feasible=sol.feasible,
            source=outcome.source,
            solve_seconds=solve_seconds,
            adopted=sol.feasible,
            snapped=snapped,
            snap_distance=snap_distance,
        )
        self.events.append(event)
        return event
