"""Vectorized node kernels: the live pipeline's real work.

A :class:`VectorKernel` is what a pipeline node *is* at runtime: a
callable over an up-to-``v``-row NumPy payload batch that returns, for
every input row, how many output rows it produced (the empirical gain)
plus the concatenated output rows themselves.  The executor threads item
ids alongside payload rows (``np.repeat(ids, counts)``), exactly like
the simulators.

Three real applications are wrapped (the same code paths the ``apps/``
packages use for gain measurement), plus a synthetic spin kernel for
controlled experiments:

- **blast** — mini-BLAST seed filter / seed expander / extension filter
  over a synthetic genome comparison with planted homologies;
- **nids** — header filter / Aho-Corasick content scan / rule evaluation
  over synthetic packet traffic;
- **gamma** — energy filter / trailing-window pair expander /
  coincidence test over a synthetic photon stream.

Because the repository runs on a CPU, a kernel's raw Python time is not
the paper's fixed per-firing service time ``t_i``.  The executor
therefore *pads* each firing to the kernel's ``nominal_service`` —
emulating a SIMD device where a vector firing occupies the node for
``t_i`` regardless of lane occupancy (Section 2.2's model).
:func:`calibrate_service_times` measures each kernel's raw firing times
on representative batches and assigns a nominal service comfortably
above them, so the plan's ``t_i`` are wall-clock-faithful.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dataflow.gains import EmpiricalGain, GainDistribution
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.des.hotloop import ragged_gather
from repro.errors import SpecError

__all__ = [
    "VectorKernel",
    "SpinKernel",
    "RuntimeWorkload",
    "RuntimePlan",
    "build_workload",
    "measure_runtime_gains",
    "calibrate_service_times",
    "suggest_tau0",
    "plan_runtime",
]

_EMPTY_COUNTS = np.empty(0, dtype=np.int64)


class VectorKernel(ABC):
    """One pipeline stage as a vectorized callable.

    ``fire(payload)`` consumes a batch of payload rows (axis 0 = items)
    and returns ``(counts, outputs)``: ``counts[j]`` is the number of
    output rows produced by input row ``j`` (the per-item gain sample)
    and ``outputs`` holds the ``counts.sum()`` output rows in input
    order.  ``nominal_service`` is the stage's planned wall-clock
    service time ``t_i`` in seconds (set by
    :func:`calibrate_service_times` or explicitly).
    """

    def __init__(self, name: str, nominal_service: float = 0.0) -> None:
        if not name:
            raise SpecError("kernel name must be non-empty")
        self.name = name
        self.nominal_service = float(nominal_service)

    @abstractmethod
    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Process one batch; see the class docstring for the contract."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"t={self.nominal_service * 1e3:.3g} ms)"
        )


class SpinKernel(VectorKernel):
    """Synthetic kernel: sampled gains, optional busy-spin raw work.

    The gain distribution is sampled from a private deterministic RNG, so
    a run's fan-out sequence is reproducible per seed.  ``spin_seconds``
    busy-loops that long per firing (raw work visible to calibration);
    by default the kernel returns immediately and the executor's service
    padding provides the timing.
    """

    def __init__(
        self,
        name: str,
        gain: GainDistribution,
        *,
        nominal_service: float = 0.0,
        spin_seconds: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(name, nominal_service)
        if not isinstance(gain, GainDistribution):
            raise SpecError(
                f"gain must be a GainDistribution, got {type(gain).__name__}"
            )
        self.gain = gain
        self.spin_seconds = float(spin_seconds)
        self._rng = np.random.default_rng(seed)

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        k = len(payload)
        if self.spin_seconds > 0:
            end = time.perf_counter() + self.spin_seconds
            while time.perf_counter() < end:
                pass
        if k == 0:
            return _EMPTY_COUNTS, payload
        counts = np.asarray(self.gain.sample(self._rng, k), dtype=np.int64)
        return counts, np.repeat(payload, counts, axis=0)


# -- mini-BLAST --------------------------------------------------------------


class _BlastSeedFilter(VectorKernel):
    def __init__(self, index, database: np.ndarray, window: int) -> None:
        super().__init__("seed_filter")
        self._index = index
        self._db = database
        self._window = window

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        starts = np.asarray(payload, dtype=np.int64)
        counts = np.fromiter(
            (
                1 if self._index.has_seed(self._db, int(s), self._window) else 0
                for s in starts
            ),
            dtype=np.int64,
            count=starts.size,
        )
        return counts, starts[counts.astype(bool)]


class _BlastSeedExpand(VectorKernel):
    def __init__(self, index, database: np.ndarray, window: int, limit: int) -> None:
        super().__init__("seed_expand")
        self._index = index
        self._db = database
        self._window = window
        self._limit = limit

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        starts = np.asarray(payload, dtype=np.int64)
        counts = np.empty(starts.size, dtype=np.int64)
        rows: list[tuple[int, int]] = []
        for j, s in enumerate(starts):
            seeds = self._index.window_seeds(self._db, int(s), self._window)
            kept = seeds[: self._limit]
            counts[j] = len(kept)
            rows.extend(kept)
        out = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
        return counts, out


class _BlastExtendFilter(VectorKernel):
    def __init__(
        self,
        query: np.ndarray,
        database: np.ndarray,
        k: int,
        score_threshold: int,
        xdrop: int,
    ) -> None:
        super().__init__("extend_filter")
        self._query = query
        self._db = database
        self._k = k
        self._threshold = score_threshold
        self._xdrop = xdrop

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        from repro.apps.blast.extension import ungapped_extend

        pairs = np.asarray(payload, dtype=np.int64).reshape(-1, 2)
        counts = np.empty(len(pairs), dtype=np.int64)
        for j, (qpos, dpos) in enumerate(pairs):
            ext = ungapped_extend(
                self._query,
                self._db,
                int(qpos),
                int(dpos),
                self._k,
                xdrop=self._xdrop,
            )
            counts[j] = 1 if ext.score >= self._threshold else 0
        return counts, pairs[counts.astype(bool)]


# -- NIDS --------------------------------------------------------------------


class _NidsHeaderFilter(VectorKernel):
    def __init__(self, ports: np.ndarray, monitored: np.ndarray) -> None:
        super().__init__("header_filter")
        self._ports = ports
        self._monitored = monitored

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        idx = np.asarray(payload, dtype=np.int64)
        counts = np.isin(self._ports[idx], self._monitored).astype(np.int64)
        return counts, idx[counts.astype(bool)]


class _NidsContentScan(VectorKernel):
    def __init__(self, matcher, payloads: list[bytes], limit: int) -> None:
        super().__init__("content_scan")
        self._matcher = matcher
        self._payloads = payloads
        self._limit = limit

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        idx = np.asarray(payload, dtype=np.int64)
        counts = np.empty(idx.size, dtype=np.int64)
        rows: list[tuple[int, int, int]] = []
        for j, p in enumerate(idx):
            matches = self._matcher.find(self._payloads[int(p)])[: self._limit]
            counts[j] = len(matches)
            rows.extend((int(p), pat, start) for start, pat in matches)
        return counts, np.asarray(rows, dtype=np.int64).reshape(-1, 3)


class _NidsRuleEval(VectorKernel):
    def __init__(
        self,
        ports: np.ndarray,
        rule_ports: np.ndarray,
        rule_max_offsets: np.ndarray,
    ) -> None:
        super().__init__("rule_eval")
        self._ports = ports
        self._rule_ports = rule_ports
        self._rule_max_offsets = rule_max_offsets

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        triples = np.asarray(payload, dtype=np.int64).reshape(-1, 3)
        pkt, pat, start = triples[:, 0], triples[:, 1], triples[:, 2]
        ok = (self._rule_ports[pat] == self._ports[pkt]) & (
            start <= self._rule_max_offsets[pat]
        )
        return ok.astype(np.int64), triples[ok]


# -- gamma -------------------------------------------------------------------


class _GammaEnergyFilter(VectorKernel):
    def __init__(self, energies: np.ndarray, threshold: float) -> None:
        super().__init__("energy_filter")
        self._energies = energies
        self._threshold = threshold

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        idx = np.asarray(payload, dtype=np.int64)
        counts = (self._energies[idx] >= self._threshold).astype(np.int64)
        return counts, idx[counts.astype(bool)]


class _GammaPairExpand(VectorKernel):
    """Trailing-window pair expander over precomputed partner lists.

    The partner sets are a pure function of the preloaded stream (same
    trailing-window/limit logic as
    :func:`repro.apps.gamma.detector.measure_gamma_gains`), precomputed
    once at build time so the kernel's per-firing work is a ragged
    gather.
    """

    def __init__(self, offsets: np.ndarray, flat: np.ndarray) -> None:
        super().__init__("pair_expand")
        self._offsets = offsets
        self._flat = flat

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        idx = np.asarray(payload, dtype=np.int64)
        counts, owners, values = ragged_gather(self._offsets, self._flat, idx)
        pairs = np.empty((owners.size, 2), dtype=np.int64)
        pairs[:, 0] = owners
        pairs[:, 1] = values
        return counts, pairs


class _GammaCoincidence(VectorKernel):
    def __init__(self, x: np.ndarray, y: np.ndarray, radius: float) -> None:
        super().__init__("coincidence")
        self._x = x
        self._y = y
        self._r2 = radius * radius

    def fire(self, payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pairs = np.asarray(payload, dtype=np.int64).reshape(-1, 2)
        i, j = pairs[:, 0], pairs[:, 1]
        d2 = (self._x[i] - self._x[j]) ** 2 + (self._y[i] - self._y[j]) ** 2
        hit = d2 <= self._r2
        return hit.astype(np.int64), pairs[hit]


# -- workloads ---------------------------------------------------------------


@dataclass
class RuntimeWorkload:
    """A runnable live pipeline: kernels plus a stream payload sampler.

    ``sample_payload(n, rng)`` draws ``n`` head-of-pipeline payload rows
    (the live stream's items); kernels may share preloaded reference
    data (genome, packet corpus, photon stream).
    """

    name: str
    kernels: list[VectorKernel]
    sample_payload: Callable[[int, np.random.Generator], np.ndarray]
    detail: dict = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return len(self.kernels)


def _blast_workload(seed: int) -> RuntimeWorkload:
    from repro.apps.blast.pipeline import EXPANDER_LIMIT
    from repro.apps.blast.seeding import KmerIndex
    from repro.apps.blast.sequence import plant_homologies, random_dna

    k, window, threshold, xdrop = 10, 32, 24, 12
    rng = np.random.default_rng(seed)
    query = random_dna(1024, rng)
    database = random_dna(50_000, rng)
    database = plant_homologies(
        database, query, 40, rng, fragment_len=64, mutation_rate=0.05
    )
    index = KmerIndex(query, k)
    starts = np.arange(0, database.size - window + 1, window, dtype=np.int64)
    kernels = [
        _BlastSeedFilter(index, database, window),
        _BlastSeedExpand(index, database, window, EXPANDER_LIMIT),
        _BlastExtendFilter(query, database, k, threshold, xdrop),
    ]

    def sample(n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.choice(starts, size=n, replace=True)

    return RuntimeWorkload(
        "blast", kernels, sample, detail={"windows": int(starts.size)}
    )


def _nids_workload(seed: int) -> RuntimeWorkload:
    from repro.apps.nids.aho_corasick import AhoCorasick
    from repro.apps.nids.packets import PacketStreamConfig, synth_packets

    config = PacketStreamConfig()
    rng = np.random.default_rng(seed)
    packets = synth_packets(config, rng)
    rules = config.rules
    matcher = AhoCorasick([r.pattern for r in rules])
    ports = np.asarray([p.port for p in packets], dtype=np.int64)
    monitored = np.asarray(sorted({r.port for r in rules}), dtype=np.int64)
    rule_ports = np.asarray([r.port for r in rules], dtype=np.int64)
    rule_max = np.asarray(
        [
            np.iinfo(np.int64).max if r.max_offset is None else r.max_offset
            for r in rules
        ],
        dtype=np.int64,
    )
    payloads = [p.payload for p in packets]
    kernels = [
        _NidsHeaderFilter(ports, monitored),
        _NidsContentScan(matcher, payloads, limit=16),
        _NidsRuleEval(ports, rule_ports, rule_max),
    ]

    def sample(n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, len(packets), size=n, dtype=np.int64)

    return RuntimeWorkload(
        "nids", kernels, sample, detail={"packets": len(packets)}
    )


def _gamma_workload(seed: int) -> RuntimeWorkload:
    from repro.apps.gamma.photons import PhotonStreamConfig, synth_photon_stream

    energy_threshold, pair_window, pair_limit, radius = 1.8, 5.0, 16, 0.05
    config = PhotonStreamConfig()
    rng = np.random.default_rng(seed)
    events = synth_photon_stream(config, rng)
    n = len(events)
    energies = np.asarray(events["energy"], dtype=float)
    times = np.asarray(events["time"], dtype=float)
    x = np.asarray(events["x"], dtype=float)
    y = np.asarray(events["y"], dtype=float)

    # Same trailing-window pairing as measure_gamma_gains, precomputed.
    offsets = np.zeros(n + 1, dtype=np.int64)
    flat: list[int] = []
    recent: deque[int] = deque()
    for i in range(n):
        if energies[i] >= energy_threshold:
            t = times[i]
            while recent and times[recent[0]] < t - pair_window:
                recent.popleft()
            partners = list(recent)[-pair_limit:]
            flat.extend(partners)
            offsets[i + 1] = offsets[i] + len(partners)
            recent.append(i)
        else:
            offsets[i + 1] = offsets[i]
    kernels = [
        _GammaEnergyFilter(energies, energy_threshold),
        _GammaPairExpand(offsets, np.asarray(flat, dtype=np.int64)),
        _GammaCoincidence(x, y, radius),
    ]

    def sample(k: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, n, size=k, dtype=np.int64)

    return RuntimeWorkload("gamma", kernels, sample, detail={"photons": n})


def _synthetic_workload(seed: int) -> RuntimeWorkload:
    from repro.dataflow.gains import BernoulliGain, CensoredPoissonGain

    kernels = [
        SpinKernel("filter", BernoulliGain(0.5), seed=seed),
        SpinKernel("expand", CensoredPoissonGain(2.0, 8), seed=seed + 1),
        SpinKernel("score", BernoulliGain(0.3), seed=seed + 2),
    ]

    def sample(n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.standard_normal(n)

    return RuntimeWorkload("synthetic", kernels, sample)


_WORKLOADS = {
    "blast": _blast_workload,
    "nids": _nids_workload,
    "gamma": _gamma_workload,
    "synthetic": _synthetic_workload,
}


def build_workload(app: str, *, seed: int = 0) -> RuntimeWorkload:
    """Build a named live workload: blast, nids, gamma, or synthetic."""
    try:
        factory = _WORKLOADS[app]
    except KeyError as exc:
        known = ", ".join(sorted(_WORKLOADS))
        raise SpecError(f"unknown app {app!r}; known: {known}") from exc
    return factory(seed)


# -- offline measurement & planning ------------------------------------------


def measure_runtime_gains(
    workload: RuntimeWorkload,
    *,
    n_items: int = 512,
    vector_width: int = 8,
    seed: int = 0,
) -> list[EmpiricalGain]:
    """Feed items through the kernel chain offline, recording stage gains.

    Returns one :class:`~repro.dataflow.gains.EmpiricalGain` per stage
    (the runtime analogue of the apps' ``trace_gains`` measurement — the
    counts come from the same kernels the executor fires).
    """
    if n_items < 1:
        raise SpecError(f"n_items must be >= 1, got {n_items}")
    rng = np.random.default_rng(seed)
    batch = workload.sample_payload(n_items, rng)
    stage_counts: list[list[int]] = [[] for _ in workload.kernels]
    for start in range(0, n_items, vector_width):
        payload = batch[start : start + vector_width]
        for i, kern in enumerate(workload.kernels):
            if len(payload) == 0:
                break
            counts, payload = kern.fire(payload)
            stage_counts[i].extend(counts.tolist())
    dists = []
    for i, counts in enumerate(stage_counts):
        if not counts:
            raise SpecError(
                f"stage {i} ({workload.kernels[i].name}) saw no items; "
                "enlarge n_items"
            )
        dists.append(EmpiricalGain(np.asarray(counts, dtype=np.int64)))
    return dists


def calibrate_service_times(
    workload: RuntimeWorkload,
    *,
    vector_width: int = 8,
    rounds: int = 5,
    floor: float = 0.005,
    margin: float = 1.5,
    seed: int = 0,
) -> np.ndarray:
    """Measure raw kernel firing times and assign nominal services.

    Each stage's nominal service becomes ``max(floor, margin *
    max_observed_raw)`` — comfortably above the raw Python time, so the
    executor's padding (not Python jitter) defines the firing duration
    and the plan's ``t_i`` hold on the wall clock.  The measured values
    are written to each kernel's ``nominal_service`` and returned.
    Kernels that already carry a positive ``nominal_service`` keep it
    (explicit settings are calibration overrides).
    """
    if rounds < 1:
        raise SpecError(f"rounds must be >= 1, got {rounds}")
    rng = np.random.default_rng(seed)
    worst = np.zeros(workload.n_nodes)
    for _ in range(rounds):
        payload = workload.sample_payload(vector_width, rng)
        for i, kern in enumerate(workload.kernels):
            if len(payload) == 0:
                break
            t0 = time.perf_counter()
            _counts, payload = kern.fire(payload)
            worst[i] = max(worst[i], time.perf_counter() - t0)
    nominal = np.maximum(floor, margin * worst)
    for i, (kern, t) in enumerate(zip(workload.kernels, nominal)):
        if kern.nominal_service > 0:
            nominal[i] = kern.nominal_service
        else:
            kern.nominal_service = float(t)
    return nominal


def suggest_tau0(
    pipeline: PipelineSpec, *, utilization: float = 0.7
) -> float:
    """Head inter-arrival time loading the bottleneck node to ``utilization``.

    Node ``i`` sees ``C_i = prod_{j<i} g_j`` items per head item and can
    process at most ``v / t_i`` items per second, so the sustainable head
    rate is ``min_i v / (t_i * C_i)``; the suggested ``tau0`` backs off
    from that by the utilization factor.
    """
    if not 0 < utilization < 1:
        raise SpecError(
            f"utilization must be in (0, 1), got {utilization}"
        )
    t = pipeline.service_times
    g = pipeline.mean_gains
    upstream = np.concatenate(([1.0], np.cumprod(g[:-1])))
    rates = pipeline.vector_width / (t * np.maximum(upstream, 1e-9))
    return float(1.0 / (utilization * rates.min()))


@dataclass
class RuntimePlan:
    """A planned live run: the spec in seconds plus the solved waits."""

    workload: RuntimeWorkload
    pipeline: PipelineSpec
    problem: "object"
    outcome: "object"
    b: np.ndarray

    @property
    def waits(self) -> np.ndarray:
        return self.outcome.solution.waits

    @property
    def planned_active_fraction(self) -> float:
        return self.outcome.solution.active_fraction

    @property
    def feasible(self) -> bool:
        return self.outcome.solution.feasible


def plan_runtime(
    workload: RuntimeWorkload,
    *,
    vector_width: int,
    tau0: float | None = None,
    deadline: float | None = None,
    utilization: float = 0.7,
    deadline_factor: float = 4.0,
    b: np.ndarray | None = None,
    calibrate_b: bool = True,
    calibrate_trials: int = 6,
    calibrate_items: int = 1500,
    cache=None,
    method: str = "auto",
    n_gain_items: int = 2048,
    service_floor: float = 0.005,
    service_margin: float = 1.5,
    calibration_rounds: int = 5,
    seed: int = 0,
) -> RuntimePlan:
    """Calibrate a workload and solve its enforced-waits plan in seconds.

    ``tau0`` and ``deadline`` are wall-clock seconds.  When ``tau0`` is
    None it is derived from the measured pipeline via
    :func:`suggest_tau0`; when ``deadline`` is None it starts at
    ``deadline_factor * sum(b_i * t_i)`` and doubles until the plan is
    feasible (at most 4 retries).  Gains are measured empirically from
    the kernels; service times from :func:`calibrate_service_times`
    (kernels with a positive ``nominal_service`` already set keep it).

    With ``calibrate_b=True`` (default) and no explicit ``b``, the
    queue-depth multipliers are calibrated through the discrete-event
    simulator (:func:`repro.core.calibration.calibrate_enforced_b`, the
    paper's Section 6.2 raise-and-retry loop) at the chosen operating
    point — virtual time is cheap, and the optimistic ``ceil(g)`` values
    systematically under-cover live queueing: the solver pushes every
    period to its chain/head upper bound, so queues run near critical
    load by design and the deadline budget must absorb the real depths.

    The solve goes through :func:`repro.planning.warmstart.solve_plan`,
    so repeated plans hit the cache.
    """
    from repro.core.calibration import calibrate_enforced_b
    from repro.core.enforced_waits import optimistic_b
    from repro.core.model import RealTimeProblem
    from repro.errors import CalibrationError
    from repro.planning.warmstart import solve_plan

    dists = measure_runtime_gains(
        workload, n_items=n_gain_items, vector_width=vector_width, seed=seed
    )
    if any(k.nominal_service <= 0 for k in workload.kernels):
        calibrate_service_times(
            workload,
            vector_width=vector_width,
            rounds=calibration_rounds,
            floor=service_floor,
            margin=service_margin,
            seed=seed,
        )
    nodes = tuple(
        NodeSpec(kern.name, kern.nominal_service, dist)
        for kern, dist in zip(workload.kernels, dists)
    )
    pipeline = PipelineSpec(nodes, vector_width)
    if tau0 is None:
        tau0 = suggest_tau0(pipeline, utilization=utilization)
    auto_deadline = deadline is None
    if auto_deadline:
        deadline = deadline_factor * float(
            np.sum(optimistic_b(pipeline) * pipeline.service_times)
        )
    retries = 4 if auto_deadline else 0
    while True:
        b_used = (
            optimistic_b(pipeline) if b is None else np.asarray(b, dtype=float)
        )
        calibration_failed = False
        if b is None and calibrate_b:
            try:
                b_used = calibrate_enforced_b(
                    pipeline,
                    np.asarray([tau0]),
                    np.asarray([deadline]),
                    n_trials=calibrate_trials,
                    n_items=calibrate_items,
                    seed_base=seed,
                ).b
            except CalibrationError:
                calibration_failed = True
        problem = RealTimeProblem(pipeline, tau0, deadline)
        outcome = solve_plan(problem, b_used, method=method, cache=cache)
        if (
            outcome.solution.feasible
            and not calibration_failed
        ) or retries <= 0:
            break
        retries -= 1
        deadline *= 2.0
    return RuntimePlan(
        workload=workload,
        pipeline=pipeline,
        problem=problem,
        outcome=outcome,
        b=b_used,
    )
