"""Feeding the live executor: real-time replay and TCP ingest.

:class:`ReplaySource` turns any :class:`~repro.arrivals.base.\
ArrivalProcess` — Poisson, burst, or a recorded
:class:`~repro.arrivals.trace.TraceArrivals` — into real-time ingest: it
generates the arrival timestamps up front, then submits each item to the
executor when the wall clock reaches its (scaled) timestamp.  ``scale``
maps recorded time units to seconds, so a trace captured in
microseconds replays at true speed with ``scale=1e-6``, or at 10x speed
with ``scale=1e-7``.

:class:`IngestServer` is the network mode: a JSON-lines TCP server
mirroring ``repro-plan serve`` (:mod:`repro.planning.cli`).  Each
request line is one object::

    {"op": "submit", "items": [[...], ...]}   -> {"ok": true, "accepted": k}
    {"op": "stats"}                           -> runtime telemetry summary
    {"op": "shutdown"}                        -> {"op": "shutdown", "ok": true}

``submit`` rows are payload rows for the head kernel (scalars or
fixed-width lists); items originate at the moment the server accepts
them, so end-to-end latency includes network delivery — exactly what a
live deployment would measure.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import ReproError, SpecError
from repro.runtime.executor import PipelineExecutor

__all__ = ["ReplaySource", "IngestServer"]


class ReplaySource:
    """Replay arrival timestamps against an executor in real time.

    Parameters
    ----------
    arrivals:
        An :class:`~repro.arrivals.base.ArrivalProcess` (timestamps are
        drawn via ``generate(n_items, rng)``) or a precomputed 1-D
        nondecreasing array of timestamps.
    sample_payload:
        ``(n, rng) -> payload rows`` for the head kernel (e.g.
        ``RuntimeWorkload.sample_payload``).
    n_items:
        Number of items to replay (required for an ``ArrivalProcess``;
        defaults to the full array otherwise).
    scale:
        Seconds per recorded time unit.  The executor plans in seconds,
        so an arrival process parameterized in seconds replays with the
        default ``scale=1.0``.
    seed:
        Seed for both timestamp generation and payload sampling.
    """

    def __init__(
        self,
        arrivals: ArrivalProcess | np.ndarray,
        sample_payload,
        *,
        n_items: int | None = None,
        scale: float = 1.0,
        seed: int = 0,
        chunk_seconds: float = 0.005,
    ) -> None:
        if scale <= 0:
            raise SpecError(f"scale must be > 0, got {scale}")
        rng = np.random.default_rng(seed)
        if isinstance(arrivals, ArrivalProcess):
            if n_items is None:
                raise SpecError(
                    "n_items is required when replaying an ArrivalProcess"
                )
            times = arrivals.generate(n_items, rng)
        else:
            times = np.asarray(arrivals, dtype=float)
            if times.ndim != 1 or times.size == 0:
                raise SpecError(
                    "arrival times must be a non-empty 1-D array"
                )
            if (np.diff(times) < 0).any():
                raise SpecError("arrival times must be nondecreasing")
            if n_items is not None:
                if n_items > times.size:
                    raise SpecError(
                        f"trace holds {times.size} arrivals, "
                        f"{n_items} requested"
                    )
                times = times[:n_items]
        # Rebase to 0 so replay starts immediately regardless of the
        # trace's capture epoch, then map recorded units to seconds.
        self.times = (times - times[0]) * scale
        self.sample_payload = sample_payload
        self.scale = float(scale)
        self.chunk_seconds = float(chunk_seconds)
        self._rng = rng
        self.submitted = 0

    def __len__(self) -> int:
        return int(self.times.size)

    def feed(
        self, executor: PipelineExecutor, *, finish: bool = True
    ) -> int:
        """Submit every item at its wall-clock time (blocking).

        Due items are coalesced into one ``submit`` batch, so a trace
        with tied timestamps ingests them together (the nondecreasing-
        ties-allowed contract).  Returns the number of items submitted;
        with ``finish=True`` (default) marks the executor's ingest done
        afterwards.
        """
        t0 = time.perf_counter()
        times = self.times
        n = times.size
        i = 0
        try:
            while i < n and not executor._stop.is_set():
                now = time.perf_counter() - t0
                j = int(np.searchsorted(times, now, side="right"))
                if j <= i:
                    delay = min(self.chunk_seconds, times[i] - now)
                    time.sleep(delay if delay > 0 else self.chunk_seconds)
                    continue
                payload = self.sample_payload(j - i, self._rng)
                executor.submit(payload)
                self.submitted += j - i
                i = j
        finally:
            if finish:
                executor.finish_ingest()
        return self.submitted

    def start(self, executor: PipelineExecutor) -> threading.Thread:
        """Run :meth:`feed` on a daemon thread; returns the thread."""
        thread = threading.Thread(
            target=self.feed, args=(executor,), name="repro-replay", daemon=True
        )
        thread.start()
        return thread


class IngestServer:
    """JSON-lines TCP ingest for a running executor.

    Runs an asyncio server on a background thread so it composes with
    the (threaded) executor.  ``serve_forever`` blocks until a
    ``shutdown`` op or :meth:`stop`; :meth:`start` runs it in the
    background and returns once the port is bound (``port`` attribute
    holds the bound port, useful with ``port=0``).
    """

    def __init__(
        self,
        executor: PipelineExecutor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        finish_on_shutdown: bool = True,
    ) -> None:
        self.executor = executor
        self.host = host
        self.port = port
        self.finish_on_shutdown = finish_on_shutdown
        self.accepted = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._done: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    # -- request handling --------------------------------------------------

    def _handle_obj(self, obj) -> dict:
        if not isinstance(obj, dict):
            raise SpecError("request must be a JSON object")
        op = obj.get("op")
        if op == "submit":
            items = obj.get("items")
            if not isinstance(items, list) or not items:
                raise SpecError("submit needs a non-empty 'items' array")
            payload = np.asarray(items)
            self.executor.submit(payload)
            self.accepted += len(payload)
            return {"ok": True, "accepted": int(len(payload))}
        if op == "stats":
            snap = self.executor.snapshot()
            return {
                "op": "stats",
                "elapsed": snap.elapsed,
                "items_ingested": snap.items_ingested,
                "outputs": snap.outputs,
                "in_flight": snap.in_flight,
                "missed_items": snap.missed_items,
                "miss_rate": snap.miss_rate,
                "measured_active_fraction": snap.measured_active_fraction,
                "planned_active_fraction": snap.planned_active_fraction,
                "replans": snap.replans,
                "queue_depths": [n.queue_depth for n in snap.nodes],
            }
        if op == "shutdown":
            return {"op": "shutdown", "ok": True}
        raise SpecError(f"unknown op {op!r}")

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._done is not None
        try:
            while not self._done.is_set():
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = self._handle_obj(json.loads(line))
                except (ReproError, ValueError, KeyError, TypeError) as exc:
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                if payload.get("op") == "shutdown":
                    self._done.set()
                    break
        finally:
            writer.close()

    async def _serve(self) -> None:
        self._done = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._done.wait()
        if self.finish_on_shutdown:
            self.executor.finish_ingest()

    # -- lifecycle ----------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the server on this thread until shutdown."""
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._loop.close()

    def start(self) -> "IngestServer":
        """Serve on a background thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-ingest", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise SpecError("ingest server failed to bind within 10s")
        return self

    def stop(self) -> None:
        """Request shutdown and join the server thread (idempotent)."""
        if (
            self._loop is not None
            and self._done is not None
            and not self._loop.is_closed()
        ):
            try:
                self._loop.call_soon_threadsafe(self._done.set)
            except RuntimeError:
                pass  # loop closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=10.0)
