"""Feeding the live executor: real-time replay and hardened TCP ingest.

:class:`ReplaySource` turns any :class:`~repro.arrivals.base.\
ArrivalProcess` — Poisson, burst, or a recorded
:class:`~repro.arrivals.trace.TraceArrivals` — into real-time ingest: it
generates the arrival timestamps up front, then submits each item to the
executor when the wall clock reaches its (scaled) timestamp.  ``scale``
maps recorded time units to seconds, so a trace captured in
microseconds replays at true speed with ``scale=1e-6``, or at 10x speed
with ``scale=1e-7``.

:class:`IngestServer` is the network mode: a JSON-lines TCP server built
on the shared hardened serving layer (:mod:`repro.serving`), so it
enforces the same line-size/idle/deadline/connection limits as
``repro-plan serve`` and answers the same ``{"op": "health"}`` probe.
Each request line is one object::

    {"op": "submit", "items": [[...], ...]}   -> {"ok": true, "accepted": k}
    {"op": "stats"}                           -> runtime telemetry summary
    {"op": "health"}                          -> readiness/liveness probe
    {"op": "shutdown"}                        -> {"op": "shutdown", "ok": true}

``submit`` rows are payload rows for the head kernel (scalars or
fixed-width lists); items originate at the moment the server accepts
them, so end-to-end latency includes network delivery — exactly what a
live deployment would measure.

With an :class:`~repro.serving.admission.AdmissionController` attached
(``repro-run serve`` derives one from the plan's feasibility certificate
via :func:`~repro.serving.admission.budget_from_plan`), a ``submit``
that would push the live in-flight population past the certified budget
is rejected with ``{"ok": false, "retriable": true}`` — the client backs
off instead of the queues growing without bound.  Shutdown is a
graceful drain: the server stops accepting, lets in-flight requests
finish, and only then (with ``finish_on_shutdown``) marks executor
ingest done.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import SpecError
from repro.runtime.executor import PipelineExecutor
from repro.serving.admission import AdmissionController
from repro.serving.config import ServingConfig
from repro.serving.server import JsonLinesServer

__all__ = ["ReplaySource", "IngestServer"]


class ReplaySource:
    """Replay arrival timestamps against an executor in real time.

    Parameters
    ----------
    arrivals:
        An :class:`~repro.arrivals.base.ArrivalProcess` (timestamps are
        drawn via ``generate(n_items, rng)``) or a precomputed 1-D
        nondecreasing array of timestamps.
    sample_payload:
        ``(n, rng) -> payload rows`` for the head kernel (e.g.
        ``RuntimeWorkload.sample_payload``).
    n_items:
        Number of items to replay (required for an ``ArrivalProcess``;
        defaults to the full array otherwise).
    scale:
        Seconds per recorded time unit.  The executor plans in seconds,
        so an arrival process parameterized in seconds replays with the
        default ``scale=1.0``.
    seed:
        Seed for both timestamp generation and payload sampling.
    """

    def __init__(
        self,
        arrivals: ArrivalProcess | np.ndarray,
        sample_payload,
        *,
        n_items: int | None = None,
        scale: float = 1.0,
        seed: int = 0,
        chunk_seconds: float = 0.005,
    ) -> None:
        if scale <= 0:
            raise SpecError(f"scale must be > 0, got {scale}")
        rng = np.random.default_rng(seed)
        if isinstance(arrivals, ArrivalProcess):
            if n_items is None:
                raise SpecError(
                    "n_items is required when replaying an ArrivalProcess"
                )
            times = arrivals.generate(n_items, rng)
        else:
            times = np.asarray(arrivals, dtype=float)
            if times.ndim != 1 or times.size == 0:
                raise SpecError(
                    "arrival times must be a non-empty 1-D array"
                )
            if (np.diff(times) < 0).any():
                raise SpecError("arrival times must be nondecreasing")
            if n_items is not None:
                if n_items > times.size:
                    raise SpecError(
                        f"trace holds {times.size} arrivals, "
                        f"{n_items} requested"
                    )
                times = times[:n_items]
        # Rebase to 0 so replay starts immediately regardless of the
        # trace's capture epoch, then map recorded units to seconds.
        self.times = (times - times[0]) * scale
        self.sample_payload = sample_payload
        self.scale = float(scale)
        self.chunk_seconds = float(chunk_seconds)
        self._rng = rng
        self.submitted = 0

    def __len__(self) -> int:
        return int(self.times.size)

    def feed(
        self, executor: PipelineExecutor, *, finish: bool = True
    ) -> int:
        """Submit every item at its wall-clock time (blocking).

        Due items are coalesced into one ``submit`` batch, so a trace
        with tied timestamps ingests them together (the nondecreasing-
        ties-allowed contract).  Returns the number of items submitted;
        with ``finish=True`` (default) marks the executor's ingest done
        afterwards.  Stops early once the executor reports
        :meth:`~repro.runtime.executor.PipelineExecutor.should_stop`.
        """
        t0 = time.perf_counter()
        times = self.times
        n = times.size
        i = 0
        try:
            while i < n and not executor.should_stop():
                now = time.perf_counter() - t0
                j = int(np.searchsorted(times, now, side="right"))
                if j <= i:
                    delay = min(self.chunk_seconds, times[i] - now)
                    time.sleep(delay if delay > 0 else self.chunk_seconds)
                    continue
                payload = self.sample_payload(j - i, self._rng)
                executor.submit(payload)
                self.submitted += j - i
                i = j
        finally:
            if finish:
                executor.finish_ingest()
        return self.submitted

    def start(self, executor: PipelineExecutor) -> threading.Thread:
        """Run :meth:`feed` on a daemon thread; returns the thread."""
        thread = threading.Thread(
            target=self.feed, args=(executor,), name="repro-replay", daemon=True
        )
        thread.start()
        return thread


class IngestServer:
    """Hardened JSON-lines TCP ingest for a running executor.

    A thin application layer over
    :class:`~repro.serving.server.JsonLinesServer`: the serving layer
    owns limits, timeouts, structured errors, health, and the graceful
    drain; this class owns the ``submit``/``stats``/``shutdown`` ops and
    the admission decision.  ``serve_forever`` blocks until a
    ``shutdown`` op or :meth:`stop`; :meth:`start` runs it in the
    background and returns once the port is bound (``port`` attribute
    holds the bound port, useful with ``port=0``).
    """

    def __init__(
        self,
        executor: PipelineExecutor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        finish_on_shutdown: bool = True,
        config: ServingConfig | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.executor = executor
        self.finish_on_shutdown = finish_on_shutdown
        self.admission = admission
        self.accepted = 0
        self.overload_rejections = 0
        self._server = JsonLinesServer(
            self._handle,
            host=host,
            port=port,
            config=config,
            name="ingest",
            health_extra=self._health_extra,
            on_drain=self._on_drain,
        )

    # -- delegated server surface -------------------------------------------

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def stats(self):
        """The serving layer's :class:`~repro.serving.server.ServerStats`."""
        return self._server.stats

    # -- request handling --------------------------------------------------

    def _health_extra(self) -> dict:
        extra = {
            "in_flight_items": self.executor.in_flight,
            "executor_stopped": self.executor.stopped,
            "accepted_items": self.accepted,
            "overload_rejections": self.overload_rejections,
        }
        if self.admission is not None:
            extra["admission"] = self.admission.stats()
        return extra

    def _submit(self, obj: dict) -> dict:
        items = obj.get("items")
        if not isinstance(items, list) or not items:
            raise SpecError("submit needs a non-empty 'items' array")
        if self.executor.stopped:
            return {
                "ok": False,
                "error": "SimulationError: executor has stopped",
            }
        payload = np.asarray(items)
        if payload.dtype == object:
            raise SpecError(
                "submit items must be scalars or fixed-width rows "
                "(ragged or mixed-type arrays are not ingestible)"
            )
        k = len(payload)
        if self.admission is not None:
            in_flight = self.executor.in_flight
            if not self.admission.admit(k, in_flight):
                self.overload_rejections += 1
                return self.admission.overload_response(k, in_flight)
        self.executor.submit(payload)
        self.accepted += k
        return {"ok": True, "accepted": int(k)}

    def _stats_payload(self) -> dict:
        snap = self.executor.snapshot()
        payload = {
            "op": "stats",
            "elapsed": snap.elapsed,
            "items_ingested": snap.items_ingested,
            "outputs": snap.outputs,
            "in_flight": snap.in_flight,
            "missed_items": snap.missed_items,
            "miss_rate": snap.miss_rate,
            "measured_active_fraction": snap.measured_active_fraction,
            "planned_active_fraction": snap.planned_active_fraction,
            "replans": snap.replans,
            "node_failures": snap.node_failures,
            "node_restarts": snap.node_restarts,
            "queue_depths": [n.queue_depth for n in snap.nodes],
            "serving": self._server.stats.as_dict(),
        }
        if self.admission is not None:
            payload["admission"] = self.admission.stats()
        return payload

    async def _handle(self, obj: dict) -> dict:
        op = obj.get("op")
        if op == "submit":
            return self._submit(obj)
        if op == "stats":
            return self._stats_payload()
        if op == "shutdown":
            return {"op": "shutdown", "ok": True}
        raise SpecError(f"unknown op {op!r}")

    def _on_drain(self) -> None:
        if self.finish_on_shutdown:
            self.executor.finish_ingest()

    # -- lifecycle ----------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the server on this thread until shutdown."""
        self._server.serve_forever()

    def start(self) -> "IngestServer":
        """Serve on a background thread; returns once the port is bound."""
        self._server.start()
        return self

    def stop(self) -> None:
        """Graceful drain and join the server thread (idempotent)."""
        self._server.stop()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the serving thread to exit; True if it did."""
        return self._server.join(timeout=timeout)
