"""The wall-clock pipeline executor.

:class:`PipelineExecutor` runs a planned pipeline for real: one thread
per node pops up-to-``v``-item batches off its bounded
:class:`~repro.runtime.queues.LiveQueue`, calls the node's
:class:`~repro.runtime.kernels.VectorKernel`, and then sleeps the
planned enforced wait ``w_i`` — the paper's enforced-waits strategy
executed on the wall clock instead of inside the discrete-event
simulator.

Service padding
---------------
The paper's model charges every vector firing the full service time
``t_i`` regardless of lane occupancy (a SIMD device runs all lanes in
lockstep).  On a CPU the raw Python kernel time varies with batch
content, so each firing is *padded* with a sleep up to the kernel's
calibrated ``nominal_service`` (times an injectable per-node
``service_scale``, the drift test hook emulating a device slowdown).
With ``charge_empty_firings=True`` (the default, matching
:class:`~repro.sim.enforced.EnforcedWaitsSimulator`) empty firings are
padded too, so a node's firing period is ``t_i + w_i`` under any load
and the measured per-node busy fraction realizes the planned ``t_i/x_i``.

Control loop
------------
A controller thread ticks every ``control_interval`` seconds: it
snapshots the :class:`~repro.runtime.calibration.OnlineCalibrator`
(fed by every non-empty firing), runs the
:class:`~repro.runtime.drift.DriftDetector`, and on a sustained drift
asks the :class:`~repro.runtime.replan.Replanner` for a fresh plan
through the shared plan cache.  A feasible solution is adopted by
atomically swapping the wait vector — in-flight items, queue contents,
and node threads are untouched; the next firing of each node simply
sleeps the new wait.

Deadline accounting reuses :class:`~repro.sim.metrics.LatencyLedger`
keyed on the int64 item ids minted by
:class:`~repro.runtime.queues.OriginStore`; a
:class:`~repro.resilience.watchdog.DeadlineWatchdog` (optional) observes
tail-exit slack exactly as in the simulator and scales the waits of
*every* node while degraded.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, SpecError
from repro.obs.telemetry import LiveNodeTelemetry, RuntimeTelemetry
from repro.runtime.calibration import OnlineCalibrator
from repro.runtime.drift import DriftConfig, DriftDetector
from repro.runtime.kernels import RuntimePlan, VectorKernel
from repro.runtime.queues import LiveQueue, OriginStore
from repro.runtime.replan import ReplanEvent, Replanner
from repro.sim.metrics import LatencyLedger

__all__ = ["PipelineExecutor", "LiveRunReport", "NodeFailure"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: Longest uninterruptible block inside :meth:`PipelineExecutor._sleep`
#: (stop-flag recheck cadence) and the deliberate undershoot before its
#: final yield-spin to the deadline.
_SLEEP_SLICE = 0.05
_SLEEP_UNDERSHOOT = 0.002


class _NodeStats:
    """Per-node counters, written only by the owning node thread."""

    __slots__ = (
        "firings",
        "empty_firings",
        "items_consumed",
        "items_produced",
        "occupancy_sum",
        "busy_time",
        "wait_time",
        "oversleep_time",
    )

    def __init__(self) -> None:
        self.firings = 0
        self.empty_firings = 0
        self.items_consumed = 0
        self.items_produced = 0
        self.occupancy_sum = 0.0
        self.busy_time = 0.0
        self.wait_time = 0.0
        self.oversleep_time = 0.0


@dataclass(frozen=True)
class NodeFailure:
    """One node-thread death, as observed by the supervisor.

    ``restarted`` says whether the supervisor respawned the node thread
    (``restart_failed_nodes`` with budget remaining); ``items_lost``
    counts the batch that died with the thread — those items are scored
    as deadline misses in the ledger so conservation holds and drains
    complete.
    """

    node: int
    name: str
    time: float
    error: str
    restarted: bool
    items_lost: int


@dataclass(frozen=True)
class LiveRunReport:
    """Final report of one live run."""

    telemetry: RuntimeTelemetry
    replan_events: tuple[ReplanEvent, ...] = ()
    node_failures: tuple[NodeFailure, ...] = ()
    policy_swaps: int = 0

    @property
    def total_oversleep(self) -> float:
        """Residual seconds slept past deadlines, summed over all nodes."""
        return self.telemetry.total_oversleep

    @property
    def outputs(self) -> int:
        return self.telemetry.outputs

    @property
    def missed_items(self) -> int:
        return self.telemetry.missed_items

    @property
    def miss_rate(self) -> float:
        return self.telemetry.miss_rate

    @property
    def measured_active_fraction(self) -> float:
        return self.telemetry.measured_active_fraction

    @property
    def planned_active_fraction(self) -> float:
        return self.telemetry.planned_active_fraction

    @property
    def replans(self) -> int:
        return len([e for e in self.replan_events if e.adopted])

    @property
    def node_restarts(self) -> int:
        """Node-thread deaths the supervisor recovered from."""
        return len([f for f in self.node_failures if f.restarted])

    def render(self) -> str:
        return self.telemetry.render()


class PipelineExecutor:
    """Run vectorized kernels as a live enforced-waits pipeline.

    Parameters
    ----------
    kernels:
        The node kernels, head to tail; each must have a positive
        ``nominal_service`` (run :func:`~repro.runtime.kernels.\
calibrate_service_times` or use :func:`~repro.runtime.kernels.\
plan_runtime`).
    waits:
        Planned enforced waits ``w_i`` in seconds (the solver's output).
    vector_width:
        SIMD width ``v`` — the maximum batch popped per firing.
    deadline:
        End-to-end latency bound ``D`` in seconds.
    tau0:
        Planned head inter-arrival time (used by the re-planner's
        problem; required when ``replanner`` is set).
    planned_active_fraction:
        The solver's predicted ``T(w)``, carried into telemetry.
    queue_capacity / shed_policy:
        Bound and overflow policy applied to every inter-node queue
        (same :class:`~repro.resilience.shedding.ShedPolicy` objects the
        simulators use).  Shed items are scored as deadline misses.
    watchdog:
        Optional :class:`~repro.resilience.watchdog.DeadlineWatchdog`;
        fed the minimum slack of every tail exit batch, its
        ``wait_scale`` multiplies every enforced wait.
    drift / replanner:
        Online re-planning: ``drift`` configures the detector,
        ``replanner`` performs cache-warm solves.  Either may be None
        (no re-planning).
    charge_empty_firings:
        Pad and count firings that consumed zero items (default True,
        the simulator's convention — keeps the firing period ``t_i +
        w_i`` under any load).
    pad_service:
        Pad firings up to nominal service (default True).  Disable only
        for raw-throughput measurements.
    control_interval:
        Controller tick in seconds.
    restart_failed_nodes / max_node_restarts:
        Supervised recovery.  By default a node-thread death stops the
        whole pipeline and :meth:`join` raises.  With
        ``restart_failed_nodes=True`` the supervisor records a
        :class:`NodeFailure` (the dying batch's items are scored as
        deadline misses so conservation holds), respawns the node
        thread, and the run continues — up to ``max_node_restarts``
        total restarts, after which the next death stops the pipeline
        as before.  All failures, recovered or not, are reported in
        :attr:`LiveRunReport.node_failures`.
    successors:
        Optional DAG topology: ``successors[i]`` lists the kernel
        indices fed by node ``i`` (must all be ``> i``, i.e. kernels are
        given in topological order).  ``None`` (the default) is the
        linear chain ``[[1], [2], ..., []]``.  A node with several
        successors *broadcasts* its output batch to each of them
        (matching a DAG simulation whose fan-out edges carry
        deterministic unit gains — the branch nodes themselves do the
        filtering); a node with none is a sink, and every sink gets its
        own :class:`~repro.sim.metrics.LatencyLedger` in
        :attr:`sink_ledgers` besides the global one.
    device:
        Optional shared-device handle (e.g.
        :class:`~repro.tenancy.device.TenantDeviceHandle`) with
        ``acquire(stop) -> bool`` and ``release(duration)``.  When set,
        every node firing is bracketed by an acquire/release pair, so K
        executors sharing one arbiter contend for the device like K
        tenants on one SIMD machine and the arbiter's busy-time ledger
        accounts each tenant's device time.  Enforced waits are slept
        *without* holding the device — that idle time is exactly what
        co-residency reclaims.  ``None`` (default) runs device-free with
        unchanged behavior.
    on_replan:
        Optional callback invoked with the adopted
        :class:`~repro.runtime.replan.ReplanEvent` each time the control
        loop swaps in a re-planned wait vector.  The serving layer uses
        it to recompute the admission in-flight budget from the new
        plan's certificate.  Exceptions propagate to the control loop
        and stop the pipeline (they surface in :meth:`join`).
    policy:
        Optional learned control policy (see :mod:`repro.control`): any
        object with ``propose_live(snapshot, now) -> waits | None``.
        When set, the control loop consults the policy every tick with
        the calibrator snapshot and adopts any returned wait vector via
        :meth:`swap_waits`; the drift-detector/re-planner path is *not*
        consulted (the policy owns plan selection).  Adoptions are
        counted in :attr:`policy_swaps`.
    """

    def __init__(
        self,
        kernels: list[VectorKernel],
        waits: np.ndarray,
        *,
        vector_width: int,
        deadline: float,
        tau0: float | None = None,
        planned_active_fraction: float = math.nan,
        queue_capacity: int | None = None,
        shed_policy=None,
        watchdog=None,
        drift: DriftConfig | None = None,
        replanner: Replanner | None = None,
        charge_empty_firings: bool = True,
        pad_service: bool = True,
        calibration_alpha: float = 0.2,
        min_observations: int = 5,
        control_interval: float = 0.05,
        poll_interval: float = 0.001,
        planned_gains: np.ndarray | None = None,
        successors: list[list[int]] | None = None,
        restart_failed_nodes: bool = False,
        max_node_restarts: int = 3,
        device=None,
        on_replan=None,
        policy=None,
    ) -> None:
        if not kernels:
            raise SpecError("executor needs at least one kernel")
        if vector_width < 1:
            raise SpecError(f"vector_width must be >= 1, got {vector_width}")
        if deadline <= 0:
            raise SpecError(f"deadline must be > 0, got {deadline}")
        waits = np.asarray(waits, dtype=float)
        if waits.shape != (len(kernels),):
            raise SpecError(
                f"waits must have length {len(kernels)}, got {waits.shape}"
            )
        if (waits < 0).any():
            raise SpecError("waits must be >= 0")
        if pad_service and any(k.nominal_service <= 0 for k in kernels):
            raise SpecError(
                "every kernel needs a positive nominal_service under "
                "service padding; run calibrate_service_times first"
            )
        self.kernels = list(kernels)
        self.n_nodes = len(kernels)
        self.vector_width = int(vector_width)
        self.deadline = float(deadline)
        self.tau0 = None if tau0 is None else float(tau0)
        self.charge_empty_firings = bool(charge_empty_firings)
        self.pad_service = bool(pad_service)
        self.control_interval = float(control_interval)
        self.poll_interval = float(poll_interval)
        self.watchdog = watchdog
        self.replanner = replanner
        self.drift_detector = (
            DriftDetector(drift) if drift is not None else None
        )
        if replanner is not None and self.drift_detector is None:
            self.drift_detector = DriftDetector(DriftConfig())

        n = len(kernels)
        if successors is None:
            successors = [[i + 1] for i in range(n - 1)] + [[]]
        if len(successors) != n:
            raise SpecError(
                f"successors must have one entry per kernel ({n}), "
                f"got {len(successors)}"
            )
        self._succs: list[tuple[int, ...]] = []
        for i, succ in enumerate(successors):
            succ = tuple(int(s) for s in succ)
            for s in succ:
                if not (i < s < n):
                    raise SpecError(
                        f"successor {s} of node {i} must lie in "
                        f"({i}, {n}) — kernels must be topologically "
                        "ordered"
                    )
            if len(set(succ)) != len(succ):
                raise SpecError(f"duplicate successor in node {i}: {succ}")
            self._succs.append(succ)
        self.sink_indices: tuple[int, ...] = tuple(
            i for i, succ in enumerate(self._succs) if not succ
        )
        fed = {s for succ in self._succs for s in succ}
        orphans = [i for i in range(1, n) if i not in fed]
        if orphans:
            raise SpecError(
                f"nodes {orphans} are fed by no one; the executor needs a "
                "single-source topology (connect them via successors)"
            )

        self._waits = waits.copy()
        self._planned_af = float(planned_active_fraction)
        self._service_scale = np.ones(self.n_nodes)
        self.queues = [
            LiveQueue(
                k.name, capacity=queue_capacity, shed_policy=shed_policy
            )
            for k in kernels
        ]
        self.origins = OriginStore()
        self.ledger = LatencyLedger(self.deadline, keep_samples=True)
        self.sink_ledgers: dict[str, LatencyLedger] = {
            self.kernels[i].name: LatencyLedger(
                self.deadline, keep_samples=True
            )
            for i in self.sink_indices
        }
        if planned_gains is None:
            planned_gains = np.ones(self.n_nodes)
        self.calibrator = OnlineCalibrator(
            [k.name for k in kernels],
            np.asarray([k.nominal_service for k in kernels], dtype=float),
            np.asarray(planned_gains, dtype=float),
            alpha=calibration_alpha,
            min_observations=min_observations,
        )
        self._stats = [_NodeStats() for _ in kernels]
        self._lock = threading.Lock()  # ledger + in_flight + ingest counts
        self._in_flight = 0
        self._items_ingested = 0
        self._ingest_done = threading.Event()
        self._stop = threading.Event()
        self._started = False
        self._finished = False
        self._t0 = math.nan
        self._elapsed = 0.0
        self._threads: list[threading.Thread] = []
        self._node_errors: list[BaseException] = []
        self._adopted_replans = 0
        if max_node_restarts < 0:
            raise SpecError(
                f"max_node_restarts must be >= 0, got {max_node_restarts}"
            )
        self.restart_failed_nodes = bool(restart_failed_nodes)
        self.max_node_restarts = int(max_node_restarts)
        self._node_failures: list[NodeFailure] = []
        self._node_restarts = 0
        self._supervision_lock = threading.Lock()
        self._device = device
        self._on_replan = on_replan
        self._policy = policy
        self._policy_swaps = 0

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_plan(
        cls,
        plan: RuntimePlan,
        *,
        cache=None,
        drift: DriftConfig | None = None,
        enable_replanning: bool = True,
        quantize_step: float = 0.05,
        min_replan_interval: float = 0.25,
        **kwargs,
    ) -> "PipelineExecutor":
        """Build an executor directly from a solved :class:`RuntimePlan`."""
        if not plan.feasible:
            raise SpecError(
                "cannot execute an infeasible plan: "
                f"{plan.outcome.solution.diagnosis}"
            )
        replanner = None
        if enable_replanning:
            replanner = Replanner(
                tau0=plan.problem.tau0,
                deadline=plan.problem.deadline,
                vector_width=plan.pipeline.vector_width,
                cache=cache,
                quantize_step=quantize_step,
                min_interval=min_replan_interval,
            )
        return cls(
            plan.workload.kernels,
            plan.waits,
            vector_width=plan.pipeline.vector_width,
            deadline=plan.problem.deadline,
            tau0=plan.problem.tau0,
            planned_active_fraction=plan.planned_active_fraction,
            planned_gains=plan.pipeline.mean_gains,
            drift=drift,
            replanner=replanner,
            **kwargs,
        )

    @classmethod
    def from_graph(
        cls,
        graph,
        kernels: dict[str, VectorKernel],
        waits: np.ndarray | dict,
        *,
        deadline: float,
        **kwargs,
    ) -> "PipelineExecutor":
        """Build a DAG executor from a validated
        :class:`~repro.dataflow.graph.DataflowGraph`.

        ``kernels`` maps node name -> :class:`VectorKernel`; ``waits``
        is an array in the graph's deterministic topological order or a
        ``{name: wait}`` mapping (e.g. from
        :meth:`repro.core.dag.DagEnforcedWaitsSolution.waits_by_name`).
        Vector width, topology, and planned per-node mean gains all
        come from the graph.
        """
        graph.validate()
        order = tuple(graph.topological_order())
        pos = {name: i for i, name in enumerate(order)}
        missing = [name for name in order if name not in kernels]
        if missing:
            raise SpecError(f"kernels mapping is missing nodes {missing}")
        if isinstance(waits, dict):
            absent = [name for name in order if name not in waits]
            if absent:
                raise SpecError(f"waits mapping is missing nodes {absent}")
            waits = np.asarray(
                [waits[name] for name in order], dtype=float
            )
        successors = [
            [pos[s] for s in graph.successors(name)] for name in order
        ]
        kwargs.setdefault(
            "planned_gains",
            np.asarray(
                [graph.spec(name).gain.mean for name in order], dtype=float
            ),
        )
        return cls(
            [kernels[name] for name in order],
            waits,
            vector_width=graph.vector_width,
            deadline=deadline,
            successors=successors,
            **kwargs,
        )

    # -- time --------------------------------------------------------------

    def _now(self) -> float:
        """Seconds since :meth:`start` (0.0 before)."""
        return time.perf_counter() - self._t0 if self._started else 0.0

    def _sleep(self, seconds: float) -> float:
        """Sleep to a deadline ``seconds`` from now, interruptibly.

        Anchored on the absolute deadline rather than accumulated
        slices: the historical loop slept ``min(remaining, 0.05)`` and
        every ``time.sleep`` call overshoots by the OS scheduler's
        wake-up granularity, so the final short slice carried a
        millisecond-scale overshoot straight onto *every* enforced wait
        — a systematic oversleep bias that lengthened effective periods
        and depressed measured activity.  Here the last slice
        deliberately undershoots by :data:`_SLEEP_UNDERSHOOT` and the
        residue is closed with ``sleep(0)`` yields, which wake within
        scheduler-quantum noise of the deadline.

        Returns the residual oversleep: seconds past the deadline at
        return (0.0 when interrupted early by stop, or when the
        deadline was met exactly).  Callers accumulate it into
        per-node stats so the bias, if the platform still imposes one,
        is *measured* rather than silent.
        """
        end = time.perf_counter() + seconds
        stop = self._stop
        while not stop.is_set():
            remaining = end - time.perf_counter()
            if remaining <= 0:
                break
            if remaining > _SLEEP_SLICE:
                # Interruptibility bound: never block longer than one
                # slice without rechecking stop.
                time.sleep(_SLEEP_SLICE)
            elif remaining > _SLEEP_UNDERSHOOT:
                time.sleep(remaining - _SLEEP_UNDERSHOOT)
            else:
                time.sleep(0)  # yield-spin the last ~2 ms to the deadline
        return max(0.0, time.perf_counter() - end)

    # -- ingest -------------------------------------------------------------

    def submit(self, payload: np.ndarray) -> np.ndarray:
        """Ingest a batch of head-of-pipeline payload rows; returns ids.

        Each row becomes one item originating *now*; overflow of the
        head queue follows its shed policy (dropped items are scored as
        deadline misses, like the simulator).
        """
        if not self._started or self._finished:
            raise SimulationError(
                "submit() requires a started, unfinished executor"
            )
        payload = np.asarray(payload)
        k = len(payload)
        if k == 0:
            return _EMPTY_IDS
        now = self._now()
        ids = self.origins.append(now, k)
        with self._lock:
            self._items_ingested += k
            self._in_flight += k
        dropped = self.queues[0].push(ids, payload, now=now)
        if dropped is not None and dropped.size:
            with self._lock:
                self.ledger.record_drops(ids=dropped)
                self._in_flight -= int(dropped.size)
        return ids

    def finish_ingest(self) -> None:
        """Signal that no more items will be submitted."""
        self._ingest_done.set()

    # -- live control --------------------------------------------------------

    @property
    def waits(self) -> np.ndarray:
        """The enforced waits currently in force (a copy)."""
        return self._waits.copy()

    def swap_waits(self, waits: np.ndarray) -> None:
        """Atomically adopt a new wait vector without draining."""
        waits = np.asarray(waits, dtype=float)
        if waits.shape != (self.n_nodes,):
            raise SpecError(
                f"waits must have length {self.n_nodes}, got {waits.shape}"
            )
        if (waits < 0).any():
            raise SpecError("waits must be >= 0")
        self._waits = waits.copy()

    def inject_service_scale(self, node: int, factor: float) -> None:
        """Scale one node's padded service time (drift test hook)."""
        if factor <= 0:
            raise SpecError(f"service scale must be > 0, got {factor}")
        scale = self._service_scale.copy()
        scale[node] = factor
        self._service_scale = scale

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def stopped(self) -> bool:
        """True once the executor has stopped (or was asked to stop).

        The *public* form of the internal stop flag: ingest sources
        (:class:`~repro.runtime.ingest.ReplaySource`, the TCP ingest
        server) poll this instead of reaching into ``_stop``.
        """
        return self._stop.is_set()

    def should_stop(self) -> bool:
        """Callable alias of :attr:`stopped` for feeder loops."""
        return self._stop.is_set()

    def request_stop(self) -> None:
        """Ask every node/control thread to stop at its next check."""
        self._stop.set()

    @property
    def node_failures(self) -> tuple[NodeFailure, ...]:
        """Every node-thread death observed so far (see :class:`NodeFailure`)."""
        return tuple(self._node_failures)

    @property
    def node_restarts(self) -> int:
        """Node-thread deaths the supervisor has recovered from."""
        return self._node_restarts

    @property
    def replan_events(self) -> tuple[ReplanEvent, ...]:
        if self.replanner is None:
            return ()
        return tuple(self.replanner.events)

    @property
    def policy_swaps(self) -> int:
        """Wait-vector adoptions proposed by the control policy."""
        return self._policy_swaps

    # -- node and controller loops ------------------------------------------

    def _route_outputs(
        self, node: int, ids: np.ndarray, counts: np.ndarray, outputs
    ) -> None:
        produced = int(counts.sum())
        consumed = int(ids.size)
        out_ids = np.repeat(ids, counts) if produced else _EMPTY_IDS
        succs = self._succs[node]
        if succs:
            # Broadcast the batch to every successor; each copy is one
            # in-flight item.
            with self._lock:
                self._in_flight += produced * len(succs) - consumed
            if produced:
                now = self._now()
                for dst in succs:
                    dropped = self.queues[dst].push(
                        out_ids, outputs, now=now
                    )
                    if dropped is not None and dropped.size:
                        with self._lock:
                            self.ledger.record_drops(ids=dropped)
                            self._in_flight -= int(dropped.size)
            return
        # Sink: outputs exit the pipeline.
        now = self._now()
        with self._lock:
            if produced:
                origins = self.origins.lookup(out_ids)
                self.ledger.record_exits(origins, now, ids=out_ids)
                self.sink_ledgers[self.kernels[node].name].record_exits(
                    origins, now, ids=out_ids
                )
            self._in_flight -= consumed
            backlog = self._in_flight
        if self.watchdog is not None and produced:
            slack = float(origins.min()) + self.deadline - now
            self.watchdog.observe_exit(now, slack, backlog)

    def _node_loop(self, node: int) -> None:
        kernel = self.kernels[node]
        queue = self.queues[node]
        stats = self._stats[node]
        v = self.vector_width
        device = self._device
        held = False  # this thread currently holds a device slot
        ids = _EMPTY_IDS  # the batch currently held outside any queue
        try:
            while not self._stop.is_set():
                if device is not None:
                    if not device.acquire(self._stop):
                        return  # stop fired while queued for the device
                    held = True
                ids, payload = queue.pop_up_to(v)
                consumed = int(ids.size)
                if consumed == 0 and not self.charge_empty_firings:
                    if held:
                        device.release(0.0)
                        held = False
                    time.sleep(self.poll_interval)
                    stats.wait_time += self.poll_interval
                    continue
                fire_start = time.perf_counter()
                if consumed:
                    counts, outputs = kernel.fire(payload)
                    counts = np.asarray(counts, dtype=np.int64)
                    if counts.size != consumed:
                        raise SimulationError(
                            f"kernel {kernel.name!r} returned "
                            f"{counts.size} counts for {consumed} items"
                        )
                else:
                    counts, outputs = _EMPTY_IDS, None
                if self.pad_service:
                    target = (
                        kernel.nominal_service * self._service_scale[node]
                    )
                    remaining = target - (time.perf_counter() - fire_start)
                    if remaining > 0:
                        stats.oversleep_time += self._sleep(remaining)
                duration = time.perf_counter() - fire_start
                if held:
                    # The device was busy for the whole (padded) firing;
                    # the enforced wait below is slept without it.
                    device.release(duration)
                    held = False
                stats.firings += 1
                stats.busy_time += duration
                stats.occupancy_sum += consumed / v
                if consumed:
                    stats.items_consumed += consumed
                    produced = int(counts.sum())
                    stats.items_produced += produced
                    self.calibrator.observe(
                        node, duration, produced, consumed
                    )
                    self._route_outputs(node, ids, counts, outputs)
                    # Routed: in-flight accounting for this batch is
                    # settled, so a later failure must not re-drop it.
                    ids = _EMPTY_IDS
                else:
                    stats.empty_firings += 1
                scale = (
                    self.watchdog.wait_scale
                    if self.watchdog is not None
                    else 1.0
                )
                wait = self._waits[node] * scale
                if wait > 0:
                    wait_start = time.perf_counter()
                    stats.oversleep_time += self._sleep(wait)
                    stats.wait_time += time.perf_counter() - wait_start
        except BaseException as exc:  # supervised: report, maybe restart
            self._on_node_failure(node, exc, ids)
        finally:
            if held:
                device.release(0.0)

    def _on_node_failure(
        self, node: int, exc: BaseException, ids: np.ndarray
    ) -> None:
        """Handle one node-thread death: account, record, restart or stop.

        The batch the thread died holding (popped but not yet routed) is
        scored as deadline misses — the same provenance shed items get —
        so ``in_flight`` conservation holds and :meth:`join` can still
        drain.  Within the restart budget a fresh thread is spawned for
        the node and the pipeline keeps running; otherwise the failure
        stops the pipeline and surfaces in :meth:`join`.
        """
        lost = int(ids.size)
        if lost:
            with self._lock:
                self.ledger.record_drops(ids=ids)
                self._in_flight -= lost
        with self._supervision_lock:
            restart = (
                self.restart_failed_nodes
                and self._node_restarts < self.max_node_restarts
                and not self._stop.is_set()
            )
            if restart:
                self._node_restarts += 1
            self._node_failures.append(
                NodeFailure(
                    node=node,
                    name=self.kernels[node].name,
                    time=self._now(),
                    error=f"{type(exc).__name__}: {exc}",
                    restarted=restart,
                    items_lost=lost,
                )
            )
        if restart:
            thread = threading.Thread(
                target=self._node_loop,
                args=(node,),
                name=(
                    f"repro-node-{node}-{self.kernels[node].name}-r"
                    f"{self._node_restarts}"
                ),
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        else:
            self._node_errors.append(exc)
            self._stop.set()

    def _control_loop(self) -> None:
        if self.drift_detector is None and self._policy is None:
            return
        try:
            while not self._stop.is_set():
                self._sleep(self.control_interval)
                if self._stop.is_set():
                    return
                snapshot = self.calibrator.snapshot()
                if self._policy is not None:
                    waits = self._policy.propose_live(snapshot, self._now())
                    if waits is not None:
                        self.swap_waits(waits)
                        self._policy_swaps += 1
                    continue
                state = self.drift_detector.update(snapshot)
                if (
                    state.drifted
                    and self.replanner is not None
                    and self.replanner.ready(self._now())
                ):
                    event = self.replanner.replan(
                        snapshot,
                        self._now(),
                        service_mask=state.service_suspect,
                        gain_mask=state.gain_suspect,
                    )
                    if event.adopted:
                        self._adopt_replan(event)
        except BaseException as exc:
            self._node_errors.append(exc)
            self._stop.set()

    def _adopt_replan(self, event: ReplanEvent) -> None:
        """Adopt a feasible replan mid-flight and notify the serving layer.

        Swaps the waits in, rebases the calibrator and drift detector on
        the new plan, and — the piece the serving layer hooks — calls
        ``on_replan(event)`` so the admission budget is recomputed from
        the *adopted* plan's certificate rather than staying frozen at
        the server-start value (see
        :func:`repro.serving.admission.budget_from_event`).
        """
        self.swap_waits(event.waits)
        self._planned_af = event.active_fraction
        self.calibrator.rebase(event.services, event.gains)
        self.drift_detector.rebase()
        self._adopted_replans += 1
        if self._on_replan is not None:
            self._on_replan(event)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "PipelineExecutor":
        """Start the node threads (and the controller); returns self."""
        if self._started:
            raise SimulationError("executor already started")
        self._started = True
        self._t0 = time.perf_counter()
        for i in range(self.n_nodes):
            t = threading.Thread(
                target=self._node_loop,
                args=(i,),
                name=f"repro-node-{i}-{self.kernels[i].name}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()
        if self.drift_detector is not None or self._policy is not None:
            t = threading.Thread(
                target=self._control_loop,
                name="repro-runtime-control",
                daemon=True,
            )
            self._threads.append(t)
            t.start()
        return self

    def join(self, timeout: float | None = None) -> LiveRunReport:
        """Wait for ingest to finish and the pipeline to drain, then stop.

        Raises :class:`~repro.errors.SimulationError` on timeout or if a
        node thread failed.
        """
        if not self._started:
            raise SimulationError("executor was never started")
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        while not self._stop.is_set():
            if self._ingest_done.is_set() and self._in_flight <= 0:
                break
            if deadline is not None and time.perf_counter() > deadline:
                self._stop.set()
                self._finalize()
                raise SimulationError(
                    f"executor did not drain within {timeout}s "
                    f"({self._in_flight} items in flight)"
                )
            time.sleep(self.poll_interval)
        self._stop.set()
        for t in self._threads:
            t.join(timeout=5.0)
        self._finalize()
        if self._node_errors:
            raise SimulationError(
                f"node thread failed: {self._node_errors[0]!r}"
            ) from self._node_errors[0]
        return self.report()

    def _finalize(self) -> None:
        if not self._finished:
            self._elapsed = self._now()
            self._finished = True
            if self.watchdog is not None:
                self.watchdog.finalize(self._elapsed)

    # -- observation ---------------------------------------------------------

    def snapshot(self) -> RuntimeTelemetry:
        """A point-in-time :class:`RuntimeTelemetry` (usable mid-run)."""
        elapsed = self._elapsed if self._finished else self._now()
        snap = self.calibrator.snapshot()
        nodes = []
        for i, kernel in enumerate(self.kernels):
            s = self._stats[i]
            q = self.queues[i]
            firings = s.firings
            nodes.append(
                LiveNodeTelemetry(
                    name=kernel.name,
                    firings=firings,
                    empty_firings=s.empty_firings,
                    items_consumed=s.items_consumed,
                    items_produced=s.items_produced,
                    mean_occupancy=(
                        s.occupancy_sum / firings if firings else math.nan
                    ),
                    busy_time=s.busy_time,
                    wait_time=s.wait_time,
                    queue_depth=q.depth,
                    queue_hwm=q.max_depth,
                    queue_pushed=q.total_pushed,
                    queue_popped=q.total_popped,
                    queue_shed=q.total_shed,
                    planned_service=snap.planned_services[i],
                    planned_wait=float(self._waits[i]),
                    ewma_service=snap.services[i],
                    ewma_gain=snap.gains[i],
                    oversleep_time=s.oversleep_time,
                )
            )
        with self._lock:
            outputs = self.ledger.outputs
            missed = self.ledger.missed_items
            lat = self.ledger.latency
            latency_mean = lat.mean if lat.n else math.nan
            latency_p99 = lat.quantile(0.99) if lat.n else math.nan
            latency_max = lat.max if lat.n else math.nan
            in_flight = self._in_flight
            ingested = self._items_ingested
        if self.watchdog is not None:
            degraded_time = self.watchdog.degraded_time(elapsed)
            intervals = self.watchdog.intervals
        else:
            degraded_time = 0.0
            intervals = ()
        events = self.replan_events
        snap_hits = sum(1 for e in events if e.snapped)
        return RuntimeTelemetry(
            strategy="live-enforced",
            nodes=tuple(nodes),
            elapsed=elapsed,
            items_ingested=ingested,
            outputs=outputs,
            in_flight=in_flight,
            missed_items=missed,
            deadline=self.deadline,
            latency_mean=latency_mean,
            latency_p99=latency_p99,
            latency_max=latency_max,
            planned_active_fraction=self._planned_af,
            replans=self._adopted_replans,
            degraded_time=degraded_time,
            degraded_intervals=intervals,
            node_failures=len(self._node_failures),
            node_restarts=self._node_restarts,
            replan_snap_hits=snap_hits,
            replan_snap_misses=len(events) - snap_hits,
            replan_max_snap_distance=max(
                (e.snap_distance for e in events), default=0.0
            ),
        )

    def report(self) -> LiveRunReport:
        """The final report (call after :meth:`join`)."""
        return LiveRunReport(
            telemetry=self.snapshot(),
            replan_events=self.replan_events,
            node_failures=self.node_failures,
            policy_swaps=self._policy_swaps,
        )
