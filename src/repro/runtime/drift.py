"""Detect when live estimates have drifted off the planned operating point.

The enforced-waits plan is only as good as the ``(t, g)`` it was solved
for.  The :class:`DriftDetector` compares each control tick's
:class:`~repro.runtime.calibration.CalibrationSnapshot` against the plan:
a node whose service-time or gain estimate deviates from its planned
value by more than a relative tolerance is *suspect*; when any node stays
suspect for ``sustain_checks`` consecutive ticks the detector trips and
the executor re-plans.  The sustain requirement plays the same role as
the watchdog's ``sustain_time`` — one noisy EWMA reading must not
trigger a solver round-trip.

After a re-plan the executor calls :meth:`DriftDetector.rebase` so the
detector measures deviation from the *new* operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SpecError
from repro.runtime.calibration import CalibrationSnapshot

__all__ = ["DriftConfig", "DriftDetector", "DriftState"]


@dataclass(frozen=True)
class DriftConfig:
    """Tolerances for declaring the plan stale.

    ``service_rtol`` / ``gain_rtol`` are relative deviations (0.25 =
    25%) of the EWMA estimate from the planned value; ``sustain_checks``
    is how many consecutive control ticks the deviation must persist.
    """

    service_rtol: float = 0.25
    gain_rtol: float = 0.5
    sustain_checks: int = 3

    def __post_init__(self) -> None:
        if self.service_rtol <= 0 or self.gain_rtol <= 0:
            raise SpecError(
                "drift tolerances must be > 0, got "
                f"service_rtol={self.service_rtol}, gain_rtol={self.gain_rtol}"
            )
        if self.sustain_checks < 1:
            raise SpecError(
                f"sustain_checks must be >= 1, got {self.sustain_checks}"
            )


@dataclass(frozen=True)
class DriftState:
    """One control tick's verdict.

    ``service_suspect`` / ``gain_suspect`` are per-node boolean masks of
    which *dimension* exceeded its tolerance — the re-planner uses them
    to apply a minimal update (estimates only where drifted, planned
    values elsewhere), which keeps re-plan cache keys deterministic.
    """

    drifted: bool
    suspect_nodes: tuple[int, ...]
    service_deviation: np.ndarray
    gain_deviation: np.ndarray
    service_suspect: np.ndarray
    gain_suspect: np.ndarray
    consecutive: int


@dataclass
class DriftDetector:
    config: DriftConfig = field(default_factory=DriftConfig)
    _streak: int = 0
    trips: int = 0

    def update(self, snapshot: CalibrationSnapshot) -> DriftState:
        """Fold in one snapshot; ``drifted`` is True on the tripping tick."""
        sdev = np.abs(snapshot.service_ratios - 1.0)
        gdev = np.abs(snapshot.gain_ratios - 1.0)
        s_suspect = sdev > self.config.service_rtol
        g_suspect = gdev > self.config.gain_rtol
        suspect = s_suspect | g_suspect
        # A cold calibrator reports planned values (deviation 0), so no
        # warm-up guard is needed — but a partially warmed one must not
        # accumulate a streak from nodes that have not fired yet.
        if snapshot.warmed and bool(suspect.any()):
            self._streak += 1
        else:
            self._streak = 0
        drifted = self._streak >= self.config.sustain_checks
        if drifted:
            self.trips += 1
            self._streak = 0
        return DriftState(
            drifted=drifted,
            suspect_nodes=tuple(int(i) for i in np.flatnonzero(suspect)),
            service_deviation=sdev,
            gain_deviation=gdev,
            service_suspect=s_suspect,
            gain_suspect=g_suspect,
            consecutive=self._streak,
        )

    def rebase(self) -> None:
        """Clear state after the executor adopts a new plan."""
        self._streak = 0
