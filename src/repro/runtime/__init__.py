"""Wall-clock pipeline runtime (live executor + online calibration).

Everything else in the repository exercises the paper's model inside the
discrete-event simulator; this package actually *runs* a planned
pipeline in real time.  Nodes are vectorized callables
(:class:`~repro.runtime.kernels.VectorKernel`) firing on up-to-``v``-item
NumPy batches popped from bounded thread-safe queues
(:class:`~repro.runtime.queues.LiveQueue`); after each firing a node
sleeps the planned enforced wait ``w_i``, exactly as the enforced-waits
strategy prescribes.  Around the executor run an online calibration loop
(per-node EWMA estimates of service time and gain), a drift detector
comparing the estimates against the planned operating point, and a
re-planner that resolves a fresh plan through the shared
:class:`~repro.planning.cache.PlanCache` and hot-swaps the waits without
draining the pipeline.

Entry points
------------
- :class:`~repro.runtime.executor.PipelineExecutor` — the executor.
- :func:`~repro.runtime.kernels.build_workload` — real app kernels
  (mini-BLAST, NIDS, gamma) or synthetic spin kernels.
- :func:`~repro.runtime.kernels.plan_runtime` — calibrate + solve a plan
  for a workload in wall-clock seconds.
- :class:`~repro.runtime.ingest.ReplaySource` — replay any
  ``arrivals/`` process (or a recorded trace) in real time.
- :class:`~repro.runtime.ingest.IngestServer` — JSON-lines TCP ingest.
- ``repro-run`` (:mod:`repro.runtime.cli`) — the command-line surface.

See ``docs/runtime.md`` for the architecture and the sim-vs-live
comparison methodology.
"""

from repro.runtime.calibration import NodeEstimator, OnlineCalibrator, quantize_relative
from repro.runtime.drift import DriftConfig, DriftDetector
from repro.runtime.executor import LiveRunReport, PipelineExecutor
from repro.runtime.ingest import IngestServer, ReplaySource
from repro.runtime.kernels import (
    RuntimePlan,
    RuntimeWorkload,
    SpinKernel,
    VectorKernel,
    build_workload,
    calibrate_service_times,
    measure_runtime_gains,
    plan_runtime,
    suggest_tau0,
)
from repro.runtime.queues import LiveQueue, OriginStore
from repro.runtime.replan import ReplanEvent, Replanner

__all__ = [
    "DriftConfig",
    "DriftDetector",
    "IngestServer",
    "LiveQueue",
    "LiveRunReport",
    "NodeEstimator",
    "OnlineCalibrator",
    "OriginStore",
    "PipelineExecutor",
    "ReplanEvent",
    "Replanner",
    "ReplaySource",
    "RuntimePlan",
    "RuntimeWorkload",
    "SpinKernel",
    "VectorKernel",
    "build_workload",
    "calibrate_service_times",
    "measure_runtime_gains",
    "plan_runtime",
    "quantize_relative",
    "suggest_tau0",
]
