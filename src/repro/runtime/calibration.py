"""Online estimation of per-node service times and gains.

The offline calibration loop (:mod:`repro.core.calibration`) measures a
pipeline once, up front.  The live executor keeps measuring: every
non-empty firing feeds a :class:`NodeEstimator`, which maintains EWMA
estimates of the node's wall-clock service time ``t_i`` and per-item
gain ``g_i``.  The :class:`~repro.runtime.drift.DriftDetector` compares
these against the planned operating point, and the re-planner feeds them
back into :func:`repro.planning.warmstart.solve_plan`.

Empty firings are excluded from the service EWMA on purpose: under
service padding an empty firing always costs exactly the *nominal*
service, so including it would dilute the drift signal from real
firings (the quantity that actually changed on the device).

:func:`quantize_relative` snaps estimates onto a relative (log-scale)
grid before re-planning.  Two runs that drift to the same regime then
produce byte-identical plan-cache keys, so the second re-plan is an
exact cache hit — the "cache-warm re-plan" the runtime banks on.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.des.monitors import Ewma
from repro.errors import SpecError

__all__ = ["NodeEstimator", "OnlineCalibrator", "CalibrationSnapshot", "quantize_relative"]


def quantize_relative(
    values: np.ndarray, *, step: float = 0.05, floor: float = 1e-9
) -> np.ndarray:
    """Snap positive values onto a multiplicative grid ``(1+step)^k``.

    Values within one grid step of each other collapse to the same grid
    point, making downstream plan-cache keys insensitive to sub-step
    estimation noise.  Values at or below ``floor`` are clamped to it.
    """
    if step <= 0:
        raise SpecError(f"quantization step must be > 0, got {step}")
    vals = np.maximum(np.asarray(values, dtype=float), floor)
    ratio = np.log1p(step)
    return np.exp(np.round(np.log(vals) / ratio) * ratio)


class NodeEstimator:
    """EWMA estimates of one node's service time and mean gain.

    ``observe(duration, outputs, consumed)`` records one non-empty
    firing: ``duration`` seconds of wall-clock service and
    ``outputs / consumed`` as the firing's mean per-item gain.  Reads
    return the planned values until ``min_observations`` firings have
    been seen, so a cold estimator never reports drift.

    The EWMAs are *not* seeded by the first firing: a single up-to-``v``
    item batch is a terrible gain sample (a Bernoulli stage at ``v=8``
    spans 0..1 in steps of 1/8), and a slow EWMA seeded there stays
    wrong long enough to trip the drift detector on a healthy pipeline.
    Instead the first ``min_observations`` firings accumulate plain
    totals, the EWMAs are seeded with the totals' mean (for gain, the
    ratio of totals — the items-weighted estimator), and only then do
    per-firing EWMA updates begin.
    """

    def __init__(
        self,
        name: str,
        planned_service: float,
        planned_gain: float,
        *,
        alpha: float = 0.2,
        gain_alpha: float = 0.05,
        min_observations: int = 5,
    ) -> None:
        if min_observations < 1:
            raise SpecError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.name = name
        self.planned_service = float(planned_service)
        self.planned_gain = float(planned_gain)
        self.min_observations = min_observations
        self._service = Ewma(f"{name}.service", alpha)
        # A firing's mean gain over <= v items is far noisier than its
        # duration (a Bernoulli stage at v=8 has ~40% relative spread per
        # firing), so the gain EWMA smooths much harder by default.
        self._gain = Ewma(f"{name}.gain", gain_alpha)
        self._n = 0
        self._skipped = 0
        self._sum_duration = 0.0
        self._sum_outputs = 0
        self._sum_consumed = 0
        self._lock = threading.Lock()

    @property
    def observations(self) -> int:
        return self._n

    @property
    def skipped(self) -> int:
        """Degenerate observations ignored (see :meth:`observe`)."""
        return self._skipped

    @property
    def warmed(self) -> bool:
        return self._n >= self.min_observations

    def observe(self, duration: float, outputs: int, consumed: int) -> None:
        """Record one non-empty firing.

        Degenerate observations — ``consumed < 1``, negative
        ``outputs``, or a non-positive / non-finite ``duration`` — are
        **skipped** (counted in :attr:`skipped`), never folded into the
        EWMAs: a warm-up firing racing an empty feeder queue or a clock
        hiccup would otherwise poison the estimates with a div-by-zero
        ratio, a NaN, or a zero service seed, and the poisoned EWMA
        then trips the drift detector on a healthy pipeline.  Raising
        is no better — ``observe`` runs on the live node threads, so an
        exception here kills the pipeline mid-run over a measurement
        artifact.
        """
        duration = float(duration)
        if (
            consumed < 1
            or outputs < 0
            or duration <= 0.0
            or not math.isfinite(duration)
        ):
            with self._lock:
                self._skipped += 1
            return
        with self._lock:
            self._n += 1
            if self._n <= self.min_observations:
                self._sum_duration += duration
                self._sum_outputs += int(outputs)
                self._sum_consumed += int(consumed)
                if self._n == self.min_observations:
                    self._service.add(self._sum_duration / self._n)
                    self._gain.add(self._sum_outputs / self._sum_consumed)
            else:
                self._service.add(duration)
                self._gain.add(outputs / consumed)

    @property
    def service(self) -> float:
        """Current service estimate (planned value until warmed)."""
        with self._lock:
            if self._n < self.min_observations:
                return self.planned_service
            return self._service.value

    @property
    def gain(self) -> float:
        """Current mean-gain estimate (planned value until warmed)."""
        with self._lock:
            if self._n < self.min_observations:
                return self.planned_gain
            return self._gain.value

    def rebase(self, planned_service: float, planned_gain: float) -> None:
        """Reset against a new operating point (after a re-plan)."""
        with self._lock:
            self.planned_service = float(planned_service)
            self.planned_gain = float(planned_gain)
            self._service = Ewma(self._service.name, self._service.alpha)
            self._gain = Ewma(self._gain.name, self._gain.alpha)
            self._n = 0
            self._skipped = 0
            self._sum_duration = 0.0
            self._sum_outputs = 0
            self._sum_consumed = 0


@dataclass(frozen=True)
class CalibrationSnapshot:
    """A consistent read of every node's current estimates."""

    services: np.ndarray
    gains: np.ndarray
    planned_services: np.ndarray
    planned_gains: np.ndarray
    observations: np.ndarray
    warmed: bool

    @property
    def service_ratios(self) -> np.ndarray:
        """Estimate / planned per node (1.0 = on plan)."""
        return self.services / self.planned_services

    @property
    def gain_ratios(self) -> np.ndarray:
        return self.gains / np.maximum(self.planned_gains, 1e-12)


class OnlineCalibrator:
    """One :class:`NodeEstimator` per pipeline node, snapshot-readable."""

    def __init__(
        self,
        names: list[str],
        planned_services: np.ndarray,
        planned_gains: np.ndarray,
        *,
        alpha: float = 0.2,
        gain_alpha: float = 0.05,
        min_observations: int = 5,
    ) -> None:
        services = np.asarray(planned_services, dtype=float)
        gains = np.asarray(planned_gains, dtype=float)
        if not (len(names) == services.size == gains.size):
            raise SpecError(
                "calibrator names/services/gains length mismatch: "
                f"{len(names)}/{services.size}/{gains.size}"
            )
        self.estimators = [
            NodeEstimator(
                name,
                float(t),
                float(g),
                alpha=alpha,
                gain_alpha=gain_alpha,
                min_observations=min_observations,
            )
            for name, t, g in zip(names, services, gains)
        ]

    def __len__(self) -> int:
        return len(self.estimators)

    def observe(self, node: int, duration: float, outputs: int, consumed: int) -> None:
        self.estimators[node].observe(duration, outputs, consumed)

    def snapshot(self) -> CalibrationSnapshot:
        ests = self.estimators
        return CalibrationSnapshot(
            services=np.asarray([e.service for e in ests]),
            gains=np.asarray([e.gain for e in ests]),
            planned_services=np.asarray([e.planned_service for e in ests]),
            planned_gains=np.asarray([e.planned_gain for e in ests]),
            observations=np.asarray([e.observations for e in ests]),
            warmed=all(e.warmed for e in ests),
        )

    def rebase(
        self, planned_services: np.ndarray, planned_gains: np.ndarray
    ) -> None:
        """Reset every estimator against a freshly adopted plan."""
        for est, t, g in zip(
            self.estimators,
            np.asarray(planned_services, dtype=float),
            np.asarray(planned_gains, dtype=float),
        ):
            est.rebase(float(t), float(g))
