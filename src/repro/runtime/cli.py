"""Command-line entry point: ``repro-run``.

Usage::

    # plan and run the mini-BLAST pipeline live for 2 seconds:
    repro-run run --app blast --seconds 2

    # synthetic pipeline with a mid-run device slowdown (drift demo):
    repro-run run --app synthetic --seconds 4 --drift-node 1 \\
        --drift-factor 1.8 --drift-after 1.0

    # bounded queues with deadline-aware shedding and the watchdog:
    repro-run run --app nids --queue-capacity 256 --shed deadline-aware \\
        --watchdog

    # JSON-lines TCP ingest (mirrors `repro-plan serve`):
    repro-run serve --app gamma --port 7422

``run`` plans the workload (empirical gains + wall-clock service
calibration through the plan cache), replays Poisson arrivals at the
planned rate in real time, and prints the final runtime telemetry —
measured active fraction next to the solver's predicted ``T(w)``,
deadline misses, latency percentiles, and any drift-triggered re-plans.

``serve`` starts the executor with no replay source and accepts items
over TCP through the hardened serving layer (:mod:`repro.serving`);
each request line is ``{"op": "submit", "items": [...]}``,
``{"op": "stats"}``, ``{"op": "health"}``, or ``{"op": "shutdown"}``
(which gracefully drains the pipeline and prints the final report).
Unless ``--no-admission`` is given, submits are admission-controlled
against an in-flight budget derived from the plan's feasibility
certificate; over-budget submits get ``{"ok": false, "retriable":
true}`` so well-behaved clients back off.  ``feed`` is that
well-behaved client: it samples workload payloads and submits them
through the resilient retry/backoff/breaker client.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading

from repro.errors import ReproError

__all__ = ["main", "run_live"]


def run_live(
    app: str = "synthetic",
    *,
    seconds: float = 2.0,
    vector_width: int = 8,
    utilization: float = 0.7,
    deadline_factor: float = 4.0,
    rate_scale: float = 1.15,
    seed: int = 0,
    service_floor: float = 0.005,
    queue_capacity: int | None = None,
    shed: str | None = None,
    watchdog: bool = False,
    replanning: bool = True,
    drift_node: int | None = None,
    drift_factor: float = 1.0,
    drift_after: float = 0.5,
    drift_config=None,
    control_interval: float = 0.05,
    min_replan_interval: float = 0.25,
    cache=None,
    timeout: float | None = None,
    policy: str | None = None,
):
    """Plan a workload, run it live on Poisson arrivals, return the report.

    This is the programmatic form of ``repro-run run`` — the benchmark,
    the CI smoke test, and the sim-vs-live experiment all call it.
    Returns ``(plan, report)``.

    ``policy`` selects the live control policy (see
    :mod:`repro.control.live`): ``"replan"``/None keeps the built-in
    drift-detector + re-planner path; ``"oracle"`` freezes the planned
    waits; ``"bandit"`` and ``"learned"`` are trained in simulated time
    before the run starts and then drive live plan selection through
    the executor's ``policy=`` hook.

    ``rate_scale`` multiplies the planned ``tau0`` for the replayed
    arrivals (2.0 = half rate).  The default 1.15 leaves 15% head
    headroom: the solver drives the head period to the ``x_0 <= v*tau0``
    boundary, and feeding at *exactly* that rate leaves zero margin for
    sleep overshoot and Poisson bursts — queues then random-walk upward
    and latency drifts past any deadline, on a real device as much as
    here.  ``drift_node``/``drift_factor`` scale
    one node's padded service time ``drift_after`` seconds into the run,
    emulating a device slowdown the online calibrator must detect.
    """
    from repro.arrivals.poisson import PoissonArrivals
    from repro.resilience.shedding import make_shed_policy
    from repro.resilience.watchdog import DeadlineWatchdog
    from repro.runtime.executor import PipelineExecutor
    from repro.runtime.ingest import ReplaySource
    from repro.runtime.kernels import build_workload, plan_runtime

    workload = build_workload(app, seed=seed)
    plan = plan_runtime(
        workload,
        vector_width=vector_width,
        utilization=utilization,
        deadline_factor=deadline_factor,
        service_floor=service_floor,
        cache=cache,
        seed=seed,
    )
    wd = None
    if watchdog:
        wd = DeadlineWatchdog(
            plan.problem.deadline,
            sustain_time=2 * control_interval,
            drain_backlog=2 * vector_width,
            restore_alpha=0.1,
            restore_time=2 * control_interval,
        )
    shed_policy = None
    if shed is not None:
        origins = None  # bound below, after the executor exists

        def _slack_of(ids, now):
            lookup = origins.lookup(ids)
            return lookup + plan.problem.deadline - now

        shed_policy = make_shed_policy(shed, slack_of=_slack_of)
    control_policy = None
    if policy is not None and policy != "replan":
        from repro.control.live import make_live_policy

        control_policy = make_live_policy(
            policy, plan, cache=cache, seed=seed
        )
    executor = PipelineExecutor.from_plan(
        plan,
        cache=cache,
        enable_replanning=replanning,
        drift=drift_config,
        queue_capacity=queue_capacity,
        shed_policy=shed_policy,
        watchdog=wd,
        control_interval=control_interval,
        min_replan_interval=min_replan_interval,
        policy=control_policy,
    )
    if shed is not None:
        origins = executor.origins
    tau0 = plan.problem.tau0 * rate_scale
    n_items = max(1, int(round(seconds / tau0)))
    source = ReplaySource(
        PoissonArrivals(tau0),
        workload.sample_payload,
        n_items=n_items,
        seed=seed + 1,
    )
    executor.start()
    if drift_node is not None and drift_factor != 1.0:
        timer = threading.Timer(
            drift_after,
            executor.inject_service_scale,
            args=(drift_node, drift_factor),
        )
        timer.daemon = True
        timer.start()
    source.feed(executor)
    if timeout is None:
        timeout = max(30.0, 10.0 * seconds)
    report = executor.join(timeout=timeout)
    return plan, report


def _report_to_dict(plan, report) -> dict:
    t = report.telemetry
    return {
        "app": plan.workload.name,
        "tau0": plan.problem.tau0,
        "deadline": plan.problem.deadline,
        "vector_width": plan.pipeline.vector_width,
        "planned_active_fraction": t.planned_active_fraction,
        "measured_active_fraction": t.measured_active_fraction,
        "elapsed": t.elapsed,
        "items_ingested": t.items_ingested,
        "outputs": t.outputs,
        "missed_items": t.missed_items,
        "miss_rate": t.miss_rate,
        "latency_mean": t.latency_mean,
        "latency_p99": t.latency_p99,
        "latency_max": t.latency_max,
        "replans": t.replans,
        "policy_swaps": report.policy_swaps,
        "replan_snap_hits": t.replan_snap_hits,
        "replan_snap_misses": t.replan_snap_misses,
        "replan_max_snap_distance": t.replan_max_snap_distance,
        "degraded_time": t.degraded_time,
        "total_shed": t.total_shed,
        "replan_events": [
            {
                "time": e.time,
                "source": e.source,
                "solve_seconds": e.solve_seconds,
                "feasible": e.feasible,
                "adopted": e.adopted,
                "active_fraction": e.active_fraction,
                "snapped": e.snapped,
                "snap_distance": e.snap_distance,
            }
            for e in report.replan_events
        ],
        "nodes": [
            {
                "name": n.name,
                "firings": n.firings,
                "empty_firings": n.empty_firings,
                "items_consumed": n.items_consumed,
                "items_produced": n.items_produced,
                "busy_fraction": n.busy_fraction,
                "planned_service": n.planned_service,
                "ewma_service": n.ewma_service,
                "planned_wait": n.planned_wait,
                "ewma_gain": n.ewma_gain,
                "queue_hwm": n.queue_hwm,
                "queue_shed": n.queue_shed,
            }
            for n in t.nodes
        ],
    }


def _cmd_run(args: argparse.Namespace) -> int:
    plan, report = run_live(
        args.app,
        seconds=args.seconds,
        vector_width=args.vector_width,
        utilization=args.utilization,
        deadline_factor=args.deadline_factor,
        rate_scale=args.rate_scale,
        seed=args.seed,
        queue_capacity=args.queue_capacity,
        shed=args.shed,
        watchdog=args.watchdog,
        replanning=not args.no_replanning,
        drift_node=args.drift_node,
        drift_factor=args.drift_factor,
        drift_after=args.drift_after,
        policy=args.policy,
    )
    print(
        f"planned {plan.workload.name}: tau0={plan.problem.tau0 * 1e3:.3g} ms, "
        f"D={plan.problem.deadline * 1e3:.3g} ms, "
        f"plan source={plan.outcome.source}"
    )
    print(report.render())
    if args.policy is not None:
        print(
            f"policy {args.policy}: {report.policy_swaps} live wait swaps"
        )
    for e in report.replan_events:
        verdict = "adopted" if e.adopted else "rejected"
        print(
            f"replan at {e.time:.3f}s: {verdict} ({e.source}, "
            f"{e.solve_seconds * 1e3:.2f} ms solve, "
            f"AF={e.active_fraction:.4f})"
        )
    if args.json is not None:
        from pathlib import Path

        Path(args.json).write_text(
            json.dumps(_report_to_dict(plan, report), indent=2) + "\n"
        )
        print(f"report written to {args.json}")
    return 0 if report.missed_items == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.runtime.executor import PipelineExecutor
    from repro.runtime.ingest import IngestServer
    from repro.runtime.kernels import build_workload, plan_runtime
    from repro.serving import (
        AdmissionController,
        budget_from_event,
        budget_from_plan,
    )
    from repro.serving.config import serving_config_from_args

    if args.tenants:
        return _cmd_serve_tenants(args)

    workload = build_workload(args.app, seed=args.seed)
    plan = plan_runtime(
        workload,
        vector_width=args.vector_width,
        utilization=args.utilization,
        deadline_factor=args.deadline_factor,
        seed=args.seed,
    )
    admission = None
    on_replan = None
    if not args.no_admission:
        budget = budget_from_plan(plan, slack_vectors=args.slack_vectors)
        admission = AdmissionController(budget)
        print(budget.render(), flush=True)

        def on_replan(event, admission=admission, plan=plan):
            # Keep the in-flight budget synced to the plan actually in
            # force: a hot re-plan adoption replaces the certificate the
            # server-start budget was derived from.
            admission.set_budget(
                budget_from_event(
                    plan, event, slack_vectors=args.slack_vectors
                )
            )

    executor = PipelineExecutor.from_plan(
        plan,
        restart_failed_nodes=args.restart_failed_nodes,
        on_replan=on_replan,
    )
    executor.start()
    server = IngestServer(
        executor,
        host=args.host,
        port=args.port,
        config=serving_config_from_args(args),
        admission=admission,
    )
    server.start()
    print(
        f"repro-run serving {args.app} on {server.host}:{server.port} "
        f"(v={plan.pipeline.vector_width}, "
        f"D={plan.problem.deadline * 1e3:.3g} ms)",
        flush=True,
    )
    try:
        server.join()
    except KeyboardInterrupt:  # pragma: no cover — interactive only
        server.stop()
        executor.finish_ingest()
    report = executor.join(timeout=60.0)
    print(report.render())
    return 0


def _cmd_serve_tenants(args: argparse.Namespace) -> int:
    """Multi-tenant serve mode: one server, K admitted pipelines."""
    import zlib

    from repro.runtime.kernels import build_workload, plan_runtime
    from repro.serving.config import serving_config_from_args
    from repro.tenancy.executor import MultiPipelineExecutor
    from repro.tenancy.server import MultiTenantIngestServer

    # Calibrate once against a base workload; per-tenant plans reuse the
    # measured nominal services so an admit costs one solve, not a
    # wall-clock calibration.
    base = build_workload(args.app, seed=args.seed)
    base_plan = plan_runtime(
        base,
        vector_width=args.vector_width,
        utilization=args.utilization,
        deadline_factor=args.deadline_factor,
        seed=args.seed,
    )
    nominal = [k.nominal_service for k in base.kernels]

    def plan_factory(name: str, tau0, deadline):
        # Fresh kernels per tenant (kernels hold RNG state and belong to
        # one executor's threads); deterministic per-name seed.
        tenant_seed = args.seed + 1 + (zlib.crc32(name.encode()) % 100003)
        workload = build_workload(args.app, seed=tenant_seed)
        for kernel, service in zip(workload.kernels, nominal):
            kernel.nominal_service = service
        return plan_runtime(
            workload,
            vector_width=args.vector_width,
            tau0=float(tau0) if tau0 is not None else base_plan.problem.tau0,
            deadline=(
                float(deadline)
                if deadline is not None
                else base_plan.problem.deadline
            ),
            b=base_plan.b,
            calibrate_b=False,
            seed=tenant_seed,
        )

    multi = MultiPipelineExecutor(
        arbitration=args.arbitration,
        capacity=args.device_capacity,
        slack_vectors=args.slack_vectors,
        max_overload=args.max_overload,
    )
    multi.start()
    server = MultiTenantIngestServer(
        multi,
        plan_factory,
        host=args.host,
        port=args.port,
        config=serving_config_from_args(args),
    )
    server.start()
    print(
        f"repro-run serving tenants of {args.app} on "
        f"{server.host}:{server.port} (arbitration={args.arbitration}, "
        f"capacity={args.device_capacity:g})",
        flush=True,
    )
    try:
        server.join()
    except KeyboardInterrupt:  # pragma: no cover — interactive only
        server.stop()
        multi.finish_ingest()
    report = multi.join(timeout=60.0)
    for name, tenant_report in sorted(report.tenants.items()):
        t = tenant_report.telemetry
        print(
            f"tenant {name} [{report.qos.get(name, '?')}]: "
            f"{t.items_ingested} in, {t.outputs} out, "
            f"{t.missed_items} missed"
        )
    if report.device is not None:
        print(report.device.render())
    return 0


def _cmd_feed(args: argparse.Namespace) -> int:
    """Feed a running ingest server over TCP via the resilient client."""
    import numpy as np

    from repro.runtime.kernels import build_workload
    from repro.serving import ResilientClient, RetryPolicy

    host, _, port_s = args.connect.rpartition(":")
    try:
        port = int(port_s)
    except ValueError:
        print(
            f"error: --connect expects HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    workload = build_workload(args.app, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    accepted = 0
    rejected = 0
    with ResilientClient(
        host or "127.0.0.1",
        port,
        retry=RetryPolicy(max_attempts=args.max_attempts),
    ) as client:
        for _ in range(args.batches):
            payload = workload.sample_payload(args.batch_items, rng)
            reply = client.request(
                {"op": "submit", "items": np.asarray(payload).tolist()}
            )
            if reply.get("ok"):
                accepted += reply.get("accepted", 0)
            else:
                rejected += 1
            if args.interval > 0:
                import time

                time.sleep(args.interval)
        print(
            f"fed {accepted} items in {args.batches} batches "
            f"({rejected} batches rejected after retries); "
            f"client: {client.retries} retries, "
            f"{client.transport_failures} transport failures, "
            f"breaker {client.breaker.state}"
        )
        if args.shutdown:
            reply = client.request({"op": "shutdown"})
            print(f"shutdown: {json.dumps(reply)}")
    return 0 if rejected == 0 else 1


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Run a planned pipeline live on the wall clock.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--app",
            default="synthetic",
            choices=("blast", "nids", "gamma", "synthetic"),
            help="workload (real app kernels or synthetic spin kernels)",
        )
        p.add_argument("--vector-width", type=int, default=8)
        p.add_argument(
            "--utilization",
            type=float,
            default=0.7,
            help="target bottleneck load when deriving tau0",
        )
        p.add_argument(
            "--deadline-factor",
            type=float,
            default=4.0,
            help="deadline as a multiple of sum(b_i * t_i)",
        )
        p.add_argument("--seed", type=int, default=0)

    run_p = sub.add_parser("run", help="replay arrivals through a live run")
    _add_common(run_p)
    run_p.add_argument("--seconds", type=float, default=2.0)
    run_p.add_argument(
        "--rate-scale",
        type=float,
        default=1.15,
        help=(
            "arrival tau0 multiplier (default 1.15: 15%% headroom below "
            "the planned head rate; 2.0 = half rate)"
        ),
    )
    run_p.add_argument("--queue-capacity", type=int, default=None)
    run_p.add_argument(
        "--shed",
        default=None,
        choices=("drop-newest", "drop-oldest", "deadline-aware"),
        help="shed policy for bounded queues",
    )
    run_p.add_argument(
        "--watchdog",
        action="store_true",
        help="attach the deadline watchdog to the live run",
    )
    run_p.add_argument(
        "--no-replanning",
        action="store_true",
        help="disable drift detection and re-planning",
    )
    run_p.add_argument("--drift-node", type=int, default=None)
    run_p.add_argument("--drift-factor", type=float, default=1.0)
    run_p.add_argument("--drift-after", type=float, default=0.5)
    run_p.add_argument(
        "--policy",
        default=None,
        choices=("oracle", "replan", "bandit", "learned"),
        help=(
            "live control policy (repro.control): 'replan' is the "
            "built-in detector + re-planner (the default behavior), "
            "'oracle' freezes the planned waits, 'bandit'/'learned' are "
            "trained in simulated time at startup and then drive plan "
            "selection live"
        ),
    )
    run_p.add_argument(
        "--json", metavar="FILE", default=None, help="write the report as JSON"
    )

    serve_p = sub.add_parser("serve", help="JSON-lines TCP ingest server")
    _add_common(serve_p)
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7422)
    serve_p.add_argument(
        "--no-admission",
        action="store_true",
        help="disable the certificate-derived in-flight admission budget",
    )
    serve_p.add_argument(
        "--slack-vectors",
        type=float,
        default=2.0,
        help="admission headroom in vector widths above Little's law",
    )
    serve_p.add_argument(
        "--restart-failed-nodes",
        action="store_true",
        help="supervise node threads and restart them after a crash",
    )
    serve_p.add_argument(
        "--tenants",
        action="store_true",
        help="multi-tenant mode: admit/evict per-tenant pipelines over "
        "the wire with certificate-based admission and QoS classes",
    )
    serve_p.add_argument(
        "--arbitration",
        default="none",
        choices=("none", "wrr"),
        help="--tenants device sharing: 'wrr' serializes firings through "
        "a weighted-round-robin arbiter with per-tenant ledgers",
    )
    serve_p.add_argument(
        "--device-capacity",
        type=float,
        default=1.0,
        help="--tenants admission capacity in active-fraction units",
    )
    serve_p.add_argument(
        "--max-overload",
        type=float,
        default=None,
        help="--tenants cap on total (incl. best-effort) oversubscription",
    )
    from repro.serving.config import add_serving_arguments

    add_serving_arguments(serve_p)

    feed_p = sub.add_parser(
        "feed", help="feed a running ingest server over TCP"
    )
    _add_common(feed_p)
    feed_p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="address of a running repro-run serve",
    )
    feed_p.add_argument("--batches", type=int, default=32)
    feed_p.add_argument("--batch-items", type=int, default=8)
    feed_p.add_argument(
        "--interval",
        type=float,
        default=0.0,
        help="seconds to sleep between batches",
    )
    feed_p.add_argument(
        "--max-attempts",
        type=int,
        default=4,
        help="retry attempts per batch (backoff + jitter between tries)",
    )
    feed_p.add_argument(
        "--shutdown",
        action="store_true",
        help="send {'op': 'shutdown'} after the last batch",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "feed":
            return _cmd_feed(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
