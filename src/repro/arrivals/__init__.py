"""Input stream (arrival-process) generators.

The paper assumes items arrive at a fixed rate ``rho_0`` (inter-arrival
time ``tau_0``, Section 2.1).  :class:`FixedRateArrivals` implements that;
:class:`PoissonArrivals` and :class:`BurstyArrivals` support the future-work
directions of Section 7 (Poisson generalization, sustained non-average
behaviour), :class:`DiurnalArrivals` and :class:`HeavyTailedArrivals`
provide the nonstationary models the learned control layer
(:mod:`repro.control`) trains against, and :class:`TraceArrivals` replays
recorded timestamps.
"""

from repro.arrivals.base import ArrivalProcess
from repro.arrivals.fixed import FixedRateArrivals
from repro.arrivals.poisson import PoissonArrivals
from repro.arrivals.bursty import BurstyArrivals
from repro.arrivals.nonstationary import DiurnalArrivals, HeavyTailedArrivals
from repro.arrivals.trace import TraceArrivals

__all__ = [
    "ArrivalProcess",
    "FixedRateArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "HeavyTailedArrivals",
    "TraceArrivals",
]
