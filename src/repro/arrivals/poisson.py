"""Poisson-process arrivals (Section 7's generalization of fixed rate)."""

from __future__ import annotations

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.utils.validation import check_positive

__all__ = ["PoissonArrivals"]


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival times with mean ``tau0`` (rate ``1/tau0``)."""

    def __init__(self, tau0: float) -> None:
        self.tau0 = check_positive("tau0", tau0)

    @property
    def mean_rate(self) -> float:
        return 1.0 / self.tau0

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        gaps = rng.exponential(self.tau0, size=n)
        return self._check_output(np.cumsum(gaps), n)

    def __repr__(self) -> str:
        return f"PoissonArrivals(tau0={self.tau0!r})"
