"""Replay of recorded arrival timestamps."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import SpecError

__all__ = ["TraceArrivals"]


class TraceArrivals(ArrivalProcess):
    """Replays a fixed, nondecreasing sequence of arrival times.

    Ties (equal consecutive timestamps) are explicitly allowed, matching
    the :meth:`~repro.arrivals.base.ArrivalProcess.generate` contract —
    real instrument captures quantize timestamps and produce them
    routinely.  Useful for driving the simulator with recorded
    timestamps, or for constructing adversarial test inputs.  Requests
    for more items than the trace holds raise :class:`SpecError`.
    """

    def __init__(self, times: Sequence[float]) -> None:
        arr = np.asarray(times, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise SpecError("trace must be a non-empty 1-D sequence of times")
        if (np.diff(arr) < 0).any():
            raise SpecError("trace times must be nondecreasing")
        if arr[0] < 0:
            raise SpecError("trace times must be >= 0")
        self._times = arr

    def __len__(self) -> int:
        return int(self._times.size)

    @property
    def mean_rate(self) -> float:
        if self._times.size < 2:
            return float("inf")
        span = float(self._times[-1] - self._times[0])
        if span <= 0:
            return float("inf")
        return (self._times.size - 1) / span

    def generate(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        if n > self._times.size:
            raise SpecError(
                f"trace holds {self._times.size} arrivals, {n} requested"
            )
        return self._check_output(self._times[:n].copy(), n)
