"""Arrival-process interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["ArrivalProcess"]


class ArrivalProcess(ABC):
    """Generates the timestamps at which stream items enter the pipeline."""

    @property
    @abstractmethod
    def mean_rate(self) -> float:
        """Long-run average arrivals per cycle (the paper's ``rho_0``)."""

    @abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Strictly nondecreasing array of ``n`` arrival times starting >= 0."""

    @property
    def mean_interarrival(self) -> float:
        """``tau_0 = 1 / rho_0``."""
        rate = self.mean_rate
        if rate <= 0:
            return float("inf")
        return 1.0 / rate

    def _check_output(self, times: np.ndarray, n: int) -> np.ndarray:
        """Shared sanity check for concrete generators."""
        if times.shape != (n,):
            raise AssertionError(
                f"{type(self).__name__} produced shape {times.shape}, wanted ({n},)"
            )
        if n and (np.diff(times) < 0).any():
            raise AssertionError(f"{type(self).__name__} produced decreasing times")
        if n and times[0] < 0:
            raise AssertionError(f"{type(self).__name__} produced a negative time")
        return times
