"""Arrival-process interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["ArrivalProcess"]


class ArrivalProcess(ABC):
    """Generates the timestamps at which stream items enter the pipeline."""

    @property
    @abstractmethod
    def mean_rate(self) -> float:
        """Long-run average arrivals per cycle (the paper's ``rho_0``)."""

    @abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Nondecreasing array of ``n`` arrival times starting >= 0.

        The contract is **nondecreasing, ties allowed**: ``times[k+1] >=
        times[k]`` for all ``k``.  Equal consecutive timestamps are
        legitimate (trace replays of real instruments produce them
        routinely), so consumers must not treat the origin timestamp as a
        unique item identity — see
        :class:`repro.sim.metrics.LatencyLedger`, which keys per-item
        accounting on integer item ids for exactly this reason.
        """

    @property
    def mean_interarrival(self) -> float:
        """``tau_0 = 1 / rho_0``."""
        rate = self.mean_rate
        if rate <= 0:
            return float("inf")
        return 1.0 / rate

    def _check_output(self, times: np.ndarray, n: int) -> np.ndarray:
        """Shared sanity check: nondecreasing (ties allowed), nonnegative."""
        if times.shape != (n,):
            raise AssertionError(
                f"{type(self).__name__} produced shape {times.shape}, wanted ({n},)"
            )
        if n and (np.diff(times) < 0).any():
            raise AssertionError(f"{type(self).__name__} produced decreasing times")
        if n and times[0] < 0:
            raise AssertionError(f"{type(self).__name__} produced a negative time")
        return times
