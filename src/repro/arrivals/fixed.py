"""Deterministic fixed-rate arrivals (the paper's model)."""

from __future__ import annotations

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["FixedRateArrivals"]


class FixedRateArrivals(ArrivalProcess):
    """Items arrive exactly every ``tau0`` cycles, starting at ``offset``.

    This is the paper's Section 2.1 assumption: a polling sensor producing
    one item per ``tau_0`` cycles.
    """

    def __init__(self, tau0: float, *, offset: float = 0.0) -> None:
        self.tau0 = check_positive("tau0", tau0)
        self.offset = check_nonnegative("offset", offset)

    @property
    def mean_rate(self) -> float:
        return 1.0 / self.tau0

    def generate(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Deterministic: the ``rng`` argument is accepted but unused."""
        times = self.offset + self.tau0 * np.arange(n, dtype=float)
        return self._check_output(times, n)

    def __repr__(self) -> str:
        return f"FixedRateArrivals(tau0={self.tau0!r}, offset={self.offset!r})"
