"""Nonstationary arrival models: diurnal load curves and heavy-tailed bursts.

Both models stress the drift -> re-plan -> cache-hit loop and the learned
control policies (:mod:`repro.control`): the long-run rate is well
defined, but over any control-interval-sized window the instantaneous
rate wanders far from it.

:class:`DiurnalArrivals` is a nonhomogeneous Poisson process whose rate
follows a sinusoidal "time of day" curve.  With ``amplitude > 1`` the
curve is clamped at zero over part of each period — *empty epochs* in
which no items arrive at all.  Generation inverts the integrated rate
``Lambda(t)``; over an empty epoch ``Lambda`` is flat, and the inverse
must map the whole flat stretch to its right edge without ever stepping
backwards.  The output is explicitly clamped nondecreasing
(``np.maximum.accumulate``) so a generated trace always satisfies the
:class:`~repro.arrivals.trace.TraceArrivals` replay contract — the
regression pinned by ``tests/test_arrivals.py``.

:class:`HeavyTailedArrivals` emits bursts whose sizes follow a truncated
Zipf (discrete power) law: most bursts are small, but the tail is heavy
enough that a single burst can swamp a queue — the "sustained
non-average-case behaviour" of the paper's Section 5 taken to its
power-law extreme.
"""

from __future__ import annotations

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import SpecError
from repro.utils.validation import check_positive

__all__ = ["DiurnalArrivals", "HeavyTailedArrivals"]

#: Grid points per period used to tabulate the integrated rate.
_GRID_PER_PERIOD = 2048


class DiurnalArrivals(ArrivalProcess):
    """Nonhomogeneous Poisson arrivals with a sinusoidal rate curve.

    The instantaneous rate is::

        rate(t) = max(0, (1/tau0) * (1 + amplitude * sin(2*pi*(t/period + phase))))

    Parameters
    ----------
    tau0:
        Inter-arrival time at the *unclamped* mean of the curve.  With
        ``amplitude <= 1`` the long-run mean rate is exactly ``1/tau0``;
        with ``amplitude > 1`` clamping at zero raises it above
        ``1/tau0`` (the lost trough mass never goes negative).
    period:
        Length of one diurnal cycle, in the same time unit as ``tau0``.
    amplitude:
        Relative swing of the curve.  ``amplitude > 1`` produces empty
        epochs (zero rate) around each trough.
    phase:
        Fraction of a period to shift the curve (0.25 starts at peak).
    """

    def __init__(
        self,
        tau0: float,
        *,
        period: float,
        amplitude: float = 0.8,
        phase: float = 0.0,
    ) -> None:
        self.tau0 = check_positive("tau0", tau0)
        self.period = check_positive("period", period)
        if amplitude < 0:
            raise SpecError(f"amplitude must be >= 0, got {amplitude}")
        self.amplitude = float(amplitude)
        self.phase = float(phase)

    def rate(self, t: np.ndarray | float) -> np.ndarray | float:
        """Instantaneous arrival rate at time(s) ``t`` (clamped at 0)."""
        t = np.asarray(t, dtype=float)
        raw = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * (t / self.period + self.phase)
        )
        return np.maximum(0.0, raw) / self.tau0

    @property
    def mean_rate(self) -> float:
        grid = np.linspace(0.0, self.period, _GRID_PER_PERIOD + 1)
        return float(np.trapezoid(self.rate(grid), grid) / self.period)

    def _lambda_table(self, horizon: float) -> tuple[np.ndarray, np.ndarray]:
        """Tabulated integrated rate ``Lambda`` on a grid up to ``horizon``."""
        n_cells = max(2, int(np.ceil(horizon / self.period * _GRID_PER_PERIOD)))
        grid = np.linspace(0.0, horizon, n_cells + 1)
        rates = np.asarray(self.rate(grid))
        # Trapezoid increments are >= 0, so Lambda is exactly nondecreasing
        # (flat across empty epochs).
        increments = 0.5 * (rates[1:] + rates[:-1]) * np.diff(grid)
        lam = np.concatenate(([0.0], np.cumsum(increments)))
        return grid, lam

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return self._check_output(np.empty(0), 0)
        # Unit-rate exponential cumulative sums, inverted through Lambda.
        targets = np.cumsum(rng.exponential(1.0, size=n))
        mean = self.mean_rate
        if mean <= 0:
            raise SpecError(
                "diurnal rate curve integrates to zero; no arrivals possible"
            )
        horizon = max(self.period, 1.5 * targets[-1] / mean)
        grid, lam = self._lambda_table(horizon)
        while lam[-1] < targets[-1]:
            horizon *= 2.0
            grid, lam = self._lambda_table(horizon)
        # np.interp over a nondecreasing (flat across empty epochs) table
        # is monotone, but interpolation *within* a flat stretch can land
        # anywhere inside the epoch depending on float rounding of the
        # bracketing Lambda values.  The accumulate-clamp guarantees the
        # output honors the nondecreasing arrival contract regardless —
        # without it, a trace generated across a zero-rate trough could
        # step backwards by one ULP and TraceArrivals would reject it.
        times = np.interp(targets, lam, grid)
        times = np.maximum.accumulate(times)
        return self._check_output(times, n)

    def __repr__(self) -> str:
        return (
            f"DiurnalArrivals(tau0={self.tau0!r}, period={self.period!r}, "
            f"amplitude={self.amplitude!r}, phase={self.phase!r})"
        )


class HeavyTailedArrivals(ArrivalProcess):
    """Bursts with truncated-Zipf (power-law) sizes.

    Bursts start after exponential idle gaps with mean ``tau_between``;
    within a burst, items are ``tau_burst`` apart.  Burst sizes ``k`` in
    ``[1, max_burst]`` have probability proportional to ``k**-exponent``
    — for ``exponent`` near 1.5-2.5 the size distribution is heavy
    enough that rare giant bursts dominate queue high-water marks.

    Parameters
    ----------
    tau_between:
        Mean idle time before each burst (exponential).
    tau_burst:
        Inter-arrival time within a burst (must be < tau_between).
    exponent:
        Zipf exponent of the burst-size law (> 1).
    max_burst:
        Truncation of the size law (>= 1); keeps ``mean_rate`` finite
        and simulations bounded.
    """

    def __init__(
        self,
        tau_between: float,
        tau_burst: float,
        *,
        exponent: float = 2.0,
        max_burst: int = 512,
    ) -> None:
        self.tau_between = check_positive("tau_between", tau_between)
        self.tau_burst = check_positive("tau_burst", tau_burst)
        if tau_burst >= tau_between:
            raise SpecError(
                f"tau_burst ({tau_burst}) must be < tau_between ({tau_between})"
            )
        if exponent <= 1.0:
            raise SpecError(f"exponent must be > 1, got {exponent}")
        if max_burst < 1:
            raise SpecError(f"max_burst must be >= 1, got {max_burst}")
        self.exponent = float(exponent)
        self.max_burst = int(max_burst)
        sizes = np.arange(1, self.max_burst + 1, dtype=float)
        pmf = sizes**-self.exponent
        pmf /= pmf.sum()
        self._size_cdf = np.cumsum(pmf)
        self._mean_burst = float(np.dot(sizes, pmf))

    @property
    def mean_burst_size(self) -> float:
        """Expected items per burst under the truncated size law."""
        return self._mean_burst

    @property
    def mean_rate(self) -> float:
        mean_span = self.tau_between + (self._mean_burst - 1.0) * self.tau_burst
        return self._mean_burst / mean_span

    def _sample_size(self, rng: np.random.Generator) -> int:
        u = rng.random()
        return int(np.searchsorted(self._size_cdf, u, side="right")) + 1

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        gaps = np.empty(n, dtype=float)
        i = 0
        while i < n:
            gaps[i] = rng.exponential(self.tau_between)
            size = min(self._sample_size(rng), n - i)
            gaps[i + 1 : i + size] = self.tau_burst
            i += size
        return self._check_output(np.cumsum(gaps), n)

    def __repr__(self) -> str:
        return (
            f"HeavyTailedArrivals(tau_between={self.tau_between!r}, "
            f"tau_burst={self.tau_burst!r}, exponent={self.exponent!r}, "
            f"max_burst={self.max_burst!r})"
        )
