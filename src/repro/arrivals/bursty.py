"""Bursty (two-state modulated) arrivals.

Models the "sustained non-average-case behaviour over longer stretches"
that Section 5 warns may inflate the worst-case scale parameter ``S``: the
stream alternates between a *normal* phase with inter-arrival ``tau_normal``
and a *burst* phase with shorter inter-arrival ``tau_burst``.  Phase
durations are geometric in item count, giving a Markov-modulated
deterministic process.
"""

from __future__ import annotations

import numpy as np

from repro.arrivals.base import ArrivalProcess
from repro.errors import SpecError
from repro.utils.validation import check_in_range, check_positive

__all__ = ["BurstyArrivals"]


class BurstyArrivals(ArrivalProcess):
    """Two-phase modulated arrivals.

    Parameters
    ----------
    tau_normal, tau_burst:
        Inter-arrival times in the two phases (burst must be faster).
    burst_fraction:
        Long-run fraction of items emitted while bursting, in (0, 1).
    mean_burst_len:
        Average number of consecutive burst items (>= 1); phase lengths are
        geometric with this mean.
    """

    def __init__(
        self,
        tau_normal: float,
        tau_burst: float,
        *,
        burst_fraction: float = 0.1,
        mean_burst_len: float = 20.0,
    ) -> None:
        self.tau_normal = check_positive("tau_normal", tau_normal)
        self.tau_burst = check_positive("tau_burst", tau_burst)
        if tau_burst >= tau_normal:
            raise SpecError(
                f"tau_burst ({tau_burst}) must be < tau_normal ({tau_normal})"
            )
        self.burst_fraction = check_in_range(
            "burst_fraction", burst_fraction, 0.0, 1.0, lo_open=True, hi_open=True
        )
        self.mean_burst_len = check_positive("mean_burst_len", mean_burst_len)
        if mean_burst_len < 1:
            raise SpecError(f"mean_burst_len must be >= 1, got {mean_burst_len}")

    @property
    def mean_normal_len(self) -> float:
        """Average items per normal phase implied by the burst fraction."""
        f = self.burst_fraction
        return self.mean_burst_len * (1.0 - f) / f

    @property
    def mean_rate(self) -> float:
        f = self.burst_fraction
        mean_gap = f * self.tau_burst + (1.0 - f) * self.tau_normal
        return 1.0 / mean_gap

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        gaps = np.empty(n, dtype=float)
        i = 0
        bursting = False
        while i < n:
            mean_len = self.mean_burst_len if bursting else self.mean_normal_len
            # Geometric with the given mean, at least one item per phase.
            length = 1 + rng.geometric(min(1.0, 1.0 / mean_len)) - 1
            length = max(int(length), 1)
            tau = self.tau_burst if bursting else self.tau_normal
            end = min(i + length, n)
            gaps[i:end] = tau
            i = end
            bursting = not bursting
        return self._check_output(np.cumsum(gaps), n)

    def __repr__(self) -> str:
        return (
            f"BurstyArrivals(tau_normal={self.tau_normal!r}, "
            f"tau_burst={self.tau_burst!r}, "
            f"burst_fraction={self.burst_fraction!r})"
        )
