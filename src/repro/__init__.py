"""repro — reproduction of "Enabling Real-Time Irregular Data-Flow
Pipelines on SIMD Devices" (Plano & Buhler, SRMPDS/ICPP 2021).

The package implements the paper's scheduling strategies and every
substrate they rest on:

- :mod:`repro.core` — the enforced-waits and monolithic optimizations,
  feasibility/sensitivity analysis, parameter sweeps, and the empirical
  worst-case calibration loop.
- :mod:`repro.sim` — discrete-event simulators of both strategies.
- :mod:`repro.dataflow`, :mod:`repro.simd`, :mod:`repro.des`,
  :mod:`repro.arrivals`, :mod:`repro.solvers`, :mod:`repro.queueing` —
  the substrates (dataflow model, SIMD device, DES kernel, stream
  generators, optimization machinery, bulk-service queueing theory).
- :mod:`repro.apps` — the BLAST test application (Table 1) and the
  intro's motivating applications (gamma-ray burst detection, network
  intrusion detection, decision cascades).
- :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart
----------
>>> from repro import blast_pipeline, RealTimeProblem, solve_enforced_waits
>>> problem = RealTimeProblem(blast_pipeline(), tau0=50.0, deadline=2.0e5)
>>> sol = solve_enforced_waits(problem, b=[1, 3, 9, 6])
>>> bool(sol.feasible)
True
"""

from repro._version import __version__
from repro.core.model import RealTimeProblem
from repro.core.enforced_waits import (
    EnforcedWaitsProblem,
    EnforcedWaitsSolution,
    optimistic_b,
    solve_enforced_waits,
)
from repro.core.monolithic import (
    MonolithicProblem,
    MonolithicSolution,
    solve_monolithic,
)
from repro.core.sweep import SweepResult, paper_grid, sweep_strategies
from repro.core.analysis import difference_surface, dominance_regions
from repro.core.calibration import calibrate_enforced_b
from repro.dataflow.spec import NodeSpec, PipelineSpec
from repro.dataflow.gains import (
    BernoulliGain,
    CensoredPoissonGain,
    DeterministicGain,
    EmpiricalGain,
    MixtureGain,
)
from repro.arrivals import (
    BurstyArrivals,
    FixedRateArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.core.admission import AdmissionRequest, admit, max_copies
from repro.core.offsets import aligned_offsets
from repro.core.pareto import deadline_frontier, min_deadline_for_af
from repro.sim.adaptive import AdaptiveWaitsSimulator
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.monolithic import MonolithicSimulator
from repro.sim.runner import run_trials
from repro.apps.blast.pipeline import blast_pipeline, CALIBRATED_B

__all__ = [
    "__version__",
    "RealTimeProblem",
    "EnforcedWaitsProblem",
    "EnforcedWaitsSolution",
    "optimistic_b",
    "solve_enforced_waits",
    "MonolithicProblem",
    "MonolithicSolution",
    "solve_monolithic",
    "SweepResult",
    "paper_grid",
    "sweep_strategies",
    "difference_surface",
    "dominance_regions",
    "calibrate_enforced_b",
    "NodeSpec",
    "PipelineSpec",
    "BernoulliGain",
    "CensoredPoissonGain",
    "DeterministicGain",
    "EmpiricalGain",
    "MixtureGain",
    "FixedRateArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "EnforcedWaitsSimulator",
    "AdaptiveWaitsSimulator",
    "MonolithicSimulator",
    "run_trials",
    "aligned_offsets",
    "deadline_frontier",
    "min_deadline_for_af",
    "AdmissionRequest",
    "admit",
    "max_copies",
    "blast_pipeline",
    "CALIBRATED_B",
]
