"""Vectorized grid-search helpers.

The monolithic problem (Figure 2) has one bounded integer variable, so an
exhaustive vectorized scan is both exact and fast; these helpers implement
"argmin of objective over the feasible subset of a candidate grid".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SolverError

__all__ = ["best_feasible_index", "grid_min"]


def best_feasible_index(
    objective: np.ndarray, feasible: np.ndarray
) -> int | None:
    """Index of the smallest objective among feasible entries, or None.

    Ties break toward the smallest index, which for the monolithic scan
    means the smallest block size achieving the optimum (preferable since
    a smaller block also means less buffering).
    """
    obj = np.asarray(objective, dtype=float)
    feas = np.asarray(feasible, dtype=bool)
    if obj.shape != feas.shape or obj.ndim != 1:
        raise SolverError("objective and feasible must be equal-length 1-D arrays")
    if not feas.any():
        return None
    masked = np.where(feas, obj, np.inf)
    idx = int(np.argmin(masked))
    if not np.isfinite(masked[idx]):
        return None
    return idx


def grid_min(
    fn: Callable[[np.ndarray], np.ndarray],
    candidates: np.ndarray,
    *,
    feasible: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[float, float] | None:
    """Exact minimum of a vectorized ``fn`` over explicit candidates.

    ``fn`` and ``feasible`` map a candidate array to value/mask arrays.
    Returns ``(x*, fn(x*))`` or ``None`` if no candidate is feasible.
    """
    cand = np.asarray(candidates, dtype=float)
    if cand.ndim != 1 or cand.size == 0:
        raise SolverError("candidates must be a non-empty 1-D array")
    vals = np.asarray(fn(cand), dtype=float)
    mask = (
        np.ones(cand.shape, dtype=bool)
        if feasible is None
        else np.asarray(feasible(cand), dtype=bool)
    )
    idx = best_feasible_index(vals, mask)
    if idx is None:
        return None
    return float(cand[idx]), float(vals[idx])
