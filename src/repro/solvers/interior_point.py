"""Log-barrier interior-point method for linearly constrained convex programs.

Solves::

    minimize    f(x)
    subject to  A x <= c

for smooth convex ``f`` given by value/gradient/Hessian callbacks, by
minimizing the centering function ``mu * f(x) - sum log(c - A x)`` with
damped Newton steps and increasing ``mu`` along the central path.  The
enforced-waits problem (4-8 variables, ~10 constraints) is tiny, so dense
linear algebra is more than adequate.

The caller must supply a strictly feasible starting point; for the
enforced-waits problem :mod:`repro.core.enforced_waits` constructs one by
shrinking toward the analytic center of the chain box.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SolverError
from repro.solvers.line_search import backtracking_armijo
from repro.solvers.result import SolverResult, SolverStatus

__all__ = ["barrier_solve"]


def barrier_solve(
    f: Callable[[np.ndarray], float],
    grad: Callable[[np.ndarray], np.ndarray],
    hess: Callable[[np.ndarray], np.ndarray],
    A: np.ndarray,
    c: np.ndarray,
    x0: np.ndarray,
    *,
    mu0: float = 1.0,
    mu_factor: float = 10.0,
    tol: float = 1e-9,
    newton_tol: float = 1e-10,
    max_newton: int = 80,
    max_outer: int = 60,
) -> SolverResult:
    """Barrier method; see module docstring.

    Parameters
    ----------
    f, grad, hess:
        Objective callbacks; ``hess`` returns the dense Hessian matrix.
    A, c:
        Constraints ``A x <= c`` (m x n and m).
    x0:
        Strictly feasible start (``A x0 < c``); else :class:`SolverError`.
    tol:
        Target duality gap ``m / mu``.

    Returns
    -------
    SolverResult with ``extra['duality_gap']`` and ``extra['mu']``.
    """
    A = np.asarray(A, dtype=float)
    c = np.asarray(c, dtype=float)
    x = np.asarray(x0, dtype=float).copy()
    m, n = A.shape
    if c.shape != (m,) or x.shape != (n,):
        raise SolverError(
            f"shape mismatch: A {A.shape}, c {c.shape}, x0 {x.shape}"
        )
    slack0 = c - A @ x
    if (slack0 <= 0).any():
        worst = int(np.argmin(slack0))
        raise SolverError(
            f"x0 not strictly feasible: constraint {worst} slack "
            f"{slack0[worst]:.3g}"
        )

    def barrier_val(mu: float, xx: np.ndarray) -> float:
        s = c - A @ xx
        if (s <= 0).any():
            return float("inf")
        fx = f(xx)
        if not np.isfinite(fx):
            return float("inf")
        return mu * fx - float(np.sum(np.log(s)))

    mu = mu0
    outer = 0
    total_newton = 0
    for outer in range(1, max_outer + 1):
        # Newton centering at this mu.
        for _ in range(max_newton):
            s = c - A @ x
            inv_s = 1.0 / s
            g = mu * grad(x) + A.T @ inv_s
            H = mu * hess(x) + A.T @ ((inv_s**2)[:, None] * A)
            try:
                step = np.linalg.solve(H, -g)
            except np.linalg.LinAlgError:
                # Regularize a singular Hessian.
                H = H + 1e-10 * np.trace(H) / max(n, 1) * np.eye(n)
                try:
                    step = np.linalg.solve(H, -g)
                except np.linalg.LinAlgError as exc:
                    return SolverResult(
                        x=x,
                        objective=f(x),
                        status=SolverStatus.FAILED,
                        iterations=outer,
                        message=f"singular Newton system: {exc}",
                    )
            lam_sq = float(-g @ step)
            if lam_sq / 2.0 <= newton_tol:
                break
            fx_bar = barrier_val(mu, x)
            slope = float(g @ step)
            try:
                alpha = backtracking_armijo(
                    lambda z: barrier_val(mu, z), x, step, fx_bar, slope
                )
            except SolverError:
                break  # cannot improve further at this mu; advance path
            x = x + alpha * step
            total_newton += 1
        gap = m / mu
        if gap <= tol:
            # Dual estimate for KKT residual: lambda_i = 1/(mu * s_i).
            s = c - A @ x
            lam = 1.0 / (mu * s)
            res = grad(x) + A.T @ lam
            denom = max(float(np.max(np.abs(grad(x)))), 1e-300)
            return SolverResult(
                x=x,
                objective=f(x),
                status=SolverStatus.OPTIMAL,
                iterations=outer,
                kkt_residual=float(np.max(np.abs(res))) / denom,
                message=f"converged, duality gap {gap:.3g}",
                extra={
                    "duality_gap": gap,
                    "mu": mu,
                    "newton_steps": total_newton,
                },
            )
        mu *= mu_factor
    return SolverResult(
        x=x,
        objective=f(x),
        status=SolverStatus.MAX_ITER,
        iterations=outer,
        message=f"outer-iteration budget exhausted (gap {m / mu:.3g})",
        extra={"duality_gap": m / mu, "mu": mu},
    )
