"""Structured solver outcomes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SolverStatus", "SolverResult"]


class SolverStatus(enum.Enum):
    """Terminal state of a solve."""

    OPTIMAL = "optimal"
    """Converged; KKT residuals below tolerance."""

    MAX_ITER = "max_iter"
    """Iteration budget exhausted before convergence."""

    INFEASIBLE = "infeasible"
    """The feasible region is (numerically) empty."""

    FAILED = "failed"
    """Numerical failure (singular system, NaN, ...)."""


@dataclass
class SolverResult:
    """Outcome of a numerical solve.

    Attributes
    ----------
    x:
        The final iterate (may be meaningless unless ``ok``).
    objective:
        Objective value at ``x``.
    status:
        Terminal :class:`SolverStatus`.
    iterations:
        Outer-iteration count.
    kkt_residual:
        Max-norm of the KKT/stationarity residual at ``x`` when the solver
        computes one; NaN otherwise.
    message:
        Human-readable diagnostic.
    """

    x: np.ndarray
    objective: float
    status: SolverStatus
    iterations: int = 0
    kkt_residual: float = float("nan")
    message: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the solve reached optimality."""
        return self.status is SolverStatus.OPTIMAL

    def __repr__(self) -> str:
        return (
            f"SolverResult(status={self.status.value}, "
            f"objective={self.objective:.6g}, iterations={self.iterations})"
        )
