"""Resilient solve orchestration: an ordered chain of solver fallbacks.

Production planning cannot afford a hard abort because one numerical
method hit a singular system or an ill-conditioned start.  This module
runs an ordered sequence of solver *rungs* — typically highest-accuracy
first (interior point), then a robust first-order method (projected
gradient), then an always-terminating exhaustive scan (grid) — until one
produces a result that passes an explicit feasibility certificate.

Within a rung, numerical failures are retried with *perturbed* starting
points under exponential backoff: each retry passes a larger attempt
index to the rung, and rungs are expected to scale their start
perturbation as ``base * 2**attempt`` (see
:func:`perturbation_scale`), so consecutive retries move geometrically
farther from the pathological start instead of re-hitting it.

Results are returned as plain :class:`~repro.solvers.result.SolverResult`
objects annotated with the producing rung
(``extra["fallback"]["rung"]``), the attempt that succeeded, the trail
of failures that led there, and the feasibility certificate
(``extra["certificate"]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import SolverError
from repro.solvers.result import SolverResult, SolverStatus

__all__ = [
    "FeasibilityCertificate",
    "FallbackRung",
    "certify_linear",
    "perturbation_scale",
    "solve_with_fallback",
]


@dataclass(frozen=True)
class FeasibilityCertificate:
    """Explicit evidence that an iterate satisfies ``A x <= c``.

    Attributes
    ----------
    satisfied:
        Whether every constraint holds within ``tol`` (relative to the
        right-hand side's magnitude, clamped at 1).
    max_violation:
        Largest scaled violation ``(A x - c)_i / max(|c_i|, 1)`` over
        all rows (negative when strictly feasible).
    worst_constraint:
        Label of the row attaining ``max_violation``.
    tol:
        The tolerance the certificate was checked against.
    """

    satisfied: bool
    max_violation: float
    worst_constraint: str
    tol: float

    def __repr__(self) -> str:
        verdict = "feasible" if self.satisfied else "INFEASIBLE"
        return (
            f"FeasibilityCertificate({verdict}, "
            f"max_violation={self.max_violation:.3g} at "
            f"{self.worst_constraint!r}, tol={self.tol:g})"
        )


def certify_linear(
    A: np.ndarray,
    c: np.ndarray,
    x: np.ndarray,
    *,
    labels: Sequence[str] | None = None,
    tol: float = 1e-9,
) -> FeasibilityCertificate:
    """Check ``A x <= c`` row by row and report the worst violation.

    Violations are scaled by ``max(|c_i|, 1)`` so the certificate is
    meaningful across constraint magnitudes; non-finite iterates fail
    with an infinite violation.
    """
    A = np.asarray(A, dtype=float)
    c = np.asarray(c, dtype=float)
    x = np.asarray(x, dtype=float)
    if not np.isfinite(x).all():
        return FeasibilityCertificate(
            satisfied=False,
            max_violation=float("inf"),
            worst_constraint="(non-finite iterate)",
            tol=tol,
        )
    violation = (A @ x - c) / np.maximum(np.abs(c), 1.0)
    worst = int(np.argmax(violation))
    label = labels[worst] if labels is not None else f"row_{worst}"
    max_violation = float(violation[worst])
    return FeasibilityCertificate(
        satisfied=max_violation <= tol,
        max_violation=max_violation,
        worst_constraint=label,
        tol=tol,
    )


def perturbation_scale(attempt: int, *, base: float = 1e-3) -> float:
    """Exponential-backoff perturbation magnitude for retry ``attempt``.

    Attempt 0 is the unperturbed solve (scale 0); attempt ``k >= 1``
    perturbs by ``base * 2**(k - 1)``, doubling the distance from the
    failing start on every retry.
    """
    if attempt <= 0:
        return 0.0
    return base * 2.0 ** (attempt - 1)


@dataclass(frozen=True)
class FallbackRung:
    """One solver in the chain.

    ``solve`` receives the retry attempt index (0-based) and returns a
    :class:`SolverResult`; it may raise
    :class:`~repro.errors.SolverError` (or numpy's ``LinAlgError``) to
    signal numerical failure, which counts as a failed attempt rather
    than aborting the chain.  Rungs should use the attempt index to
    perturb their starting point (:func:`perturbation_scale`).
    """

    name: str
    solve: Callable[[int], SolverResult]


def solve_with_fallback(
    rungs: Sequence[FallbackRung],
    *,
    certify: Callable[[np.ndarray], FeasibilityCertificate] | None = None,
    attempts: int = 3,
) -> SolverResult:
    """Run the fallback chain until a rung produces a certified result.

    Acceptance requires ``SolverStatus.OPTIMAL`` *and* a passing
    certificate (when ``certify`` is given).  Non-optimal but certified
    results (e.g. ``MAX_ITER`` at a feasible iterate) are kept as a
    last-resort candidate: if no rung reaches certified optimality, the
    best such candidate (smallest objective) is returned with its
    original status.  If nothing certifies at all, :class:`SolverError`
    is raised with the full failure trail.

    The returned result's ``extra["fallback"]`` records the producing
    rung's name and index, the successful attempt number, and the trail
    of prior failures; ``extra["certificate"]`` holds the
    :class:`FeasibilityCertificate` (when ``certify`` is given).
    """
    if not rungs:
        raise SolverError("solve_with_fallback needs at least one rung")
    if attempts < 1:
        raise SolverError(f"attempts must be >= 1, got {attempts}")

    trail: list[str] = []
    fallback_best: SolverResult | None = None
    fallback_meta: tuple[str, int, int] | None = None

    def annotate(
        result: SolverResult,
        rung_name: str,
        rung_index: int,
        attempt: int,
        cert: FeasibilityCertificate | None,
    ) -> SolverResult:
        result.extra["fallback"] = {
            "rung": rung_name,
            "rung_index": rung_index,
            "attempt": attempt,
            "trail": tuple(trail),
        }
        if cert is not None:
            result.extra["certificate"] = cert
        return result

    for rung_index, rung in enumerate(rungs):
        for attempt in range(attempts):
            try:
                result = rung.solve(attempt)
            except (SolverError, np.linalg.LinAlgError) as exc:
                trail.append(
                    f"{rung.name}[attempt {attempt}]: raised {exc}"
                )
                continue
            cert = certify(result.x) if certify is not None else None
            if cert is not None and not cert.satisfied:
                trail.append(
                    f"{rung.name}[attempt {attempt}]: certificate failed "
                    f"({cert.max_violation:.3g} at {cert.worst_constraint})"
                )
                continue
            if result.status is SolverStatus.OPTIMAL:
                return annotate(
                    result, rung.name, rung_index, attempt, cert
                )
            trail.append(
                f"{rung.name}[attempt {attempt}]: status "
                f"{result.status.value} ({result.message})"
            )
            # Feasible but not optimal: keep the best as a last resort.
            if np.isfinite(result.objective) and (
                fallback_best is None
                or result.objective < fallback_best.objective
            ):
                fallback_best = result
                fallback_meta = (rung.name, rung_index, attempt)

    if fallback_best is not None:
        name, rung_index, attempt = fallback_meta
        cert = certify(fallback_best.x) if certify is not None else None
        return annotate(fallback_best, name, rung_index, attempt, cert)
    raise SolverError(
        "all fallback rungs failed: " + "; ".join(trail)
    )
