"""Backtracking (Armijo) line search."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SolverError

__all__ = ["backtracking_armijo"]


def backtracking_armijo(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    direction: np.ndarray,
    fx: float,
    slope: float,
    *,
    alpha0: float = 1.0,
    c1: float = 1e-4,
    shrink: float = 0.5,
    max_steps: int = 60,
    accept_inf: bool = False,
) -> float:
    """Find a step ``alpha`` with sufficient decrease along ``direction``.

    Requires ``slope = grad(f)^T direction < 0`` (a descent direction).
    ``fn`` may return +inf outside a domain (e.g. a barrier); backtracking
    then also serves as a fraction-to-the-boundary rule.

    Returns the accepted step size; raises :class:`SolverError` if no step
    satisfies the Armijo condition within ``max_steps`` halvings.
    """
    if slope >= 0:
        raise SolverError(
            f"line search needs a descent direction (slope={slope:.3g})"
        )
    alpha = alpha0
    for _ in range(max_steps):
        trial = fn(x + alpha * direction)
        if np.isfinite(trial) and trial <= fx + c1 * alpha * slope:
            return alpha
        alpha *= shrink
    raise SolverError(
        f"Armijo line search failed after {max_steps} backtracks "
        f"(fx={fx:.6g}, slope={slope:.3g})"
    )
