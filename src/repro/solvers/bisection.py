"""Scalar root finding by bisection."""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import SolverError

__all__ = ["bisect_root", "bisect_decreasing"]


def bisect_root(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find a root of ``fn`` in [lo, hi]; requires a sign change.

    Converges to absolute interval width ``tol`` (relative to the interval
    magnitude) or after ``max_iter`` halvings, whichever first.
    """
    if lo > hi:
        raise SolverError(f"bisect_root needs lo <= hi, got [{lo}, {hi}]")
    flo, fhi = fn(lo), fn(hi)
    if math.isnan(flo) or math.isnan(fhi):
        raise SolverError("bisect_root: NaN at an endpoint")
    if flo == 0.0:
        return lo
    if fhi == 0.0:
        return hi
    # Compare signs directly: multiplying f-values can underflow to +-0.0
    # for subnormal magnitudes and silently lose the bracket.
    neg_lo = flo < 0
    if neg_lo == (fhi < 0):
        raise SolverError(
            f"bisect_root: no sign change on [{lo}, {hi}] "
            f"(f(lo)={flo:.3g}, f(hi)={fhi:.3g})"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        fmid = fn(mid)
        if fmid == 0.0 or (hi - lo) <= tol * max(1.0, abs(mid)):
            return mid
        if (fmid < 0) == neg_lo:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def bisect_decreasing(
    fn: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
    expand: bool = True,
) -> float:
    """Solve ``fn(x) == target`` for a (weakly) decreasing ``fn``.

    If ``expand`` and ``fn(hi) > target``, the upper bracket is doubled up
    to 60 times before giving up.  Used to find the water level
    (Lagrange multiplier) in the waterfilling solver, where the budget
    usage is monotone in the multiplier.
    """
    if expand:
        tries = 0
        while fn(hi) > target and tries < 60:
            hi *= 2.0
            tries += 1
    g = lambda x: fn(x) - target
    return bisect_root(g, lo, hi, tol=tol, max_iter=max_iter)
