"""Exact KKT solvers for separable problems with box + budget structure.

The enforced-waits problem (Figure 1), after the change of variables
``x_i = t_i + w_i``, relaxes to::

    minimize    sum_i t_i / x_i
    subject to  lo_i <= x_i <= hi_i          (bounds from w >= 0 and caps)
                sum_i b_i x_i <= B           (the deadline budget)

This is a classic *waterfilling* problem: at the optimum either the budget
is slack and every ``x_i`` sits at its cap, or there is a water level
``lam > 0`` with ``x_i = clip(sqrt(t_i / (lam * b_i)), lo_i, hi_i)`` and
the budget tight.  The level is found by bisection on the monotone budget
usage.  The solution is exact (up to bisection tolerance) and its KKT
residual is reported so callers can *certify* optimality — in particular,
:mod:`repro.core.enforced_waits` uses this as a fast path whenever the
chain constraints turn out slack at the relaxed optimum.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SolverError
from repro.solvers.bisection import bisect_root
from repro.solvers.result import SolverResult, SolverStatus

__all__ = ["waterfill_box_budget", "project_box_budget"]


def _validate_box(lo: np.ndarray, hi: np.ndarray) -> None:
    if (lo > hi + 1e-15).any():
        bad = int(np.argmax(lo - hi))
        raise SolverError(
            f"empty box: lo[{bad}]={lo[bad]:.6g} > hi[{bad}]={hi[bad]:.6g}"
        )


def waterfill_box_budget(
    t: np.ndarray,
    b: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    budget: float,
    *,
    tol: float = 1e-12,
) -> SolverResult:
    """Solve ``min sum t_i/x_i  s.t. lo <= x <= hi, sum b_i x_i <= budget``.

    Requirements: ``t >= 0``, ``b > 0``, ``lo > 0``.  Infinite ``hi``
    entries are allowed (uncapped variables) provided the budget constraint
    keeps the problem bounded whenever it must bind.

    Returns a :class:`SolverResult`; ``extra['lam']`` holds the budget
    multiplier (0 when the budget is slack).
    """
    t = np.asarray(t, dtype=float)
    b = np.asarray(b, dtype=float)
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    n = t.size
    if not (b.size == lo.size == hi.size == n):
        raise SolverError("waterfill: t, b, lo, hi must have equal length")
    if (t < 0).any():
        raise SolverError("waterfill: t must be >= 0")
    if (b <= 0).any():
        raise SolverError("waterfill: b must be > 0")
    if (lo <= 0).any():
        raise SolverError("waterfill: lo must be > 0 (objective pole at 0)")
    _validate_box(lo, hi)

    min_usage = float(np.dot(b, lo))
    if min_usage > budget * (1 + 1e-12):
        return SolverResult(
            x=lo.copy(),
            objective=float(np.sum(t / lo)),
            status=SolverStatus.INFEASIBLE,
            message=(
                f"minimum budget usage {min_usage:.6g} exceeds budget "
                f"{budget:.6g}"
            ),
        )

    def x_of(lam: float) -> np.ndarray:
        with np.errstate(divide="ignore"):
            raw = np.sqrt(np.where(t > 0, t, 0.0) / (lam * b))
        raw = np.where(t > 0, raw, lo)  # zero-cost vars pinned at lo
        return np.clip(raw, lo, hi)

    # Budget slack at the caps -> caps are optimal (objective decreasing).
    cap_usage = float(np.dot(b, hi))
    if np.isfinite(cap_usage) and cap_usage <= budget * (1 + 1e-12):
        x = hi.copy()
        # Zero-cost variables still go to lo (saves budget, same objective);
        # keep caps for t>0 only.
        x = np.where(t > 0, x, lo)
        return SolverResult(
            x=x,
            objective=float(np.sum(t / x)),
            status=SolverStatus.OPTIMAL,
            kkt_residual=0.0,
            message="budget slack; all capped",
            extra={"lam": 0.0},
        )

    # Bisection on lam: usage(lam) is nonincreasing.
    def usage(lam: float) -> float:
        return float(np.dot(b, x_of(lam)))

    # Bracket: large lam -> x -> lo -> usage = min_usage <= budget;
    # small lam -> x -> hi -> usage >= budget.
    lam_hi = 1.0
    while usage(lam_hi) > budget and lam_hi < 1e30:
        lam_hi *= 4.0
    lam_lo = lam_hi
    while usage(lam_lo) < budget and lam_lo > 1e-30:
        lam_lo /= 4.0
    if usage(lam_lo) < budget * (1 - 1e-12):
        # Even at tiny lam the caps keep usage below budget; handled above
        # for finite caps — reaching here means numerical corner; treat as
        # slack-at-caps.
        x = x_of(lam_lo)
        return SolverResult(
            x=x,
            objective=float(np.sum(t / x)),
            status=SolverStatus.OPTIMAL,
            kkt_residual=0.0,
            message="budget effectively slack",
            extra={"lam": float(lam_lo)},
        )

    # Geometric bisection on lam (it can span many orders of magnitude;
    # arithmetic bisection loses relative precision at small lam).  Keep
    # the final iterate on the feasible side (usage <= budget).
    lam_lo = max(lam_lo, 1e-300)
    for _ in range(200):
        lam_mid = math.sqrt(lam_lo * lam_hi)
        if usage(lam_mid) > budget:
            lam_lo = lam_mid
        else:
            lam_hi = lam_mid
        if lam_hi / lam_lo < 1 + 1e-14:
            break
    lam = lam_hi
    x = x_of(lam)

    # KKT residual: stationarity on strictly interior coordinates.
    interior = (x > lo * (1 + 1e-9)) & (x < hi * (1 - 1e-9)) & (t > 0)
    if interior.any():
        res = np.abs(-t[interior] / x[interior] ** 2 + lam * b[interior])
        scale = np.maximum(t[interior] / x[interior] ** 2, 1e-300)
        kkt = float(np.max(res / scale))
    else:
        kkt = 0.0

    return SolverResult(
        x=x,
        objective=float(np.sum(t / x)),
        status=SolverStatus.OPTIMAL,
        kkt_residual=kkt,
        message="waterfilled",
        extra={"lam": float(lam)},
    )


def project_box_budget(
    y: np.ndarray,
    b: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    budget: float,
    *,
    tol: float = 1e-12,
) -> np.ndarray:
    """Euclidean projection onto ``{x : lo <= x <= hi, b^T x <= budget}``.

    ``b`` must be positive and the set nonempty (``b^T lo <= budget``).
    Standard approach: clamp; if the budget is violated, shift along ``-b``
    by a multiplier found with bisection (usage is monotone in the shift).
    """
    y = np.asarray(y, dtype=float)
    b = np.asarray(b, dtype=float)
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    if (b <= 0).any():
        raise SolverError("project_box_budget: b must be > 0")
    _validate_box(lo, hi)
    if float(np.dot(b, lo)) > budget * (1 + 1e-12):
        raise SolverError("project_box_budget: empty feasible set")

    x = np.clip(y, lo, hi)
    if float(np.dot(b, x)) <= budget * (1 + 1e-12):
        return x

    def usage(lam: float) -> float:
        return float(np.dot(b, np.clip(y - lam * b, lo, hi)))

    lam_hi = 1.0
    while usage(lam_hi) > budget and lam_hi < 1e30:
        lam_hi *= 4.0
    lam = bisect_root(lambda l: usage(l) - budget, 0.0, lam_hi, tol=tol)
    return np.clip(y - lam * b, lo, hi)
