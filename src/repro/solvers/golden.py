"""Golden-section minimization of a unimodal scalar function."""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import SolverError

__all__ = ["golden_section_min"]

_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/phi
_INVPHI2 = (3.0 - math.sqrt(5.0)) / 2.0  # 1/phi^2


def golden_section_min(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 300,
) -> tuple[float, float]:
    """Minimize a unimodal ``fn`` on [lo, hi]; returns ``(x*, fn(x*))``.

    Standard golden-section search with interval-width stopping.  On a
    non-unimodal function it still converges to *a* local minimum bracketed
    by the initial interval.
    """
    if lo > hi:
        raise SolverError(f"golden_section_min needs lo <= hi, got [{lo}, {hi}]")
    if lo == hi:
        return lo, fn(lo)
    a, b = lo, hi
    h = b - a
    c = a + _INVPHI2 * h
    d = a + _INVPHI * h
    fc, fd = fn(c), fn(d)
    for _ in range(max_iter):
        if h <= tol * max(1.0, abs(a) + abs(b)):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            h = b - a
            c = a + _INVPHI2 * h
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            h = b - a
            d = a + _INVPHI * h
            fd = fn(d)
    if fc < fd:
        return c, fc
    return d, fd
