"""From-scratch constrained-optimization machinery.

The paper solved its two design problems (Figures 1 and 2) with AMPL +
BONMIN.  This package provides the equivalent capability without external
solvers:

- :mod:`~repro.solvers.interior_point` — a log-barrier Newton method for
  smooth convex objectives over linear inequality constraints; the primary
  solver for the enforced-waits problem.
- :mod:`~repro.solvers.kkt` — an exact KKT "waterfilling" solver for the
  separable relaxation (box + single budget constraint); a fast path that
  certifies its own optimality when chain constraints are slack.
- :mod:`~repro.solvers.projected_gradient` — projected gradient descent
  with an exact projection onto box-plus-budget sets.
- :mod:`~repro.solvers.golden`, :mod:`~repro.solvers.bisection`,
  :mod:`~repro.solvers.grid`, :mod:`~repro.solvers.line_search` —
  scalar/utility routines used by the above and by the monolithic scan.
- :mod:`~repro.solvers.fallback` — resilient orchestration: an ordered
  chain of solver rungs with perturbed-restart retries and explicit
  feasibility certificates, so planning degrades gracefully instead of
  aborting on one method's numerical failure.

All solvers return :class:`~repro.solvers.result.SolverResult` so callers
and tests can inspect convergence status and optimality residuals.
"""

from repro.solvers.result import SolverResult, SolverStatus
from repro.solvers.bisection import bisect_root, bisect_decreasing
from repro.solvers.fallback import (
    FallbackRung,
    FeasibilityCertificate,
    certify_linear,
    perturbation_scale,
    solve_with_fallback,
)
from repro.solvers.golden import golden_section_min
from repro.solvers.grid import best_feasible_index, grid_min
from repro.solvers.line_search import backtracking_armijo
from repro.solvers.kkt import project_box_budget, waterfill_box_budget
from repro.solvers.interior_point import barrier_solve
from repro.solvers.projected_gradient import projected_gradient_min

__all__ = [
    "SolverResult",
    "SolverStatus",
    "bisect_root",
    "bisect_decreasing",
    "golden_section_min",
    "grid_min",
    "best_feasible_index",
    "backtracking_armijo",
    "waterfill_box_budget",
    "project_box_budget",
    "barrier_solve",
    "projected_gradient_min",
    "FallbackRung",
    "FeasibilityCertificate",
    "certify_linear",
    "perturbation_scale",
    "solve_with_fallback",
]
