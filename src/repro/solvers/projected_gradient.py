"""Projected gradient descent over box + budget constraint sets.

A simple, robust first-order method used as an independent cross-check of
the interior-point and waterfilling solvers on the relaxed enforced-waits
problem (and usable for any smooth objective over the same set geometry).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SolverError
from repro.solvers.kkt import project_box_budget
from repro.solvers.result import SolverResult, SolverStatus

__all__ = ["projected_gradient_min"]


def projected_gradient_min(
    f: Callable[[np.ndarray], float],
    grad: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    budget: float,
    x0: np.ndarray | None = None,
    *,
    step0: float = 1.0,
    tol: float = 1e-10,
    max_iter: int = 5000,
) -> SolverResult:
    """Minimize ``f`` over ``{lo <= x <= hi, b^T x <= budget}``.

    Uses Armijo backtracking on the projected path and a fixed-point
    stopping rule ``||x - P(x - s*grad)|| <= tol * (1 + ||x||)``.
    """
    b = np.asarray(b, dtype=float)
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    if x0 is None:
        x = project_box_budget(0.5 * (lo + np.minimum(hi, lo * 4)), b, lo, hi, budget)
    else:
        x = project_box_budget(np.asarray(x0, dtype=float), b, lo, hi, budget)

    fx = f(x)
    if not np.isfinite(fx):
        raise SolverError("projected gradient: objective not finite at start")
    step = step0
    it = 0
    for it in range(1, max_iter + 1):
        g = grad(x)
        trial_step = step
        accepted = False
        for _ in range(60):
            x_new = project_box_budget(x - trial_step * g, b, lo, hi, budget)
            f_new = f(x_new)
            # Armijo condition along the projected arc.
            decrease = float(g @ (x - x_new))
            if np.isfinite(f_new) and f_new <= fx - 1e-4 * decrease:
                accepted = True
                break
            trial_step *= 0.5
        if not accepted:
            break
        move = float(np.linalg.norm(x_new - x))
        x, fx = x_new, f_new
        step = min(trial_step * 2.0, step0 * 1e6)
        if move <= tol * (1.0 + float(np.linalg.norm(x))):
            return SolverResult(
                x=x,
                objective=fx,
                status=SolverStatus.OPTIMAL,
                iterations=it,
                kkt_residual=move,
                message="projected-gradient fixed point",
            )
    return SolverResult(
        x=x,
        objective=fx,
        status=SolverStatus.MAX_ITER,
        iterations=it,
        message="iteration budget exhausted",
    )
