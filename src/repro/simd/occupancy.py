"""Lane-occupancy and active-time statistics for a simulation run.

A tracker per node records every firing: how many lanes were used and how
much active time was charged.  The application-level *active fraction* —
the paper's objective — is derived from these records by the metrics module
(:mod:`repro.sim.metrics`); this class only aggregates raw facts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OccupancyTracker"]


class OccupancyTracker:
    """Per-node firing statistics.

    Tracks total firings, empty firings, consumed items, and charged active
    time.  Occupancy histograms use ``vector_width + 1`` buckets (0..v items
    consumed).
    """

    def __init__(self, name: str, vector_width: int) -> None:
        if vector_width < 1:
            raise ValueError(f"vector_width must be >= 1, got {vector_width}")
        self.name = name
        self.vector_width = int(vector_width)
        self._firings = 0
        self._empty_firings = 0
        self._items = 0
        self._active_time = 0.0
        self._hist = np.zeros(self.vector_width + 1, dtype=np.int64)

    @property
    def firings(self) -> int:
        return self._firings

    @property
    def empty_firings(self) -> int:
        return self._empty_firings

    @property
    def items_consumed(self) -> int:
        return self._items

    @property
    def active_time(self) -> float:
        """Total charged active time."""
        return self._active_time

    def record_firing(self, consumed: int, charged_time: float) -> None:
        """Record one firing that consumed ``consumed`` items."""
        if not 0 <= consumed <= self.vector_width:
            raise ValueError(
                f"consumed must be in [0, {self.vector_width}], got {consumed}"
            )
        if charged_time < 0:
            raise ValueError(f"charged_time must be >= 0, got {charged_time}")
        self._firings += 1
        if consumed == 0:
            self._empty_firings += 1
        self._items += consumed
        self._active_time += charged_time
        self._hist[consumed] += 1

    def record_firings(self, consumed: np.ndarray, charged_each: float) -> None:
        """Record a batch of firings, each charged ``charged_each`` time.

        Bit-identical to calling :meth:`record_firing` once per entry:
        the integer statistics are exact under any summation order, and
        the float active time keeps the exact sequential rounding of the
        per-firing loop — directly for small batches (where per-element
        numpy overhead dominates), via ``np.cumsum`` (a strictly
        sequential reduction) seeded with the current total for large
        ones.  Used by the monolithic simulator, whose blocks record
        ``ceil(n/v)`` firings per stage.
        """
        counts = np.asarray(consumed, dtype=np.int64)
        k = int(counts.size)
        if k == 0:
            return
        if charged_each < 0:
            raise ValueError(f"charged_time must be >= 0, got {charged_each}")
        if k <= 32:
            record = self.record_firing
            for c in counts.tolist():
                record(c, charged_each)
            return
        if counts.min() < 0 or counts.max() > self.vector_width:
            bad = counts[(counts < 0) | (counts > self.vector_width)][0]
            raise ValueError(
                f"consumed must be in [0, {self.vector_width}], got {int(bad)}"
            )
        self._firings += k
        self._empty_firings += int(np.count_nonzero(counts == 0))
        self._items += int(counts.sum())
        self._active_time = float(
            np.cumsum(
                np.concatenate(
                    ([self._active_time], np.full(k, float(charged_each)))
                )
            )[-1]
        )
        self._hist += np.bincount(counts, minlength=self.vector_width + 1)

    def record_firing_batch(
        self, consumed: np.ndarray, charged: np.ndarray
    ) -> None:
        """Record a batch of firings with *per-firing* charges.

        Bit-identical to calling :meth:`record_firing` once per entry:
        integer statistics are exact under any summation order, and the
        active time uses ``np.cumsum`` — a strictly sequential reduction
        — seeded with the current total, reproducing the per-firing
        ``+=`` chain exactly.  Used by the simulator fast path, whose
        completion charges vary per firing.
        """
        counts = np.asarray(consumed, dtype=np.int64)
        charges = np.asarray(charged, dtype=float)
        if counts.shape != charges.shape:
            raise ValueError(
                f"consumed and charged must align, got shapes "
                f"{counts.shape} and {charges.shape}"
            )
        k = int(counts.size)
        if k == 0:
            return
        if counts.min() < 0 or counts.max() > self.vector_width:
            bad = counts[(counts < 0) | (counts > self.vector_width)][0]
            raise ValueError(
                f"consumed must be in [0, {self.vector_width}], got {int(bad)}"
            )
        if charges.min() < 0:
            bad_t = charges[charges < 0][0]
            raise ValueError(f"charged_time must be >= 0, got {bad_t}")
        self._firings += k
        self._empty_firings += int(np.count_nonzero(counts == 0))
        self._items += int(counts.sum())
        self._active_time = float(
            np.cumsum(np.concatenate(([self._active_time], charges)))[-1]
        )
        self._hist += np.bincount(counts, minlength=self.vector_width + 1)

    @property
    def mean_occupancy(self) -> float:
        """Average lane occupancy across all firings (NaN if no firings)."""
        if self._firings == 0:
            return float("nan")
        return self._items / (self._firings * self.vector_width)

    @property
    def mean_occupancy_nonempty(self) -> float:
        """Average occupancy over non-empty firings only."""
        nonempty = self._firings - self._empty_firings
        if nonempty == 0:
            return float("nan")
        return self._items / (nonempty * self.vector_width)

    def histogram(self) -> np.ndarray:
        """Copy of the occupancy histogram (index = items consumed)."""
        return self._hist.copy()
