"""SIMD device parameters and cost accounting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpecError
from repro.utils.mathx import ceil_div

__all__ = ["SimdDevice"]


@dataclass(frozen=True)
class SimdDevice:
    """A single-threaded processor with ``vector_width`` SIMD lanes.

    The time unit is the abstract "cycle" of the paper; service times of
    nodes are expressed in these cycles.  ``vector_width`` is the paper's
    ``v`` (128 for the MERCATOR BLAST pipeline).
    """

    vector_width: int

    def __post_init__(self) -> None:
        if not isinstance(self.vector_width, (int, np.integer)) or self.vector_width < 1:
            raise SpecError(
                f"vector_width must be an int >= 1, got {self.vector_width!r}"
            )
        object.__setattr__(self, "vector_width", int(self.vector_width))

    def firings_for(self, n_items: int) -> int:
        """Vector firings needed to consume ``n_items`` (0 items -> 0 firings)."""
        if n_items < 0:
            raise SpecError(f"n_items must be >= 0, got {n_items}")
        if n_items == 0:
            return 0
        return ceil_div(n_items, self.vector_width)

    def busy_time(self, n_items: int, service_time: float) -> float:
        """Active time to consume ``n_items`` at ``service_time`` per firing.

        This is the per-node term ``ceil(n/v) * t_i`` that the monolithic
        strategy's block service time ``Tbar(M)`` sums over nodes.
        """
        return self.firings_for(n_items) * service_time

    def mean_occupancy(self, n_items: int) -> float:
        """Average lane occupancy over the firings for ``n_items``.

        The last (possibly partial) vector dilutes occupancy:
        ``n / (ceil(n/v) * v)``.
        """
        f = self.firings_for(n_items)
        if f == 0:
            return 0.0
        return n_items / (f * self.vector_width)
