"""Lane-assignment arithmetic.

Dynamic data-to-lane remapping (compaction) is what lets irregular
applications use wide SIMD efficiently (Section 3's prior work).  These
helpers compute, for a batch of items, how many full-width vector firings
are needed and how occupied each firing is, assuming dense compaction —
i.e. every firing except possibly the last is full.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpecError
from repro.utils.mathx import ceil_div

__all__ = ["vectors_needed", "split_into_vectors", "lane_occupancies"]


def vectors_needed(n_items: int, vector_width: int) -> int:
    """Number of ``vector_width``-wide firings to consume ``n_items``."""
    if vector_width < 1:
        raise SpecError(f"vector_width must be >= 1, got {vector_width}")
    if n_items < 0:
        raise SpecError(f"n_items must be >= 0, got {n_items}")
    if n_items == 0:
        return 0
    return ceil_div(n_items, vector_width)


def split_into_vectors(n_items: int, vector_width: int) -> np.ndarray:
    """Item counts per firing under dense compaction.

    All firings are full except possibly the last, e.g.
    ``split_into_vectors(300, 128) -> [128, 128, 44]``.
    """
    k = vectors_needed(n_items, vector_width)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    counts = np.full(k, vector_width, dtype=np.int64)
    rem = n_items - (k - 1) * vector_width
    counts[-1] = rem
    return counts


def lane_occupancies(n_items: int, vector_width: int) -> np.ndarray:
    """Occupancy fraction of each firing under dense compaction."""
    return split_into_vectors(n_items, vector_width) / float(vector_width)
