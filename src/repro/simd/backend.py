"""Execution-backend selection for the package's hot loops.

The simulators and runtime kernels keep a *pure-Python event-loop* path
as the semantic reference, but their hot loops (the enforced-waits
firing schedule, consumption scans, ragged gathers) can run on faster
substrates.  This module is the seam that picks one:

- ``"numba"`` — JIT-compiled kernels (:mod:`repro.des.hotloop` compiles
  its loop twins with ``numba.njit``).  Requires the optional ``numba``
  package; never a hard dependency.
- ``"vector"`` — NumPy array kernels.  Always available; this is also
  the automatic fallback when numba is absent or fails to compile.
- ``"python"`` — disable the array fast paths entirely and run the
  per-event reference loops.  Exists so the fallback path can be forced
  (CI runs the whole suite under it) and so bit-identity of fast vs.
  slow paths stays testable forever.

Selection happens lazily at first use: the ``REPRO_BACKEND`` environment
variable (``auto``/``numba``/``vector``/``python``, default ``auto``)
names the requested backend, and :func:`get_backend` resolves it to an
available one, recording *why* in :attr:`Backend.reason`.  ``auto``
prefers numba when importable, else vector.  A requested-but-unavailable
backend degrades with a :class:`RuntimeWarning` instead of failing:
results are identical on every backend (pinned by
``tests/test_sim_equivalence.py``), only speed differs.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import SpecError

__all__ = [
    "Backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
]

#: Names accepted by ``REPRO_BACKEND`` / :func:`set_backend`.
_CHOICES = ("auto", "numba", "vector", "python")


@dataclass(frozen=True)
class Backend:
    """The resolved execution backend.

    Attributes
    ----------
    name:
        ``"numba"``, ``"vector"``, or ``"python"`` (never ``"auto"``).
    requested:
        What the user asked for (``"auto"`` when unspecified).
    compiled:
        True when numba JIT kernels are in use.
    reason:
        One line explaining the resolution (shown in bench reports).
    """

    name: str
    requested: str
    compiled: bool
    reason: str

    @property
    def fastpath(self) -> bool:
        """Whether array fast paths may replace the per-event loops."""
        return self.name != "python"


_active: Backend | None = None


def numba_available() -> bool:
    """Whether the optional numba package is importable."""
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover — broken metadata
        return False


def available_backends() -> tuple[str, ...]:
    """The backend names usable in this environment."""
    names = ["vector", "python"]
    if numba_available():
        names.insert(0, "numba")
    return tuple(names)


def _resolve(requested: str) -> Backend:
    if requested not in _CHOICES:
        raise SpecError(
            f"REPRO_BACKEND must be one of {_CHOICES}, got {requested!r}"
        )
    if requested == "python":
        return Backend("python", requested, False, "explicitly requested")
    if requested == "vector":
        return Backend("vector", requested, False, "explicitly requested")
    have_numba = numba_available()
    if requested == "numba":
        if have_numba:
            return Backend("numba", requested, True, "explicitly requested")
        warnings.warn(
            "REPRO_BACKEND=numba but numba is not importable; "
            "falling back to the vector backend",
            RuntimeWarning,
            stacklevel=3,
        )
        return Backend("vector", requested, False, "numba unavailable")
    # auto
    if have_numba:
        return Backend("numba", requested, True, "auto-detected numba")
    return Backend("vector", requested, False, "auto: numba unavailable")


def get_backend() -> Backend:
    """The active backend, resolving ``REPRO_BACKEND`` on first call."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get("REPRO_BACKEND", "auto").lower())
    return _active


def set_backend(name: str) -> Backend:
    """Override the active backend (``"auto"`` re-resolves); returns it.

    Intended for tests and benchmarks; library code should only read
    :func:`get_backend`.
    """
    global _active
    _active = _resolve(name)
    return _active


def demote_backend(reason: str) -> Backend:
    """Drop from numba to the vector backend (compile failure path)."""
    global _active
    current = get_backend()
    if current.name == "numba":
        warnings.warn(
            f"numba backend disabled: {reason}; using vector kernels",
            RuntimeWarning,
            stacklevel=2,
        )
        _active = Backend("vector", current.requested, False, reason)
    return _active


@contextmanager
def use_backend(name: str):
    """Context manager: temporarily select ``name``, then restore."""
    global _active
    previous = _active
    set_backend(name)
    try:
        yield get_backend()
    finally:
        _active = previous
