"""Processor-sharing timing models.

The paper's implementation model (Section 2.2) assumes each of the ``N``
nodes holds a fixed ``1/N`` share of the processor and that service time
``t_i`` is measured *under that share*.  Two timing models realize this:

- :class:`IdealizedSharing` — the paper's assumption: a firing of node
  ``i`` always takes exactly ``t_i`` wall-clock time, independent of what
  other nodes are doing (each node is pinned to its share; unused shares
  are yielded to the *system*, not to sibling nodes).

- :class:`WorkConservingSharing` — an ablation: active firings split the
  whole processor equally (generalized processor sharing, GPS), optionally
  capped at a per-node share.  Because ``k`` concurrently active nodes each
  get share ``1/k >= 1/N``, firings never finish later than under the
  idealized model; the ablation quantifies how conservative the paper's
  timing assumption is.

:class:`GpsProcessor` is the event-driven fluid GPS engine behind the
work-conserving model.  Jobs carry *processor work* ``W``; a job running at
share ``s(t)`` completes when the integral of ``s`` reaches ``W``.  A
firing with service time ``t_i`` measured at share ``1/N`` carries work
``t_i / N``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import SimulationError

__all__ = [
    "TimingModel",
    "IdealizedSharing",
    "WorkConservingSharing",
    "GpsProcessor",
]


class TimingModel(ABC):
    """Strategy object answering "when does this firing complete?".

    ``static`` models answer immediately; ``dynamic`` models (GPS) require
    the caller to poll :meth:`next_completion` and deliver time advancement
    via :meth:`advance`, rescheduling as the active set changes.
    """

    #: Whether firing durations are known at start (True) or depend on
    #: future concurrency (False).
    static: bool = True

    @abstractmethod
    def begin_firing(
        self, now: float, node_index: int, service_time: float
    ):
        """Register a firing start.

        Static models return the completion time (a float); dynamic models
        return an opaque job tag that will reappear in
        :meth:`next_completion`/:meth:`advance` results.
        """

    def next_completion(self, now: float) -> tuple[float, Any] | None:
        """Earliest projected completion (dynamic models only)."""
        raise NotImplementedError

    def advance(self, now: float) -> list[tuple[float, Any]]:
        """Advance internal clock, returning completions up to ``now``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all in-flight jobs."""


class IdealizedSharing(TimingModel):
    """The paper's fixed-duration model: a firing takes exactly ``t_i``."""

    static = True

    def begin_firing(
        self, now: float, node_index: int, service_time: float
    ) -> float:
        if service_time < 0:
            raise SimulationError(f"service_time must be >= 0, got {service_time}")
        return now + service_time

    def reset(self) -> None:  # nothing to forget
        pass


@dataclass
class _GpsJob:
    tag: Hashable
    remaining_work: float
    seq: int = field(default=0)


class GpsProcessor:
    """Fluid generalized-processor-sharing over a unit-rate processor.

    Active jobs share the processor equally; with ``share_cap`` set, no job
    exceeds that share even when it would otherwise be entitled to more
    (the surplus is yielded to the system, matching a node that cannot use
    more than its allocation).

    The caller drives time explicitly: :meth:`advance` moves the clock and
    returns completed jobs; :meth:`submit` adds a job at the current time;
    :meth:`next_completion` projects the earliest completion assuming the
    active set does not change.
    """

    def __init__(self, *, share_cap: float | None = None) -> None:
        if share_cap is not None and not 0 < share_cap <= 1:
            raise SimulationError(
                f"share_cap must be in (0, 1], got {share_cap}"
            )
        self.share_cap = share_cap
        self._jobs: list[_GpsJob] = []
        self._now = 0.0
        self._seq = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def _rate(self) -> float:
        """Per-job drain rate for the current active set."""
        k = len(self._jobs)
        if k == 0:
            return 0.0
        rate = 1.0 / k
        if self.share_cap is not None:
            rate = min(rate, self.share_cap)
        return rate

    def submit(self, now: float, work: float, tag: Hashable) -> None:
        """Add a job with ``work`` processor-work at time ``now``.

        ``now`` must not precede the internal clock; any elapsed interval
        drains existing jobs first (completions from that interval must be
        collected via :meth:`advance` *before* submitting, or they are
        detected here and raised as an error to flag caller misuse).
        """
        if work <= 0:
            raise SimulationError(f"job work must be > 0, got {work}")
        pending = self.advance(now)
        if pending:
            raise SimulationError(
                f"jobs completed before submit at t={now}: {pending}; "
                "call advance() and handle completions first"
            )
        self._jobs.append(_GpsJob(tag=tag, remaining_work=work, seq=self._seq))
        self._seq += 1

    def next_completion(self, now: float | None = None) -> tuple[float, Hashable] | None:
        """Projected earliest completion if the active set stays fixed.

        Returns ``(time, tag)`` or ``None`` when idle.  The projection is
        exact until the next :meth:`submit` changes the rates.
        """
        if not self._jobs:
            return None
        rate = self._rate()
        best = min(self._jobs, key=lambda j: (j.remaining_work, j.seq))
        t = self._now + best.remaining_work / rate
        return (t, best.tag)

    def advance(self, now: float) -> list[tuple[float, Hashable]]:
        """Advance the clock to ``now``, returning ``(time, tag)`` completions.

        Multiple jobs may complete inside the interval; rates are
        recomputed after each completion (fewer jobs -> faster drain,
        subject to the cap).  Completions are returned in time order with
        FIFO tie-breaking.
        """
        if now < self._now - 1e-12:
            raise SimulationError(
                f"GPS clock cannot go backwards ({now} < {self._now})"
            )
        completions: list[tuple[float, Hashable]] = []
        while self._jobs:
            rate = self._rate()
            best = min(self._jobs, key=lambda j: (j.remaining_work, j.seq))
            t_done = self._now + best.remaining_work / rate
            if t_done > now + 1e-12:
                break
            # Drain all jobs to t_done, remove the finisher.
            dt = t_done - self._now
            for job in self._jobs:
                job.remaining_work -= rate * dt
            self._now = t_done
            self._jobs = [j for j in self._jobs if j is not best]
            # Guard tiny negative residue from float arithmetic.
            for job in self._jobs:
                if job.remaining_work < 0:
                    job.remaining_work = 0.0
            completions.append((t_done, best.tag))
        if now > self._now:
            rate = self._rate()
            dt = now - self._now
            for job in self._jobs:
                job.remaining_work -= rate * dt
                if job.remaining_work < 1e-15:
                    # Completes exactly at `now`; surface it.
                    completions.append((now, job.tag))
            self._jobs = [j for j in self._jobs if j.remaining_work >= 1e-15]
            self._now = now
        return completions

    def reset(self) -> None:
        self._jobs.clear()
        self._now = 0.0
        self._seq = 0


class WorkConservingSharing(TimingModel):
    """GPS-based dynamic timing for an ``n_nodes``-stage pipeline.

    A firing of node ``i`` with measured service time ``t_i`` (at share
    ``1/N``) carries processor work ``t_i / N``.  With ``capped=True`` each
    job's share never exceeds ``1/N`` — in that case every firing takes
    exactly ``t_i`` again and the model degenerates to the idealized one
    (useful as a consistency check, up to floating-point drift in the
    fluid integration); with ``capped=False`` (default) lone active nodes
    borrow idle siblings' capacity and finish early.
    """

    static = False

    def __init__(self, n_nodes: int, *, capped: bool = False) -> None:
        if n_nodes < 1:
            raise SimulationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        cap = (1.0 / n_nodes) if capped else None
        self._gps = GpsProcessor(share_cap=cap)
        self._tag_seq = 0

    def begin_firing(
        self, now: float, node_index: int, service_time: float
    ) -> tuple[int, int]:
        """Submit the firing as a GPS job; returns the job's tag."""
        if service_time <= 0:
            raise SimulationError(f"service_time must be > 0, got {service_time}")
        tag = (node_index, self._tag_seq)
        self._tag_seq += 1
        self._gps.submit(now, service_time / self.n_nodes, tag)
        return tag

    def next_completion(self, now: float) -> tuple[float, Any] | None:
        return self._gps.next_completion(now)

    def advance(self, now: float) -> list[tuple[float, Any]]:
        return self._gps.advance(now)

    def reset(self) -> None:
        self._gps.reset()
        self._tag_seq = 0
