"""SIMD device model.

Models the paper's implementation target (Section 2.2): a single-threaded
processor with ``v``-wide SIMD vector operations, where each pipeline node
is allotted a fixed ``1/N`` fraction of processor time and fires on vectors
of up to ``v`` items in fixed service time ``t_i``.

- :class:`~repro.simd.device.SimdDevice` — device parameters and per-firing
  cost accounting.
- :mod:`~repro.simd.lanes` — lane assignment/compaction arithmetic (how many
  vector firings a batch of items needs, occupancy of each).
- :class:`~repro.simd.occupancy.OccupancyTracker` — lane-occupancy and
  active-time statistics.
- :mod:`~repro.simd.sharing` — timing models: the paper's idealized
  fine-grained 1/N sharing, and a work-conserving generalized-processor-
  sharing (GPS) model used as an ablation of that idealization.
"""

from repro.simd.backend import (
    Backend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.simd.device import SimdDevice
from repro.simd.lanes import (
    lane_occupancies,
    split_into_vectors,
    vectors_needed,
)
from repro.simd.occupancy import OccupancyTracker
from repro.simd.sharing import (
    GpsProcessor,
    IdealizedSharing,
    TimingModel,
    WorkConservingSharing,
)

__all__ = [
    "Backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "SimdDevice",
    "vectors_needed",
    "split_into_vectors",
    "lane_occupancies",
    "OccupancyTracker",
    "TimingModel",
    "IdealizedSharing",
    "WorkConservingSharing",
    "GpsProcessor",
]
