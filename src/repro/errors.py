"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration errors from runtime/solver failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SpecError",
    "InfeasibleError",
    "SolverError",
    "SimulationError",
    "CalibrationError",
    "CampaignError",
    "ServingError",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SpecError(ReproError, ValueError):
    """An application, pipeline, or problem specification is invalid.

    Raised during construction/validation of specs (negative service time,
    empty pipeline, malformed gain distribution, ...), never during a solve
    or simulation of a valid problem.
    """


class InfeasibleError(ReproError):
    """A constrained problem has an empty feasible region.

    Carries an optional human-readable diagnosis of which constraint family
    is violated at the minimal operating point.
    """

    def __init__(self, message: str, *, diagnosis: str | None = None) -> None:
        super().__init__(message)
        self.diagnosis = diagnosis


class SolverError(ReproError):
    """A numerical solver failed to converge or returned an invalid point."""


class SimulationError(ReproError):
    """A discrete-event simulation entered an invalid state."""


class CalibrationError(ReproError):
    """Empirical parameter calibration failed to find miss-free parameters."""


class CampaignError(ReproError):
    """A strict multi-seed campaign had failed or timed-out trials."""


class ServingError(ReproError):
    """A network serving operation failed (after any configured retries).

    Raised by the serving layer (:mod:`repro.serving`) for exhausted
    retry budgets, failed connections, and protocol violations observed
    by the client.  Server-side problems are *never* raised — they are
    reported to the peer as structured ``{"error": ...}`` responses so
    the server keeps serving.
    """


class CircuitOpenError(ServingError):
    """The client's circuit breaker is open; the request was not sent.

    Callers back off (the breaker half-opens after its reset timeout) or
    route around the unhealthy endpoint.
    """
