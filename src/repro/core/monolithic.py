"""The monolithic batching baseline (Figure 2 of the paper).

The pipeline runs as a unit on blocks of ``M`` inputs.  The average time to
consume a block is::

    Tbar(M) = sum_i ceil(M * G_i / v) * t_i

and the optimization is::

    minimize    rho_0 * Tbar(M) / M           (the active fraction)
    subject to  Tbar(M) <= M / rho_0          (stability)
                b * M / rho_0 + S * Tbar(M) <= D   (deadline)

over the single positive integer ``M``.  The paper solved this with
BONMIN; because ``M`` is bounded above by ``D * rho_0 / b`` (the deadline
term alone), we enumerate every candidate with vectorized NumPy, which is
*exact* — no relaxation, no local minima concerns (the ceil terms make the
objective non-monotone at small ``M``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import RealTimeProblem
from repro.errors import SpecError
from repro.solvers.grid import best_feasible_index
from repro.solvers.result import SolverResult, SolverStatus

__all__ = ["MonolithicProblem", "MonolithicSolution", "solve_monolithic"]

#: Hard cap on enumerated block sizes; above this the objective is within
#: a hair of its large-M limit, so we additionally test one "huge" block.
_MAX_ENUMERATION = 2_000_000


@dataclass(frozen=True)
class MonolithicSolution:
    """Solution of the Figure 2 problem.

    Attributes
    ----------
    feasible:
        Whether any block size satisfies both constraints.
    block_size:
        Optimal ``M`` (0 when infeasible).
    active_fraction:
        ``rho_0 * Tbar(M) / M`` at the optimum; NaN when infeasible.
    block_service_time:
        ``Tbar(M)`` at the optimum.
    accumulate_time:
        ``M * tau0`` — the time to gather one block.
    diagnosis:
        Infeasibility explanation when not feasible.
    """

    feasible: bool
    block_size: int
    active_fraction: float
    block_service_time: float
    accumulate_time: float
    diagnosis: str | None = None
    solver_result: SolverResult | None = field(default=None, compare=False)


class MonolithicProblem:
    """The Figure 2 optimization for a concrete problem instance."""

    def __init__(
        self,
        problem: RealTimeProblem,
        *,
        b: int = 1,
        s_scale: float = 1.0,
    ) -> None:
        if not isinstance(b, (int, np.integer)) or b < 1:
            raise SpecError(f"monolithic b must be an int >= 1, got {b!r}")
        if s_scale < 1.0:
            raise SpecError(
                f"s_scale must be >= 1 (worst case >= average), got {s_scale}"
            )
        self.problem = problem
        self.b = int(b)
        self.s_scale = float(s_scale)
        self.t = problem.pipeline.service_times
        self.G = problem.pipeline.total_gains
        self.v = problem.pipeline.vector_width
        self.tau0 = problem.tau0
        self.deadline = problem.deadline

    # -- model quantities ----------------------------------------------------

    def tbar(self, m: np.ndarray | int) -> np.ndarray | float:
        """Average block service time ``Tbar(M)`` (vectorized over M)."""
        m_arr = np.atleast_1d(np.asarray(m, dtype=float))
        if (m_arr < 1).any():
            raise SpecError("block sizes must be >= 1")
        # firings per node: ceil(M * G_i / v); shape (len(m), n_nodes)
        firings = np.ceil(np.outer(m_arr, self.G) / self.v)
        out = firings @ self.t
        return out if np.ndim(m) else float(out[0])

    def worst_case_time(self, m: np.ndarray | int) -> np.ndarray | float:
        """``That(M) = S * Tbar(M)`` (Section 5's worst-case model)."""
        return self.s_scale * self.tbar(m)

    def active_fraction(self, m: np.ndarray | int) -> np.ndarray | float:
        """``rho_0 * Tbar(M) / M``."""
        m_arr = np.atleast_1d(np.asarray(m, dtype=float))
        out = self.tbar(m_arr) / (m_arr * self.tau0)
        return out if np.ndim(m) else float(out[0])

    def feasible(self, m: np.ndarray | int) -> np.ndarray | bool:
        """Stability and deadline constraints (vectorized over M)."""
        m_arr = np.atleast_1d(np.asarray(m, dtype=float))
        tb = self.tbar(m_arr)
        stable = tb <= m_arr * self.tau0 * (1 + 1e-12)
        in_deadline = (
            self.b * m_arr * self.tau0 + self.s_scale * tb
            <= self.deadline * (1 + 1e-12)
        )
        out = stable & in_deadline
        return out if np.ndim(m) else bool(out[0])

    def max_block(self) -> int:
        """Largest M the deadline alone permits: ``floor(D / (b * tau0))``."""
        return int(np.floor(self.deadline / (self.b * self.tau0)))

    # -- solving ---------------------------------------------------------------

    def solve(self) -> MonolithicSolution:
        """Exact enumeration of all candidate block sizes."""
        upper = self.max_block()
        if upper < 1:
            return MonolithicSolution(
                feasible=False,
                block_size=0,
                active_fraction=float("nan"),
                block_service_time=float("nan"),
                accumulate_time=float("nan"),
                diagnosis=(
                    f"deadline D={self.deadline:.6g} cannot buffer even one "
                    f"item (b*tau0={self.b * self.tau0:.6g})"
                ),
            )
        enumerated = min(upper, _MAX_ENUMERATION)
        m = np.arange(1, enumerated + 1, dtype=np.int64)
        af = np.asarray(self.active_fraction(m))
        mask = np.asarray(self.feasible(m))
        if upper > enumerated:
            # Also consider the largest permitted block explicitly.
            m = np.append(m, upper)
            af = np.append(af, self.active_fraction(upper))
            mask = np.append(mask, self.feasible(upper))
        idx = best_feasible_index(af, mask)
        if idx is None:
            return MonolithicSolution(
                feasible=False,
                block_size=0,
                active_fraction=float("nan"),
                block_service_time=float("nan"),
                accumulate_time=float("nan"),
                diagnosis=(
                    "no block size is simultaneously stable and within the "
                    f"deadline (tested M in [1, {int(m[-1])}]); the arrival "
                    "rate likely exceeds the pipeline's per-item throughput"
                ),
            )
        m_star = int(m[idx])
        result = SolverResult(
            x=np.asarray([float(m_star)]),
            objective=float(af[idx]),
            status=SolverStatus.OPTIMAL,
            iterations=int(m.size),
            message=f"exact scan of {m.size} candidates",
        )
        return MonolithicSolution(
            feasible=True,
            block_size=m_star,
            active_fraction=float(af[idx]),
            block_service_time=float(self.tbar(m_star)),
            accumulate_time=m_star * self.tau0,
            solver_result=result,
        )


def solve_monolithic(
    problem: RealTimeProblem,
    *,
    b: int = 1,
    s_scale: float = 1.0,
) -> MonolithicSolution:
    """Convenience wrapper: build and solve the Figure 2 problem."""
    return MonolithicProblem(problem, b=b, s_scale=s_scale).solve()
