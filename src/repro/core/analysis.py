"""Comparative analysis of the two strategies — the data behind Figure 4.

Figure 4 plots the difference between the monolithic and enforced-waits
active fractions over the (tau0, D) plane; the regions above/below the
zero plane are where each strategy dominates.  These helpers derive the
difference surface, dominance regions, and sensitivity profiles from a
:class:`~repro.core.sweep.SweepResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sweep import SweepResult
from repro.errors import SpecError

__all__ = [
    "difference_surface",
    "DominanceRegions",
    "dominance_regions",
    "sensitivity_profile",
    "SensitivityProfile",
    "crossover_curve",
]


def difference_surface(
    sweep: SweepResult, *, infeasible: str = "nan"
) -> np.ndarray:
    """``monolithic_af - enforced_af`` over the grid (Figure 4's z-axis).

    Positive entries mean enforced waits win (lower active fraction).

    ``infeasible`` controls how missing strategies are scored:

    - ``"nan"`` — propagate NaN (plot only the doubly-feasible region);
    - ``"one"`` — score an infeasible strategy as active fraction 1.0
      (it cannot yield *and* meet deadlines; treating it as a fully busy
      processor is the natural pessimistic completion and reproduces the
      paper's reported dominance margins at the edges of the region).
    """
    e = sweep.enforced_af.copy()
    m = sweep.monolithic_af.copy()
    if infeasible == "one":
        e = np.where(np.isnan(e), 1.0, e)
        m = np.where(np.isnan(m), 1.0, m)
    elif infeasible != "nan":
        raise SpecError(f"infeasible must be 'nan' or 'one', got {infeasible!r}")
    return m - e


@dataclass(frozen=True)
class DominanceRegions:
    """Summary of who wins where on the sweep grid."""

    enforced_wins: np.ndarray
    monolithic_wins: np.ndarray
    ties: np.ndarray
    max_enforced_margin: float
    max_monolithic_margin: float
    enforced_win_fraction: float

    def describe(self) -> str:
        total = self.enforced_wins.size
        return (
            f"enforced wins at {int(self.enforced_wins.sum())}/{total} points "
            f"(max margin {self.max_enforced_margin:.3f}); monolithic wins at "
            f"{int(self.monolithic_wins.sum())}/{total} "
            f"(max margin {self.max_monolithic_margin:.3f})"
        )


def dominance_regions(
    sweep: SweepResult,
    *,
    tie_tol: float = 1e-6,
    infeasible: str = "one",
) -> DominanceRegions:
    """Boolean win-masks and dominance margins from a sweep."""
    diff = difference_surface(sweep, infeasible=infeasible)
    valid = ~np.isnan(diff)
    enforced = valid & (diff > tie_tol)
    monolithic = valid & (diff < -tie_tol)
    ties = valid & ~enforced & ~monolithic
    max_e = float(np.nanmax(diff)) if valid.any() else float("nan")
    max_m = float(-np.nanmin(diff)) if valid.any() else float("nan")
    frac = float(enforced.sum() / valid.sum()) if valid.any() else float("nan")
    return DominanceRegions(
        enforced_wins=enforced,
        monolithic_wins=monolithic,
        ties=ties,
        max_enforced_margin=max_e,
        max_monolithic_margin=max_m,
        enforced_win_fraction=frac,
    )


@dataclass(frozen=True)
class SensitivityProfile:
    """Quantifies each strategy's sensitivity to tau0 vs D (Section 6.3).

    A sensitivity is the mean absolute log-log slope of the active fraction
    along one grid axis, restricted to feasible points: near 0 means
    insensitive, near 1 means inverse proportionality.
    """

    enforced_tau0_sensitivity: float
    enforced_deadline_sensitivity: float
    monolithic_tau0_sensitivity: float
    monolithic_deadline_sensitivity: float


def _loglog_slope(values: np.ndarray, axis_coords: np.ndarray, axis: int) -> float:
    """Mean |d log AF / d log coord| along ``axis``, ignoring NaN pairs."""
    logv = np.log(values)
    logc = np.log(axis_coords)
    dv = np.diff(logv, axis=axis)
    dc = np.diff(logc)
    if axis == 0:
        slopes = dv / dc[:, None]
    else:
        slopes = dv / dc[None, :]
    good = ~np.isnan(slopes)
    if not good.any():
        return float("nan")
    return float(np.mean(np.abs(slopes[good])))


def crossover_curve(
    sweep: SweepResult, *, infeasible: str = "one"
) -> np.ndarray:
    """Per arrival period, the deadline where the strategies break even.

    This is the Figure 4 zero crossing as a 1-D curve: for each ``tau0``
    row, the smallest deadline at which enforced waits match or beat the
    monolithic baseline, log-interpolated between grid columns.  Entries
    are NaN where enforced waits never win on the grid and
    ``-inf`` where they win at every tested deadline (the paper's
    fast-arrival rows, where the monolithic strategy is infeasible
    throughout).

    The paper's characterization — "enforced waits are more effective
    when the deadline is larger relative to the arrival rate" — predicts
    a curve increasing in ``tau0``, which
    ``tests/test_core_sweep_analysis.py`` asserts on the BLAST pipeline.
    """
    diff = difference_surface(sweep, infeasible=infeasible)
    deadlines = sweep.deadline_values
    nt = sweep.tau0_values.size
    out = np.full(nt, np.nan)
    for i in range(nt):
        row = diff[i]
        wins = row > 0
        if not wins.any():
            continue
        j = int(np.argmax(wins))  # first winning column
        if j == 0:
            out[i] = -np.inf
            continue
        # Log-interpolate the zero between columns j-1 and j.
        d0, d1 = deadlines[j - 1], deadlines[j]
        y0, y1 = row[j - 1], row[j]
        if np.isnan(y0) or y1 == y0:
            out[i] = d1
        else:
            frac = (0.0 - y0) / (y1 - y0)
            out[i] = float(d0 * (d1 / d0) ** frac)
    return out


def sensitivity_profile(sweep: SweepResult) -> SensitivityProfile:
    """Compute the four sensitivities Figure 3 illustrates qualitatively.

    Expected shape (paper, Section 6.3): the enforced strategy is
    deadline-sensitive but tau0-insensitive; the monolithic strategy is
    tau0-sensitive but deadline-insensitive.
    """
    return SensitivityProfile(
        enforced_tau0_sensitivity=_loglog_slope(
            sweep.enforced_af, sweep.tau0_values, axis=0
        ),
        enforced_deadline_sensitivity=_loglog_slope(
            sweep.enforced_af, sweep.deadline_values, axis=1
        ),
        monolithic_tau0_sensitivity=_loglog_slope(
            sweep.monolithic_af, sweep.tau0_values, axis=0
        ),
        monolithic_deadline_sensitivity=_loglog_slope(
            sweep.monolithic_af, sweep.deadline_values, axis=1
        ),
    )
