"""Empirical calibration of worst-case parameters (Section 6.2).

The deadline constraints of both optimizations depend on parameters that
summarize worst-case queueing behaviour (``b_i`` per node for enforced
waits; ``b`` and ``S`` for monolithic).  The paper sets these empirically:

    "We began with optimistic choices for the worst-case parameters
    (b_i = ceil(g_i) and b = 1, S = 1 ...), then used the optimizer to
    implement each strategy and checked how often the simulator reported
    deadline misses over 100 runs with different random seeds.  If
    frequent misses were observed for any tested values of D and tau_0,
    we raised one or more parameters, re-optimized, and tried again."

:func:`calibrate_enforced_b` automates that loop.  The raise policy uses
the simulator's queue high-water marks: a failing grid point's observed
per-node depth (in vector-width units) is the natural candidate for the
new ``b_i``; if observations do not exceed the current assumption yet
misses persist, the node with the fullest queue relative to its assumption
is bumped by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arrivals.fixed import FixedRateArrivals
from repro.core.enforced_waits import EnforcedWaitsProblem, optimistic_b
from repro.core.model import RealTimeProblem
from repro.core.monolithic import MonolithicProblem
from repro.dataflow.spec import PipelineSpec
from repro.errors import CalibrationError, SpecError
from repro.sim.enforced import EnforcedWaitsSimulator
from repro.sim.monolithic import MonolithicSimulator
from repro.sim.runner import TrialsResult, run_trials

__all__ = [
    "CalibrationResult",
    "calibrate_enforced_b",
    "validate_monolithic_params",
    "calibrate_monolithic",
]


@dataclass
class CalibrationRound:
    """One iteration of the raise-and-retry loop."""

    b: np.ndarray
    worst_miss_free: float
    worst_miss_rate: float
    failing_points: list[tuple[float, float]]
    feasible_points: int


@dataclass
class CalibrationResult:
    """Outcome of a calibration campaign."""

    b: np.ndarray
    passed: bool
    rounds: list[CalibrationRound] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)


def _enforced_point_trials(
    pipeline: PipelineSpec,
    tau0: float,
    deadline: float,
    b: np.ndarray,
    *,
    n_trials: int,
    n_items: int,
    seed_base: int,
    workers: int | None = None,
) -> TrialsResult | None:
    """Optimize then simulate one grid point; None when infeasible."""
    problem = RealTimeProblem(pipeline, tau0, deadline)
    solution = EnforcedWaitsProblem(problem, b).solve()
    if not solution.feasible:
        return None
    waits = solution.waits

    if workers and workers > 1:
        from repro.sim.campaign import run_trials_parallel

        return run_trials_parallel(
            EnforcedWaitsSimulator,
            dict(
                pipeline=pipeline,
                waits=waits,
                arrivals=FixedRateArrivals(tau0),
                deadline=deadline,
                n_items=n_items,
            ),
            [seed_base + s for s in range(n_trials)],
            workers=workers,
        )

    def factory(seed: int) -> EnforcedWaitsSimulator:
        return EnforcedWaitsSimulator(
            pipeline,
            waits,
            FixedRateArrivals(tau0),
            deadline,
            n_items,
            seed=seed_base + seed,
        )

    return run_trials(factory, n_trials)


def calibrate_enforced_b(
    pipeline: PipelineSpec,
    tau0_values: np.ndarray,
    deadline_values: np.ndarray,
    *,
    n_trials: int = 20,
    n_items: int = 5000,
    target_miss_free: float = 0.95,
    max_item_miss_rate: float = 0.01,
    b0: np.ndarray | None = None,
    max_rounds: int = 25,
    seed_base: int = 0,
    workers: int | None = None,
) -> CalibrationResult:
    """Find per-node multipliers ``b_i`` passing the Section 6.2 criteria.

    A grid point *passes* when at least ``target_miss_free`` of trials are
    completely miss-free and no trial misses more than
    ``max_item_miss_rate`` of items.  Points infeasible under the current
    ``b`` are skipped (matching the paper, which reports results only on
    feasible realizations).  Raises :class:`CalibrationError` if the loop
    cannot converge within ``max_rounds``.

    ``workers > 1`` fans each point's seeds out over processes
    (:func:`repro.sim.campaign.run_trials_parallel`); results are
    identical to the serial run.
    """
    tau0_values = np.atleast_1d(np.asarray(tau0_values, dtype=float))
    deadline_values = np.atleast_1d(np.asarray(deadline_values, dtype=float))
    if n_trials < 1 or n_items < 1:
        raise SpecError("n_trials and n_items must be >= 1")
    b = (
        optimistic_b(pipeline)
        if b0 is None
        else np.asarray(b0, dtype=float).copy()
    )
    result = CalibrationResult(b=b.copy(), passed=False)

    for _ in range(max_rounds):
        failing: list[tuple[float, float]] = []
        observed_max = np.ones(pipeline.n_nodes)
        hwm_ratio = np.zeros(pipeline.n_nodes)
        worst_mf = 1.0
        worst_mr = 0.0
        feasible_points = 0
        for tau0 in tau0_values:
            for deadline in deadline_values:
                trials = _enforced_point_trials(
                    pipeline,
                    float(tau0),
                    float(deadline),
                    b,
                    n_trials=n_trials,
                    n_items=n_items,
                    seed_base=seed_base,
                    workers=workers,
                )
                if trials is None:
                    continue
                feasible_points += 1
                mf = trials.miss_free_fraction
                mr = trials.max_miss_rate
                worst_mf = min(worst_mf, mf)
                worst_mr = max(worst_mr, mr)
                if mf < target_miss_free or mr > max_item_miss_rate:
                    failing.append((float(tau0), float(deadline)))
                    obs = trials.observed_b()
                    observed_max = np.maximum(observed_max, obs)
                    hwm = np.nanmax(
                        np.vstack(
                            [m.queue_hwm_vectors for m in trials.metrics]
                        ),
                        axis=0,
                    )
                    hwm_ratio = np.maximum(hwm_ratio, hwm / b)
        result.rounds.append(
            CalibrationRound(
                b=b.copy(),
                worst_miss_free=worst_mf,
                worst_miss_rate=worst_mr,
                failing_points=failing,
                feasible_points=feasible_points,
            )
        )
        if feasible_points == 0:
            raise CalibrationError(
                "no feasible grid point under the current b; widen the grid "
                "or lower b0"
            )
        if not failing:
            result.b = b.copy()
            result.passed = True
            return result
        new_b = np.maximum(b, observed_max)
        if (new_b == b).all():
            # Depths did not exceed assumptions yet misses persist: bump
            # the node running closest to (or beyond) its assumed depth.
            new_b = b.copy()
            new_b[int(np.argmax(hwm_ratio))] += 1.0
        b = new_b
    raise CalibrationError(
        f"calibration did not converge in {max_rounds} rounds "
        f"(last b = {b.tolist()})"
    )


def validate_monolithic_params(
    pipeline: PipelineSpec,
    tau0_values: np.ndarray,
    deadline_values: np.ndarray,
    *,
    b: int = 1,
    s_scale: float = 1.0,
    n_trials: int = 20,
    n_items: int = 5000,
    target_miss_free: float = 0.95,
    seed_base: int = 0,
) -> tuple[bool, list[tuple[float, float, float]]]:
    """Check the paper's claim that ``b=1, S=1`` is miss-free monolithically.

    Returns ``(all_passed, failures)`` where each failure is
    ``(tau0, deadline, miss_free_fraction)``.  Infeasible points are
    skipped.
    """
    tau0_values = np.atleast_1d(np.asarray(tau0_values, dtype=float))
    deadline_values = np.atleast_1d(np.asarray(deadline_values, dtype=float))
    failures: list[tuple[float, float, float]] = []
    for tau0 in tau0_values:
        for deadline in deadline_values:
            problem = RealTimeProblem(pipeline, float(tau0), float(deadline))
            sol = MonolithicProblem(problem, b=b, s_scale=s_scale).solve()
            if not sol.feasible:
                continue

            def factory(seed: int, _m: int = sol.block_size, _t: float = float(tau0), _d: float = float(deadline)) -> MonolithicSimulator:
                return MonolithicSimulator(
                    pipeline,
                    _m,
                    FixedRateArrivals(_t),
                    _d,
                    n_items,
                    seed=seed_base + seed,
                )

            trials = run_trials(factory, n_trials)
            if trials.miss_free_fraction < target_miss_free:
                failures.append(
                    (float(tau0), float(deadline), trials.miss_free_fraction)
                )
    return (not failures, failures)


def calibrate_monolithic(
    pipeline: PipelineSpec,
    tau0_values: np.ndarray,
    deadline_values: np.ndarray,
    *,
    n_trials: int = 20,
    n_items: int = 5000,
    target_miss_free: float = 0.95,
    s_step: float = 0.1,
    max_s: float = 3.0,
    seed_base: int = 0,
) -> tuple[int, float, bool]:
    """Find ``(b, S)`` making the monolithic strategy pass the criteria.

    Starts at the paper's optimistic ``b=1, S=1`` and raises ``S`` in
    ``s_step`` increments (raising the worst-case service-time allowance,
    which shrinks the feasible block range) until every feasible grid
    point passes.  Returns ``(b, S, passed)``.  The paper reports the
    optimistic values already passed on its grid; on ours a small ``S``
    bump can be needed at the tightest-deadline corner, where the optimal
    block is small and per-block service-time variance is relatively
    large.
    """
    b = 1
    s = 1.0
    while s <= max_s + 1e-9:
        ok, _failures = validate_monolithic_params(
            pipeline,
            tau0_values,
            deadline_values,
            b=b,
            s_scale=s,
            n_trials=n_trials,
            n_items=n_items,
            target_miss_free=target_miss_free,
            seed_base=seed_base,
        )
        if ok:
            return (b, s, True)
        s = round(s + s_step, 10)
    return (b, s - s_step, False)
