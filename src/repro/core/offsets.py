"""Phase offsets for node firing schedules (extension).

The paper leaves the *phase* of each node's periodic firing schedule
unspecified (our simulator defaults to all nodes first firing at t = 0).
Phases do not change the active fraction — each node still fires once per
``t_i + w_i`` — but they do change *latency*: an item finishing at node
``i`` just after node ``i+1`` fired waits almost a full period.

:func:`aligned_offsets` staggers first firings along the chain so node
``i+1`` first fires right after node ``i``'s first completion.  When the
periods are equal (e.g. a pass-through cascade) this aligns *every*
firing and removes up to one full period of waiting per stage; for
general periods it still minimizes the pipeline-fill latency and tends to
reduce per-item latency, letting tighter deadlines pass calibration
(explored in ablation A5).
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.spec import PipelineSpec
from repro.errors import SpecError

__all__ = ["aligned_offsets"]


def aligned_offsets(
    pipeline: PipelineSpec, periods: np.ndarray, *, epsilon: float = 0.0
) -> np.ndarray:
    """Stagger first firings: node i first fires at the first completion
    of node i-1 (plus ``epsilon`` to be robust to float ties).

    ``offset_0 = 0``; ``offset_i = offset_{i-1} + t_{i-1} + epsilon``.
    """
    periods = np.asarray(periods, dtype=float)
    n = pipeline.n_nodes
    if periods.shape != (n,):
        raise SpecError(f"periods must have length {n}")
    if (periods < pipeline.service_times - 1e-12).any():
        raise SpecError("periods must be >= service times")
    if epsilon < 0:
        raise SpecError("epsilon must be >= 0")
    t = pipeline.service_times
    offsets = np.zeros(n)
    for i in range(1, n):
        offsets[i] = offsets[i - 1] + t[i - 1] + epsilon
    return offsets
