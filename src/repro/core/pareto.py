"""Deadline/utilization trade-off analysis (inverse design questions).

The paper's Figures 3/4 answer "given (tau0, D), how good is each
strategy?".  Downstream users usually face the inverse questions:

- *frontier*: how does the achievable active fraction fall as the
  deadline relaxes (at a fixed arrival rate)?
- *inverse design*: what is the smallest deadline under which a strategy
  can achieve a target active fraction?

Both are well-posed because the optimal active fraction is nonincreasing
in ``D`` for each strategy (a larger deadline only relaxes a constraint).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.enforced_waits import EnforcedWaitsProblem
from repro.core.feasibility import min_deadline_enforced
from repro.core.model import RealTimeProblem
from repro.core.monolithic import MonolithicProblem
from repro.dataflow.spec import PipelineSpec
from repro.errors import SpecError

__all__ = ["DeadlineFrontier", "deadline_frontier", "min_deadline_for_af"]


@dataclass(frozen=True)
class DeadlineFrontier:
    """Active fraction of both strategies across deadlines at fixed tau0."""

    tau0: float
    deadlines: np.ndarray
    enforced_af: np.ndarray
    monolithic_af: np.ndarray

    def crossover_deadline(self) -> float:
        """First deadline at which enforced waits beat the monolithic
        baseline (NaN if never on this grid; either strategy's infeasible
        points count as active fraction 1)."""
        e = np.where(np.isnan(self.enforced_af), 1.0, self.enforced_af)
        m = np.where(np.isnan(self.monolithic_af), 1.0, self.monolithic_af)
        wins = np.where(e < m)[0]
        if wins.size == 0:
            return float("nan")
        return float(self.deadlines[wins[0]])


def deadline_frontier(
    pipeline: PipelineSpec,
    tau0: float,
    deadlines: np.ndarray,
    *,
    b_enforced: np.ndarray,
    b_monolithic: int = 1,
    s_scale: float = 1.0,
) -> DeadlineFrontier:
    """Evaluate both strategies along a deadline axis at fixed ``tau0``."""
    deadlines = np.asarray(deadlines, dtype=float)
    if deadlines.ndim != 1 or deadlines.size == 0 or (deadlines <= 0).any():
        raise SpecError("deadlines must be a non-empty positive 1-D array")
    e = np.full(deadlines.size, np.nan)
    m = np.full(deadlines.size, np.nan)
    for j, d in enumerate(deadlines):
        problem = RealTimeProblem(pipeline, tau0, float(d))
        esol = EnforcedWaitsProblem(problem, b_enforced).solve()
        if esol.feasible:
            e[j] = esol.active_fraction
        msol = MonolithicProblem(
            problem, b=b_monolithic, s_scale=s_scale
        ).solve()
        if msol.feasible:
            m[j] = msol.active_fraction
    return DeadlineFrontier(
        tau0=tau0, deadlines=deadlines, enforced_af=e, monolithic_af=m
    )


def min_deadline_for_af(
    pipeline: PipelineSpec,
    tau0: float,
    target_af: float,
    b: np.ndarray,
    *,
    d_max: float = 1e9,
    tol: float = 1e-6,
) -> float:
    """Smallest deadline achieving ``target_af`` with enforced waits.

    Returns ``inf`` when the target is unachievable at any deadline (the
    large-D limit of the active fraction is bounded below by the head and
    chain caps — see :func:`repro.core.predictions.enforced_af_at_caps`).
    Bisection is valid because the optimal objective is nonincreasing and
    continuous in ``D`` on the feasible side.
    """
    if not 0 < target_af <= 1:
        raise SpecError(f"target_af must be in (0, 1], got {target_af}")
    b = np.asarray(b, dtype=float)

    def af_at(d: float) -> float:
        sol = EnforcedWaitsProblem(
            RealTimeProblem(pipeline, tau0, d), b
        ).solve()
        return sol.active_fraction if sol.feasible else float("inf")

    d_lo = min_deadline_enforced(pipeline, b)
    if af_at(d_lo) <= target_af:
        return d_lo
    if af_at(d_max) > target_af:
        return float("inf")
    lo, hi = d_lo, d_max
    while hi / lo > 1 + tol:
        mid = (lo * hi) ** 0.5
        if af_at(mid) <= target_af:
            hi = mid
        else:
            lo = mid
    return hi
